file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_scaling.dir/extension_scaling.cpp.o"
  "CMakeFiles/bench_extension_scaling.dir/extension_scaling.cpp.o.d"
  "bench_extension_scaling"
  "bench_extension_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
