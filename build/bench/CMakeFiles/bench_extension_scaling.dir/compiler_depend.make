# Empty compiler generated dependencies file for bench_extension_scaling.
# This may be replaced when dependencies are built.
