file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_write_margin.dir/ablation_write_margin.cpp.o"
  "CMakeFiles/bench_ablation_write_margin.dir/ablation_write_margin.cpp.o.d"
  "bench_ablation_write_margin"
  "bench_ablation_write_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_write_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
