# Empty compiler generated dependencies file for bench_motivation_standby.
# This may be replaced when dependencies are built.
