file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_standby.dir/motivation_standby.cpp.o"
  "CMakeFiles/bench_motivation_standby.dir/motivation_standby.cpp.o.d"
  "bench_motivation_standby"
  "bench_motivation_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
