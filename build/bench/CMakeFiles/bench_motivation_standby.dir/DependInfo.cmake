
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/motivation_standby.cpp" "bench/CMakeFiles/bench_motivation_standby.dir/motivation_standby.cpp.o" "gcc" "bench/CMakeFiles/bench_motivation_standby.dir/motivation_standby.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nvff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/physdes/CMakeFiles/nvff_physdes.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/nvff_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/mtj/CMakeFiles/nvff_mtj.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nvff_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/pairing/CMakeFiles/nvff_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
