# Empty dependencies file for bench_table3_system.
# This may be replaced when dependencies are built.
