file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_system.dir/table3_system.cpp.o"
  "CMakeFiles/bench_table3_system.dir/table3_system.cpp.o.d"
  "bench_table3_system"
  "bench_table3_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
