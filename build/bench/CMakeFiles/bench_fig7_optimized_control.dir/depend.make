# Empty dependencies file for bench_fig7_optimized_control.
# This may be replaced when dependencies are built.
