file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_optimized_control.dir/fig7_optimized_control.cpp.o"
  "CMakeFiles/bench_fig7_optimized_control.dir/fig7_optimized_control.cpp.o.d"
  "bench_fig7_optimized_control"
  "bench_fig7_optimized_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_optimized_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
