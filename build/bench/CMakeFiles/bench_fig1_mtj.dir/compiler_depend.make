# Empty compiler generated dependencies file for bench_fig1_mtj.
# This may be replaced when dependencies are built.
