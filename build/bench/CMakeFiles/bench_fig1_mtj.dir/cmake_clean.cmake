file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mtj.dir/fig1_mtj.cpp.o"
  "CMakeFiles/bench_fig1_mtj.dir/fig1_mtj.cpp.o.d"
  "bench_fig1_mtj"
  "bench_fig1_mtj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mtj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
