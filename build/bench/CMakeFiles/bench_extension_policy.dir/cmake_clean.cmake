file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_policy.dir/extension_policy.cpp.o"
  "CMakeFiles/bench_extension_policy.dir/extension_policy.cpp.o.d"
  "bench_extension_policy"
  "bench_extension_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
