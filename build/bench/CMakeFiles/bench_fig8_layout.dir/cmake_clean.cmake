file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_layout.dir/fig8_layout.cpp.o"
  "CMakeFiles/bench_fig8_layout.dir/fig8_layout.cpp.o.d"
  "bench_fig8_layout"
  "bench_fig8_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
