file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_waveforms.dir/fig6_waveforms.cpp.o"
  "CMakeFiles/bench_fig6_waveforms.dir/fig6_waveforms.cpp.o.d"
  "bench_fig6_waveforms"
  "bench_fig6_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
