file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_mbff.dir/extension_mbff.cpp.o"
  "CMakeFiles/bench_extension_mbff.dir/extension_mbff.cpp.o.d"
  "bench_extension_mbff"
  "bench_extension_mbff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_mbff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
