# Empty compiler generated dependencies file for bench_extension_mbff.
# This may be replaced when dependencies are built.
