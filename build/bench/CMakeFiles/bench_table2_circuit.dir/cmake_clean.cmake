file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_circuit.dir/table2_circuit.cpp.o"
  "CMakeFiles/bench_table2_circuit.dir/table2_circuit.cpp.o.d"
  "bench_table2_circuit"
  "bench_table2_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
