file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_floorplan.dir/fig9_floorplan.cpp.o"
  "CMakeFiles/bench_fig9_floorplan.dir/fig9_floorplan.cpp.o.d"
  "bench_fig9_floorplan"
  "bench_fig9_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
