file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_routing.dir/extension_routing.cpp.o"
  "CMakeFiles/bench_extension_routing.dir/extension_routing.cpp.o.d"
  "bench_extension_routing"
  "bench_extension_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
