# Empty dependencies file for bench_extension_routing.
# This may be replaced when dependencies are built.
