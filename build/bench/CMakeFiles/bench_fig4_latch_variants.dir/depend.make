# Empty dependencies file for bench_fig4_latch_variants.
# This may be replaced when dependencies are built.
