file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latch_variants.dir/fig4_latch_variants.cpp.o"
  "CMakeFiles/bench_fig4_latch_variants.dir/fig4_latch_variants.cpp.o.d"
  "bench_fig4_latch_variants"
  "bench_fig4_latch_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latch_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
