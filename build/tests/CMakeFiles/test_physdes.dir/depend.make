# Empty dependencies file for test_physdes.
# This may be replaced when dependencies are built.
