file(REMOVE_RECURSE
  "CMakeFiles/test_physdes.dir/physdes/test_def_io.cpp.o"
  "CMakeFiles/test_physdes.dir/physdes/test_def_io.cpp.o.d"
  "CMakeFiles/test_physdes.dir/physdes/test_placement.cpp.o"
  "CMakeFiles/test_physdes.dir/physdes/test_placement.cpp.o.d"
  "CMakeFiles/test_physdes.dir/physdes/test_routing.cpp.o"
  "CMakeFiles/test_physdes.dir/physdes/test_routing.cpp.o.d"
  "CMakeFiles/test_physdes.dir/physdes/test_sta.cpp.o"
  "CMakeFiles/test_physdes.dir/physdes/test_sta.cpp.o.d"
  "test_physdes"
  "test_physdes.pdb"
  "test_physdes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
