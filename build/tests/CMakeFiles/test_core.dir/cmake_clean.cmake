file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_clock_network.cpp.o"
  "CMakeFiles/test_core.dir/core/test_clock_network.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_flow.cpp.o"
  "CMakeFiles/test_core.dir/core/test_flow.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_standby.cpp.o"
  "CMakeFiles/test_core.dir/core/test_standby.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
