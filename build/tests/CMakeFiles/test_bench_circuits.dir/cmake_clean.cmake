file(REMOVE_RECURSE
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_bench_io.cpp.o"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_bench_io.cpp.o.d"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_generator.cpp.o"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_generator.cpp.o.d"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_netlist.cpp.o"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_netlist.cpp.o.d"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_parser_robustness.cpp.o"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_parser_robustness.cpp.o.d"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_verilog_io.cpp.o"
  "CMakeFiles/test_bench_circuits.dir/bench_circuits/test_verilog_io.cpp.o.d"
  "test_bench_circuits"
  "test_bench_circuits.pdb"
  "test_bench_circuits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
