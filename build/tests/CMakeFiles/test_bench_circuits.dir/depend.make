# Empty dependencies file for test_bench_circuits.
# This may be replaced when dependencies are built.
