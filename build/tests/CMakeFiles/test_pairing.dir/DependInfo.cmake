
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pairing/test_grouping.cpp" "tests/CMakeFiles/test_pairing.dir/pairing/test_grouping.cpp.o" "gcc" "tests/CMakeFiles/test_pairing.dir/pairing/test_grouping.cpp.o.d"
  "/root/repo/tests/pairing/test_pairing.cpp" "tests/CMakeFiles/test_pairing.dir/pairing/test_pairing.cpp.o" "gcc" "tests/CMakeFiles/test_pairing.dir/pairing/test_pairing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nvff_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/mtj/CMakeFiles/nvff_mtj.dir/DependInfo.cmake"
  "/root/repo/build/src/pairing/CMakeFiles/nvff_pairing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
