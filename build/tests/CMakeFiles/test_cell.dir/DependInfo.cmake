
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cell/test_flipped_latch.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_flipped_latch.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_flipped_latch.cpp.o.d"
  "/root/repo/tests/cell/test_latch_corners.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_latch_corners.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_latch_corners.cpp.o.d"
  "/root/repo/tests/cell/test_latches.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_latches.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_latches.cpp.o.d"
  "/root/repo/tests/cell/test_layout.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_layout.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_layout.cpp.o.d"
  "/root/repo/tests/cell/test_mismatch.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_mismatch.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_mismatch.cpp.o.d"
  "/root/repo/tests/cell/test_scalable_latch.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_scalable_latch.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_scalable_latch.cpp.o.d"
  "/root/repo/tests/cell/test_spice_deck.cpp" "tests/CMakeFiles/test_cell.dir/cell/test_spice_deck.cpp.o" "gcc" "tests/CMakeFiles/test_cell.dir/cell/test_spice_deck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nvff_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/mtj/CMakeFiles/nvff_mtj.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/nvff_cell.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
