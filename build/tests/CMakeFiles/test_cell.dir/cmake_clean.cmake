file(REMOVE_RECURSE
  "CMakeFiles/test_cell.dir/cell/test_flipped_latch.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_flipped_latch.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_latch_corners.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_latch_corners.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_latches.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_latches.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_layout.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_layout.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_mismatch.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_mismatch.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_scalable_latch.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_scalable_latch.cpp.o.d"
  "CMakeFiles/test_cell.dir/cell/test_spice_deck.cpp.o"
  "CMakeFiles/test_cell.dir/cell/test_spice_deck.cpp.o.d"
  "test_cell"
  "test_cell.pdb"
  "test_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
