
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/test_convergence.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_convergence.cpp.o.d"
  "/root/repo/tests/spice/test_linear_circuits.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_linear_circuits.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_linear_circuits.cpp.o.d"
  "/root/repo/tests/spice/test_matrix.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_mosfet.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet_properties.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_mosfet_properties.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_mosfet_properties.cpp.o.d"
  "/root/repo/tests/spice/test_transient.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_transient.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_transient.cpp.o.d"
  "/root/repo/tests/spice/test_vcd.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_vcd.cpp.o.d"
  "/root/repo/tests/spice/test_waveform.cpp" "tests/CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nvff_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/mtj/CMakeFiles/nvff_mtj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
