file(REMOVE_RECURSE
  "CMakeFiles/test_spice.dir/spice/test_convergence.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_convergence.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_linear_circuits.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_linear_circuits.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_matrix.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_mosfet.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_mosfet.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_mosfet_properties.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_mosfet_properties.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_transient.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_transient.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_vcd.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_vcd.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o"
  "CMakeFiles/test_spice.dir/spice/test_waveform.cpp.o.d"
  "test_spice"
  "test_spice.pdb"
  "test_spice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
