
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mtj/test_defects.cpp" "tests/CMakeFiles/test_mtj.dir/mtj/test_defects.cpp.o" "gcc" "tests/CMakeFiles/test_mtj.dir/mtj/test_defects.cpp.o.d"
  "/root/repo/tests/mtj/test_device.cpp" "tests/CMakeFiles/test_mtj.dir/mtj/test_device.cpp.o" "gcc" "tests/CMakeFiles/test_mtj.dir/mtj/test_device.cpp.o.d"
  "/root/repo/tests/mtj/test_model.cpp" "tests/CMakeFiles/test_mtj.dir/mtj/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_mtj.dir/mtj/test_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nvff_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/mtj/CMakeFiles/nvff_mtj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
