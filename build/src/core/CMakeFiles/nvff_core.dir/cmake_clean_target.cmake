file(REMOVE_RECURSE
  "libnvff_core.a"
)
