# Empty compiler generated dependencies file for nvff_core.
# This may be replaced when dependencies are built.
