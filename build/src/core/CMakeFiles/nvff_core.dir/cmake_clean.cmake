file(REMOVE_RECURSE
  "CMakeFiles/nvff_core.dir/clock_network.cpp.o"
  "CMakeFiles/nvff_core.dir/clock_network.cpp.o.d"
  "CMakeFiles/nvff_core.dir/flow.cpp.o"
  "CMakeFiles/nvff_core.dir/flow.cpp.o.d"
  "CMakeFiles/nvff_core.dir/nv_cells.cpp.o"
  "CMakeFiles/nvff_core.dir/nv_cells.cpp.o.d"
  "CMakeFiles/nvff_core.dir/reports.cpp.o"
  "CMakeFiles/nvff_core.dir/reports.cpp.o.d"
  "CMakeFiles/nvff_core.dir/standby.cpp.o"
  "CMakeFiles/nvff_core.dir/standby.cpp.o.d"
  "libnvff_core.a"
  "libnvff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
