file(REMOVE_RECURSE
  "CMakeFiles/nvff_spice.dir/analysis.cpp.o"
  "CMakeFiles/nvff_spice.dir/analysis.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/circuit.cpp.o"
  "CMakeFiles/nvff_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/devices.cpp.o"
  "CMakeFiles/nvff_spice.dir/devices.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/matrix.cpp.o"
  "CMakeFiles/nvff_spice.dir/matrix.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/mosfet.cpp.o"
  "CMakeFiles/nvff_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/trace.cpp.o"
  "CMakeFiles/nvff_spice.dir/trace.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/vcd.cpp.o"
  "CMakeFiles/nvff_spice.dir/vcd.cpp.o.d"
  "CMakeFiles/nvff_spice.dir/waveform.cpp.o"
  "CMakeFiles/nvff_spice.dir/waveform.cpp.o.d"
  "libnvff_spice.a"
  "libnvff_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
