# Empty dependencies file for nvff_spice.
# This may be replaced when dependencies are built.
