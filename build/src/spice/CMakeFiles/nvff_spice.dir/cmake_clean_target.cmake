file(REMOVE_RECURSE
  "libnvff_spice.a"
)
