# Empty compiler generated dependencies file for nvff_sim.
# This may be replaced when dependencies are built.
