file(REMOVE_RECURSE
  "CMakeFiles/nvff_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/nvff_sim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/nvff_sim.dir/xlogic_sim.cpp.o"
  "CMakeFiles/nvff_sim.dir/xlogic_sim.cpp.o.d"
  "libnvff_sim.a"
  "libnvff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
