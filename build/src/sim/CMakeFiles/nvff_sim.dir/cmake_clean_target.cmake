file(REMOVE_RECURSE
  "libnvff_sim.a"
)
