
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/characterize.cpp" "src/cell/CMakeFiles/nvff_cell.dir/characterize.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/characterize.cpp.o.d"
  "/root/repo/src/cell/flipped_latch.cpp" "src/cell/CMakeFiles/nvff_cell.dir/flipped_latch.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/flipped_latch.cpp.o.d"
  "/root/repo/src/cell/latch_common.cpp" "src/cell/CMakeFiles/nvff_cell.dir/latch_common.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/latch_common.cpp.o.d"
  "/root/repo/src/cell/layout.cpp" "src/cell/CMakeFiles/nvff_cell.dir/layout.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/layout.cpp.o.d"
  "/root/repo/src/cell/multibit_latch.cpp" "src/cell/CMakeFiles/nvff_cell.dir/multibit_latch.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/multibit_latch.cpp.o.d"
  "/root/repo/src/cell/scalable_latch.cpp" "src/cell/CMakeFiles/nvff_cell.dir/scalable_latch.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/scalable_latch.cpp.o.d"
  "/root/repo/src/cell/spice_deck.cpp" "src/cell/CMakeFiles/nvff_cell.dir/spice_deck.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/spice_deck.cpp.o.d"
  "/root/repo/src/cell/standard_latch.cpp" "src/cell/CMakeFiles/nvff_cell.dir/standard_latch.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/standard_latch.cpp.o.d"
  "/root/repo/src/cell/technology.cpp" "src/cell/CMakeFiles/nvff_cell.dir/technology.cpp.o" "gcc" "src/cell/CMakeFiles/nvff_cell.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nvff_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/mtj/CMakeFiles/nvff_mtj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
