file(REMOVE_RECURSE
  "libnvff_cell.a"
)
