file(REMOVE_RECURSE
  "CMakeFiles/nvff_cell.dir/characterize.cpp.o"
  "CMakeFiles/nvff_cell.dir/characterize.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/flipped_latch.cpp.o"
  "CMakeFiles/nvff_cell.dir/flipped_latch.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/latch_common.cpp.o"
  "CMakeFiles/nvff_cell.dir/latch_common.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/layout.cpp.o"
  "CMakeFiles/nvff_cell.dir/layout.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/multibit_latch.cpp.o"
  "CMakeFiles/nvff_cell.dir/multibit_latch.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/scalable_latch.cpp.o"
  "CMakeFiles/nvff_cell.dir/scalable_latch.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/spice_deck.cpp.o"
  "CMakeFiles/nvff_cell.dir/spice_deck.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/standard_latch.cpp.o"
  "CMakeFiles/nvff_cell.dir/standard_latch.cpp.o.d"
  "CMakeFiles/nvff_cell.dir/technology.cpp.o"
  "CMakeFiles/nvff_cell.dir/technology.cpp.o.d"
  "libnvff_cell.a"
  "libnvff_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
