# Empty compiler generated dependencies file for nvff_cell.
# This may be replaced when dependencies are built.
