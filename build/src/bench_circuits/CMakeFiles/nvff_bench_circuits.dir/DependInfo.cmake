
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_circuits/bench_io.cpp" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/bench_io.cpp.o" "gcc" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/bench_io.cpp.o.d"
  "/root/repo/src/bench_circuits/generator.cpp" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/generator.cpp.o" "gcc" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/generator.cpp.o.d"
  "/root/repo/src/bench_circuits/netlist.cpp" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/netlist.cpp.o" "gcc" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/netlist.cpp.o.d"
  "/root/repo/src/bench_circuits/verilog_io.cpp" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/verilog_io.cpp.o" "gcc" "src/bench_circuits/CMakeFiles/nvff_bench_circuits.dir/verilog_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvff_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
