file(REMOVE_RECURSE
  "libnvff_bench_circuits.a"
)
