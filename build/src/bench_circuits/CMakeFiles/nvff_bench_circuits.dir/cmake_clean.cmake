file(REMOVE_RECURSE
  "CMakeFiles/nvff_bench_circuits.dir/bench_io.cpp.o"
  "CMakeFiles/nvff_bench_circuits.dir/bench_io.cpp.o.d"
  "CMakeFiles/nvff_bench_circuits.dir/generator.cpp.o"
  "CMakeFiles/nvff_bench_circuits.dir/generator.cpp.o.d"
  "CMakeFiles/nvff_bench_circuits.dir/netlist.cpp.o"
  "CMakeFiles/nvff_bench_circuits.dir/netlist.cpp.o.d"
  "CMakeFiles/nvff_bench_circuits.dir/verilog_io.cpp.o"
  "CMakeFiles/nvff_bench_circuits.dir/verilog_io.cpp.o.d"
  "libnvff_bench_circuits.a"
  "libnvff_bench_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_bench_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
