# Empty dependencies file for nvff_bench_circuits.
# This may be replaced when dependencies are built.
