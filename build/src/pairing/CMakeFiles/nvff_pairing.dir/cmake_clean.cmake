file(REMOVE_RECURSE
  "CMakeFiles/nvff_pairing.dir/grouping.cpp.o"
  "CMakeFiles/nvff_pairing.dir/grouping.cpp.o.d"
  "CMakeFiles/nvff_pairing.dir/pairing.cpp.o"
  "CMakeFiles/nvff_pairing.dir/pairing.cpp.o.d"
  "libnvff_pairing.a"
  "libnvff_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
