file(REMOVE_RECURSE
  "libnvff_pairing.a"
)
