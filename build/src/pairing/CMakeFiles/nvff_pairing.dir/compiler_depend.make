# Empty compiler generated dependencies file for nvff_pairing.
# This may be replaced when dependencies are built.
