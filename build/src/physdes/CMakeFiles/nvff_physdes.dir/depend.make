# Empty dependencies file for nvff_physdes.
# This may be replaced when dependencies are built.
