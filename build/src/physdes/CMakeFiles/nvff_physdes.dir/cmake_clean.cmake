file(REMOVE_RECURSE
  "CMakeFiles/nvff_physdes.dir/def_io.cpp.o"
  "CMakeFiles/nvff_physdes.dir/def_io.cpp.o.d"
  "CMakeFiles/nvff_physdes.dir/placement.cpp.o"
  "CMakeFiles/nvff_physdes.dir/placement.cpp.o.d"
  "CMakeFiles/nvff_physdes.dir/routing.cpp.o"
  "CMakeFiles/nvff_physdes.dir/routing.cpp.o.d"
  "CMakeFiles/nvff_physdes.dir/sta.cpp.o"
  "CMakeFiles/nvff_physdes.dir/sta.cpp.o.d"
  "libnvff_physdes.a"
  "libnvff_physdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_physdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
