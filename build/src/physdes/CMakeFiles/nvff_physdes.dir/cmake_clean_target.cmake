file(REMOVE_RECURSE
  "libnvff_physdes.a"
)
