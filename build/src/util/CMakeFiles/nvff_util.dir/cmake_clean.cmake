file(REMOVE_RECURSE
  "CMakeFiles/nvff_util.dir/log.cpp.o"
  "CMakeFiles/nvff_util.dir/log.cpp.o.d"
  "CMakeFiles/nvff_util.dir/rng.cpp.o"
  "CMakeFiles/nvff_util.dir/rng.cpp.o.d"
  "CMakeFiles/nvff_util.dir/stats.cpp.o"
  "CMakeFiles/nvff_util.dir/stats.cpp.o.d"
  "CMakeFiles/nvff_util.dir/strings.cpp.o"
  "CMakeFiles/nvff_util.dir/strings.cpp.o.d"
  "CMakeFiles/nvff_util.dir/table.cpp.o"
  "CMakeFiles/nvff_util.dir/table.cpp.o.d"
  "libnvff_util.a"
  "libnvff_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
