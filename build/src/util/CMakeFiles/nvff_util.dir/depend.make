# Empty dependencies file for nvff_util.
# This may be replaced when dependencies are built.
