file(REMOVE_RECURSE
  "libnvff_util.a"
)
