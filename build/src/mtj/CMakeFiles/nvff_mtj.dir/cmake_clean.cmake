file(REMOVE_RECURSE
  "CMakeFiles/nvff_mtj.dir/device.cpp.o"
  "CMakeFiles/nvff_mtj.dir/device.cpp.o.d"
  "CMakeFiles/nvff_mtj.dir/model.cpp.o"
  "CMakeFiles/nvff_mtj.dir/model.cpp.o.d"
  "libnvff_mtj.a"
  "libnvff_mtj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvff_mtj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
