# Empty dependencies file for nvff_mtj.
# This may be replaced when dependencies are built.
