file(REMOVE_RECURSE
  "libnvff_mtj.a"
)
