file(REMOVE_RECURSE
  "CMakeFiles/nvfftool.dir/nvfftool.cpp.o"
  "CMakeFiles/nvfftool.dir/nvfftool.cpp.o.d"
  "nvfftool"
  "nvfftool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvfftool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
