# Empty dependencies file for nvfftool.
# This may be replaced when dependencies are built.
