file(REMOVE_RECURSE
  "CMakeFiles/power_gated_soc.dir/power_gated_soc.cpp.o"
  "CMakeFiles/power_gated_soc.dir/power_gated_soc.cpp.o.d"
  "power_gated_soc"
  "power_gated_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_gated_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
