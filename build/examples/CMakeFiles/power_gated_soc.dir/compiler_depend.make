# Empty compiler generated dependencies file for power_gated_soc.
# This may be replaced when dependencies are built.
