file(REMOVE_RECURSE
  "CMakeFiles/multibit_sharing.dir/multibit_sharing.cpp.o"
  "CMakeFiles/multibit_sharing.dir/multibit_sharing.cpp.o.d"
  "multibit_sharing"
  "multibit_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibit_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
