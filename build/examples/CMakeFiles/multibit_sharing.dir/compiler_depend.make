# Empty compiler generated dependencies file for multibit_sharing.
# This may be replaced when dependencies are built.
