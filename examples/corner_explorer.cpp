// Exploring the latch's operating envelope beyond the paper's three corners:
// supply-voltage and temperature sweeps of read delay / energy / leakage.
//
//   $ ./examples/corner_explorer
//
// Demonstrates direct use of the Technology / TechCorner knobs with the
// characterization harness.
#include <cmath>
#include <cstdio>

#include "cell/characterize.hpp"
#include "spice/analysis.hpp"
#include "util/units.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::units;
  using namespace nvff::cell;

  // --- supply sweep -----------------------------------------------------------
  std::printf("VDD sweep (typical corner, 2-bit latch restore):\n");
  std::printf("%8s %14s %14s %10s\n", "VDD [V]", "delay [ps]", "energy [fJ]", "ok");
  for (double vdd : {0.9, 1.0, 1.1, 1.2, 1.3}) {
    Technology tech = Technology::table1();
    tech.vdd = vdd;
    Characterizer chr(tech);
    chr.timestep = 4e-12;
    const ReadResult r = chr.proposed_read(Corner::Typical, true, false);
    if (std::isnan(r.delay)) {
      // The rising output did not reach the 90 % measurement threshold inside
      // the (fixed) evaluation window — the logic level is still correct.
      std::printf("%8.2f %14s %14.2f %10s\n", vdd, "> window", r.energy * 1e15,
                  r.correct ? "PASS" : "FAIL");
    } else {
      std::printf("%8.2f %14.1f %14.2f %10s\n", vdd, r.delay * 1e12,
                  r.energy * 1e15, r.correct ? "PASS" : "FAIL");
    }
  }
  std::printf("(lower VDD: slower but less energy — the classic trade-off; the\n"
              " sense still resolves at 0.9 V because the MTJ window is ratioed)\n\n");

  // --- temperature sweep --------------------------------------------------------
  std::printf("temperature sweep (leakage of the 2-bit latch, supply 1.1 V):\n");
  std::printf("%8s %14s\n", "T [C]", "leakage [pW]");
  for (double tc : {-40.0, 0.0, 27.0, 60.0, 85.0, 125.0}) {
    Technology tech = Technology::table1();
    tech.tempC = tc;
    // Push the temperature into the device models (thermal voltage drives
    // the subthreshold slope, hence the leakage).
    Characterizer chr(tech);
    chr.timestep = 4e-12;
    TechCorner corner = tech.leakage_corner(Corner::Typical);
    corner.nmos.tempK = tc + units::kZeroCelsiusK;
    corner.pmos.tempK = tc + units::kZeroCelsiusK;
    corner.mtj.tempK = tc + units::kZeroCelsiusK;
    auto inst = MultibitNvLatch::build_idle(tech, corner);
    spice::Simulator sim(inst.circuit);
    const auto op = sim.dc_operating_point();
    const auto* vdd = dynamic_cast<const spice::VoltageSource*>(
        inst.circuit.find_device("VDD"));
    std::printf("%8.0f %14.1f\n", tc,
                vdd->delivered_current(op.as_state()) * tech.vdd * 1e12);
  }
  std::printf("(exponential in T through the thermal voltage — the leakage the\n"
              " paper's power gating eliminates grows worst exactly where\n"
              " battery devices live)\n");
  return 0;
}
