// Normally-off computing at system level.
//
//   $ ./examples/power_gated_soc [benchmark] [standbyUs]
//
// Runs a workload on a benchmark circuit, power-gates the logic (store to NV
// shadow cells, supply off, wake, restore), proves the interruption is
// architecturally invisible, and accounts the energy of the whole standby
// episode for three design points: volatile retention, 1-bit NV shadow
// flip-flops, and the paper's multi-bit NV flip-flops.
#include <cstdio>
#include <cstdlib>

#include "cell/characterize.hpp"
#include "core/flow.hpp"
#include "sim/logic_sim.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace nvff;
  using namespace nvff::units;

  const char* name = argc > 1 ? argv[1] : "s5378";
  const double standby = (argc > 2 ? std::atof(argv[2]) : 100.0) * us;

  const auto& spec = bench::find_benchmark(name);
  const auto netlist = bench::generate_benchmark(spec);
  std::printf("benchmark %s: %zu gates, %zu flip-flops\n", name,
              netlist.num_logic_gates(), netlist.num_flip_flops());

  // --- functional transparency ------------------------------------------------
  const bool transparent = sim::verify_power_cycle_transparency(netlist, 50, 50, 7);
  std::printf("power-cycle transparency (50 active + 50 post-wake cycles): %s\n\n",
              transparent ? "PASS" : "FAIL");

  // --- energy accounting for one standby episode ------------------------------
  // Circuit-level numbers from the analog engine.
  cell::Characterizer chr;
  chr.timestep = 4e-12;
  const cell::LatchMetrics stdPair = chr.standard_pair(cell::Corner::Typical);
  const cell::LatchMetrics prop = chr.proposed_2bit(cell::Corner::Typical);

  // Retention option: conventional FFs keep a retention rail during standby.
  // A 40 nm LP flip-flop leaks roughly 10x a shadow cell (master+slave+clock
  // buffers); we take the measured NV-cell leakage x10 as the FF estimate.
  const double ffLeakage = 10.0 * stdPair.leakage / 2.0;

  // Pairing result tells how many FFs merge into 2-bit cells.
  const core::FlowReport flow = core::run_flow(spec);
  const auto totalFfs = static_cast<double>(flow.totalFlipFlops);
  const auto pairs = static_cast<double>(flow.pairs);
  const double singles = totalFfs - 2.0 * pairs;

  const double writePerBit = stdPair.writeEnergy / 2.0; // identical both designs
  const double storeEnergy = totalFfs * writePerBit;

  const double retention = totalFfs * ffLeakage * standby;
  const double nv1Restore = totalFfs * (stdPair.readEnergy / 2.0);
  const double nv1 = storeEnergy + nv1Restore;
  const double nv2Restore =
      pairs * prop.readEnergy + singles * (stdPair.readEnergy / 2.0);
  const double nv2 = storeEnergy + nv2Restore;

  std::printf("one standby episode of %s (%zu FFs, %zu merged pairs):\n",
              eng(standby, "s", 0).c_str(), flow.totalFlipFlops, flow.pairs);
  std::printf("  volatile retention (keep rail)     : %s\n",
              eng(retention, "J").c_str());
  std::printf("  1-bit NV shadow (store + restore)  : %s\n", eng(nv1, "J").c_str());
  std::printf("  multi-bit NV shadow                : %s (restore part %.1f%% "
              "cheaper)\n",
              eng(nv2, "J").c_str(), improvement_percent(nv1Restore, nv2Restore));

  // Break-even: NV pays a fixed store+restore cost; retention pays per time.
  const double breakEven = nv1 / (totalFfs * ffLeakage);
  std::printf("\nbreak-even standby time vs retention: %s — beyond this, "
              "normally-off wins.\n",
              eng(breakEven, "s").c_str());

  std::printf("\nNV-component area: 1-bit %.1f um^2, multi-bit %.1f um^2 "
              "(%.1f%% better)\n",
              flow.areaStd, flow.areaProp, flow.areaImprovementPct);
  return transparent ? 0 : 1;
}
