// The physical-design side of the paper: place a benchmark, find mergeable
// flip-flop neighbours, and report the Table III row for it.
//
//   $ ./examples/multibit_sharing [benchmark]
#include <cstdio>

#include "core/flow.hpp"
#include "core/reports.hpp"
#include "physdes/def_io.hpp"

int main(int argc, char** argv) {
  using namespace nvff;
  const char* name = argc > 1 ? argv[1] : "s1423";
  const auto& spec = bench::find_benchmark(name);

  std::printf("running the replacement flow on %s (%d FFs, ~%d gates)...\n\n",
              spec.name.c_str(), spec.flipFlops, spec.logicGates);
  const core::FlowReport report = core::run_flow(spec);

  std::printf("%s\n", core::render_floorplan(report, 100, 30).c_str());

  std::printf("pairing: %zu of %zu flip-flops merged into %zu 2-bit cells "
              "(%.0f%%), mean pair distance %.2f um\n",
              2 * report.pairs, report.totalFlipFlops, report.pairs,
              100.0 * report.pairedFraction, report.pairing.pairDistances.mean());
  std::printf("paper reference for %s: %d pairs\n\n", spec.name.c_str(),
              spec.paperPairs);

  std::printf("NV-component roll-up (paper Table II cell values):\n");
  std::printf("  area   : %.3f -> %.3f um^2  (%.2f%% improvement, paper %.2f%%)\n",
              report.areaStd, report.areaProp, report.areaImprovementPct,
              spec.paperAreaImpr);
  std::printf("  energy : %.3f -> %.3f fJ    (%.2f%% improvement, paper %.2f%%)\n",
              report.energyStd * 1e15, report.energyProp * 1e15,
              report.energyImprovementPct, spec.paperEnergyImpr);
  return 0;
}
