// Using the library on your own circuit: describe it in ISCAS .bench text
// (or load a .bench file), then run the whole multi-bit NV replacement flow
// on it and simulate a power cycle.
//
//   $ ./examples/custom_circuit [file.bench]
#include <cstdio>
#include <exception>

#include "bench_circuits/bench_io.hpp"
#include "core/flow.hpp"
#include "core/reports.hpp"
#include "erc/netlist_lint.hpp"
#include "sim/logic_sim.hpp"

namespace {

// A 4-bit counter with enable — a typical small register bank.
const char* kCounter = R"(
# 4-bit synchronous counter with enable
INPUT(en)
c0 = AND(en, q0)
c1 = AND(c0, q1)
c2 = AND(c1, q2)
n0 = XOR(q0, en)
n1 = XOR(q1, c0)
n2 = XOR(q2, c1)
n3 = XOR(q3, c2)
q0 = DFF(n0)
q1 = DFF(n1)
q2 = DFF(n2)
q3 = DFF(n3)
OUTPUT(q0)
OUTPUT(q1)
OUTPUT(q2)
OUTPUT(q3)
)";

int counter_value(const nvff::sim::LogicSimulator& sim,
                  const nvff::bench::Netlist& nl) {
  int value = 0;
  for (int b = 0; b < 4; ++b) {
    if (sim.value(nl.find("q" + std::to_string(b)))) value |= 1 << b;
  }
  return value;
}

} // namespace

int main(int argc, char** argv) {
  using namespace nvff;

  // Lint before the strict parse: broken files get a full diagnostic report
  // (rule ids, offending signals, cycle paths) instead of one exception.
  erc::Report lint;
  try {
    lint = (argc > 1) ? erc::lint_bench_file(argv[1])
                      : erc::lint_bench_text(kCounter, "counter4");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!lint.clean()) {
    std::fprintf(stderr, "%s fails lint:\n%s",
                 argc > 1 ? argv[1] : "counter4", lint.to_text().c_str());
    return 1;
  }
  bench::Netlist nl = (argc > 1) ? bench::load_bench_file(argv[1])
                                 : bench::parse_bench_string(kCounter, "counter4");
  std::printf("circuit %s: %zu inputs, %zu outputs, %zu FFs, %zu gates\n\n",
              nl.name().c_str(), nl.num_inputs(), nl.num_outputs(),
              nl.num_flip_flops(), nl.num_logic_gates());

  // --- run it, power-gate it mid-count, continue ------------------------------
  sim::LogicSimulator lsim(nl);
  sim::NvShadowBank bank(nl.num_flip_flops());
  if (argc == 1) {
    for (int i = 0; i < 11; ++i) lsim.cycle({true});
    std::printf("counted 11 ticks -> value %d\n", counter_value(lsim, nl));
    bank.store(lsim);
    Rng destroyer(3);
    lsim.scramble_state(destroyer);
    std::printf("power removed (state scrambled) -> value %d\n",
                counter_value(lsim, nl));
    bank.restore(lsim);
    std::printf("restored from NV shadow        -> value %d\n",
                counter_value(lsim, nl));
    for (int i = 0; i < 5; ++i) lsim.cycle({true});
    std::printf("5 more ticks                   -> value %d (expected 16 -> 0)\n\n",
                counter_value(lsim, nl));
  }

  // --- the replacement flow works on any netlist ------------------------------
  const core::FlowReport report = core::run_flow_on_netlist(nl);
  std::printf("placement + pairing: %zu FFs, %zu merged pairs\n",
              report.totalFlipFlops, report.pairs);
  std::printf("NV area %.2f -> %.2f um^2 (%.1f%% improvement)\n", report.areaStd,
              report.areaProp, report.areaImprovementPct);
  return 0;
}
