// nvfftool — command-line front-end to the library.
//
//   nvfftool list                      # available benchmarks
//   nvfftool flow <benchmark>          # place + pair + Table III row
//   nvfftool characterize [corner]     # Table II column(s)
//   nvfftool table2                    # full Table II
//   nvfftool table3                    # full Table III (all benchmarks)
//   nvfftool cycle <d0> <d1>           # simulate a store/power-off/restore
//   nvfftool export <benchmark> <dir>  # write .bench, .v and .def artifacts
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/verilog_io.hpp"
#include "cell/spice_deck.hpp"
#include "cell/characterize.hpp"
#include "cell/multibit_latch.hpp"
#include "core/reports.hpp"
#include "physdes/def_io.hpp"
#include "util/strings.hpp"

namespace {

using namespace nvff;

int cmd_list() {
  std::printf("%-10s %8s %8s %8s %10s\n", "name", "FFs", "gates", "inputs",
              "paper 2b");
  for (const auto& spec : bench::paper_benchmarks()) {
    std::printf("%-10s %8d %8d %8d %10d\n", spec.name.c_str(), spec.flipFlops,
                spec.logicGates, spec.inputs, spec.paperPairs);
  }
  return 0;
}

int cmd_flow(const std::string& name) {
  const core::FlowReport r = core::run_flow(bench::find_benchmark(name));
  std::printf("%s: %zu FFs, %zu merged pairs (%.0f%% of FFs)\n", name.c_str(),
              r.totalFlipFlops, r.pairs, 100.0 * r.pairedFraction);
  std::printf("NV area   : %.3f -> %.3f um^2 (%.2f%% improvement)\n", r.areaStd,
              r.areaProp, r.areaImprovementPct);
  std::printf("NV energy : %.3f -> %.3f fJ (%.2f%% improvement)\n",
              r.energyStd * 1e15, r.energyProp * 1e15, r.energyImprovementPct);
  return 0;
}

int cmd_characterize(const std::string& cornerName) {
  cell::Characterizer chr;
  chr.timestep = 2e-12;
  for (cell::Corner c : cell::kAllCorners) {
    if (!cornerName.empty() && cornerName != cell::corner_name(c)) continue;
    const cell::LatchMetrics s = chr.standard_pair(c);
    const cell::LatchMetrics p = chr.proposed_2bit(c);
    std::printf("[%s]\n", cell::corner_name(c));
    std::printf("  2x standard : read %s / %s, leak %s, area %.3f um^2\n",
                eng(s.readEnergy, "J").c_str(), eng(s.readDelay, "s", 0).c_str(),
                eng(s.leakage, "W", 0).c_str(), s.areaUm2);
    std::printf("  proposed    : read %s / %s, leak %s, area %.3f um^2\n",
                eng(p.readEnergy, "J").c_str(), eng(p.readDelay, "s", 0).c_str(),
                eng(p.leakage, "W", 0).c_str(), p.areaUm2);
  }
  return 0;
}

int cmd_table2() {
  cell::Characterizer chr;
  chr.timestep = 2e-12;
  std::printf("%s", core::render_table2(core::measure_table2(chr)).c_str());
  return 0;
}

int cmd_table3() {
  std::vector<core::FlowReport> reports;
  for (const auto& spec : bench::paper_benchmarks()) {
    reports.push_back(core::run_flow(spec));
  }
  std::printf("%s", core::render_table3(reports).c_str());
  return 0;
}

int cmd_cycle(bool d0, bool d1) {
  cell::Characterizer chr;
  chr.timestep = 4e-12;
  const bool ok = chr.proposed_power_cycle_ok(cell::Corner::Typical, d0, d1);
  std::printf("store (%d,%d) -> power off -> wake -> restore: %s\n", d0, d1,
              ok ? "data intact" : "MISMATCH");
  return ok ? 0 : 1;
}

int cmd_export(const std::string& name, const std::string& dir) {
  const auto& spec = bench::find_benchmark(name);
  const auto nl = bench::generate_benchmark(spec);
  physdes::PlacerOptions opt;
  opt.utilization = spec.utilization;
  const auto placement =
      physdes::place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
  bench::save_bench_file(nl, dir + "/" + name + ".bench");
  bench::save_verilog_file(nl, dir + "/" + name + ".v");
  physdes::save_def_file(placement, nl, dir + "/" + name + ".def");
  // The 2-bit NV cell itself, as a SPICE deck.
  auto latch = cell::MultibitNvLatch::build_idle(
      cell::Technology::table1(),
      cell::Technology::table1().read_corner(cell::Corner::Typical));
  cell::save_spice_deck(latch.circuit, dir + "/nv_2bit_latch.sp");
  std::printf("wrote %s/%s.{bench,v,def} and %s/nv_2bit_latch.sp\n", dir.c_str(),
              name.c_str(), dir.c_str());
  return 0;
}

int usage() {
  std::printf(
      "usage: nvfftool <command>\n"
      "  list                     benchmarks\n"
      "  flow <benchmark>         run the NV replacement flow\n"
      "  characterize [corner]    circuit metrics (worst|typical|best)\n"
      "  table2 | table3          regenerate the paper tables\n"
      "  cycle <d0> <d1>          simulate a full normally-off cycle\n"
      "  export <benchmark> <dir> write .bench/.v/.def/.sp artifacts\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "flow" && argc >= 3) return cmd_flow(argv[2]);
    if (cmd == "characterize") return cmd_characterize(argc >= 3 ? argv[2] : "");
    if (cmd == "table2") return cmd_table2();
    if (cmd == "table3") return cmd_table3();
    if (cmd == "cycle" && argc >= 4) {
      return cmd_cycle(std::strcmp(argv[2], "0") != 0,
                       std::strcmp(argv[3], "0") != 0);
    }
    if (cmd == "export" && argc >= 4) return cmd_export(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
