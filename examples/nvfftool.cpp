// nvfftool — command-line front-end to the library.
//
//   nvfftool list                      # available benchmarks
//   nvfftool flow <benchmark>          # place + pair + Table III row
//   nvfftool characterize [corner]     # Table II column(s)
//   nvfftool table2                    # full Table II
//   nvfftool table3                    # full Table III (all benchmarks)
//   nvfftool cycle <d0> <d1>           # simulate a store/power-off/restore
//   nvfftool export <benchmark> <dir>  # write .bench, .v and .def artifacts
//   nvfftool lint [--json] <target>    # static ERC/lint; nonzero exit on errors
//   nvfftool mc [options]              # Monte-Carlo reliability campaign
//   nvfftool powerfail [options]       # power-interruption fault campaign
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/verilog_io.hpp"
#include <atomic>
#include <csignal>

#include "dist/coordinator.hpp"
#include "dist/endpoint.hpp"
#include "dist/engine.hpp"
#include "dist/netchaos.hpp"
#include "dist/worker.hpp"
#include "cell/spice_deck.hpp"
#include "cell/characterize.hpp"
#include "cell/flipped_latch.hpp"
#include "cell/multibit_latch.hpp"
#include "cell/scalable_latch.hpp"
#include "cell/standard_latch.hpp"
#include "core/reports.hpp"
#include "erc/detlint.hpp"
#include "erc/erc.hpp"
#include "faults/powerfail.hpp"
#include "physdes/def_io.hpp"
#include "reliability/montecarlo.hpp"
#include "runtime/config_diff.hpp"
#include "runtime/supervisor.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

using namespace nvff;

int cmd_list() {
  std::printf("%-10s %8s %8s %8s %10s\n", "name", "FFs", "gates", "inputs",
              "paper 2b");
  for (const auto& spec : bench::paper_benchmarks()) {
    std::printf("%-10s %8d %8d %8d %10d\n", spec.name.c_str(), spec.flipFlops,
                spec.logicGates, spec.inputs, spec.paperPairs);
  }
  return 0;
}

int cmd_flow(const std::string& name) {
  const core::FlowReport r = core::run_flow(bench::find_benchmark(name));
  std::printf("%s: %zu FFs, %zu merged pairs (%.0f%% of FFs)\n", name.c_str(),
              r.totalFlipFlops, r.pairs, 100.0 * r.pairedFraction);
  std::printf("NV area   : %.3f -> %.3f um^2 (%.2f%% improvement)\n", r.areaStd,
              r.areaProp, r.areaImprovementPct);
  std::printf("NV energy : %.3f -> %.3f fJ (%.2f%% improvement)\n",
              r.energyStd * 1e15, r.energyProp * 1e15, r.energyImprovementPct);
  return 0;
}

int cmd_characterize(const std::string& cornerName) {
  cell::Characterizer chr;
  chr.timestep = 2e-12;
  for (cell::Corner c : cell::kAllCorners) {
    if (!cornerName.empty() && cornerName != cell::corner_name(c)) continue;
    const cell::LatchMetrics s = chr.standard_pair(c);
    const cell::LatchMetrics p = chr.proposed_2bit(c);
    std::printf("[%s]\n", cell::corner_name(c));
    std::printf("  2x standard : read %s / %s, leak %s, area %.3f um^2\n",
                eng(s.readEnergy, "J").c_str(), eng(s.readDelay, "s", 0).c_str(),
                eng(s.leakage, "W", 0).c_str(), s.areaUm2);
    std::printf("  proposed    : read %s / %s, leak %s, area %.3f um^2\n",
                eng(p.readEnergy, "J").c_str(), eng(p.readDelay, "s", 0).c_str(),
                eng(p.leakage, "W", 0).c_str(), p.areaUm2);
  }
  return 0;
}

int cmd_table2() {
  cell::Characterizer chr;
  chr.timestep = 2e-12;
  std::printf("%s", core::render_table2(core::measure_table2(chr)).c_str());
  return 0;
}

int cmd_table3() {
  std::vector<core::FlowReport> reports;
  for (const auto& spec : bench::paper_benchmarks()) {
    reports.push_back(core::run_flow(spec));
  }
  std::printf("%s", core::render_table3(reports).c_str());
  return 0;
}

int cmd_cycle(bool d0, bool d1) {
  cell::Characterizer chr;
  chr.timestep = 4e-12;
  const bool ok = chr.proposed_power_cycle_ok(cell::Corner::Typical, d0, d1);
  std::printf("store (%d,%d) -> power off -> wake -> restore: %s\n", d0, d1,
              ok ? "data intact" : "MISMATCH");
  return ok ? 0 : 1;
}

int cmd_export(const std::string& name, const std::string& dir) {
  const auto& spec = bench::find_benchmark(name);
  const auto nl = bench::generate_benchmark(spec);
  // Never export a structurally broken netlist.
  const erc::Report lint = erc::lint_netlist(nl);
  if (!lint.clean()) {
    std::fprintf(stderr, "export: %s fails lint:\n%s", name.c_str(),
                 lint.to_text().c_str());
    return 1;
  }
  physdes::PlacerOptions opt;
  opt.utilization = spec.utilization;
  const auto placement =
      physdes::place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
  bench::save_bench_file(nl, dir + "/" + name + ".bench");
  bench::save_verilog_file(nl, dir + "/" + name + ".v");
  physdes::save_def_file(placement, nl, dir + "/" + name + ".def");
  // The 2-bit NV cell itself, as a SPICE deck.
  auto latch = cell::MultibitNvLatch::build_idle(
      cell::Technology::table1(),
      cell::Technology::table1().read_corner(cell::Corner::Typical));
  cell::save_spice_deck(latch.circuit, dir + "/nv_2bit_latch.sp");
  std::printf("wrote %s/%s.{bench,v,def} and %s/nv_2bit_latch.sp\n", dir.c_str(),
              name.c_str(), dir.c_str());
  return 0;
}

// --- lint ------------------------------------------------------------------

bool is_benchmark_name(const std::string& name) {
  for (const auto& spec : bench::paper_benchmarks()) {
    if (spec.name == name) return true;
  }
  return false;
}

/// ERC over every scenario deck of one latch variant. Returns scenario-name
/// + report pairs so the caller can render text or JSON.
std::vector<std::pair<std::string, erc::Report>> lint_deck(const std::string& deck) {
  const auto& tech = cell::Technology::table1();
  const auto corner = tech.read_corner(cell::Corner::Typical);
  std::vector<std::pair<std::string, erc::Report>> out;
  auto add = [&](const std::string& scenario, const spice::Circuit& c) {
    out.emplace_back(deck + "/" + scenario, erc::check_circuit(c));
  };
  if (deck == "standard") {
    add("read", cell::StandardNvLatch::build_read(tech, corner, true, {}).circuit);
    add("write", cell::StandardNvLatch::build_write(tech, corner, true, {}).circuit);
    add("idle", cell::StandardNvLatch::build_idle(tech, corner).circuit);
    add("power_cycle",
        cell::StandardNvLatch::build_power_cycle(tech, corner, true, {}).circuit);
  } else if (deck == "flipped") {
    add("read", cell::FlippedNvLatch::build_read(tech, corner, true, {}).circuit);
    add("write", cell::FlippedNvLatch::build_write(tech, corner, true, {}).circuit);
    add("idle", cell::FlippedNvLatch::build_idle(tech, corner).circuit);
  } else if (deck == "multibit") {
    add("read",
        cell::MultibitNvLatch::build_read(tech, corner, true, false, {}).circuit);
    add("write",
        cell::MultibitNvLatch::build_write(tech, corner, true, false, {}).circuit);
    add("idle", cell::MultibitNvLatch::build_idle(tech, corner).circuit);
    add("power_cycle",
        cell::MultibitNvLatch::build_power_cycle(tech, corner, true, false, {})
            .circuit);
  } else if (starts_with(deck, "scalable")) {
    int bits = 4;
    if (deck.size() > 8) bits = std::atoi(deck.c_str() + 8);
    if (bits < 2 || bits % 2 != 0) {
      throw std::invalid_argument("scalable deck bits must be even and >= 2");
    }
    std::vector<bool> data(static_cast<std::size_t>(bits), false);
    for (std::size_t i = 0; i < data.size(); i += 2) data[i] = true;
    add("read", cell::ScalableNvLatch::build_read(tech, corner, data, {}).circuit);
    add("write", cell::ScalableNvLatch::build_write(tech, corner, data, {}).circuit);
    add("idle", cell::ScalableNvLatch::build_idle(tech, corner, bits).circuit);
  } else {
    throw std::invalid_argument("unknown deck: " + deck +
                                " (standard|flipped|multibit|scalable<N>)");
  }
  return out;
}

int cmd_lint(const std::vector<std::string>& args) {
  bool json = false;
  bool verbose = false;
  std::vector<std::string> targets;
  erc::NetlistLintOptions lintOpt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") json = true;
    else if (args[i] == "--verbose" || args[i] == "-v") verbose = true;
    else if (args[i] == "--suppress" && i + 1 < args.size()) {
      lintOpt.suppress.push_back(args[++i]);
    } else targets.push_back(args[i]);
  }
  if (targets.empty()) {
    std::fprintf(stderr,
                 "usage: nvfftool lint [--json] [--verbose] [--suppress RULE]... "
                 "<target>...\n"
                 "  target: benchmark name | file.bench | deck:<variant> | all\n");
    return 2;
  }
  if (targets.size() == 1 && targets[0] == "all") {
    targets.clear();
    for (const auto& spec : bench::paper_benchmarks()) targets.push_back(spec.name);
    for (const char* d : {"deck:standard", "deck:flipped", "deck:multibit",
                          "deck:scalable4"}) {
      targets.push_back(d);
    }
  }

  std::vector<std::pair<std::string, erc::Report>> results;
  for (const auto& target : targets) {
    if (starts_with(target, "deck:")) {
      for (auto& r : lint_deck(target.substr(5))) results.push_back(std::move(r));
    } else if (target.size() > 6 &&
               target.compare(target.size() - 6, 6, ".bench") == 0) {
      results.emplace_back(target, erc::lint_bench_file(target, lintOpt));
    } else if (is_benchmark_name(target)) {
      const auto nl = bench::generate_benchmark(bench::find_benchmark(target));
      results.emplace_back(target, erc::lint_netlist(nl, lintOpt));
    } else {
      std::fprintf(stderr, "lint: unknown target '%s'\n", target.c_str());
      return 2;
    }
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  if (json) {
    std::printf("{");
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i != 0) std::printf(",");
      std::printf("\"%s\":%s", results[i].first.c_str(),
                  results[i].second.to_json().c_str());
      errors += results[i].second.count(erc::Severity::Error);
      warnings += results[i].second.count(erc::Severity::Warning);
    }
    std::printf("}\n");
  } else {
    for (const auto& [name, report] : results) {
      errors += report.count(erc::Severity::Error);
      warnings += report.count(erc::Severity::Warning);
      if (report.empty()) {
        std::printf("%-24s clean\n", name.c_str());
      } else if (report.clean() && !verbose) {
        // Info-only findings (e.g. dead logic the benchmark generator leaves
        // by construction) don't gate; show them on request.
        std::printf("%-24s clean (%zu note(s), --verbose to list)\n",
                    name.c_str(), report.count(erc::Severity::Info));
      } else {
        std::printf("== %s ==\n%s", name.c_str(), report.to_text().c_str());
      }
    }
    std::printf("lint: %zu target(s), %zu error(s), %zu warning(s)\n",
                results.size(), errors, warnings);
  }
  return errors > 0 ? 1 : 0;
}

// --- lint-src ---------------------------------------------------------------

int lint_src_usage() {
  std::fprintf(stderr,
               "usage: nvfftool lint-src [--json] [--suppress RULE]... "
               "[--root DIR] [file...]\n"
               "  Determinism linter over the C++ sources themselves. With no\n"
               "  files, recursively lints --root (default: ./src). Nonzero\n"
               "  exit on any finding. Suppress a single line with\n"
               "  '// DETLINT-ALLOW(RULE): reason' on or above it.\n"
               "  rules:\n");
  for (const auto& rule : erc::detlint_rules())
    std::fprintf(stderr, "    %s  %s\n", rule.id, rule.summary);
  return 2;
}

int cmd_lint_src(const std::vector<std::string>& args) {
  bool json = false;
  std::string root = "src";
  std::vector<std::string> files;
  erc::DetLintOptions opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") json = true;
    else if (a == "--help" || a == "-h") return lint_src_usage();
    else if (a == "--suppress" && i + 1 < args.size()) {
      opt.suppress.push_back(args[++i]);
    } else if (a == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "lint-src: unknown option '%s'\n", a.c_str());
      return lint_src_usage();
    } else {
      files.push_back(a);
    }
  }

  erc::Report report;
  if (files.empty()) {
    report = erc::detlint_tree(root, opt);
  } else {
    for (const std::string& f : files) report.merge(erc::detlint_file(f, opt));
  }

  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else if (report.empty()) {
    std::printf("lint-src: clean (%s)\n",
                files.empty() ? root.c_str() : "explicit file list");
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return report.has_errors() ? 1 : 0;
}

// --- shared campaign supervision flags ---------------------------------------

// `mc` and `powerfail` take the exact same supervision flags, parsed by one
// helper so the two contracts cannot drift apart. The exit-code contract for
// supervised runs (0 / 1 / 2 / 3 / 75) is documented in the README and pinned
// by tests/cli/test_nvfftool_cli.sh.
const char* campaign_flags_help() {
  return "  --checkpoint FILE      durable campaign checkpoint (CRC + fsync,\n"
         "                         two generations); an existing one is\n"
         "                         resumed automatically\n"
         "  --checkpoint-every N   checkpoint cadence in trials (default 16;\n"
         "                         --every is an alias)\n"
         "  --resume               fail instead of starting fresh when no\n"
         "                         usable checkpoint exists at --checkpoint\n"
         "  --trial-timeout-s SEC  per-trial watchdog: a stuck trial is\n"
         "                         cancelled and counted as a timeout, the\n"
         "                         campaign continues (default off)\n"
         "  --deadline-s SEC       campaign wall-clock budget: on expiry a\n"
         "                         final checkpoint is written and the run\n"
         "                         exits 75 (resumable; default off)\n"
         "  --failpoints SPEC      arm deterministic fault injection, e.g.\n"
         "                         \"durable.write=after(1):errno(ENOSPC)\"\n"
         "                         ('nvfftool failpoints --list' for sites)\n";
}

/// Consumes one shared supervision flag into `run`. `value` is the calling
/// command's take-the-next-argument lambda; returns false when `a` belongs
/// to the caller.
bool parse_campaign_flag(const std::string& a,
                         const std::function<std::string()>& value,
                         runtime::RunOptions& run) {
  if (a == "--checkpoint") run.checkpointPath = value();
  else if (a == "--checkpoint-every" || a == "--every")
    run.checkpointEvery = std::stoi(value());
  else if (a == "--resume") run.requireResume = true;
  else if (a == "--trial-timeout-s") run.trialTimeoutSeconds = std::stod(value());
  else if (a == "--deadline-s") run.deadlineSeconds = std::stod(value());
  else return false;
  return true;
}

/// Applies a --failpoints spec (or the NVFF_FAILPOINTS override) to the
/// process-wide registry. A malformed spec or unknown site is a usage
/// error: prints the parser's diagnostic plus a pointer at the inventory
/// and returns false (caller exits kExitUsage).
bool apply_failpoints_spec(const char* cmd, const std::string& spec) {
  std::string error;
  if (util::Failpoints::instance().configure(spec, error)) return true;
  std::fprintf(stderr, "%s: --failpoints: %s\n", cmd, error.c_str());
  std::fprintf(stderr,
               "%s: run 'nvfftool failpoints --list' for the registered "
               "sites and the policy/action grammar\n",
               cmd);
  return false;
}

/// Atomically publishes the concrete bound endpoint for script rendezvous.
/// EINTR/partial-write-safe (util::write_file_atomic); a failure is loud —
/// a silently missing or truncated endpoint file strands every worker.
void publish_endpoint_file(const char* cmd, const std::string& path,
                           const dist::Endpoint& bound) {
  if (path.empty()) return;
  std::string error;
  if (!util::write_file_atomic(path, bound.to_string() + "\n", error))
    std::fprintf(stderr, "%s: cannot write --endpoint-file: %s\n", cmd,
                 error.c_str());
}

/// Post-parse coherence check for the shared flags; prints the diagnostic
/// and returns false on a usage error (caller exits kExitUsage).
bool check_campaign_flags(const char* cmd, const runtime::RunOptions& run) {
  if (run.requireResume && run.checkpointPath.empty()) {
    std::fprintf(stderr, "%s: --resume needs --checkpoint FILE\n", cmd);
    return false;
  }
  if (run.checkpointEvery <= 0) {
    std::fprintf(stderr, "%s: --checkpoint-every needs N > 0\n", cmd);
    return false;
  }
  return true;
}

/// Shared stderr accounting after a supervised campaign. Returns kExitOk when
/// the campaign completed and the caller should print its report and apply
/// its gates; otherwise returns the documented exit code for the interruption
/// (75 with a resumable checkpoint on disk, 1 without).
int finish_supervised(const char* cmd, const runtime::SupervisorOutcome& sup) {
  if (sup.trialsResumed > 0)
    std::fprintf(stderr, "%s: resumed %d finished trial(s) from checkpoint\n",
                 cmd, sup.trialsResumed);
  for (const std::string& path : sup.quarantined)
    std::fprintf(stderr, "%s: quarantined corrupt checkpoint -> %s\n", cmd,
                 path.c_str());
  if (sup.timeouts > 0)
    std::fprintf(stderr, "%s: %ld trial(s) hit --trial-timeout-s\n", cmd,
                 sup.timeouts);
  if (!sup.commitError.empty()) {
    // Disk full / quota / I/O on the FINAL commit: the previous checkpoint
    // generation is intact (durable_file contract), so this is resumable —
    // and no report is printed, because durability was promised and not
    // delivered.
    std::fprintf(stderr, "%s: final checkpoint commit failed: %s\n", cmd,
                 sup.commitError.c_str());
    std::fprintf(stderr,
                 "%s: previous checkpoint generation intact; free space and "
                 "re-run the same command to resume\n",
                 cmd);
    return sup.exit_code();
  }
  if (sup.completed()) return runtime::kExitOk;
  // Interrupted runs print no report: a partial campaign's statistics are
  // not comparable to a complete one, and stdout consumers must not mistake
  // them for the real thing.
  std::fprintf(
      stderr, "%s: %s after %d/%d trials%s\n", cmd,
      runtime::stop_cause_name(sup.cause), sup.trialsDone, sup.trialsTotal,
      sup.checkpointWritten
          ? "; checkpoint written, re-run the same command to resume"
          : "; NO checkpoint (pass --checkpoint to make runs resumable)");
  return sup.exit_code();
}

// --- shared engine configuration flags ---------------------------------------

// The campaign-defining flags of `mc` and `powerfail` are parsed by one
// helper per engine, shared with `serve` (which hosts either engine behind
// the distributed coordinator), so the three front-ends cannot drift apart.

/// Consumes one Monte-Carlo config flag into `cfg`; false when `a` belongs
/// to the caller.
bool parse_mc_config_flag(const std::string& a,
                          const std::function<std::string()>& value,
                          reliability::CampaignConfig& cfg) {
  if (a == "--trials") cfg.trials = std::stoi(value());
  else if (a == "--seed") cfg.seed = std::stoull(value());
  else if (a == "--sigma") cfg.sigmaScale = std::stod(value());
  else if (a == "--mismatch-mv") cfg.sigmaVthMismatch = std::stod(value()) * 1e-3;
  else if (a == "--jitter-mv") cfg.cornerJitterVth = std::stod(value()) * 1e-3;
  else if (a == "--defect-rate") cfg.defectRate = std::stod(value());
  else if (a == "--margin") cfg.marginThreshold = std::stod(value());
  else if (a == "--dt") cfg.timestep = std::stod(value());
  else if (a == "--retries") cfg.recovery.retryBudget = std::stoi(value());
  else if (a == "--deadline") cfg.recovery.deadlineSeconds = std::stod(value());
  else return false;
  return true;
}

/// Consumes one powerfail config flag into `cfg`; false when `a` belongs to
/// the caller. Throws std::invalid_argument on a malformed value.
bool parse_powerfail_config_flag(const std::string& a,
                                 const std::function<std::string()>& value,
                                 faults::CampaignConfig& cfg) {
  if (a == "--bench") cfg.benchmark = value();
  else if (a == "--trials") cfg.trials = std::stoi(value());
  else if (a == "--seed") cfg.seed = std::stoull(value());
  else if (a == "--no-unprotected") cfg.runUnprotected = false;
  else if (a == "--no-protected") cfg.runProtected = false;
  else if (a == "--event-prob") cfg.eventProb = std::stod(value());
  else if (a == "--restore-prob") cfg.restorePhaseProb = std::stod(value());
  else if (a == "--weights") {
    const std::vector<std::string> toks = split(value(), ",");
    if (toks.size() != 3)
      throw std::invalid_argument("powerfail: --weights needs A,B,C");
    cfg.weightPowerLoss = std::stod(toks[0]);
    cfg.weightBrownOut = std::stod(toks[1]);
    cfg.weightGlitch = std::stod(toks[2]);
  }
  else if (a == "--brownout-ns") cfg.brownoutNs = std::stod(value());
  else if (a == "--write-fail") cfg.protocol.writeFailProb = std::stod(value());
  else if (a == "--retries") cfg.protocol.maxRetries = std::stoi(value());
  else if (a == "--domain-size") cfg.clock.sinksPerLeafBuffer = std::stoi(value());
  else return false;
  return true;
}

// --- mc --------------------------------------------------------------------

int mc_usage() {
  std::fprintf(stderr,
               "usage: nvfftool mc [options]\n"
               "  --trials N             trials to run (default 256)\n"
               "  --seed S               campaign seed (default 1)\n"
               "  --threads T            worker threads (default 1; output is\n"
               "                         identical for any T)\n"
               "  --sigma X              MTJ process-spread multiplier (default 1.0)\n"
               "  --mismatch-mv X        local Vth mismatch sigma in mV (default 15)\n"
               "  --jitter-mv X          per-trial corner jitter sigma in mV (default 20)\n"
               "  --defect-rate P        per-trial MTJ defect probability (default 0)\n"
               "  --margin X             metastability floor, fraction of VDD (default 0.4)\n"
               "  --dt SEC               transient step (default 4e-12)\n"
               "  --retries N            solver recovery retry budget (default 64)\n"
               "  --deadline SEC         per-SOLVE wall-clock deadline inside one\n"
               "                         trial (default off; distinct from the\n"
               "                         campaign-level --deadline-s below)\n"
               "%s"
               "  --sweep A,B,...        yield-vs-sigma sweep over these scales\n"
               "                         (runs the full campaign per scale)\n"
               "  --fail-on-unclassified exit nonzero if any trial is unclassified\n",
               campaign_flags_help());
  return runtime::kExitUsage;
}

int cmd_mc(const std::vector<std::string>& args) {
  reliability::CampaignConfig cfg;
  runtime::RunOptions run;
  bool failOnUnclassified = false;
  std::vector<double> sweep;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size())
        throw std::invalid_argument("mc: " + a + " needs a value");
      return args[++i];
    };
    if (parse_campaign_flag(a, value, run)) continue;
    if (parse_mc_config_flag(a, value, cfg)) continue;
    if (a == "--failpoints") {
      if (!apply_failpoints_spec("mc", value())) return runtime::kExitUsage;
    }
    else if (a == "--threads") cfg.threads = std::stoi(value());
    else if (a == "--fail-on-unclassified") failOnUnclassified = true;
    else if (a == "--sweep") {
      for (const std::string& tok : split(value(), ","))
        sweep.push_back(std::stod(tok));
    } else {
      std::fprintf(stderr, "mc: unknown option '%s'\n", a.c_str());
      return mc_usage();
    }
  }

  if (!check_campaign_flags("mc", run)) return runtime::kExitUsage;

  if (!sweep.empty()) {
    // A sweep reruns the campaign per scale; checkpointing one file would
    // mix incompatible configurations, so it is not supported here.
    if (!run.checkpointPath.empty()) {
      std::fprintf(stderr, "mc: --sweep and --checkpoint are exclusive\n");
      return runtime::kExitUsage;
    }
    const auto rows = reliability::sigma_sweep(cfg, sweep);
    std::printf("%s", reliability::render_sigma_sweep(rows).c_str());
    return 0;
  }

  // Progress goes to stderr: stdout must be bit-identical for any thread
  // count, which rules out completion-order output.
  const auto progress = [](int done, int total) {
    if (done % 16 == 0 || done == total)
      std::fprintf(stderr, "mc: %d/%d trials\n", done, total);
  };
  run.installSignalHandlers = true;
  runtime::tolerate_eintr_signals();
  const reliability::CampaignRun campaign =
      reliability::run_campaign_supervised(cfg, run, progress);
  if (const int rc = finish_supervised("mc", campaign.supervisor);
      rc != runtime::kExitOk)
    return rc;
  const reliability::CampaignResult& result = campaign.result;
  std::printf("%s", reliability::render_report(result).c_str());

  long unclassified = 0;
  for (const auto& t : result.trials) {
    unclassified +=
        (t.standard.outcome == reliability::TrialOutcome::Unclassified) +
        (t.proposed.outcome == reliability::TrialOutcome::Unclassified);
  }
  if (unclassified > 0) {
    std::fprintf(stderr, "mc: %ld unclassified design-trial(s) — this is a bug "
                         "in the harness, see 'note' fields in the checkpoint\n",
                 unclassified);
    if (failOnUnclassified) return runtime::kExitGateFailed;
  }
  return 0;
}

// --- powerfail -------------------------------------------------------------

int powerfail_usage() {
  std::fprintf(
      stderr,
      "usage: nvfftool powerfail [options]\n"
      "  --bench NAME        benchmark to attack (default s1423)\n"
      "  --trials N          trials to run (default 256)\n"
      "  --seed S            campaign seed (default 1)\n"
      "  --threads T         worker threads (default 1; output is identical\n"
      "                      for any T)\n"
      "  --no-unprotected    skip the bare fire-and-forget protocol arm\n"
      "  --no-protected      skip the verify-after-write + canary arm\n"
      "  --event-prob P      probability a trial carries a fault (default 1.0)\n"
      "  --restore-prob P    fault lands in the restore phase (default 0.25)\n"
      "  --weights A,B,C     power-loss/brown-out/glitch sampling weights\n"
      "                      (default 1,1,1)\n"
      "  --brownout-ns X     supply-sag duration (default 40)\n"
      "  --write-fail P      stochastic per-attempt MTJ write failure (default 0)\n"
      "  --retries N         verify/re-sense retry budget per bit (default 5)\n"
      "  --domain-size N     flip-flops per backup control domain, i.e. clock\n"
      "                      sinks per leaf buffer (default 16)\n"
      "%s"
      "  --fail-on-sdc       exit nonzero on silent data corruption in the\n"
      "                      protected arms (all arms when --no-protected)\n",
      campaign_flags_help());
  return runtime::kExitUsage;
}

int cmd_powerfail(const std::vector<std::string>& args) {
  faults::CampaignConfig cfg;
  runtime::RunOptions run;
  bool failOnSdc = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size())
        throw std::invalid_argument("powerfail: " + a + " needs a value");
      return args[++i];
    };
    if (parse_campaign_flag(a, value, run)) continue;
    if (parse_powerfail_config_flag(a, value, cfg)) continue;
    if (a == "--failpoints") {
      if (!apply_failpoints_spec("powerfail", value()))
        return runtime::kExitUsage;
    }
    else if (a == "--threads") cfg.threads = std::stoi(value());
    else if (a == "--fail-on-sdc") failOnSdc = true;
    else {
      std::fprintf(stderr, "powerfail: unknown option '%s'\n", a.c_str());
      return powerfail_usage();
    }
  }

  if (!check_campaign_flags("powerfail", run)) return runtime::kExitUsage;

  // Progress to stderr; stdout stays bit-identical for any thread count.
  const auto progress = [](int done, int total) {
    if (done % 16 == 0 || done == total)
      std::fprintf(stderr, "powerfail: %d/%d trials\n", done, total);
  };
  run.installSignalHandlers = true;
  runtime::tolerate_eintr_signals();
  const faults::CampaignRun campaign =
      faults::run_campaign_supervised(cfg, run, progress);
  if (const int rc = finish_supervised("powerfail", campaign.supervisor);
      rc != runtime::kExitOk)
    return rc;
  const faults::CampaignResult& result = campaign.result;
  std::printf("%s", faults::render_report(result).c_str());

  if (failOnSdc) {
    // With the protected arms running, the gate is the protocol guarantee:
    // silent corruption must be impossible there. Without them, any silent
    // corruption fails the run.
    const long sdc = result.count_sdc(/*protectedOnly=*/cfg.runProtected);
    if (sdc > 0) {
      std::fprintf(stderr, "powerfail: %ld silent corruption(s) in %s arms\n",
                   sdc, cfg.runProtected ? "protected" : "unprotected");
      return runtime::kExitGateFailed;
    }
  }
  return 0;
}

// --- serve / worker (distributed campaign service) ---------------------------

int serve_usage() {
  std::fprintf(
      stderr,
      "usage: nvfftool serve --engine mc|powerfail [engine options] [options]\n"
      "  Coordinator of the distributed campaign service: shards the trial\n"
      "  range across `nvfftool worker` processes, merges their results into\n"
      "  one durable checkpoint, and prints the same report a single-process\n"
      "  run would (bit-identical by construction).\n"
      "  --engine NAME          campaign engine: mc | powerfail (required)\n"
      "  [engine options]       the campaign-defining flags of `nvfftool mc`\n"
      "                         or `nvfftool powerfail` (--trials, --seed, ...)\n"
      "  --endpoint EP          listener workers dial: unix:PATH or\n"
      "                         tcp:HOST:PORT (port 0 = ephemeral; the bound\n"
      "                         endpoint is printed to stderr)\n"
      "  --socket PATH          deprecated alias for --endpoint unix:PATH\n"
      "  --endpoint-file FILE   write the concrete bound endpoint to FILE once\n"
      "                         listening (scripts poll it to find an\n"
      "                         ephemeral port)\n"
      "  --send-timeout-ms MS   per-message send deadline toward a worker; a\n"
      "                         connection that times out is quarantined and\n"
      "                         its shards re-dispatched (default 5000)\n"
      "  --shard-size N         trials per shard (default 8)\n"
      "  --local-threads N      also run shards in-process (default 0;\n"
      "                         with no workers this is the coordinator-only\n"
      "                         fallback)\n"
      "  --checkpoint FILE      merged durable campaign state; interchangeable\n"
      "                         with a single-process --checkpoint file\n"
      "  --checkpoint-every N   commit cadence in merged shards (default 1)\n"
      "  --resume               fail instead of starting fresh when no usable\n"
      "                         checkpoint exists at --checkpoint\n"
      "  --stall-timeout-s SEC  re-dispatch a shard whose worker heartbeat\n"
      "                         progress froze this long (default 10)\n"
      "  --deadline-s SEC       campaign wall-clock budget; on expiry a final\n"
      "                         checkpoint is written and serve exits 75\n"
      "  --failpoints SPEC      arm deterministic fault injection\n"
      "                         ('nvfftool failpoints --list' for sites)\n"
      "  exit codes: 0 complete, 1 fatal, 2 usage, 75 interrupted (resumable)\n");
  return runtime::kExitUsage;
}

int cmd_serve(const std::vector<std::string>& args) {
  std::string engineName;
  std::string endpointFile;
  reliability::CampaignConfig mcCfg;
  faults::CampaignConfig pfCfg;
  dist::ServeOptions opt;
  std::vector<std::string> engineArgs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size())
        throw std::invalid_argument("serve: " + a + " needs a value");
      return args[++i];
    };
    if (a == "--engine") engineName = value();
    else if (a == "--endpoint") opt.endpoint = value();
    else if (a == "--socket") opt.endpoint = "unix:" + value(); // deprecated
    else if (a == "--endpoint-file") endpointFile = value();
    else if (a == "--send-timeout-ms") opt.sendTimeoutMs = std::stoi(value());
    else if (a == "--shard-size") opt.shardSize = std::stoi(value());
    else if (a == "--local-threads") opt.localThreads = std::stoi(value());
    else if (a == "--checkpoint") opt.checkpointPath = value();
    else if (a == "--checkpoint-every") opt.checkpointEvery = std::stoi(value());
    else if (a == "--resume") opt.requireResume = true;
    else if (a == "--stall-timeout-s") opt.stallTimeoutSeconds = std::stod(value());
    else if (a == "--deadline-s") opt.deadlineSeconds = std::stod(value());
    else if (a == "--failpoints") {
      if (!apply_failpoints_spec("serve", value())) return runtime::kExitUsage;
    }
    else {
      // Defer engine flags until --engine is known (flag order is free).
      engineArgs.push_back(a);
      if (i + 1 < args.size() && (args[i + 1].empty() || args[i + 1][0] != '-'))
        engineArgs.push_back(args[++i]);
    }
  }
  if (engineName != "mc" && engineName != "powerfail") {
    std::fprintf(stderr, "serve: --engine must be mc or powerfail\n");
    return serve_usage();
  }
  if (opt.requireResume && opt.checkpointPath.empty()) {
    std::fprintf(stderr, "serve: --resume needs --checkpoint FILE\n");
    return runtime::kExitUsage;
  }
  if (!opt.endpoint.empty()) {
    // Validate here so a typo'd endpoint is a usage error (exit 2), not a
    // runtime failure.
    dist::Endpoint ep;
    std::string error;
    if (!dist::parse_endpoint(opt.endpoint, ep, error)) {
      std::fprintf(stderr, "serve: %s\n", error.c_str());
      return runtime::kExitUsage;
    }
  }
  for (std::size_t i = 0; i < engineArgs.size(); ++i) {
    const std::string& a = engineArgs[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= engineArgs.size())
        throw std::invalid_argument("serve: " + a + " needs a value");
      return engineArgs[++i];
    };
    const bool known = engineName == "mc"
                           ? parse_mc_config_flag(a, value, mcCfg)
                           : parse_powerfail_config_flag(a, value, pfCfg);
    if (!known) {
      std::fprintf(stderr, "serve: unknown option '%s'\n", a.c_str());
      return serve_usage();
    }
  }

  std::unique_ptr<dist::CampaignEngine> engine =
      engineName == "mc" ? dist::make_mc_engine(mcCfg)
                         : dist::make_powerfail_engine(pfCfg);
  opt.installSignalHandlers = true;
  runtime::tolerate_eintr_signals();
  // Announce the concrete endpoint (ephemeral tcp ports resolved) the moment
  // the listener is up — scripts either scrape stderr or poll the file.
  opt.onListening = [&endpointFile](const dist::Endpoint& bound) {
    std::fprintf(stderr, "serve: listening on %s\n", bound.to_string().c_str());
    publish_endpoint_file("serve", endpointFile, bound);
  };
  const dist::ServeOutcome out = dist::serve_campaign(*engine, opt);

  if (out.trialsResumed > 0)
    std::fprintf(stderr, "serve: resumed %d finished trial(s) from checkpoint\n",
                 out.trialsResumed);
  for (const std::string& path : out.quarantined)
    std::fprintf(stderr, "serve: quarantined corrupt checkpoint -> %s\n",
                 path.c_str());
  std::fprintf(stderr,
               "serve: %d/%d shards merged, %d worker(s) seen, %d dropped, "
               "%ld re-dispatch(es), %ld rejected frame(s), "
               "%ld send timeout(s), %d quarantined\n",
               out.shardsMerged, out.shardsTotal, out.workersSeen,
               out.workersDropped, out.redispatches, out.framesRejected,
               out.sendTimeouts, out.workersQuarantined);
  if (!out.commitError.empty()) {
    std::fprintf(stderr, "serve: final checkpoint commit failed: %s\n",
                 out.commitError.c_str());
    std::fprintf(stderr,
                 "serve: previous checkpoint generation intact; free space "
                 "and re-run the same command to resume\n");
    return out.exit_code();
  }
  if (!out.completed()) {
    // Same contract as mc/powerfail: an interrupted campaign prints no
    // report — partial statistics must not look complete.
    std::fprintf(
        stderr, "serve: %s after %d/%d trials%s\n",
        runtime::stop_cause_name(out.cause), out.trialsDone, out.trialsTotal,
        out.checkpointWritten
            ? "; checkpoint written, re-run the same command to resume"
            : "; NO checkpoint (pass --checkpoint to make runs resumable)");
    return out.exit_code();
  }
  std::printf("%s", out.report.c_str());
  return runtime::kExitOk;
}

int worker_usage() {
  std::fprintf(
      stderr,
      "usage: nvfftool worker --endpoint EP [options]\n"
      "  Worker of the distributed campaign service. Dials the coordinator,\n"
      "  verifies protocol version and config fingerprint, then computes\n"
      "  shards until told to shut down. Safe to kill at any instant.\n"
      "  --endpoint EP             coordinator endpoint: unix:PATH or\n"
      "                            tcp:HOST:PORT (required)\n"
      "  --socket PATH             deprecated alias for --endpoint unix:PATH\n"
      "  --threads T               pool width within a shard (default 1)\n"
      "  --connect-timeout-ms MS   per-attempt tcp connect deadline\n"
      "                            (default 2000)\n"
      "  --heartbeat-s SEC         progress report interval (default 0.25)\n"
      "  --reconnect-budget-s SEC  give up when the coordinator has been\n"
      "                            unreachable this long (default 30)\n"
      "  --chaos-corrupt-every N   test hook: corrupt every Nth outgoing\n"
      "                            frame's CRC (default 0 = off)\n"
      "  --failpoints SPEC         arm deterministic fault injection\n"
      "                            ('nvfftool failpoints --list' for sites)\n"
      "  exit codes: 0 clean shutdown, 1 gave up, 2 usage\n");
  return runtime::kExitUsage;
}

int cmd_worker(const std::vector<std::string>& args) {
  dist::WorkerOptions opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size())
        throw std::invalid_argument("worker: " + a + " needs a value");
      return args[++i];
    };
    if (a == "--endpoint") opt.endpoint = value();
    else if (a == "--socket") opt.endpoint = "unix:" + value(); // deprecated
    else if (a == "--connect-timeout-ms")
      opt.connectTimeoutMs = std::stoi(value());
    else if (a == "--threads") opt.threads = std::stoi(value());
    else if (a == "--heartbeat-s") opt.heartbeatIntervalSeconds = std::stod(value());
    else if (a == "--reconnect-budget-s")
      opt.reconnectBudgetSeconds = std::stod(value());
    else if (a == "--chaos-corrupt-every") opt.chaosCorruptEvery = std::stoi(value());
    else if (a == "--failpoints") {
      if (!apply_failpoints_spec("worker", value())) return runtime::kExitUsage;
    }
    else {
      std::fprintf(stderr, "worker: unknown option '%s'\n", a.c_str());
      return worker_usage();
    }
  }
  if (opt.endpoint.empty()) {
    std::fprintf(stderr, "worker: --endpoint is required\n");
    return runtime::kExitUsage;
  }
  {
    // Validate here so a typo'd endpoint is a usage error (exit 2), not a
    // runtime failure.
    dist::Endpoint ep;
    std::string error;
    if (!dist::parse_endpoint(opt.endpoint, ep, error)) {
      std::fprintf(stderr, "worker: %s\n", error.c_str());
      return runtime::kExitUsage;
    }
  }
  runtime::tolerate_eintr_signals();
  const dist::WorkerOutcome out = dist::run_worker(opt);
  std::fprintf(stderr, "worker: %d shard(s) completed, %ld reconnect(s)%s\n",
               out.shardsCompleted, out.reconnects,
               out.shutdownReceived ? ", clean shutdown" : "");
  return out.exit_code();
}

// --- netchaos (deterministic network-chaos proxy) -----------------------------

std::atomic<bool> g_netchaosStop{false};

int netchaos_usage() {
  std::fprintf(
      stderr,
      "usage: nvfftool netchaos --listen EP --upstream EP --seed N [options]\n"
      "  Deterministic network-chaos proxy between workers and a coordinator.\n"
      "  Each accepted connection draws one fault profile — latency, throttle,\n"
      "  1-byte dribble, mid-frame reset, black hole, bit corruption, or\n"
      "  clean — from Rng::stream(seed, connection#): the same seed replays\n"
      "  the same network weather. The merged campaign report must come out\n"
      "  byte-identical regardless (see tests/chaos/chaos_dist_net.sh).\n"
      "  --listen EP            endpoint workers dial: unix:PATH or\n"
      "                         tcp:HOST:PORT (port 0 = ephemeral)\n"
      "  --upstream EP          the real coordinator's endpoint\n"
      "  --seed N               fault-schedule key (default 1)\n"
      "  --endpoint-file FILE   write the concrete bound endpoint to FILE\n"
      "  --run-seconds SEC      exit after SEC (default 0 = until SIGINT)\n"
      "  --clean-share P        fraction of unharmed connections (default 0.25)\n"
      "  --only CLASS[,...]     restrict the lottery to these classes:\n"
      "                         latency,throttle,dribble,reset,blackhole,corrupt\n"
      "  exit codes: 0 clean exit, 1 fatal, 2 usage\n");
  return runtime::kExitUsage;
}

int cmd_netchaos(const std::vector<std::string>& args) {
  dist::NetChaosOptions opt;
  std::string endpointFile;
  std::string only;
  double runSeconds = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size())
        throw std::invalid_argument("netchaos: " + a + " needs a value");
      return args[++i];
    };
    if (a == "--listen") opt.listenEndpoint = value();
    else if (a == "--upstream") opt.upstreamEndpoint = value();
    else if (a == "--seed") opt.seed = std::stoull(value());
    else if (a == "--endpoint-file") endpointFile = value();
    else if (a == "--run-seconds") runSeconds = std::stod(value());
    else if (a == "--clean-share") opt.cleanShare = std::stod(value());
    else if (a == "--only") only = value();
    else if (a == "--failpoints") {
      if (!apply_failpoints_spec("netchaos", value()))
        return runtime::kExitUsage;
    }
    else {
      std::fprintf(stderr, "netchaos: unknown option '%s'\n", a.c_str());
      return netchaos_usage();
    }
  }
  if (opt.listenEndpoint.empty() || opt.upstreamEndpoint.empty()) {
    std::fprintf(stderr, "netchaos: --listen and --upstream are required\n");
    return netchaos_usage();
  }
  if (!only.empty()) {
    opt.enableLatency = opt.enableThrottle = opt.enableDribble =
        opt.enableReset = opt.enableBlackhole = opt.enableCorrupt = false;
    for (const std::string& c : split(only, ",")) {
      if (c == "latency") opt.enableLatency = true;
      else if (c == "throttle") opt.enableThrottle = true;
      else if (c == "dribble") opt.enableDribble = true;
      else if (c == "reset") opt.enableReset = true;
      else if (c == "blackhole") opt.enableBlackhole = true;
      else if (c == "corrupt") opt.enableCorrupt = true;
      else {
        std::fprintf(stderr, "netchaos: unknown class '%s'\n", c.c_str());
        return netchaos_usage();
      }
    }
  }
  opt.runSeconds = runSeconds;
  opt.stop = &g_netchaosStop;
  std::signal(SIGINT, [](int) { g_netchaosStop.store(true); });
  std::signal(SIGTERM, [](int) { g_netchaosStop.store(true); });
  runtime::tolerate_eintr_signals();
  opt.onListening = [&endpointFile](const dist::Endpoint& bound) {
    std::fprintf(stderr, "netchaos: listening on %s\n",
                 bound.to_string().c_str());
    publish_endpoint_file("netchaos", endpointFile, bound);
  };
  const dist::NetChaosOutcome out = dist::run_netchaos(opt);
  std::fprintf(stderr,
               "netchaos: %ld connection(s), %ld byte(s) forwarded, "
               "%ld corruption(s), %ld reset(s), %ld blackhole(s)\n",
               out.connections, out.bytesForwarded, out.corruptions,
               out.resets, out.blackholes);
  return runtime::kExitOk;
}

// --- failpoints (deterministic fault-injection registry) ---------------------

int failpoints_usage() {
  std::fprintf(
      stderr,
      "usage: nvfftool failpoints --list\n"
      "  Prints the registered failpoint sites and their current arms.\n"
      "  Arm sites on any campaign subcommand with\n"
      "    --failpoints \"site=policy[:action],...\"\n"
      "  or the NVFF_FAILPOINTS environment override.\n"
      "  policies: off | every(N) | after(N) | times(N) | prob(P)\n"
      "  actions:  errno(NAME|N) | short-write | delay(MS) | eintr | abort\n"
      "            (default action: errno(EIO))\n"
      "  seed=N pins the prob() draw stream; same seed + same spec replays\n"
      "  the same trigger sequence at any thread count.\n");
  return runtime::kExitUsage;
}

int cmd_failpoints(const std::vector<std::string>& args) {
  if (args.size() == 1 && args[0] == "--list") {
    std::fputs(util::Failpoints::instance().describe().c_str(), stdout);
    return runtime::kExitOk;
  }
  return failpoints_usage();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: nvfftool <command>\n"
      "  list                     benchmarks\n"
      "  flow <benchmark>         run the NV replacement flow\n"
      "  characterize [corner]    circuit metrics (worst|typical|best)\n"
      "  table2 | table3          regenerate the paper tables\n"
      "  cycle <d0> <d1>          simulate a full normally-off cycle\n"
      "  export <benchmark> <dir> write .bench/.v/.def/.sp artifacts\n"
      "  lint [--json] <target>   static ERC/lint (benchmark, .bench file,\n"
      "                           deck:<standard|flipped|multibit|scalableN>, all)\n"
      "  lint-src [--json] [...]  determinism linter over the C++ sources\n"
      "                           ('nvfftool lint-src --help' for rules)\n"
      "  mc [options]             Monte-Carlo reliability campaign over both\n"
      "                           latch designs ('nvfftool mc --help' for options)\n"
      "  powerfail [options]      power-interruption fault-injection campaign\n"
      "                           ('nvfftool powerfail --help' for options)\n"
      "  serve [options]          distributed campaign coordinator\n"
      "                           ('nvfftool serve --help' for options)\n"
      "  worker --endpoint EP     distributed campaign worker\n"
      "                           ('nvfftool worker --help' for options)\n"
      "  netchaos [options]       deterministic network-chaos proxy\n"
      "                           ('nvfftool netchaos --help' for options)\n"
      "  failpoints --list        registered fault-injection sites and the\n"
      "                           --failpoints / NVFF_FAILPOINTS grammar\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Environment override first, so a CLI --failpoints can still re-arm or
  // disable individual sites on top of it (later entries win per site).
  if (const char* env = std::getenv("NVFF_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    if (!apply_failpoints_spec("nvfftool", env)) return runtime::kExitUsage;
  }
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "flow" && argc >= 3) return cmd_flow(argv[2]);
    if (cmd == "characterize") return cmd_characterize(argc >= 3 ? argv[2] : "");
    if (cmd == "table2") return cmd_table2();
    if (cmd == "table3") return cmd_table3();
    if (cmd == "cycle" && argc >= 4) {
      return cmd_cycle(std::strcmp(argv[2], "0") != 0,
                       std::strcmp(argv[3], "0") != 0);
    }
    if (cmd == "export" && argc >= 4) return cmd_export(argv[2], argv[3]);
    if (cmd == "lint") {
      return cmd_lint(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (cmd == "lint-src") {
      return cmd_lint_src(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (cmd == "mc") {
      const std::vector<std::string> mcArgs(argv + 2, argv + argc);
      for (const std::string& a : mcArgs)
        if (a == "--help" || a == "-h") return mc_usage();
      return cmd_mc(mcArgs);
    }
    if (cmd == "powerfail") {
      const std::vector<std::string> pfArgs(argv + 2, argv + argc);
      for (const std::string& a : pfArgs)
        if (a == "--help" || a == "-h") return powerfail_usage();
      return cmd_powerfail(pfArgs);
    }
    if (cmd == "serve") {
      const std::vector<std::string> serveArgs(argv + 2, argv + argc);
      for (const std::string& a : serveArgs)
        if (a == "--help" || a == "-h") return serve_usage();
      return cmd_serve(serveArgs);
    }
    if (cmd == "worker") {
      const std::vector<std::string> workerArgs(argv + 2, argv + argc);
      for (const std::string& a : workerArgs)
        if (a == "--help" || a == "-h") return worker_usage();
      return cmd_worker(workerArgs);
    }
    if (cmd == "netchaos") {
      const std::vector<std::string> chaosArgs(argv + 2, argv + argc);
      for (const std::string& a : chaosArgs)
        if (a == "--help" || a == "-h") return netchaos_usage();
      return cmd_netchaos(chaosArgs);
    }
    if (cmd == "failpoints") {
      const std::vector<std::string> fpArgs(argv + 2, argv + argc);
      for (const std::string& a : fpArgs)
        if (a == "--help" || a == "-h") return failpoints_usage();
      return cmd_failpoints(fpArgs);
    }
    if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage();
    // An unrecognized command (or a recognized one missing its required
    // arguments) must not look like success to a calling script.
    std::fprintf(stderr, "nvfftool: unknown or incomplete command '%s'\n",
                 cmd.c_str());
  } catch (const runtime::ConfigMismatch& e) {
    // --resume against a checkpoint from a different experiment: show the
    // operator exactly WHICH fields disagree, then exit with the usage code
    // (the command line, not the program, is what's wrong).
    std::fprintf(stderr, "error: %s\n", e.what());
    const std::string diff =
        runtime::render_config_diff(e.stored_json(), e.requested_json());
    if (!diff.empty())
      std::fprintf(stderr, "config mismatch, stored checkpoint vs this run:\n%s",
                   diff.c_str());
    return runtime::kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
