// Quickstart: the proposed 2-bit non-volatile latch in one page.
//
//   $ ./examples/quickstart
//
// Builds the transistor-level 2-bit shadow latch, runs a complete
// normally-off cycle (store two bits, collapse the supply, wake, restore)
// through the analog engine, and prints the key design parameters.
#include <cstdio>

#include "cell/characterize.hpp"
#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main() {
  using namespace nvff;
  using namespace nvff::units;
  using namespace nvff::cell;

  const Technology tech = Technology::table1();
  const TechCorner corner = tech.read_corner(Corner::Typical);

  // --- 1. a complete normally-off cycle ------------------------------------
  const bool d0 = true;
  const bool d1 = false;
  std::printf("storing (D0, D1) = (%d, %d) into the 2-bit NV shadow latch...\n", d0,
              d1);

  PowerCycleTiming timing{};
  auto inst = MultibitNvLatch::build_power_cycle(tech, corner, d0, d1, timing);

  spice::Trace trace;
  trace.watch_node(inst.circuit, "vdd");
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 4 * ps;
  sim.transient(opt, trace.observer());

  std::printf("\n%s\n",
              trace.ascii_waves({"vdd", "out", "outb"}, 100, tech.vdd).c_str());

  const bool got0 = trace.value_at("out", inst.tCapture0) > tech.vdd / 2;
  const bool got1 = trace.value_at("out", inst.tCapture1) > tech.vdd / 2;
  std::printf("power was fully removed for %s; restored (D0, D1) = (%d, %d)  %s\n",
              eng(timing.offDuration, "s", 0).c_str(), got0, got1,
              (got0 == d0 && got1 == d1) ? "[OK]" : "[MISMATCH]");

  // --- 2. headline numbers ---------------------------------------------------
  Characterizer chr(tech);
  chr.timestep = 4e-12;
  const LatchMetrics prop = chr.proposed_2bit(Corner::Typical);
  const LatchMetrics stdPair = chr.standard_pair(Corner::Typical);
  std::printf("\nproposed 2-bit latch vs two standard 1-bit latches (typical):\n");
  std::printf("  restore energy : %s vs %s  (%.1f%% better)\n",
              eng(prop.readEnergy, "J").c_str(), eng(stdPair.readEnergy, "J").c_str(),
              improvement_percent(stdPair.readEnergy, prop.readEnergy));
  std::printf("  restore delay  : %s vs %s  (sequential 2-bit read)\n",
              eng(prop.readDelay, "s", 0).c_str(),
              eng(stdPair.readDelay, "s", 0).c_str());
  std::printf("  cell area      : %.3f vs %.3f um^2  (%.1f%% better)\n", prop.areaUm2,
              stdPair.areaUm2, improvement_percent(stdPair.areaUm2, prop.areaUm2));
  std::printf("  transistors    : %d vs %d (read path)\n", prop.readTransistors,
              stdPair.readTransistors);
  std::printf("  leakage        : %s vs %s\n", eng(prop.leakage, "W", 0).c_str(),
              eng(stdPair.leakage, "W", 0).c_str());
  return 0;
}
