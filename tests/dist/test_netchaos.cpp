// Unit tests for the deterministic network-chaos proxy. The full
// campaign-through-chaos drill is tests/chaos/chaos_dist_net.sh; these pin
// the proxy's contract in isolation: clean relay is faithful, fault
// schedules are a pure function of the seed, a black hole forwards nothing,
// and the stop flag actually stops it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "dist/channel.hpp"
#include "dist/endpoint.hpp"
#include "dist/netchaos.hpp"

namespace nvff::dist {
namespace {

/// Upstream stand-in: accepts connections and records every received byte.
class SinkServer {
public:
  SinkServer() {
    std::string error;
    int port = 0;
    listener_ = Socket::listen_tcp("127.0.0.1", 0, error, port);
    EXPECT_TRUE(listener_.valid()) << error;
    endpoint_ = "tcp:127.0.0.1:" + std::to_string(port);
    thread_ = std::thread([this] { serve(); });
  }

  ~SinkServer() {
    stop_.store(true);
    thread_.join();
  }

  const std::string& endpoint() const { return endpoint_; }

  std::string received() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }

  /// Blocks until at least `n` bytes arrived or `budgetMs` passed.
  bool wait_for_bytes(std::size_t n, int budgetMs) {
    for (int waited = 0; waited < budgetMs; waited += 10) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (received_.size() >= n) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::lock_guard<std::mutex> lock(mu_);
    return received_.size() >= n;
  }

private:
  void serve() {
    Socket conn;
    char buffer[4096];
    while (!stop_.load()) {
      if (!conn.valid()) {
        conn = listener_.accept_pending();
        if (!conn.valid()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
      }
      const long n = conn.recv_some(buffer, sizeof(buffer), 10);
      if (n < 0) {
        conn.close();
        continue;
      }
      if (n > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        received_.append(buffer, static_cast<std::size_t>(n));
      }
    }
  }

  Socket listener_;
  std::string endpoint_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::string received_;
};

/// Runs the proxy on a background thread; joins (via the stop flag) on
/// destruction.
class ProxyRunner {
public:
  explicit ProxyRunner(NetChaosOptions options) : options_(std::move(options)) {
    options_.stop = &stop_;
    options_.listenEndpoint = "tcp:127.0.0.1:0";
    options_.onListening = [this](const Endpoint& bound) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        endpoint_ = bound.to_string();
      }
      cv_.notify_all();
    };
    thread_ = std::thread([this] { outcome_ = run_netchaos(options_); });
  }

  ~ProxyRunner() { stop_and_join(); }

  std::string endpoint() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !endpoint_.empty(); });
    return endpoint_;
  }

  const NetChaosOutcome& stop_and_join() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
    return outcome_;
  }

private:
  NetChaosOptions options_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::string endpoint_;
  NetChaosOutcome outcome_;
};

Socket dial(const std::string& endpointText) {
  Endpoint ep;
  std::string error;
  EXPECT_TRUE(parse_endpoint(endpointText, ep, error)) << error;
  return Socket::connect_endpoint(ep, 2000);
}

NetChaosOptions only_class(const std::string& upstream, ChaosClass cls,
                           std::uint64_t seed) {
  NetChaosOptions opt;
  opt.upstreamEndpoint = upstream;
  opt.seed = seed;
  opt.cleanShare = 0.0;
  opt.enableLatency = cls == ChaosClass::Latency;
  opt.enableThrottle = cls == ChaosClass::Throttle;
  opt.enableDribble = cls == ChaosClass::Dribble;
  opt.enableReset = cls == ChaosClass::Reset;
  opt.enableBlackhole = cls == ChaosClass::Blackhole;
  opt.enableCorrupt = cls == ChaosClass::Corrupt;
  return opt;
}

TEST(NetChaos, CleanProfileRelaysFaithfully) {
  SinkServer sink;
  NetChaosOptions opt;
  opt.upstreamEndpoint = sink.endpoint();
  opt.cleanShare = 1.0; // every connection draws the control profile
  ProxyRunner proxy(opt);

  Socket client = dial(proxy.endpoint());
  ASSERT_TRUE(client.valid());
  std::string payload;
  for (int i = 0; i < 4096; ++i) payload.push_back(static_cast<char>(i * 31));
  ASSERT_EQ(client.send_all(payload), SendStatus::Ok);
  ASSERT_TRUE(sink.wait_for_bytes(payload.size(), 5000));
  EXPECT_EQ(sink.received(), payload);

  const NetChaosOutcome& out = proxy.stop_and_join();
  EXPECT_EQ(out.connections, 1);
  EXPECT_EQ(out.corruptions, 0);
  EXPECT_EQ(out.resets, 0);
  EXPECT_EQ(out.blackholes, 0);
}

TEST(NetChaos, DribbleDeliversEveryByteInOrder) {
  SinkServer sink;
  ProxyRunner proxy(only_class(sink.endpoint(), ChaosClass::Dribble, 7));

  Socket client = dial(proxy.endpoint());
  ASSERT_TRUE(client.valid());
  std::string payload = "dribble: every byte still arrives, just one by one";
  for (int i = 0; i < 5; ++i) payload += payload; // ~1.6 KB
  ASSERT_EQ(client.send_all(payload), SendStatus::Ok);
  ASSERT_TRUE(sink.wait_for_bytes(payload.size(), 10000))
      << "dribbled delivery lost bytes";
  EXPECT_EQ(sink.received(), payload);
}

TEST(NetChaos, CorruptionIsDeterministicPerSeed) {
  std::string original;
  for (int i = 0; i < 8192; ++i)
    original.push_back(static_cast<char>((i * 131) & 0xff));

  // Same seed, same connection ordinal -> the same bytes must be damaged in
  // the same way on both runs (that is what makes a chaos failure
  // replayable under a debugger).
  std::string run1, run2;
  for (std::string* dst : {&run1, &run2}) {
    SinkServer sink;
    ProxyRunner proxy(only_class(sink.endpoint(), ChaosClass::Corrupt, 1234));
    Socket client = dial(proxy.endpoint());
    ASSERT_TRUE(client.valid());
    ASSERT_EQ(client.send_all(original), SendStatus::Ok);
    ASSERT_TRUE(sink.wait_for_bytes(original.size(), 5000));
    const NetChaosOutcome& out = proxy.stop_and_join();
    EXPECT_GE(out.corruptions, 1) << "8 KB must cross a corruption stride";
    *dst = sink.received();
  }
  EXPECT_NE(run1, original) << "corruption profile never corrupted";
  EXPECT_EQ(run1, run2) << "fault schedule must be a pure function of seed";
}

TEST(NetChaos, BlackholeForwardsNothing) {
  SinkServer sink;
  ProxyRunner proxy(only_class(sink.endpoint(), ChaosClass::Blackhole, 99));

  Socket client = dial(proxy.endpoint());
  ASSERT_TRUE(client.valid());
  // The connection LOOKS healthy to the client (small sends land in kernel
  // buffers), but nothing may ever reach the upstream.
  client.send_all(std::string(1024, 'b'), /*timeoutMs=*/500);
  EXPECT_FALSE(sink.wait_for_bytes(1, 300));
  const NetChaosOutcome& out = proxy.stop_and_join();
  EXPECT_EQ(out.blackholes, 1);
  EXPECT_EQ(out.bytesForwarded, 0);
  EXPECT_TRUE(sink.received().empty());
}

TEST(NetChaos, ResetClosesTheConnectionMidStream) {
  SinkServer sink;
  ProxyRunner proxy(only_class(sink.endpoint(), ChaosClass::Reset, 5));

  Socket client = dial(proxy.endpoint());
  ASSERT_TRUE(client.valid());
  // Reset triggers after at most ~4 KB forwarded; keep sending until the
  // proxy kills the stream under us.
  const std::string chunk(1024, 'r');
  bool sawClose = false;
  for (int i = 0; i < 64 && !sawClose; ++i) {
    if (client.send_all(chunk, /*timeoutMs=*/250) != SendStatus::Ok) {
      sawClose = true;
      break;
    }
    char buffer[64];
    const long n = client.recv_some(buffer, sizeof(buffer), 20);
    if (n < 0) sawClose = true;
  }
  EXPECT_TRUE(sawClose) << "reset profile never reset the connection";
  const NetChaosOutcome& out = proxy.stop_and_join();
  EXPECT_GE(out.resets, 1);
}

TEST(NetChaos, RejectsBadEndpoints) {
  NetChaosOptions opt;
  opt.listenEndpoint = "bogus";
  opt.upstreamEndpoint = "tcp:127.0.0.1:1";
  EXPECT_THROW(run_netchaos(opt), std::runtime_error);
  opt.listenEndpoint = "tcp:127.0.0.1:0";
  opt.upstreamEndpoint = "/not/an/endpoint";
  EXPECT_THROW(run_netchaos(opt), std::runtime_error);
}

} // namespace
} // namespace nvff::dist
