// Transport-layer unit tests: endpoint parsing, the reconnect backoff, and
// the raw TCP socket path (listen on an ephemeral port, non-blocking
// connect, deadline-bounded send). The service-level behaviors — campaigns
// over tcp, quarantine, chaos — live in test_service.cpp and
// tests/chaos/chaos_dist_net.sh; this file pins the building blocks.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "dist/channel.hpp"
#include "dist/endpoint.hpp"

namespace nvff::dist {
namespace {

// --- endpoint parsing -------------------------------------------------------

TEST(Endpoint, ParsesUnixPath) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("unix:/tmp/svc.sock", ep, error)) << error;
  EXPECT_EQ(ep.scheme, Endpoint::Scheme::Unix);
  EXPECT_EQ(ep.path, "/tmp/svc.sock");
  EXPECT_EQ(ep.to_string(), "unix:/tmp/svc.sock");
}

TEST(Endpoint, ParsesTcpHostPort) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("tcp:127.0.0.1:8473", ep, error)) << error;
  EXPECT_EQ(ep.scheme, Endpoint::Scheme::Tcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 8473);
  EXPECT_EQ(ep.to_string(), "tcp:127.0.0.1:8473");
}

TEST(Endpoint, ParsesTcpEphemeralPortZero) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("tcp:localhost:0", ep, error)) << error;
  EXPECT_EQ(ep.port, 0);
}

TEST(Endpoint, ParsesTcpHostnameWithColonSplitAtLastColon) {
  // IPv6-ish / colon-rich hosts: the port is everything after the LAST colon.
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("tcp:::1:9000", ep, error)) << error;
  EXPECT_EQ(ep.host, "::1");
  EXPECT_EQ(ep.port, 9000);
}

TEST(Endpoint, RejectsBarePathsAndUnknownSchemes) {
  // A bare path is ambiguous (the CLI maps the deprecated --socket PATH to
  // unix:PATH explicitly); the parser itself is strict.
  Endpoint ep;
  std::string error;
  EXPECT_FALSE(parse_endpoint("/tmp/svc.sock", ep, error));
  EXPECT_NE(error.find("unknown scheme"), std::string::npos) << error;
  EXPECT_FALSE(parse_endpoint("udp:127.0.0.1:1", ep, error));
  EXPECT_FALSE(parse_endpoint("", ep, error));
}

TEST(Endpoint, RejectsMalformedTcpEndpoints) {
  Endpoint ep;
  std::string error;
  EXPECT_FALSE(parse_endpoint("tcp:nohost", ep, error));      // no port
  EXPECT_FALSE(parse_endpoint("tcp::9000", ep, error));       // empty host
  EXPECT_FALSE(parse_endpoint("tcp:host:", ep, error));       // empty port
  EXPECT_FALSE(parse_endpoint("tcp:host:http", ep, error));   // non-numeric
  EXPECT_FALSE(parse_endpoint("tcp:host:65536", ep, error));  // out of range
  EXPECT_FALSE(parse_endpoint("tcp:host:-1", ep, error));
  EXPECT_FALSE(parse_endpoint("unix:", ep, error));           // empty path
}

// --- backoff ----------------------------------------------------------------

TEST(Backoff, FirstDelayHonorsTheCap) {
  // Regression: the first delay was returned uncapped, so a Backoff whose
  // initial exceeded its cap waited the full initial (Backoff(1000, 500)
  // slept 1000 ms before the first reconnect attempt).
  Backoff backoff(1000, 500);
  EXPECT_EQ(backoff.next_ms(), 500);
  EXPECT_EQ(backoff.next_ms(), 500);
}

TEST(Backoff, DoublesUpToTheCapAndResets) {
  Backoff backoff(50, 400);
  EXPECT_EQ(backoff.next_ms(), 50);
  EXPECT_EQ(backoff.next_ms(), 100);
  EXPECT_EQ(backoff.next_ms(), 200);
  EXPECT_EQ(backoff.next_ms(), 400);
  EXPECT_EQ(backoff.next_ms(), 400); // stays at the cap
  backoff.reset();
  EXPECT_EQ(backoff.next_ms(), 50);
}

// --- tcp sockets ------------------------------------------------------------

TEST(TcpSocket, EphemeralListenReportsBoundPortAndRoundTrips) {
  std::string error;
  int boundPort = 0;
  Socket listener = Socket::listen_tcp("127.0.0.1", 0, error, boundPort);
  ASSERT_TRUE(listener.valid()) << error;
  ASSERT_GT(boundPort, 0) << "ephemeral bind must report the concrete port";

  Socket client = Socket::connect_tcp("127.0.0.1", boundPort, 2000);
  ASSERT_TRUE(client.valid());

  Socket served;
  for (int spin = 0; spin < 200 && !served.valid(); ++spin) {
    served = listener.accept_pending();
    if (!served.valid())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(served.valid());

  const std::string payload = "transport round trip";
  ASSERT_EQ(client.send_all(payload), SendStatus::Ok);
  std::string got;
  char buffer[256];
  for (int spin = 0; spin < 200 && got.size() < payload.size(); ++spin) {
    const long n = served.recv_some(buffer, sizeof(buffer), 50);
    if (n > 0) got.append(buffer, static_cast<std::size_t>(n));
    ASSERT_GE(n, 0) << "peer closed unexpectedly";
  }
  EXPECT_EQ(got, payload);
}

TEST(TcpSocket, ListenEndpointResolvesEphemeralPort) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("tcp:127.0.0.1:0", ep, error));
  Endpoint bound;
  Socket listener = Socket::listen_endpoint(ep, error, bound);
  ASSERT_TRUE(listener.valid()) << error;
  EXPECT_EQ(bound.scheme, Endpoint::Scheme::Tcp);
  EXPECT_GT(bound.port, 0);

  Socket client = Socket::connect_endpoint(bound, 2000);
  EXPECT_TRUE(client.valid());
}

TEST(TcpSocket, ConnectToClosedPortFailsInsteadOfHanging) {
  // Bind an ephemeral port, then close the listener: the port is now about
  // as reliably connection-refused as loopback gets.
  std::string error;
  int boundPort = 0;
  {
    Socket listener = Socket::listen_tcp("127.0.0.1", 0, error, boundPort);
    ASSERT_TRUE(listener.valid()) << error;
  }
  Socket client = Socket::connect_tcp("127.0.0.1", boundPort, 1000);
  EXPECT_FALSE(client.valid());
}

TEST(TcpSocket, SendDeadlineFiresAgainstANonDrainingPeer) {
  // The transport-level version of the quarantine story: shrink the send
  // buffer, never read on the other side, and a bounded send must report
  // Timeout instead of blocking forever.
  std::string error;
  int boundPort = 0;
  Socket listener = Socket::listen_tcp("127.0.0.1", 0, error, boundPort);
  ASSERT_TRUE(listener.valid()) << error;
  Socket client = Socket::connect_tcp("127.0.0.1", boundPort, 2000);
  ASSERT_TRUE(client.valid());
  Socket served;
  for (int spin = 0; spin < 200 && !served.valid(); ++spin) {
    served = listener.accept_pending();
    if (!served.valid())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(served.valid());
  ASSERT_TRUE(served.set_send_buffer(1)); // kernel clamps to its floor

  // Pump messages into a peer that never reads. The kernel floor is a few
  // KB on both sides, so well under a MB guarantees a plugged pipe.
  const std::string chunk(4096, 'x');
  SendStatus status = SendStatus::Ok;
  for (int i = 0; i < 512 && status == SendStatus::Ok; ++i)
    status = served.send_all(chunk, /*timeoutMs=*/100);
  EXPECT_EQ(status, SendStatus::Timeout)
      << "a non-draining peer must surface as Timeout, not block";
}

} // namespace
} // namespace nvff::dist
