// Engine adapters for the distributed service: the config-blob fingerprint
// must round-trip through the registry byte-for-byte, merge must be exact
// (a merged engine reports identically to the one that ran the trials), and
// every mismatch path must be classified, not crashed.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/engine.hpp"
#include "faults/powerfail.hpp"
#include "reliability/montecarlo.hpp"
#include "runtime/supervisor.hpp"
#include "util/cancellation.hpp"

namespace nvff::dist {
namespace {

reliability::CampaignConfig small_mc_config() {
  reliability::CampaignConfig cfg;
  cfg.trials = 4;
  cfg.seed = 7;
  return cfg;
}

TEST(DistEngine, ConfigBlobRoundTripsThroughTheRegistry) {
  const auto original = make_mc_engine(small_mc_config());
  const std::string blob = original->config_blob();
  // A worker reconstructs the engine from the Welcome blob and re-serializes
  // it; handshake fingerprinting relies on the two strings being identical.
  const auto rebuilt = make_engine("mc", blob);
  EXPECT_EQ(rebuilt->config_blob(), blob);
  EXPECT_EQ(rebuilt->trials(), 4);
  EXPECT_STREQ(rebuilt->name(), "mc");
}

TEST(DistEngine, MergeIsExact) {
  const reliability::CampaignConfig cfg = small_mc_config();
  const auto ran = make_mc_engine(cfg);
  CancelToken cancel;
  std::vector<int> all;
  for (int id = 0; id < ran->trials(); ++id) {
    EXPECT_EQ(ran->run_trial(id, cancel), runtime::TrialStatus::Ok) << id;
    all.push_back(id);
  }

  // Merge half into one engine, the rest into another, then cross-merge:
  // simulates two workers' shard results landing at the coordinator.
  const auto merged = make_mc_engine(cfg);
  EXPECT_EQ(merged->merge(ran->serialize({0, 1})), (std::vector<int>{0, 1}));
  EXPECT_EQ(merged->merge(ran->serialize({2, 3})), (std::vector<int>{2, 3}));
  // Duplicate shard completion (straggler re-dispatch): idempotent.
  EXPECT_EQ(merged->merge(ran->serialize({2, 3})), (std::vector<int>{2, 3}));

  EXPECT_EQ(merged->report(), ran->report());
  EXPECT_EQ(merged->serialize(all), ran->serialize(all));
}

TEST(DistEngine, MergeRejectsAMismatchedFingerprint) {
  const auto a = make_mc_engine(small_mc_config());
  reliability::CampaignConfig other = small_mc_config();
  other.seed = 8;
  const auto b = make_mc_engine(other);
  try {
    b->merge(a->serialize({}));
    FAIL() << "merge accepted a foreign config";
  } catch (const runtime::ConfigMismatch& e) {
    // Both fingerprints ride on the exception so the CLI can diff them.
    EXPECT_FALSE(e.stored_json().empty());
    EXPECT_FALSE(e.requested_json().empty());
    EXPECT_NE(e.stored_json(), e.requested_json());
  }
}

TEST(DistEngine, MergeRejectsGarbageDocuments) {
  const auto engine = make_mc_engine(small_mc_config());
  EXPECT_THROW(engine->merge("definitely not a checkpoint"),
               std::runtime_error);
  EXPECT_THROW(engine->merge(""), std::runtime_error);
}

TEST(DistEngine, UnknownEngineNameIsAnError) {
  EXPECT_THROW(make_engine("no-such-engine", "{}"), std::runtime_error);
}

TEST(DistEngine, PowerfailBlobRoundTripsToo) {
  faults::CampaignConfig cfg;
  cfg.trials = 2;
  cfg.seed = 3;
  cfg.benchmark = "s344"; // smallest paper benchmark; context builds fast
  const auto original = make_powerfail_engine(cfg);
  const std::string blob = original->config_blob();
  const auto rebuilt = make_engine("powerfail", blob);
  EXPECT_EQ(rebuilt->config_blob(), blob);
  EXPECT_STREQ(rebuilt->name(), "powerfail");
}

// A do-nothing engine proving third parties (and the service tests) can plug
// engines into the registry without touching dist internals.
class NullEngine final : public CampaignEngine {
public:
  const char* name() const override { return "null-test"; }
  int trials() const override { return 0; }
  std::string config_blob() const override { return "{}"; }
  runtime::TrialStatus run_trial(int, const CancelToken&) override {
    return runtime::TrialStatus::Ok;
  }
  std::string serialize(const std::vector<int>&) const override { return "{}"; }
  std::vector<int> merge(const std::string&) override { return {}; }
  std::string report() const override { return ""; }
};

TEST(DistEngine, RegisteredFactoriesResolveAndReplace) {
  register_engine_factory("null-test", [](const std::string&) {
    return std::make_unique<NullEngine>();
  });
  const auto engine = make_engine("null-test", "{}");
  EXPECT_STREQ(engine->name(), "null-test");
  // Re-registration replaces (latest wins), so tests can shadow each other.
  bool secondUsed = false;
  register_engine_factory("null-test",
                          [&secondUsed](const std::string&) {
                            secondUsed = true;
                            return std::make_unique<NullEngine>();
                          });
  (void)make_engine("null-test", "{}");
  EXPECT_TRUE(secondUsed);
}

} // namespace
} // namespace nvff::dist
