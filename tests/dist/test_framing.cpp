// Fuzz-style exercises of the wire framing layer. Every malformed input —
// truncated, oversized, bit-flipped, version-skewed, or outright random —
// must come back as a classified FrameError (or NeedMore for a prefix),
// never a crash, never a mis-parsed frame. Runs under the asan and tsan
// presets like the rest of the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dist/framing.hpp"
#include "dist/messages.hpp"

namespace nvff::dist {
namespace {

std::string frame(MsgType type, std::string_view payload) {
  return encode_frame(type, payload);
}

FrameDecoder::Result decode_all(const std::string& bytes) {
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  return dec.next();
}

// Deterministic byte scrambler so the "fuzz" corpus is reproducible; no
// wall-clock or global RNG involved.
std::uint32_t next_lcg(std::uint32_t& s) {
  s = s * 1664525u + 1013904223u;
  return s;
}

TEST(Framing, RoundTripsEveryMessageType) {
  const MsgType types[] = {MsgType::Hello,       MsgType::Welcome,
                           MsgType::Ready,       MsgType::ShardAssign,
                           MsgType::ShardResult, MsgType::Heartbeat,
                           MsgType::Idle,        MsgType::Shutdown,
                           MsgType::Error};
  for (MsgType t : types) {
    const std::string payload = "payload for " + std::string(msg_type_name(t));
    const auto r = decode_all(frame(t, payload));
    ASSERT_EQ(r.status, FrameDecoder::Status::Frame) << msg_type_name(t);
    EXPECT_EQ(r.type, t);
    EXPECT_EQ(r.payload, payload);
  }
}

TEST(Framing, EmptyPayloadIsAValidFrame) {
  const auto r = decode_all(frame(MsgType::Idle, ""));
  ASSERT_EQ(r.status, FrameDecoder::Status::Frame);
  EXPECT_EQ(r.type, MsgType::Idle);
  EXPECT_TRUE(r.payload.empty());
}

TEST(Framing, EveryTruncationPointReportsNeedMoreThenTruncated) {
  const std::string full = frame(MsgType::Heartbeat, "0123456789");
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(full.data(), cut);
    const auto r = dec.next();
    EXPECT_EQ(r.status, FrameDecoder::Status::NeedMore) << "cut=" << cut;
    // A connection that closes here closed mid-frame (except at offset 0).
    EXPECT_EQ(dec.truncated(), cut != 0) << "cut=" << cut;
  }
}

TEST(Framing, ByteAtATimeFeedYieldsTheSameFrame) {
  const std::string full = frame(MsgType::ShardResult, "shard payload bytes");
  FrameDecoder dec;
  for (char c : full) {
    dec.feed(&c, 1);
  }
  const auto r = dec.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::Frame);
  EXPECT_EQ(r.type, MsgType::ShardResult);
  EXPECT_EQ(r.payload, "shard payload bytes");
  EXPECT_FALSE(dec.truncated());
}

TEST(Framing, BackToBackFramesDecodeInOrder) {
  const std::string bytes = frame(MsgType::Ready, "first") +
                            frame(MsgType::Heartbeat, "second") +
                            frame(MsgType::Shutdown, "");
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  auto r = dec.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::Frame);
  EXPECT_EQ(r.type, MsgType::Ready);
  EXPECT_EQ(r.payload, "first");
  r = dec.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::Frame);
  EXPECT_EQ(r.type, MsgType::Heartbeat);
  r = dec.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::Frame);
  EXPECT_EQ(r.type, MsgType::Shutdown);
  EXPECT_EQ(dec.next().status, FrameDecoder::Status::NeedMore);
  EXPECT_FALSE(dec.truncated());
}

TEST(Framing, BadMagicIsClassified) {
  std::string bytes = frame(MsgType::Hello, "x");
  bytes[0] = 'X';
  const auto r = decode_all(bytes);
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::BadMagic);
}

TEST(Framing, BadVersionIsClassified) {
  std::string bytes = frame(MsgType::Hello, "x");
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  const auto r = decode_all(bytes);
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::BadVersion);
}

TEST(Framing, BadTypeIsClassified) {
  std::string bytes = frame(MsgType::Hello, "x");
  bytes[5] = static_cast<char>(0xee);
  const auto r = decode_all(bytes);
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::BadType);
}

TEST(Framing, NonzeroReservedBytesAreClassified) {
  std::string bytes = frame(MsgType::Hello, "x");
  bytes[6] = 1;
  const auto r = decode_all(bytes);
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::BadReserved);
}

TEST(Framing, OversizedLengthRejectedBeforeAllocation) {
  // Declare a payload just past the cap. The decoder must classify this from
  // the header alone, without waiting for (or allocating) 64 MiB.
  std::string bytes = frame(MsgType::Hello, "x");
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  FrameDecoder dec;
  dec.feed(bytes.data(), 16); // header only, no payload bytes at all
  const auto r = dec.next();
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::Oversized);
}

TEST(Framing, PayloadBitFlipFailsTheCrc) {
  std::string bytes = frame(MsgType::ShardResult, "important shard data");
  bytes[16] ^= 0x01; // first payload byte
  const auto r = decode_all(bytes);
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::BadCrc);
}

TEST(Framing, CrcFieldBitFlipFailsTheCrc) {
  // The chaos hook in the worker corrupts exactly this byte.
  std::string bytes = frame(MsgType::Heartbeat, "hb");
  bytes[12] ^= 0x5a;
  const auto r = decode_all(bytes);
  ASSERT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_EQ(r.error, FrameError::BadCrc);
}

TEST(Framing, PoisonedDecoderStaysPoisoned) {
  std::string bad = frame(MsgType::Hello, "x");
  bad[0] = '?';
  FrameDecoder dec;
  dec.feed(bad.data(), bad.size());
  ASSERT_EQ(dec.next().status, FrameDecoder::Status::Error);
  // Feeding a perfectly good frame afterwards must not resurrect the stream:
  // resync inside a corrupted byte stream is guesswork.
  const std::string good = frame(MsgType::Ready, "fine");
  dec.feed(good.data(), good.size());
  const auto r = dec.next();
  EXPECT_EQ(r.status, FrameDecoder::Status::Error);
  EXPECT_TRUE(dec.truncated());
}

TEST(Framing, RandomGarbageNeverCrashesAndNeverYieldsAFrame) {
  std::uint32_t seed = 0xC0FFEEu;
  for (int round = 0; round < 64; ++round) {
    std::string noise(1 + (next_lcg(seed) % 512), '\0');
    for (char& c : noise) {
      c = static_cast<char>(next_lcg(seed) >> 24);
    }
    // Make sure it can't accidentally start with the magic.
    if (noise.size() >= 4 && noise.compare(0, 4, "NVFD") == 0) {
      noise[0] = '!';
    }
    FrameDecoder dec;
    dec.feed(noise.data(), noise.size());
    for (int i = 0; i < 8; ++i) {
      const auto r = dec.next();
      ASSERT_NE(r.status, FrameDecoder::Status::Frame)
          << "round " << round << ": garbage decoded as a frame";
      if (r.status == FrameDecoder::Status::Error) {
        break;
      }
    }
  }
}

TEST(Framing, SingleBitFlipsAcrossTheWholeFrameAreAllRejectedOrDetected) {
  const std::string base = frame(MsgType::Heartbeat, "heartbeat payload");
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = base;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      FrameDecoder dec;
      dec.feed(mutated.data(), mutated.size());
      const auto r = dec.next();
      if (r.status == FrameDecoder::Status::Frame) {
        // The CRC covers the payload; magic/version/reserved are checked
        // exactly; a length flip changes how many bytes the CRC covers
        // (NeedMore when longer, BadCrc when shorter). The ONE header field
        // a single flip can change undetected is the message type, when it
        // lands on another valid type — the receiving state machines treat
        // an unexpected-but-valid type as a protocol error and drop the
        // connection, which is the documented containment for this case.
        EXPECT_EQ(byte, 5u) << "bit flip at byte " << byte << " bit " << bit
                            << " produced a valid frame";
        EXPECT_NE(r.type, MsgType::Heartbeat);
        EXPECT_EQ(r.payload, "heartbeat payload");
      }
    }
  }
}

// --- adversarial delivery ---------------------------------------------------
// The network-chaos proxy (dist/netchaos.*) delivers streams in every shape
// TCP legally can: 1-byte dribbles, arbitrary split points, kernel-sized
// bursts. These tests pin the decoder contract under exactly those shapes —
// every frame is delivered exactly once, at any fragmentation, and a
// poisoned stream yields nothing further.

TEST(Framing, EveryTwoChunkSplitDeliversTheFrameExactlyOnce) {
  const std::string full = frame(MsgType::ShardAssign, "split me anywhere");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(full.data(), cut);
    int framesBeforeRest = 0;
    // Drain after the first chunk: a partial frame must never surface.
    for (auto r = dec.next(); r.status == FrameDecoder::Status::Frame;
         r = dec.next())
      ++framesBeforeRest;
    EXPECT_EQ(framesBeforeRest, cut == full.size() ? 1 : 0) << "cut=" << cut;
    dec.feed(full.data() + cut, full.size() - cut);
    int frames = framesBeforeRest;
    for (auto r = dec.next(); r.status == FrameDecoder::Status::Frame;
         r = dec.next()) {
      EXPECT_EQ(r.type, MsgType::ShardAssign);
      EXPECT_EQ(r.payload, "split me anywhere");
      ++frames;
    }
    EXPECT_EQ(frames, 1) << "cut=" << cut
                         << ": the frame must arrive exactly once";
    EXPECT_FALSE(dec.truncated());
  }
}

TEST(Framing, StreamSplitInsideTheCrcFieldStaysExact) {
  // The CRC occupies header bytes 12..15; split a two-frame stream at every
  // byte of the SECOND frame's CRC field. The decoder must deliver both
  // frames exactly once and never mis-validate against a partial CRC.
  const std::string first = frame(MsgType::Ready, "frame one");
  const std::string second = frame(MsgType::Heartbeat, "frame two");
  const std::string stream = first + second;
  for (std::size_t inCrc = 0; inCrc <= 4; ++inCrc) {
    const std::size_t cut = first.size() + 12 + inCrc;
    FrameDecoder dec;
    dec.feed(stream.data(), cut);
    auto r = dec.next();
    ASSERT_EQ(r.status, FrameDecoder::Status::Frame) << "inCrc=" << inCrc;
    EXPECT_EQ(r.payload, "frame one");
    EXPECT_EQ(dec.next().status, FrameDecoder::Status::NeedMore);
    EXPECT_TRUE(dec.truncated()) << "mid-CRC is mid-frame";
    dec.feed(stream.data() + cut, stream.size() - cut);
    r = dec.next();
    ASSERT_EQ(r.status, FrameDecoder::Status::Frame) << "inCrc=" << inCrc;
    EXPECT_EQ(r.type, MsgType::Heartbeat);
    EXPECT_EQ(r.payload, "frame two");
    EXPECT_EQ(dec.next().status, FrameDecoder::Status::NeedMore);
    EXPECT_FALSE(dec.truncated());
  }
}

TEST(Framing, DribbledMultiFrameStreamNeverDeliversTwice) {
  // 1-byte delivery with next() polled after EVERY byte — the worst legal
  // TCP fragmentation (and the netchaos dribble profile verbatim). Each
  // frame must surface exactly once, in order.
  const std::string stream = frame(MsgType::Ready, "alpha") +
                             frame(MsgType::Idle, "") +
                             frame(MsgType::ShardResult, "omega");
  FrameDecoder dec;
  std::vector<std::pair<MsgType, std::string>> seen;
  for (char c : stream) {
    dec.feed(&c, 1);
    for (auto r = dec.next(); r.status == FrameDecoder::Status::Frame;
         r = dec.next())
      seen.emplace_back(r.type, r.payload);
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<MsgType, std::string>{MsgType::Ready, "alpha"}));
  EXPECT_EQ(seen[1], (std::pair<MsgType, std::string>{MsgType::Idle, ""}));
  EXPECT_EQ(seen[2],
            (std::pair<MsgType, std::string>{MsgType::ShardResult, "omega"}));
}

TEST(Framing, PoisonedStreamNeverYieldsTheFramesBehindTheDamage) {
  // A corrupted frame followed by two perfectly valid ones: the valid tail
  // must NOT be delivered — after CRC damage the stream offset itself is
  // untrustworthy, and a "recovered" frame could be an attacker-chosen or
  // accidental resync. Drop everything, let the reconnect path start clean.
  std::string bad = frame(MsgType::ShardResult, "about to be damaged");
  bad[18] ^= 0x10;
  const std::string stream =
      bad + frame(MsgType::Ready, "ghost") + frame(MsgType::Shutdown, "");
  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  int errors = 0;
  for (int i = 0; i < 8; ++i) {
    const auto r = dec.next();
    ASSERT_NE(r.status, FrameDecoder::Status::Frame)
        << "a frame surfaced from behind the corruption";
    if (r.status == FrameDecoder::Status::Error) ++errors;
  }
  EXPECT_GE(errors, 1);
}

TEST(Messages, ControlMessagesRoundTrip) {
  HelloMsg hello{kProtocolVersion};
  HelloMsg hello2;
  ASSERT_TRUE(parse_hello(encode_hello(hello), hello2));
  EXPECT_EQ(hello2.protocolVersion, kProtocolVersion);

  ReadyMsg ready{0xDEADBEEFu, 256};
  ReadyMsg ready2;
  ASSERT_TRUE(parse_ready(encode_ready(ready), ready2));
  EXPECT_EQ(ready2.fingerprintCrc, 0xDEADBEEFu);
  EXPECT_EQ(ready2.trials, 256);

  ShardAssignMsg assign{7, {8, 9, 10, 11}};
  ShardAssignMsg assign2;
  ASSERT_TRUE(parse_shard_assign(encode_shard_assign(assign), assign2));
  EXPECT_EQ(assign2.shard, 7);
  EXPECT_EQ(assign2.ids, (std::vector<int>{8, 9, 10, 11}));

  HeartbeatMsg hb{3, 5};
  HeartbeatMsg hb2;
  ASSERT_TRUE(parse_heartbeat(encode_heartbeat(hb), hb2));
  EXPECT_EQ(hb2.shard, 3);
  EXPECT_EQ(hb2.trialsDone, 5);
}

TEST(Messages, BulkMessagesCarryRawBlobsUnescaped) {
  // Blob contains newlines, quotes, NUL — everything JSON escaping would
  // mangle. The header/blob split must hand it back byte-identical.
  std::string blob = "line1\nline2 \"quoted\"";
  blob.push_back('\0');
  blob += "after nul";

  WelcomeMsg w{"mc", blob};
  WelcomeMsg w2;
  ASSERT_TRUE(parse_welcome(encode_welcome(w), w2));
  EXPECT_EQ(w2.engine, "mc");
  EXPECT_EQ(w2.blob, blob);

  ShardResultMsg sr{42, blob};
  ShardResultMsg sr2;
  ASSERT_TRUE(parse_shard_result(encode_shard_result(sr), sr2));
  EXPECT_EQ(sr2.shard, 42);
  EXPECT_EQ(sr2.blob, blob);
}

TEST(Messages, MalformedPayloadsAreRejectedNotThrown) {
  HelloMsg hello;
  ReadyMsg ready;
  ShardAssignMsg assign;
  ShardResultMsg result;
  HeartbeatMsg hb;
  WelcomeMsg welcome;
  ErrorMsg err;
  const std::string bads[] = {
      "",  "not json", "{}", "[]", R"({"wrong":"fields"})", "{\"v\":", "\x00\x01\x02",
  };
  for (const std::string& bad : bads) {
    EXPECT_FALSE(parse_hello(bad, hello)) << bad;
    EXPECT_FALSE(parse_ready(bad, ready)) << bad;
    EXPECT_FALSE(parse_shard_assign(bad, assign)) << bad;
    EXPECT_FALSE(parse_shard_result(bad, result)) << bad;
    EXPECT_FALSE(parse_heartbeat(bad, hb)) << bad;
    EXPECT_FALSE(parse_welcome(bad, welcome)) << bad;
    EXPECT_FALSE(parse_error(bad, err)) << bad;
  }
}

TEST(Messages, ShardAssignRejectsNonIntegerIds) {
  ShardAssignMsg out;
  EXPECT_FALSE(parse_shard_assign(R"({"shard":1,"ids":["a","b"]})", out));
  EXPECT_FALSE(parse_shard_assign(R"({"shard":1,"ids":3})", out));
}

} // namespace
} // namespace nvff::dist
