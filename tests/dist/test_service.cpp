// In-process exercises of the coordinator/worker service: a cheap registered
// test engine stands in for the SPICE campaigns so these tests probe the
// DISTRIBUTION machinery (handshake, sharding, merge, chaos, stragglers)
// in milliseconds. Process-level chaos (kill -9, resume across restarts)
// lives in tests/chaos/chaos_dist_kill_resume.sh.
//
// Runs under tsan: coordinator event loop, local executors, worker pool and
// heartbeat threads all race here if they race anywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dist/channel.hpp"
#include "dist/coordinator.hpp"
#include "dist/endpoint.hpp"
#include "dist/engine.hpp"
#include "dist/framing.hpp"
#include "dist/messages.hpp"
#include "dist/worker.hpp"
#include "runtime/crc32.hpp"
#include "runtime/supervisor.hpp"
#include "util/json.hpp"

namespace nvff::dist {
namespace {

// --- the test engine --------------------------------------------------------
// Deterministic toy campaign: slot id's "result" is a pure function of
// (seed, id). Honors the full engine contract, including fingerprint
// validation on merge, so the coordinator cannot tell it from a real one.

struct SvcConfig {
  int trials = 0;
  long seed = 0;
  int workMs = 0; ///< artificial per-trial cost, for heartbeat/straggler runs
};

class SvcEngine final : public CampaignEngine {
public:
  explicit SvcEngine(const SvcConfig& config)
      : config_(config), values_(static_cast<std::size_t>(config.trials), -1) {}

  const char* name() const override { return "svc-test"; }
  int trials() const override { return config_.trials; }

  std::string config_blob() const override { return serialize({}); }

  runtime::TrialStatus run_trial(int id, const CancelToken& cancel) override {
    if (config_.workMs > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.workMs));
    }
    if (cancel.cancelled()) {
      return cancel.reason() == CancelToken::Reason::Timeout
                 ? runtime::TrialStatus::Timeout
                 : runtime::TrialStatus::Cancelled;
    }
    values_[static_cast<std::size_t>(id)] =
        config_.seed * 100000L + static_cast<long>(id) * 7L + 13L;
    return runtime::TrialStatus::Ok;
  }

  std::string serialize(const std::vector<int>& ids) const override {
    std::string out = "{\"svc\":{\"trials\":" + std::to_string(config_.trials) +
                      ",\"seed\":" + std::to_string(config_.seed) +
                      ",\"workMs\":" + std::to_string(config_.workMs) +
                      "},\"done\":[";
    bool first = true;
    for (const int id : ids) {
      if (!first) out += ",";
      first = false;
      out += "[" + std::to_string(id) + "," +
             std::to_string(values_[static_cast<std::size_t>(id)]) + "]";
    }
    out += "]}";
    return out;
  }

  std::vector<int> merge(const std::string& payload) override {
    const json::Value doc = json::parse(payload, "svc-test checkpoint");
    const json::Value& cfg = doc.at("svc");
    SvcConfig stored;
    stored.trials = static_cast<int>(cfg.at("trials").as_num());
    stored.seed = static_cast<long>(cfg.at("seed").as_num());
    stored.workMs = static_cast<int>(cfg.at("workMs").as_num());
    if (stored.trials != config_.trials || stored.seed != config_.seed ||
        stored.workMs != config_.workMs) {
      throw runtime::ConfigMismatch(
          "svc-test: checkpoint belongs to a different campaign",
          SvcEngine(stored).config_blob(), config_blob());
    }
    std::vector<int> ids;
    for (const json::Value& pair : doc.at("done").items) {
      const int id = static_cast<int>(pair.items.at(0).as_num());
      if (id < 0 || id >= config_.trials) continue;
      values_[static_cast<std::size_t>(id)] =
          static_cast<long>(pair.items.at(1).as_num());
      ids.push_back(id);
    }
    return ids;
  }

  std::string report() const override {
    std::string out = "svc-test report seed=" + std::to_string(config_.seed) +
                      "\n";
    for (int id = 0; id < config_.trials; ++id) {
      out += std::to_string(id) + " " +
             std::to_string(values_[static_cast<std::size_t>(id)]) + "\n";
    }
    return out;
  }

private:
  SvcConfig config_;
  std::vector<long> values_;
};

struct RegisterSvcEngine {
  RegisterSvcEngine() {
    register_engine_factory(
        "svc-test", [](const std::string& blob) -> std::unique_ptr<CampaignEngine> {
          const json::Value doc = json::parse(blob, "svc-test blob");
          const json::Value& cfg = doc.at("svc");
          SvcConfig config;
          config.trials = static_cast<int>(cfg.at("trials").as_num());
          config.seed = static_cast<long>(cfg.at("seed").as_num());
          config.workMs = static_cast<int>(cfg.at("workMs").as_num());
          return std::make_unique<SvcEngine>(config);
        });
  }
};
const RegisterSvcEngine g_register;

std::string golden_report(const SvcConfig& config) {
  SvcEngine reference(config);
  CancelToken cancel;
  for (int id = 0; id < config.trials; ++id) {
    reference.run_trial(id, cancel);
  }
  return reference.report();
}

std::string temp_socket_path(const char* tag) {
  // Unix socket paths are length-limited (~108 bytes); /tmp keeps us safe
  // even when the build tree lives somewhere deep.
  return std::string("/tmp/nvff_svc_") + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

// The service tests run against BOTH transports: the default is unix-domain
// (no port interaction in CI), and NVFF_DIST_TEST_TRANSPORT=tcp reruns the
// same tests over tcp loopback with an ephemeral port (the build matrix does
// exactly that). Tests learn the concrete endpoint — the bound tcp port in
// particular — through the coordinator's onListening callback.
bool tcp_transport() {
  const char* t = std::getenv("NVFF_DIST_TEST_TRANSPORT");
  return t != nullptr && std::string(t) == "tcp";
}

std::string listen_endpoint_for(const char* tag) {
  return tcp_transport() ? std::string("tcp:127.0.0.1:0")
                         : "unix:" + temp_socket_path(tag);
}

/// Hands the coordinator's concrete bound endpoint to worker threads that
/// started before the listener existed.
class EndpointRendezvous {
public:
  std::function<void(const Endpoint&)> callback() {
    return [this](const Endpoint& ep) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        endpoint_ = ep.to_string();
      }
      cv_.notify_all();
    };
  }
  std::string wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !endpoint_.empty(); });
    return endpoint_;
  }

private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string endpoint_;
};

/// Connects a hand-rolled test client to the coordinator's bound endpoint.
Socket connect_client(const std::string& endpointText) {
  Endpoint ep;
  std::string error;
  if (!parse_endpoint(endpointText, ep, error)) return Socket();
  Socket sock;
  for (int attempt = 0; attempt < 200 && !sock.valid(); ++attempt) {
    sock = Socket::connect_endpoint(ep, /*timeoutMs=*/1000);
    if (!sock.valid())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return sock;
}

// --- the tests --------------------------------------------------------------

TEST(DistService, CoordinatorOnlyFallbackCompletesWithoutASocket) {
  const SvcConfig config{12, 5, 0};
  SvcEngine engine(config);
  ServeOptions options;
  options.shardSize = 4;
  options.localThreads = 2; // no endpoint: pure local degradation mode
  const ServeOutcome outcome = serve_campaign(engine, options);
  EXPECT_TRUE(outcome.completed());
  EXPECT_EQ(outcome.exit_code(), runtime::kExitOk);
  EXPECT_EQ(outcome.trialsDone, 12);
  EXPECT_EQ(outcome.workersSeen, 0);
  EXPECT_EQ(outcome.report, golden_report(config));
}

TEST(DistService, WorkerAndCoordinatorCompleteACampaignTogether) {
  const SvcConfig config{24, 9, 1};
  const std::string socket = temp_socket_path("basic");
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  WorkerOptions wopts;
  wopts.threads = 2;
  WorkerOutcome wout;
  std::thread workerThread([&] {
    wopts.endpoint = rendezvous.wait();
    wout = run_worker(wopts);
  });

  ServeOptions options;
  options.endpoint = listen_endpoint_for("basic");
  options.onListening = rendezvous.callback();
  options.shardSize = 4;
  options.localThreads = 0; // every trial must travel over the wire
  const ServeOutcome outcome = serve_campaign(engine, options);
  workerThread.join();

  EXPECT_TRUE(outcome.completed());
  EXPECT_EQ(outcome.workersSeen, 1);
  EXPECT_EQ(outcome.shardsMerged, outcome.shardsTotal);
  EXPECT_EQ(outcome.report, golden_report(config));
  EXPECT_TRUE(wout.shutdownReceived);
  EXPECT_EQ(wout.exit_code(), 0);
  EXPECT_GT(wout.shardsCompleted, 0);
  std::remove(socket.c_str());
}

TEST(DistService, SlowTrialsWithLiveHeartbeatsAreNotStragglers) {
  // One trial takes 2x the stall budget. The worker's heartbeats prove it
  // is alive, so the watchdog must not declare the shard a straggler and
  // burn duplicate work: stall means "owner went quiet", not "owner is
  // slow". (Regression: the stall clock once refreshed only on trial
  // *completion*, so any trial slower than the budget re-dispatched.)
  const SvcConfig config{2, 13, 600};
  const std::string socket = temp_socket_path("slow");
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  WorkerOptions wopts;
  wopts.threads = 1;
  wopts.heartbeatIntervalSeconds = 0.05;
  WorkerOutcome wout;
  std::thread workerThread([&] {
    wopts.endpoint = rendezvous.wait();
    wout = run_worker(wopts);
  });

  ServeOptions options;
  options.endpoint = listen_endpoint_for("slow");
  options.onListening = rendezvous.callback();
  options.shardSize = 1;
  options.localThreads = 0;
  options.stallTimeoutSeconds = 0.3;
  const ServeOutcome outcome = serve_campaign(engine, options);
  workerThread.join();

  EXPECT_TRUE(outcome.completed());
  EXPECT_EQ(outcome.redispatches, 0);
  EXPECT_EQ(outcome.report, golden_report(config));
  EXPECT_TRUE(wout.shutdownReceived);
  EXPECT_EQ(wout.exit_code(), 0);
  std::remove(socket.c_str());
}

TEST(DistService, TwoWorkersPlusLocalThreadsStayExact) {
  const SvcConfig config{30, 11, 1};
  const std::string socket = temp_socket_path("two");
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  WorkerOptions wopts;
  wopts.threads = 1;
  WorkerOutcome wa, wb;
  std::thread ta([&] {
    WorkerOptions o = wopts;
    o.endpoint = rendezvous.wait();
    wa = run_worker(o);
  });
  std::thread tb([&] {
    WorkerOptions o = wopts;
    o.endpoint = rendezvous.wait();
    wb = run_worker(o);
  });

  ServeOptions options;
  options.endpoint = listen_endpoint_for("two");
  options.onListening = rendezvous.callback();
  options.shardSize = 3;
  options.localThreads = 1; // hybrid: local executor competes for shards
  const ServeOutcome outcome = serve_campaign(engine, options);
  ta.join();
  tb.join();

  EXPECT_TRUE(outcome.completed());
  EXPECT_EQ(outcome.workersSeen, 2);
  EXPECT_EQ(outcome.report, golden_report(config));
  EXPECT_TRUE(wa.shutdownReceived);
  EXPECT_TRUE(wb.shutdownReceived);
  std::remove(socket.c_str());
}

TEST(DistService, CorruptedFramesAreRejectedAndTheCampaignStillCompletes) {
  const SvcConfig config{18, 21, 1};
  const std::string socket = temp_socket_path("chaos");
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  WorkerOptions wopts;
  wopts.threads = 1;
  wopts.reconnectInitialMs = 5; // corruption drops cost a quick reconnect
  wopts.chaosCorruptEvery = 4;  // every 4th outgoing frame gets a flipped CRC
  WorkerOutcome wout;
  std::thread workerThread([&] {
    wopts.endpoint = rendezvous.wait();
    wout = run_worker(wopts);
  });

  ServeOptions options;
  options.endpoint = listen_endpoint_for("chaos");
  options.onListening = rendezvous.callback();
  options.shardSize = 3;
  // No local threads: every shard must survive the corrupting worker, so the
  // rejection path is guaranteed to fire (a local executor could otherwise
  // finish the campaign before the worker's first bad frame lands).
  options.localThreads = 0;
  const ServeOutcome outcome = serve_campaign(engine, options);
  workerThread.join();

  EXPECT_TRUE(outcome.completed());
  EXPECT_GT(outcome.framesRejected, 0)
      << "chaos hook never fired — the corruption path went untested";
  EXPECT_EQ(outcome.report, golden_report(config));
  std::remove(socket.c_str());
}

// A handshake-complete client that accepts a shard and then goes silent:
// the straggler. The watchdog must re-dispatch its shard without waiting
// for the connection to die.
TEST(DistService, SilentWorkerShardIsReDispatched) {
  // workMs slows the local executor down enough that the raw client below
  // reliably wins a shard before the campaign is over.
  const SvcConfig config{8, 3, 50};
  const std::string socket = temp_socket_path("straggler");
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  ServeOptions options;
  options.endpoint = listen_endpoint_for("straggler");
  options.onListening = rendezvous.callback();
  options.shardSize = 4;
  options.localThreads = 1;
  options.stallTimeoutSeconds = 0.3;

  ServeOutcome outcome;
  std::thread serveThread([&] { outcome = serve_campaign(engine, options); });

  // Handshake by hand so we can stop cooperating at exactly the right spot.
  // Failures are collected, not asserted: serveThread always finishes (the
  // local executor + watchdog complete the campaign regardless of what this
  // client does), and it must be joined before the test can exit.
  bool connected = false, welcomed = false, sentReady = false, sawAssign = false;
  {
    Socket sock = connect_client(rendezvous.wait());
    connected = sock.valid();

    FrameDecoder decoder;
    char buffer[4096];
    WelcomeMsg welcome;
    const auto pump = [&](MsgType expect, auto&& onFrame) {
      for (int spin = 0; spin < 500; ++spin) {
        const long n = sock.recv_some(buffer, sizeof(buffer), 10);
        if (n < 0) return false;
        if (n > 0) decoder.feed(buffer, static_cast<std::size_t>(n));
        const auto r = decoder.next();
        if (r.status == FrameDecoder::Status::Frame && r.type == expect) {
          onFrame(r.payload);
          return true;
        }
        if (r.status == FrameDecoder::Status::Error) return false;
      }
      return false;
    };
    if (connected &&
        sock.send_all(encode_frame(MsgType::Hello,
                                   encode_hello({kProtocolVersion}))) ==
            SendStatus::Ok) {
      welcomed = pump(MsgType::Welcome, [&](const std::string& payload) {
        welcomed = parse_welcome(payload, welcome);
      });
    }
    if (welcomed) {
      const auto myEngine = make_engine(welcome.engine, welcome.blob);
      ReadyMsg ready;
      ready.fingerprintCrc = runtime::crc32(myEngine->config_blob());
      ready.trials = myEngine->trials();
      sentReady =
          sock.send_all(encode_frame(MsgType::Ready, encode_ready(ready))) ==
          SendStatus::Ok;
    }
    if (sentReady) {
      sawAssign = pump(MsgType::ShardAssign, [](const std::string&) {});
    }
    // ... and now: nothing. No heartbeat, no result, connection held open
    // until serve_campaign finishes on its own.
    serveThread.join();
  }

  EXPECT_TRUE(connected);
  EXPECT_TRUE(welcomed);
  EXPECT_TRUE(sentReady);
  EXPECT_TRUE(sawAssign);
  EXPECT_TRUE(outcome.completed());
  EXPECT_GE(outcome.redispatches, 1)
      << "the watchdog never reclaimed the stalled shard";
  EXPECT_EQ(outcome.report, golden_report(config));
  std::remove(socket.c_str());
}

TEST(DistService, GarbageSpeakingClientIsDroppedWithoutDerailingTheRun) {
  // workMs keeps the campaign alive long enough for the garbage to arrive.
  const SvcConfig config{6, 17, 50};
  const std::string socket = temp_socket_path("garbage");
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  ServeOptions options;
  options.endpoint = listen_endpoint_for("garbage");
  options.onListening = rendezvous.callback();
  options.shardSize = 3;
  options.localThreads = 1;

  ServeOutcome outcome;
  std::thread serveThread([&] { outcome = serve_campaign(engine, options); });

  bool connected = false;
  {
    Socket sock = connect_client(rendezvous.wait());
    connected = sock.valid();
    // Not even close to a frame; the decoder classifies, the coordinator
    // drops the connection and the local executor finishes the campaign.
    if (connected)
      sock.send_all("GET / HTTP/1.1\r\nHost: wrong-protocol\r\n\r\n");
    serveThread.join();
  }

  EXPECT_TRUE(connected);
  EXPECT_TRUE(outcome.completed());
  EXPECT_GE(outcome.framesRejected, 1);
  // Not counted as a dropped WORKER: it never completed the handshake, so
  // it never held a shard. workersDropped stays an honest re-dispatch count.
  EXPECT_EQ(outcome.workersDropped, 0);
  EXPECT_EQ(outcome.report, golden_report(config));
  std::remove(socket.c_str());
}

// The acceptance test for the send-path degradation ladder: a handshaked
// client that solicits responses but never drains its socket (a black hole
// with a pulse). The coordinator's per-message send deadline must fire —
// instead of send() wedging the event loop forever — the connection must be
// QUARANTINED, its shards re-dispatched, and the local executor must finish
// the campaign bit-exactly.
TEST(DistService, NonDrainingWorkerIsQuarantinedBySendDeadline) {
  const SvcConfig config{8, 3, 100};
  SvcEngine engine(config);

  EndpointRendezvous rendezvous;
  ServeOptions options;
  options.endpoint = listen_endpoint_for("quarantine");
  options.onListening = rendezvous.callback();
  options.shardSize = 4;
  options.localThreads = 1;
  // The re-dispatch must come from the QUARANTINE, not the stall watchdog.
  options.stallTimeoutSeconds = 30.0;
  options.sendTimeoutMs = 250;
  // Tiny kernel send buffer (clamped to the kernel floor, ~4.6 KB on
  // Linux): a non-draining peer plugs it within ~100 response frames, so
  // the deadline fires in milliseconds instead of after megabytes.
  options.sendBufferBytes = 1;

  ServeOutcome outcome;
  std::thread serveThread([&] { outcome = serve_campaign(engine, options); });

  bool connected = false, welcomed = false, sentReady = false;
  {
    Socket sock = connect_client(rendezvous.wait());
    connected = sock.valid();
    // The receiving half of the same trick (it matters for tcp, where the
    // auto-tuned receive window would otherwise absorb megabytes of
    // responses before the coordinator's tiny send buffer ever filled):
    // clamp OUR receive queue to the kernel floor so the pipe plugs after a
    // couple of KB, not after minutes of bursting.
    if (connected) sock.set_recv_buffer(1);

    FrameDecoder decoder;
    char buffer[4096];
    WelcomeMsg welcome;
    if (connected &&
        sock.send_all(encode_frame(MsgType::Hello,
                                   encode_hello({kProtocolVersion}))) ==
            SendStatus::Ok) {
      for (int spin = 0; spin < 500 && !welcomed; ++spin) {
        const long n = sock.recv_some(buffer, sizeof(buffer), 10);
        if (n < 0) break;
        if (n > 0) decoder.feed(buffer, static_cast<std::size_t>(n));
        const auto r = decoder.next();
        if (r.status == FrameDecoder::Status::Frame &&
            r.type == MsgType::Welcome)
          welcomed = parse_welcome(r.payload, welcome);
        if (r.status == FrameDecoder::Status::Error) break;
      }
    }
    if (welcomed) {
      // The canonical blob IS the fingerprint input; no engine needed.
      ReadyMsg ready;
      ready.fingerprintCrc = runtime::crc32(welcome.blob);
      ready.trials = config.trials;
      const std::string readyFrame =
          encode_frame(MsgType::Ready, encode_ready(ready));
      sentReady = sock.send_all(readyFrame) == SendStatus::Ok;
      // ... and from here on, NEVER read. Every further Ready solicits a
      // response; the responses pile up in the kernel until the
      // coordinator's send deadline fires. Short client-side timeout: once
      // OUR sends start timing out the pipe is provably plugged both ways.
      for (int burst = 0; burst < 20000 && sentReady; ++burst) {
        if (sock.send_all(readyFrame, /*timeoutMs=*/50) != SendStatus::Ok)
          break;
      }
    }
    // Hold the plugged connection open until the campaign finishes without
    // us — if the event loop were wedged on send(), this join would hang
    // (and the test would time out).
    serveThread.join();
  }

  EXPECT_TRUE(connected);
  EXPECT_TRUE(welcomed);
  EXPECT_TRUE(sentReady);
  EXPECT_TRUE(outcome.completed());
  EXPECT_GE(outcome.sendTimeouts, 1) << "the send deadline never fired";
  EXPECT_GE(outcome.workersQuarantined, 1)
      << "the non-draining worker was not quarantined";
  EXPECT_GE(outcome.redispatches, 1)
      << "the quarantined worker's shards were not re-dispatched";
  EXPECT_EQ(outcome.report, golden_report(config));
}

TEST(DistService, WorkerGivesUpCleanlyWhenNoCoordinatorAppears) {
  WorkerOptions wopts;
  // tcp: the discard port is about as reliably connection-refused as it
  // gets on loopback; unix: a path nothing listens on.
  wopts.endpoint = tcp_transport() ? std::string("tcp:127.0.0.1:9")
                                   : "unix:" + temp_socket_path("absent");
  wopts.connectTimeoutMs = 200;
  wopts.reconnectInitialMs = 5;
  wopts.reconnectCapMs = 20;
  wopts.reconnectBudgetSeconds = 0.2;
  const WorkerOutcome out = run_worker(wopts);
  EXPECT_FALSE(out.shutdownReceived);
  EXPECT_EQ(out.exit_code(), 1);
  EXPECT_FALSE(out.error.empty());
}

// Regression (found by the network-chaos drill): a middlebox that ACCEPTS
// the dial but never speaks — a proxy whose upstream coordinator died, a
// wedged listener whose backlog still accepts — must not refresh the
// reconnect budget. The worker once treated every successful connect() as
// contact and spun forever against such a peer.
TEST(DistService, WorkerRetiresWhenDialsSucceedButNoCoordinatorSpeaks) {
  std::string error;
  Socket listener;
  std::string endpointText;
  std::string unixPath;
  if (tcp_transport()) {
    int port = 0;
    listener = Socket::listen_tcp("127.0.0.1", 0, error, port);
    endpointText = "tcp:127.0.0.1:" + std::to_string(port);
  } else {
    unixPath = temp_socket_path("acceptonly");
    listener = Socket::listen_unix(unixPath, error);
    endpointText = "unix:" + unixPath;
  }
  ASSERT_TRUE(listener.valid()) << error;

  std::atomic<bool> stop{false};
  std::thread middlebox([&] {
    while (!stop.load()) {
      Socket conn = listener.accept_pending();
      conn.close(); // accepted, then the "upstream" is gone: instant drop
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  WorkerOptions wopts;
  wopts.endpoint = endpointText;
  wopts.connectTimeoutMs = 200;
  wopts.reconnectInitialMs = 5;
  wopts.reconnectCapMs = 20;
  wopts.reconnectBudgetSeconds = 0.3;
  const auto t0 = std::chrono::steady_clock::now();
  const WorkerOutcome out = run_worker(wopts);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  stop.store(true);
  middlebox.join();
  if (!unixPath.empty()) std::remove(unixPath.c_str());

  EXPECT_FALSE(out.shutdownReceived);
  EXPECT_EQ(out.exit_code(), 1);
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "the reconnect budget never expired against an accept-only peer";
}

TEST(DistService, MergedCheckpointIsResumableBySingleProcessSupervisor) {
  // The coordinator's merged campaign state is a normal engine checkpoint:
  // write one mid-campaign, then finish it with a plain engine merge.
  const SvcConfig config{10, 2, 0};
  SvcEngine ran(config);
  CancelToken cancel;
  for (int id = 0; id < 5; ++id) ran.run_trial(id, cancel);
  const std::string halfDoc = ran.serialize({0, 1, 2, 3, 4});

  SvcEngine resumed(config);
  const std::vector<int> recovered = resumed.merge(halfDoc);
  EXPECT_EQ(recovered.size(), 5u);
  for (int id = 5; id < 10; ++id) resumed.run_trial(id, cancel);
  EXPECT_EQ(resumed.report(), golden_report(config));
}

} // namespace
} // namespace nvff::dist
