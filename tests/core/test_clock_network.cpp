// Clock-network model: H-tree accounting, MBFF merging effect.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/clock_network.hpp"
#include "util/rng.hpp"

namespace nvff::core {
namespace {

std::vector<pairing::FlipFlopSite> grid_sites(int n, double pitch) {
  std::vector<pairing::FlipFlopSite> sites;
  for (int i = 0; i < n; ++i) {
    sites.push_back({"f" + std::to_string(i), (i % 8) * pitch, (i / 8) * pitch});
  }
  return sites;
}

TEST(ClockNetwork, PinCapIsLinearInSinks) {
  const ClockModelParams p;
  const auto e16 = estimate_clock_network(grid_sites(16, 3.0), p);
  const auto e64 = estimate_clock_network(grid_sites(64, 3.0), p);
  EXPECT_NEAR(e16.pinCapF, 16 * p.cPinClkFf, 1e-20);
  EXPECT_NEAR(e64.pinCapF, 64 * p.cPinClkFf, 1e-20);
  EXPECT_GT(e64.wireCapF, e16.wireCapF);
  EXPECT_GE(e64.buffers, e16.buffers);
}

TEST(ClockNetwork, PowerFollowsFV2C) {
  ClockModelParams p;
  const auto sites = grid_sites(32, 2.0);
  const auto base = estimate_clock_network(sites, p);
  p.frequency *= 2.0;
  const auto doubled = estimate_clock_network(sites, p);
  EXPECT_NEAR(doubled.dynamicPowerW, 2.0 * base.dynamicPowerW, 1e-12);
}

TEST(ClockNetwork, MbffMergingReducesCapAndPower) {
  const ClockModelParams p;
  const auto sites = grid_sites(64, 2.0);
  pairing::PairingOptions popt;
  popt.maxDistance = 3.35;
  const auto pairs = pairing::pair_flip_flops(sites, popt);
  ASSERT_GT(pairs.num_pairs(), 20u);
  const auto single = estimate_clock_network(sites, p);
  const auto mbff = estimate_clock_network_mbff(sites, pairs, p);
  EXPECT_EQ(mbff.sinks, pairs.num_pairs() + pairs.unmatched.size());
  EXPECT_LT(mbff.pinCapF, single.pinCapF);
  EXPECT_LT(mbff.dynamicPowerW, single.dynamicPowerW);
}

TEST(ClockNetwork, MergedSinkSitsBetweenItsMembers) {
  std::vector<pairing::FlipFlopSite> sites = {{"a", 0, 0}, {"b", 2, 0}};
  pairing::PairingResult pairs;
  pairs.pairs.push_back({0, 1, 2.0});
  const auto e = estimate_clock_network_mbff(sites, pairs, {});
  EXPECT_EQ(e.sinks, 1u);
}

TEST(ClockNetwork, EmptyInputIsSafe) {
  const auto e = estimate_clock_network({}, {});
  EXPECT_EQ(e.sinks, 0u);
  EXPECT_DOUBLE_EQ(e.totalCapF(), 0.0);
}

TEST(ClockNetwork, UnmatchedKeepSingleBitPins) {
  const ClockModelParams p;
  std::vector<pairing::FlipFlopSite> sites = {{"a", 0, 0}, {"b", 50, 0}};
  pairing::PairingResult none;
  none.unmatched = {0, 1};
  const auto merged = estimate_clock_network_mbff(sites, none, p);
  const auto plain = estimate_clock_network(sites, p);
  EXPECT_DOUBLE_EQ(merged.pinCapF, plain.pinCapF);
}

TEST(ClockNetwork, LeafGroupsPartitionTheSinks) {
  ClockModelParams p;
  p.sinksPerLeafBuffer = 16;
  const auto sites = grid_sites(100, 2.5);
  const auto groups = clock_leaf_groups(sites, p);
  ASSERT_FALSE(groups.empty());
  std::vector<int> seen(sites.size(), 0);
  for (const auto& g : groups) {
    EXPECT_FALSE(g.empty());
    EXPECT_LE(g.size(), static_cast<std::size_t>(p.sinksPerLeafBuffer));
    EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
    for (int idx : g) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, static_cast<int>(sites.size()));
      ++seen[static_cast<std::size_t>(idx)];
    }
  }
  // Every sink appears in exactly one group: a partition, no loss, no dup.
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ClockNetwork, LeafGroupCountMatchesLeafBuffers) {
  // The groups are exactly the leaf spines the estimator prices, so their
  // count plus the internal split nodes must reproduce the buffer count.
  ClockModelParams p;
  p.sinksPerLeafBuffer = 8;
  const auto sites = grid_sites(64, 3.0);
  const auto groups = clock_leaf_groups(sites, p);
  const auto est = estimate_clock_network(sites, p);
  EXPECT_LE(static_cast<int>(groups.size()), est.buffers);
  EXPECT_GE(static_cast<std::size_t>(est.buffers), groups.size());
  EXPECT_GE(groups.size(), sites.size() / static_cast<std::size_t>(p.sinksPerLeafBuffer));
}

TEST(ClockNetwork, LeafGroupsDeterministicUnderCoincidentSites) {
  // Stacked coordinates used to make the median split order-dependent; the
  // index tie-break pins the grouping down.
  std::vector<pairing::FlipFlopSite> sites;
  for (int i = 0; i < 40; ++i)
    sites.push_back({"f" + std::to_string(i), (i / 20) * 5.0, 1.0});
  ClockModelParams p;
  p.sinksPerLeafBuffer = 4;
  const auto a = clock_leaf_groups(sites, p);
  const auto b = clock_leaf_groups(sites, p);
  EXPECT_EQ(a, b);
  std::vector<int> seen(sites.size(), 0);
  for (const auto& g : a)
    for (int idx : g) ++seen[static_cast<std::size_t>(idx)];
  for (int count : seen) EXPECT_EQ(count, 1);
}

} // namespace
} // namespace nvff::core
