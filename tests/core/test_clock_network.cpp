// Clock-network model: H-tree accounting, MBFF merging effect.
#include <gtest/gtest.h>

#include "core/clock_network.hpp"
#include "util/rng.hpp"

namespace nvff::core {
namespace {

std::vector<pairing::FlipFlopSite> grid_sites(int n, double pitch) {
  std::vector<pairing::FlipFlopSite> sites;
  for (int i = 0; i < n; ++i) {
    sites.push_back({"f" + std::to_string(i), (i % 8) * pitch, (i / 8) * pitch});
  }
  return sites;
}

TEST(ClockNetwork, PinCapIsLinearInSinks) {
  const ClockModelParams p;
  const auto e16 = estimate_clock_network(grid_sites(16, 3.0), p);
  const auto e64 = estimate_clock_network(grid_sites(64, 3.0), p);
  EXPECT_NEAR(e16.pinCapF, 16 * p.cPinClkFf, 1e-20);
  EXPECT_NEAR(e64.pinCapF, 64 * p.cPinClkFf, 1e-20);
  EXPECT_GT(e64.wireCapF, e16.wireCapF);
  EXPECT_GE(e64.buffers, e16.buffers);
}

TEST(ClockNetwork, PowerFollowsFV2C) {
  ClockModelParams p;
  const auto sites = grid_sites(32, 2.0);
  const auto base = estimate_clock_network(sites, p);
  p.frequency *= 2.0;
  const auto doubled = estimate_clock_network(sites, p);
  EXPECT_NEAR(doubled.dynamicPowerW, 2.0 * base.dynamicPowerW, 1e-12);
}

TEST(ClockNetwork, MbffMergingReducesCapAndPower) {
  const ClockModelParams p;
  const auto sites = grid_sites(64, 2.0);
  pairing::PairingOptions popt;
  popt.maxDistance = 3.35;
  const auto pairs = pairing::pair_flip_flops(sites, popt);
  ASSERT_GT(pairs.num_pairs(), 20u);
  const auto single = estimate_clock_network(sites, p);
  const auto mbff = estimate_clock_network_mbff(sites, pairs, p);
  EXPECT_EQ(mbff.sinks, pairs.num_pairs() + pairs.unmatched.size());
  EXPECT_LT(mbff.pinCapF, single.pinCapF);
  EXPECT_LT(mbff.dynamicPowerW, single.dynamicPowerW);
}

TEST(ClockNetwork, MergedSinkSitsBetweenItsMembers) {
  std::vector<pairing::FlipFlopSite> sites = {{"a", 0, 0}, {"b", 2, 0}};
  pairing::PairingResult pairs;
  pairs.pairs.push_back({0, 1, 2.0});
  const auto e = estimate_clock_network_mbff(sites, pairs, {});
  EXPECT_EQ(e.sinks, 1u);
}

TEST(ClockNetwork, EmptyInputIsSafe) {
  const auto e = estimate_clock_network({}, {});
  EXPECT_EQ(e.sinks, 0u);
  EXPECT_DOUBLE_EQ(e.totalCapF(), 0.0);
}

TEST(ClockNetwork, UnmatchedKeepSingleBitPins) {
  const ClockModelParams p;
  std::vector<pairing::FlipFlopSite> sites = {{"a", 0, 0}, {"b", 50, 0}};
  pairing::PairingResult none;
  none.unmatched = {0, 1};
  const auto merged = estimate_clock_network_mbff(sites, none, p);
  const auto plain = estimate_clock_network(sites, p);
  EXPECT_DOUBLE_EQ(merged.pinCapF, plain.pinCapF);
}

} // namespace
} // namespace nvff::core
