// System-level flow: roll-up arithmetic against the published Table III,
// end-to-end pipeline checks, DEF-script equivalence.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/reports.hpp"
#include "physdes/def_io.hpp"

namespace nvff::core {
namespace {

/// Published Table III row (the ground truth the roll-up must reproduce
/// when fed the paper's pair counts and the paper's Table II cell values).
struct Table3Row {
  const char* name;
  int totalFfs;
  int pairs;
  double areaStd;
  double energyStd;
  double areaProp;
  double energyProp;
  double areaImpr;
  double energyImpr;
};

const Table3Row kPaperRows[] = {
    {"s344", 15, 5, 42.255, 42.375, 32.565, 37.06, 22.93, 12.54},
    {"s838", 32, 12, 90.144, 90.4, 66.888, 77.644, 25.80, 14.11},
    {"s1423", 74, 23, 208.458, 209.05, 163.884, 184.601, 21.38, 11.70},
    {"s5378", 176, 64, 495.792, 497.2, 371.76, 429.168, 25.02, 13.68},
    {"s13207", 627, 259, 1766.259, 1771.275, 1264.317, 1495.958, 28.42, 15.54},
    {"s38584", 1424, 473, 4011.408, 4022.8, 3094.734, 3520.001, 22.85, 12.50},
    {"s35932", 1728, 472, 4867.776, 4881.6, 3953.04, 4379.864, 18.79, 10.28},
    {"b14", 215, 90, 605.655, 607.375, 431.235, 511.705, 28.80, 15.75},
    {"b15", 416, 189, 1171.872, 1175.2, 805.59, 974.293, 31.26, 17.10},
    {"b17", 1317, 542, 3709.989, 3720.525, 2659.593, 3144.379, 28.31, 15.49},
    {"b18", 3020, 1260, 8507.34, 8531.5, 6065.46, 7192.12, 28.70, 15.70},
    {"b19", 6042, 2530, 17020.314, 17068.65, 12117.174, 14379.26, 28.81, 15.76},
    {"or1200", 2887, 1269, 8132.679, 8155.775, 5673.357, 6806.828, 30.24, 16.54},
};

class RollUpVsPaper : public ::testing::TestWithParam<Table3Row> {};

TEST_P(RollUpVsPaper, ReproducesPublishedRowExactly) {
  // Feeding the published pair counts + Table II cell values through our
  // roll-up must land on the published areas/energies — this validates that
  // we decoded the paper's accounting exactly.
  const Table3Row& row = GetParam();
  const RollUp r = roll_up(static_cast<std::size_t>(row.totalFfs),
                           static_cast<std::size_t>(row.pairs), NvCellSet::paper());
  EXPECT_NEAR(r.areaStd, row.areaStd, 0.01) << row.name;
  EXPECT_NEAR(r.energyStd * 1e15, row.energyStd, 0.15) << row.name;
  EXPECT_NEAR(r.areaProp, row.areaProp, 0.01) << row.name;
  EXPECT_NEAR(r.energyProp * 1e15, row.energyProp, 0.15) << row.name;
  EXPECT_NEAR(improvement_percent(r.areaStd, r.areaProp), row.areaImpr, 0.05)
      << row.name;
  EXPECT_NEAR(improvement_percent(r.energyStd, r.energyProp), row.energyImpr, 0.30)
      << row.name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, RollUpVsPaper, ::testing::ValuesIn(kPaperRows),
                         [](const ::testing::TestParamInfo<Table3Row>& info) {
                           return std::string(info.param.name);
                         });

TEST(Flow, SmallBenchmarkEndToEnd) {
  const FlowReport r = run_flow(bench::find_benchmark("s344"));
  EXPECT_EQ(r.totalFlipFlops, 15u);
  EXPECT_GT(r.pairs, 0u);
  EXPECT_LE(2 * r.pairs, r.totalFlipFlops);
  EXPECT_GT(r.areaImprovementPct, 0.0);
  EXPECT_GT(r.energyImprovementPct, 0.0);
  // Area improvement can never beat the 2-bit cell-level bound.
  EXPECT_LT(r.areaImprovementPct, 35.0);
  // All pairs within the paper threshold.
  for (const auto& p : r.pairing.pairs) EXPECT_LE(p.distance, 3.36);
}

TEST(Flow, PairCountsTrackPaperWithinTolerance) {
  // Spatial-statistics validation for the small/medium benchmarks (the full
  // set runs in bench_table3): pair counts within ~20 % of published.
  for (const char* name : {"s344", "s838", "s1423", "s5378", "s13207"}) {
    const auto& spec = bench::find_benchmark(name);
    const FlowReport r = run_flow(spec);
    const double ratio =
        static_cast<double>(r.pairs) / static_cast<double>(spec.paperPairs);
    EXPECT_GT(ratio, 0.8) << name;
    EXPECT_LT(ratio, 1.25) << name;
  }
}

TEST(Flow, DefScriptPathMatchesDirectPath) {
  // The paper runs pairing over the DEF artifact; our direct placement path
  // and the DEF round-trip path must agree.
  const auto& spec = bench::find_benchmark("s838");
  const FlowReport direct = run_flow(spec);
  const std::string defText =
      physdes::to_def(direct.placement, direct.circuit.netlist);
  const auto defSites = ff_sites_from_def(defText);
  ASSERT_EQ(defSites.size(), direct.ffSites.size());
  FlowOptions opt;
  const auto defPairing = pairing::pair_flip_flops(defSites, opt.pairing);
  EXPECT_EQ(defPairing.num_pairs(), direct.pairs);
}

TEST(Flow, ImprovementGrowsWithPairedFraction) {
  // The paper's observation: "improvements increase with the number of
  // 2-bit NV flip-flop designs".
  const NvCellSet cells = NvCellSet::paper();
  const RollUp low = roll_up(100, 10, cells);
  const RollUp high = roll_up(100, 45, cells);
  EXPECT_GT(improvement_percent(high.areaStd, high.areaProp),
            improvement_percent(low.areaStd, low.areaProp));
  EXPECT_GT(improvement_percent(high.energyStd, high.energyProp),
            improvement_percent(low.energyStd, low.energyProp));
}

TEST(Flow, ZeroPairsMeansZeroImprovement) {
  const RollUp r = roll_up(50, 0, NvCellSet::paper());
  EXPECT_DOUBLE_EQ(r.areaStd, r.areaProp);
  EXPECT_DOUBLE_EQ(r.energyStd, r.energyProp);
}

TEST(Flow, MeasuredCellValuesAreSane) {
  cell::Characterizer chr;
  chr.timestep = 4e-12;
  const NvCellSet cells = NvCellSet::measured(chr);
  EXPECT_NEAR(cells.standard1bit.areaUm2, 5.635 / 2, 0.01);
  EXPECT_NEAR(cells.proposed2bit.areaUm2, 3.696, 0.01);
  // Measured energy advantage per 2 bits must exist.
  EXPECT_LT(cells.proposed2bit.readEnergyJ, 2.0 * cells.standard1bit.readEnergyJ);
}

TEST(Flow, NetlistOverloadWorks) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  const FlowReport r = run_flow_on_netlist(nl);
  EXPECT_EQ(r.benchmark, "s344");
  EXPECT_EQ(r.totalFlipFlops, 15u);
}

TEST(Reports, FloorplanRendersPairsAndLogic) {
  const FlowReport r = run_flow(bench::find_benchmark("s344"));
  const std::string art = render_floorplan(r, 60, 20);
  EXPECT_NE(art.find("s344"), std::string::npos);
  EXPECT_NE(art.find('A'), std::string::npos); // at least one pair letter
  EXPECT_NE(art.find('.'), std::string::npos); // logic background
}

TEST(Reports, Table3RendersAllBenchmarks) {
  std::vector<FlowReport> reports;
  reports.push_back(run_flow(bench::find_benchmark("s344")));
  reports.push_back(run_flow(bench::find_benchmark("s838")));
  const std::string text = render_table3(reports);
  EXPECT_NE(text.find("s344"), std::string::npos);
  EXPECT_NE(text.find("s838"), std::string::npos);
  EXPECT_NE(text.find("average improvement"), std::string::npos);
  const std::string csv = table3_csv(reports);
  EXPECT_NE(csv.find("benchmark,total_ffs"), std::string::npos);
}

} // namespace
} // namespace nvff::core
