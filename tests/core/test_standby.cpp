// Standby energy model: scheme accounting, break-even semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/standby.hpp"

namespace nvff::core {
namespace {

StandbyParams toy() {
  StandbyParams p;
  p.totalFfs = 100;
  p.pairs = 40; // 80 FFs in 2-bit cells, 20 singles
  p.ffRetentionPowerW = 1e-9;
  p.nvWriteEnergyPerBitJ = 100e-15;
  p.nv1RestorePerBitJ = 10e-15;
  p.nv2RestorePerCellJ = 16e-15; // 20 % cheaper than 2 x 10 fJ
  p.busTransferPerBitJ = 15e-15;
  return p;
}

TEST(Standby, RetentionScalesLinearlyWithTime) {
  const StandbyParams p = toy();
  const auto e1 = standby_energy(p, 1e-6);
  const auto e2 = standby_energy(p, 2e-6);
  EXPECT_NEAR(e2.retentionJ, 2.0 * e1.retentionJ, 1e-24);
  // NV cost is time-independent (store+restore only).
  EXPECT_DOUBLE_EQ(e1.nvShadow1bitJ, e2.nvShadow1bitJ);
  EXPECT_DOUBLE_EQ(e1.nvShadowMultibitJ, e2.nvShadowMultibitJ);
}

TEST(Standby, HandComputedValues) {
  const StandbyParams p = toy();
  const auto e = standby_energy(p, 1e-6);
  // retention: 100 * 1nW * 1us = 1e-13.
  EXPECT_NEAR(e.retentionJ, 1e-13, 1e-20);
  // save+restore: 2 * 100 * 15 fJ = 3e-12.
  EXPECT_NEAR(e.saveRestoreJ, 3e-12, 1e-20);
  // NV 1-bit: 100 * 100 fJ + 100 * 10 fJ = 1.1e-11.
  EXPECT_NEAR(e.nvShadow1bitJ, 1.1e-11, 1e-20);
  // NV multibit: store same, restore 40 * 16 fJ + 20 * 10 fJ = 0.84 pJ.
  EXPECT_NEAR(e.nvShadowMultibitJ, 100 * 100e-15 + 0.84e-12, 1e-20);
}

TEST(Standby, MultibitAlwaysAtMostOneBit) {
  const StandbyParams p = toy();
  for (double t : {0.0, 1e-6, 1e-3, 1.0}) {
    const auto e = standby_energy(p, t);
    EXPECT_LE(e.nvShadowMultibitJ, e.nvShadow1bitJ);
  }
}

TEST(Standby, BreakEvenCrossoverIsConsistent) {
  const StandbyParams p = toy();
  const double t1 = nv_break_even_seconds(p, false);
  const double tm = nv_break_even_seconds(p, true);
  // Multibit restores cheaper -> earlier break-even.
  EXPECT_LT(tm, t1);
  // At the break-even instant, retention equals the NV cost.
  const auto at = standby_energy(p, t1);
  EXPECT_NEAR(at.retentionJ, at.nvShadow1bitJ, 1e-18);
  // Just before, retention is cheaper; just after, NV wins.
  EXPECT_LT(standby_energy(p, 0.9 * t1).retentionJ, at.nvShadow1bitJ);
  EXPECT_GT(standby_energy(p, 1.1 * t1).retentionJ, at.nvShadow1bitJ);
}

TEST(Standby, ZeroRetentionPowerNeverBreaksEven) {
  StandbyParams p = toy();
  p.ffRetentionPowerW = 0.0;
  EXPECT_TRUE(std::isinf(nv_break_even_seconds(p, false)));
}

TEST(Standby, FromMeasuredPopulatesEverything) {
  cell::Characterizer chr;
  chr.timestep = 6e-12;
  const StandbyParams p =
      StandbyParams::from_measured(chr, cell::Corner::Typical, 64, 20);
  EXPECT_EQ(p.totalFfs, 64u);
  EXPECT_EQ(p.pairs, 20u);
  EXPECT_GT(p.ffRetentionPowerW, 0.0);
  EXPECT_GT(p.nvWriteEnergyPerBitJ, 0.0);
  EXPECT_GT(p.nv1RestorePerBitJ, 0.0);
  // The multi-bit restore must beat two single-bit restores (Table II).
  EXPECT_LT(p.nv2RestorePerCellJ, 2.0 * p.nv1RestorePerBitJ);
}

TEST(Standby, PolicySemantics) {
  const StandbyParams p = toy();
  const double breakEven = nv_break_even_seconds(p, true);
  const std::vector<double> shortOnly(50, 0.1 * breakEven);
  const std::vector<double> longOnly(50, 10.0 * breakEven);
  // Threshold policy equals the better naive policy on one-sided traces.
  EXPECT_DOUBLE_EQ(
      total_standby_energy(p, shortOnly, GatingPolicy::BreakEvenThreshold, true),
      total_standby_energy(p, shortOnly, GatingPolicy::NeverGate, true));
  EXPECT_DOUBLE_EQ(
      total_standby_energy(p, longOnly, GatingPolicy::BreakEvenThreshold, true),
      total_standby_energy(p, longOnly, GatingPolicy::AlwaysGate, true));
}

TEST(Standby, ThresholdPolicyNeverLosesToNaive) {
  const StandbyParams p = toy();
  const double breakEven = nv_break_even_seconds(p, true);
  std::vector<double> mixed;
  for (int i = 0; i < 100; ++i) {
    mixed.push_back(breakEven * (0.05 + 0.05 * i)); // straddles the threshold
  }
  const double smart =
      total_standby_energy(p, mixed, GatingPolicy::BreakEvenThreshold, true);
  EXPECT_LE(smart, total_standby_energy(p, mixed, GatingPolicy::NeverGate, true));
  EXPECT_LE(smart, total_standby_energy(p, mixed, GatingPolicy::AlwaysGate, true));
}

TEST(Standby, RetryOverheadScalesStoreEnergy) {
  StandbyParams p = toy();
  const auto base = standby_energy(p, 1e-6);
  p.pRetry = 0.25; // a quarter of the writes need one verified retry
  const auto retried = standby_energy(p, 1e-6);
  // Only the store term grows, by exactly (1 + pRetry) on the write energy.
  const double extra = 0.25 * 100 * 100e-15;
  EXPECT_NEAR(retried.nvShadow1bitJ, base.nvShadow1bitJ + extra, 1e-24);
  EXPECT_NEAR(retried.nvShadowMultibitJ, base.nvShadowMultibitJ + extra, 1e-24);
  EXPECT_DOUBLE_EQ(retried.retentionJ, base.retentionJ);
  EXPECT_DOUBLE_EQ(retried.saveRestoreJ, base.saveRestoreJ);
  // And the break-even point moves out accordingly.
  EXPECT_GT(nv_break_even_seconds(p, true), nv_break_even_seconds(toy(), true));
}

TEST(Standby, BreakEvenDegenerateCorners) {
  // No flip-flops, no leakage: nothing on either side of the trade-off.
  StandbyParams empty;
  EXPECT_TRUE(std::isinf(nv_break_even_seconds(empty, false)));
  EXPECT_TRUE(std::isinf(nv_break_even_seconds(empty, true)));

  // No flip-flops but a leaky domain: gating is free and wins immediately.
  StandbyParams leakyOnly;
  leakyOnly.logicLeakageW = 1e-6;
  EXPECT_DOUBLE_EQ(nv_break_even_seconds(leakyOnly, false), 0.0);

  // Flip-flops with zero NV energies: same — NV costs nothing.
  StandbyParams freeNv = toy();
  freeNv.nvWriteEnergyPerBitJ = 0.0;
  freeNv.nv1RestorePerBitJ = 0.0;
  freeNv.nv2RestorePerCellJ = 0.0;
  EXPECT_DOUBLE_EQ(nv_break_even_seconds(freeNv, false), 0.0);
  EXPECT_DOUBLE_EQ(nv_break_even_seconds(freeNv, true), 0.0);

  // Flip-flops that cost energy but retain for free: NV never wins, and the
  // result is a clean infinity rather than a division artifact.
  StandbyParams freeRetention = toy();
  freeRetention.ffRetentionPowerW = 0.0;
  EXPECT_TRUE(std::isinf(nv_break_even_seconds(freeRetention, false)));
  const double be = nv_break_even_seconds(freeRetention, true);
  EXPECT_TRUE(std::isinf(be) && !std::isnan(be));
}

} // namespace
} // namespace nvff::core
