// Headline regression guard: the calibrated reproduction numbers recorded
// in EXPERIMENTS.md must not drift when the substrates change. Bands are
// deliberately loose enough to survive timestep choices but tight enough to
// catch calibration regressions.
#include <gtest/gtest.h>

#include "cell/characterize.hpp"
#include "core/flow.hpp"
#include "core/reports.hpp"
#include "util/stats.hpp"

namespace nvff {
namespace {

TEST(Headline, Table2CircuitLevelBands) {
  cell::Characterizer chr;
  chr.timestep = 4e-12;
  const cell::LatchMetrics stdTyp = chr.standard_pair(cell::Corner::Typical);
  const cell::LatchMetrics propTyp = chr.proposed_2bit(cell::Corner::Typical);

  // Areas and transistor counts are exact by construction.
  EXPECT_NEAR(stdTyp.areaUm2, 5.635, 0.002);
  EXPECT_NEAR(propTyp.areaUm2, 3.696, 0.002);
  EXPECT_EQ(stdTyp.readTransistors, 22);
  EXPECT_EQ(propTyp.readTransistors, 16);

  // Calibrated bands (see EXPERIMENTS.md).
  EXPECT_NEAR(stdTyp.readDelay * 1e12, 192, 40);   // paper 187 ps
  EXPECT_NEAR(propTyp.readDelay * 1e12, 475, 90);  // paper 360 ps, ours ~2.4x
  const double energyImpr =
      improvement_percent(stdTyp.readEnergy, propTyp.readEnergy);
  EXPECT_GT(energyImpr, 8.0);   // paper 19 %, ours ~12 %
  EXPECT_LT(energyImpr, 25.0);
  EXPECT_LT(propTyp.leakage, stdTyp.leakage); // fewer transistors
  // Write path identical between designs (the paper's invariant).
  EXPECT_NEAR(propTyp.writeEnergy / stdTyp.writeEnergy, 1.0, 0.02);
  EXPECT_TRUE(stdTyp.functional);
  EXPECT_TRUE(propTyp.functional);
}

TEST(Headline, Table3SystemLevelAverages) {
  double areaSum = 0.0;
  double energySum = 0.0;
  double paperPairRatioSum = 0.0;
  int n = 0;
  for (const auto& spec : bench::paper_benchmarks()) {
    if (spec.logicGates > 40000) continue; // big ones covered by the bench
    const core::FlowReport r = core::run_flow(spec);
    areaSum += r.areaImprovementPct;
    energySum += r.energyImprovementPct;
    paperPairRatioSum +=
        static_cast<double>(r.pairs) / static_cast<double>(spec.paperPairs);
    ++n;
  }
  ASSERT_GT(n, 5);
  // Paper averages: 26 % area, 14 % energy. Allow the small-benchmark
  // subset a band around them.
  EXPECT_NEAR(areaSum / n, 26.0, 4.0);
  EXPECT_NEAR(energySum / n, 14.3, 2.5);
  // Pair counts stay near the published ones on average.
  EXPECT_NEAR(paperPairRatioSum / n, 1.0, 0.12);
}

TEST(Headline, LayoutModelThreshold) {
  EXPECT_NEAR(cell::pairing_distance_threshold_um(), 3.35, 0.01);
}

TEST(Headline, MtjWriteCalibration) {
  const mtj::MtjModel model(mtj::MtjParams::table1());
  EXPECT_NEAR(model.switching_time(70e-6) * 1e9, 2.0, 0.02); // paper's 2 ns
  EXPECT_GT(model.retention_time(), 3.15e7 * 10.0); // > 10 years
}

} // namespace
} // namespace nvff
