// Logic simulator + NV shadow bank + power-cycle transparency property.
#include <gtest/gtest.h>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"
#include "sim/logic_sim.hpp"

namespace nvff::sim {
namespace {

using bench::GateType;
using bench::Netlist;

struct TruthCase {
  const char* type;
  bool a;
  bool b;
  bool expected;
};

class GateTruth : public ::testing::TestWithParam<TruthCase> {};

TEST_P(GateTruth, TwoInputGates) {
  const TruthCase& tc = GetParam();
  Netlist nl;
  const auto a = nl.add_gate(GateType::Input, "a");
  const auto b = nl.add_gate(GateType::Input, "b");
  GateType type;
  ASSERT_TRUE(bench::parse_gate_type(tc.type, type));
  const auto g = nl.add_gate(type, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  LogicSimulator sim(nl);
  sim.set_inputs({tc.a, tc.b});
  sim.evaluate();
  EXPECT_EQ(sim.value(g), tc.expected)
      << tc.type << "(" << tc.a << "," << tc.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTruth,
    ::testing::Values(
        TruthCase{"AND", true, true, true}, TruthCase{"AND", true, false, false},
        TruthCase{"NAND", true, true, false}, TruthCase{"NAND", false, true, true},
        TruthCase{"OR", false, false, false}, TruthCase{"OR", false, true, true},
        TruthCase{"NOR", false, false, true}, TruthCase{"NOR", true, false, false},
        TruthCase{"XOR", true, true, false}, TruthCase{"XOR", true, false, true},
        TruthCase{"XNOR", true, true, true}, TruthCase{"XNOR", false, true, false}));

TEST(LogicSim, InverterAndBuffer) {
  Netlist nl;
  const auto a = nl.add_gate(GateType::Input, "a");
  const auto inv = nl.add_gate(GateType::Not, "inv", {a});
  const auto buf = nl.add_gate(GateType::Buf, "buf", {a});
  nl.finalize();
  LogicSimulator sim(nl);
  sim.set_inputs({true});
  sim.evaluate();
  EXPECT_FALSE(sim.value(inv));
  EXPECT_TRUE(sim.value(buf));
}

TEST(LogicSim, DffShiftsOnTick) {
  // 3-stage shift register.
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(d)
q0 = DFF(d)
q1 = DFF(q0)
q2 = DFF(q1)
OUTPUT(q2)
)");
  LogicSimulator sim(nl);
  const bool pattern[] = {true, false, true, true, false, false};
  std::vector<bool> seen;
  for (bool bit : pattern) {
    sim.cycle({bit});
    seen.push_back(sim.output_values()[0]);
  }
  // seen[k] is sampled after k+1 clock edges; a 3-stage register first
  // exposes pattern[0] after the 3rd edge, i.e. at seen[2].
  EXPECT_EQ(seen[0], false);
  EXPECT_EQ(seen[1], false);
  EXPECT_EQ(seen[2], pattern[0]);
  EXPECT_EQ(seen[3], pattern[1]);
  EXPECT_EQ(seen[4], pattern[2]);
  EXPECT_EQ(seen[5], pattern[3]);
}

TEST(LogicSim, ToggleCounterCounts) {
  // T-flip-flop built from XOR feedback: q toggles every cycle with t=1.
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(t)
n = XOR(t, q)
q = DFF(n)
OUTPUT(q)
)");
  LogicSimulator sim(nl);
  for (int i = 0; i < 10; ++i) sim.cycle({true});
  EXPECT_EQ(sim.ff_toggle_count(), 10u);
  for (int i = 0; i < 5; ++i) sim.cycle({false});
  EXPECT_EQ(sim.ff_toggle_count(), 10u); // holds, no toggles
}

TEST(LogicSim, StateSaveLoadRoundTrip) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  LogicSimulator sim(nl);
  Rng rng(3);
  for (int c = 0; c < 20; ++c) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    sim.cycle(in);
  }
  const auto saved = sim.flip_flop_state();
  Rng scramble(17);
  sim.scramble_state(scramble);
  EXPECT_NE(sim.flip_flop_state(), saved); // scramble actually destroyed state
  sim.load_flip_flop_state(saved);
  EXPECT_EQ(sim.flip_flop_state(), saved);
}

TEST(NvShadow, StoreRestoreLifecycle) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  LogicSimulator sim(nl);
  NvShadowBank bank(nl.num_flip_flops());
  EXPECT_FALSE(bank.has_backup());
  EXPECT_THROW(bank.restore(sim), std::logic_error);
  bank.store(sim);
  EXPECT_TRUE(bank.has_backup());
  bank.restore(sim);
  EXPECT_EQ(bank.store_count(), 1u);
  EXPECT_EQ(bank.restore_count(), 1u);
}

TEST(NvShadow, RejectsSizeMismatch) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  LogicSimulator sim(nl);
  NvShadowBank bank(nl.num_flip_flops() + 1);
  EXPECT_THROW(bank.store(sim), std::invalid_argument);
}

class Transparency : public ::testing::TestWithParam<const char*> {};

TEST_P(Transparency, PowerCycleIsInvisible) {
  // The normally-off property: store -> power collapse -> restore is
  // indistinguishable from uninterrupted execution.
  const auto nl = bench::generate_benchmark(bench::find_benchmark(GetParam()));
  EXPECT_TRUE(verify_power_cycle_transparency(nl, 30, 30, 42));
  EXPECT_TRUE(verify_power_cycle_transparency(nl, 7, 50, 1234));
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, Transparency,
                         ::testing::Values("s344", "s838", "s1423"));

TEST(Transparency, FailsWithoutRestore) {
  // Negative control: scrambling without restore must be detected (the
  // checker is actually sensitive).
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s1423"));
  LogicSimulator gated(nl);
  LogicSimulator golden(nl);
  Rng stim(7);
  Rng stimGold(7);
  Rng scr(9);
  auto randomInputs = [&](Rng& rng) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    return in;
  };
  for (int c = 0; c < 20; ++c) {
    gated.cycle(randomInputs(stim));
    golden.cycle(randomInputs(stimGold));
  }
  gated.scramble_state(scr); // power loss, NO restore
  bool diverged = false;
  for (int c = 0; c < 20 && !diverged; ++c) {
    gated.cycle(randomInputs(stim));
    golden.cycle(randomInputs(stimGold));
    diverged = gated.flip_flop_state() != golden.flip_flop_state();
  }
  EXPECT_TRUE(diverged);
}

} // namespace
} // namespace nvff::sim
