// Three-valued simulation: X semantics, wake-up contamination, restore.
#include <gtest/gtest.h>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"
#include "sim/logic_sim.hpp"
#include "sim/xlogic_sim.hpp"

namespace nvff::sim {
namespace {

using bench::GateType;
using bench::Netlist;

TEST(XLogic, ControllingValuesDominateX) {
  // AND(0, X) = 0, OR(1, X) = 1, but AND(1, X) = X, XOR(_, X) = X.
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(a)
q = DFF(a)
g_and = AND(a, q)
g_or = OR(a, q)
g_xor = XOR(a, q)
OUTPUT(g_and)
)");
  XLogicSimulator sim(nl);
  sim.x_out_state(); // q = X
  sim.set_inputs({Trit::Zero});
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("g_and")), Trit::Zero);
  EXPECT_EQ(sim.value(nl.find("g_xor")), Trit::X);
  sim.set_inputs({Trit::One});
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("g_and")), Trit::X);
  EXPECT_EQ(sim.value(nl.find("g_or")), Trit::One);
}

TEST(XLogic, InverterPropagatesX) {
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(a)
q = DFF(a)
n = NOT(q)
OUTPUT(n)
)");
  XLogicSimulator sim(nl);
  sim.x_out_state();
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("n")), Trit::X);
}

TEST(XLogic, MatchesBooleanSimWhenFullyKnown) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  LogicSimulator boolSim(nl);
  XLogicSimulator xSim(nl);
  xSim.load_flip_flop_state_bool(boolSim.flip_flop_state());
  Rng rng(5);
  for (int c = 0; c < 25; ++c) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    boolSim.cycle(in);
    std::vector<Trit> xin(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) xin[i] = trit_from_bool(in[i]);
    xSim.cycle(xin);
    for (std::size_t i = 0; i < nl.size(); ++i) {
      const auto id = static_cast<bench::GateId>(i);
      ASSERT_NE(xSim.value(id), Trit::X) << "unexpected X at " << nl.gate(id).name;
      ASSERT_EQ(xSim.value(id) == Trit::One, boolSim.value(id))
          << nl.gate(id).name << " cycle " << c;
    }
  }
}

TEST(XLogic, WakeWithoutRestoreFloodsX) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s1423"));
  XLogicSimulator sim(nl);
  sim.x_out_state(); // wake-up, no restore
  std::vector<Trit> zeros(nl.num_inputs(), Trit::Zero);
  for (int c = 0; c < 5; ++c) sim.cycle(zeros);
  // X must persist in a meaningful part of the machine.
  EXPECT_GT(sim.x_flip_flops(), nl.num_flip_flops() / 10);
}

TEST(XLogic, RestoreEliminatesEveryX) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s1423"));
  // Golden run captures a state into the shadow bank.
  LogicSimulator golden(nl);
  Rng rng(11);
  for (int c = 0; c < 20; ++c) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    golden.cycle(in);
  }
  NvShadowBank bank(nl.num_flip_flops());
  bank.store(golden);

  // Wake: X everywhere, then NV restore.
  XLogicSimulator waking(nl);
  waking.x_out_state();
  EXPECT_EQ(waking.x_flip_flops(), nl.num_flip_flops());
  waking.load_flip_flop_state_bool(golden.flip_flop_state());
  EXPECT_EQ(waking.x_flip_flops(), 0u);
  std::vector<Trit> zeros(nl.num_inputs(), Trit::Zero);
  waking.cycle(zeros);
  EXPECT_EQ(waking.x_flip_flops(), 0u);
  EXPECT_EQ(waking.x_outputs(), 0u);
}

TEST(XLogic, LoadMixedTritVector) {
  // A partial restore loads a mixed vector: definite bits stick exactly,
  // X bits stay X, and nothing bleeds between positions.
  const bench::Netlist nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  const std::size_t n = nl.num_flip_flops();
  ASSERT_GE(n, 3u);
  std::vector<Trit> mixed(n, Trit::X);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 == 0) mixed[i] = Trit::One;
    else if (i % 3 == 1) mixed[i] = Trit::Zero;
  }
  XLogicSimulator sim(nl);
  sim.load_flip_flop_state(mixed);
  EXPECT_EQ(sim.flip_flop_state(), mixed);
  const std::size_t wantX = (n + 0) / 3; // every i % 3 == 2 position
  EXPECT_EQ(sim.x_flip_flops(), n - ((n + 2) / 3) - ((n + 1) / 3));
  EXPECT_EQ(sim.x_flip_flops(), wantX);
}

TEST(XLogic, PartialRestoreXCountMonotoneUnderConstantInputs) {
  // Pessimistic X-propagation with constant known inputs can only keep or
  // shrink the definite set it derives from: an X that once contaminated a
  // flip-flop was computed from the same (inputs, state) cone that computes
  // it next cycle, so the X population must not oscillate upward from the
  // restored suffix. This is the property the powerfail classifier leans on
  // when it treats any surviving X as corruption.
  const bench::Netlist nl = bench::generate_benchmark(bench::find_benchmark("s838"));
  const std::size_t n = nl.num_flip_flops();
  sim::LogicSimulator golden(nl);
  Rng rng(99);
  std::vector<bool> in(nl.num_inputs());
  for (int c = 0; c < 16; ++c) {
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    golden.cycle(in);
  }
  const std::vector<bool> state = golden.flip_flop_state();

  // Restore only the first half of the flip-flops; the rest stay X, as
  // after a restore interrupted halfway through the schedule.
  std::vector<Trit> partial(n, Trit::X);
  for (std::size_t i = 0; i < n / 2; ++i) partial[i] = trit_from_bool(state[i]);
  XLogicSimulator sim(nl);
  sim.load_flip_flop_state(partial);
  std::size_t prevX = sim.x_flip_flops();
  EXPECT_GT(prevX, 0u);
  const std::vector<Trit> constant(nl.num_inputs(), Trit::Zero);
  for (int c = 0; c < 12; ++c) {
    sim.cycle(constant);
    const std::size_t nowX = sim.x_flip_flops();
    EXPECT_LE(nowX, n);
    if (c > 0) EXPECT_LE(nowX, prevX) << "X population grew at cycle " << c;
    prevX = nowX;
  }
}

TEST(XLogic, PartialRestoreNeverInventsWrongDefiniteBits) {
  // Kleene monotonicity: a less-defined start can lose information, never
  // fabricate it. Against a fully restored twin running the same stimulus,
  // every definite bit of the half-restored machine must agree with the
  // twin — its X population can shrink as real values flush through, but a
  // definite-and-wrong bit would mean the X-propagation is optimistic
  // somewhere, which would let the powerfail classifier miss corruption.
  const bench::Netlist nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  const std::size_t n = nl.num_flip_flops();
  sim::LogicSimulator golden(nl);
  Rng rng(7);
  std::vector<bool> in(nl.num_inputs());
  for (int c = 0; c < 12; ++c) {
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    golden.cycle(in);
  }
  const std::vector<bool> state = golden.flip_flop_state();

  XLogicSimulator full(nl);
  full.load_flip_flop_state_bool(state);
  std::vector<Trit> partial(n, Trit::X);
  for (std::size_t i = 0; i < n / 2; ++i) partial[i] = trit_from_bool(state[i]);
  XLogicSimulator half(nl);
  half.load_flip_flop_state(partial);

  for (int c = 0; c < 10; ++c) {
    std::vector<Trit> stim(nl.num_inputs());
    for (std::size_t i = 0; i < stim.size(); ++i)
      stim[i] = trit_from_bool(rng.chance(0.5));
    full.cycle(stim);
    half.cycle(stim);
    const std::vector<Trit> fullState = full.flip_flop_state();
    const std::vector<Trit> halfState = half.flip_flop_state();
    EXPECT_EQ(full.x_flip_flops(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      if (halfState[i] != Trit::X)
        EXPECT_EQ(halfState[i], fullState[i]) << "FF " << i << " cycle " << c;
    }
  }
}

TEST(XLogic, TritHelpers) {
  EXPECT_EQ(trit_from_bool(true), Trit::One);
  EXPECT_EQ(trit_from_bool(false), Trit::Zero);
  EXPECT_EQ(trit_char(Trit::X), 'x');
  EXPECT_EQ(trit_char(Trit::One), '1');
}

} // namespace
} // namespace nvff::sim
