// Three-valued simulation: X semantics, wake-up contamination, restore.
#include <gtest/gtest.h>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"
#include "sim/logic_sim.hpp"
#include "sim/xlogic_sim.hpp"

namespace nvff::sim {
namespace {

using bench::GateType;
using bench::Netlist;

TEST(XLogic, ControllingValuesDominateX) {
  // AND(0, X) = 0, OR(1, X) = 1, but AND(1, X) = X, XOR(_, X) = X.
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(a)
q = DFF(a)
g_and = AND(a, q)
g_or = OR(a, q)
g_xor = XOR(a, q)
OUTPUT(g_and)
)");
  XLogicSimulator sim(nl);
  sim.x_out_state(); // q = X
  sim.set_inputs({Trit::Zero});
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("g_and")), Trit::Zero);
  EXPECT_EQ(sim.value(nl.find("g_xor")), Trit::X);
  sim.set_inputs({Trit::One});
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("g_and")), Trit::X);
  EXPECT_EQ(sim.value(nl.find("g_or")), Trit::One);
}

TEST(XLogic, InverterPropagatesX) {
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(a)
q = DFF(a)
n = NOT(q)
OUTPUT(n)
)");
  XLogicSimulator sim(nl);
  sim.x_out_state();
  sim.evaluate();
  EXPECT_EQ(sim.value(nl.find("n")), Trit::X);
}

TEST(XLogic, MatchesBooleanSimWhenFullyKnown) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s344"));
  LogicSimulator boolSim(nl);
  XLogicSimulator xSim(nl);
  xSim.load_flip_flop_state_bool(boolSim.flip_flop_state());
  Rng rng(5);
  for (int c = 0; c < 25; ++c) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    boolSim.cycle(in);
    std::vector<Trit> xin(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) xin[i] = trit_from_bool(in[i]);
    xSim.cycle(xin);
    for (std::size_t i = 0; i < nl.size(); ++i) {
      const auto id = static_cast<bench::GateId>(i);
      ASSERT_NE(xSim.value(id), Trit::X) << "unexpected X at " << nl.gate(id).name;
      ASSERT_EQ(xSim.value(id) == Trit::One, boolSim.value(id))
          << nl.gate(id).name << " cycle " << c;
    }
  }
}

TEST(XLogic, WakeWithoutRestoreFloodsX) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s1423"));
  XLogicSimulator sim(nl);
  sim.x_out_state(); // wake-up, no restore
  std::vector<Trit> zeros(nl.num_inputs(), Trit::Zero);
  for (int c = 0; c < 5; ++c) sim.cycle(zeros);
  // X must persist in a meaningful part of the machine.
  EXPECT_GT(sim.x_flip_flops(), nl.num_flip_flops() / 10);
}

TEST(XLogic, RestoreEliminatesEveryX) {
  const auto nl = bench::generate_benchmark(bench::find_benchmark("s1423"));
  // Golden run captures a state into the shadow bank.
  LogicSimulator golden(nl);
  Rng rng(11);
  for (int c = 0; c < 20; ++c) {
    std::vector<bool> in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    golden.cycle(in);
  }
  NvShadowBank bank(nl.num_flip_flops());
  bank.store(golden);

  // Wake: X everywhere, then NV restore.
  XLogicSimulator waking(nl);
  waking.x_out_state();
  EXPECT_EQ(waking.x_flip_flops(), nl.num_flip_flops());
  waking.load_flip_flop_state_bool(golden.flip_flop_state());
  EXPECT_EQ(waking.x_flip_flops(), 0u);
  std::vector<Trit> zeros(nl.num_inputs(), Trit::Zero);
  waking.cycle(zeros);
  EXPECT_EQ(waking.x_flip_flops(), 0u);
  EXPECT_EQ(waking.x_outputs(), 0u);
}

TEST(XLogic, TritHelpers) {
  EXPECT_EQ(trit_from_bool(true), Trit::One);
  EXPECT_EQ(trit_from_bool(false), Trit::Zero);
  EXPECT_EQ(trit_char(Trit::X), 'x');
  EXPECT_EQ(trit_char(Trit::One), '1');
}

} // namespace
} // namespace nvff::sim
