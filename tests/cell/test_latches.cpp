// Functional verification of both NV latch netlists: store, restore,
// power-cycle retention, across data values.
#include <gtest/gtest.h>

#include "cell/characterize.hpp"
#include "util/units.hpp"

namespace nvff::cell {
namespace {
using namespace nvff::units;

class LatchTest : public ::testing::Test {
protected:
  LatchTest() : chr(Technology::table1()) {
    chr.timestep = 4e-12; // coarser grid for test runtime; benches use 2 ps
  }
  Characterizer chr;
};

TEST_F(LatchTest, StandardReadRestoresBothValues) {
  for (bool bit : {false, true}) {
    const ReadResult r = chr.standard_read(Corner::Typical, bit);
    EXPECT_TRUE(r.correct) << "stored bit " << bit;
    EXPECT_GT(r.delay, 1 * ps);
    EXPECT_LT(r.delay, 700 * ps);
    EXPECT_GT(r.energy, 0.1 * fJ);
    EXPECT_LT(r.energy, 100 * fJ);
  }
}

TEST_F(LatchTest, ProposedReadRestoresAllFourCombinations) {
  for (int v = 0; v < 4; ++v) {
    const bool d0 = (v & 1) != 0;
    const bool d1 = (v & 2) != 0;
    const ReadResult r = chr.proposed_read(Corner::Typical, d0, d1);
    EXPECT_TRUE(r.correct) << "d0=" << d0 << " d1=" << d1;
    EXPECT_GT(r.delay, 1 * ps);
    EXPECT_GT(r.energy, 0.1 * fJ);
  }
}

TEST_F(LatchTest, StandardWriteFlipsBothMtjs) {
  for (bool d : {false, true}) {
    const WriteResult w = chr.standard_write(Corner::Typical, d);
    EXPECT_TRUE(w.switched) << "write " << d;
    EXPECT_GT(w.latency, 0.5 * ns);
    EXPECT_LT(w.latency, 3.0 * ns);
  }
}

TEST_F(LatchTest, ProposedWriteFlipsAllFourMtjs) {
  for (int v = 0; v < 4; ++v) {
    const bool d0 = (v & 1) != 0;
    const bool d1 = (v & 2) != 0;
    const WriteResult w = chr.proposed_write(Corner::Typical, d0, d1);
    EXPECT_TRUE(w.switched) << "d0=" << d0 << " d1=" << d1;
    EXPECT_LT(w.latency, 3.0 * ns);
  }
}

TEST_F(LatchTest, LeakageIsNanowattClassAndProposedNotWorse) {
  const double stdLeak = 2.0 * chr.standard_leakage(Corner::Typical);
  const double propLeak = chr.proposed_leakage(Corner::Typical);
  EXPECT_GT(stdLeak, 1 * pW);
  EXPECT_LT(stdLeak, 100 * nW);
  // Table II: proposed leakage slightly lower (fewer transistors).
  EXPECT_LT(propLeak, stdLeak * 1.05);
}

TEST_F(LatchTest, StandardPowerCycleRetainsData) {
  for (bool d : {false, true}) {
    EXPECT_TRUE(chr.standard_power_cycle_ok(Corner::Typical, d)) << "d=" << d;
  }
}

TEST_F(LatchTest, ProposedPowerCycleRetainsBothBits) {
  for (int v = 0; v < 4; ++v) {
    const bool d0 = (v & 1) != 0;
    const bool d1 = (v & 2) != 0;
    EXPECT_TRUE(chr.proposed_power_cycle_ok(Corner::Typical, d0, d1))
        << "d0=" << d0 << " d1=" << d1;
  }
}

TEST_F(LatchTest, ProposedReadEnergyBeatsStandardPair) {
  // The headline circuit-level claim (Table II): shared sense amplifier cuts
  // the 2-bit read energy by roughly 15-25 %.
  double stdE = 0.0;
  stdE += chr.standard_read(Corner::Typical, false).energy;
  stdE += chr.standard_read(Corner::Typical, true).energy;
  double propE = 0.0;
  propE += chr.proposed_read(Corner::Typical, false, false).energy;
  propE += chr.proposed_read(Corner::Typical, true, true).energy;
  propE /= 2.0;
  EXPECT_LT(propE, stdE);
}

TEST_F(LatchTest, ProposedDelayRoughlyTwiceStandard) {
  const double stdD = chr.standard_read(Corner::Typical, true).delay;
  const double propD = chr.proposed_read(Corner::Typical, true, true).delay;
  EXPECT_GT(propD, 1.3 * stdD);
  EXPECT_LT(propD, 3.5 * stdD);
}

TEST_F(LatchTest, TransistorCountsMatchPaper) {
  const LatchMetrics stdM = chr.standard_pair(Corner::Typical);
  EXPECT_EQ(stdM.readTransistors, 22);
  // (full proposed_2bit() is exercised in the Table II bench; counts are
  // static constants here)
  EXPECT_EQ(MultibitNvLatch::kReadTransistors, 16);
}

} // namespace
} // namespace nvff::cell
