// Corner-parameterized latch behaviour: correctness at every corner and the
// Table II orderings.
#include <gtest/gtest.h>

#include "cell/characterize.hpp"

namespace nvff::cell {
namespace {

struct CornerCase {
  Corner corner;
  bool d0;
  bool d1;
};

class LatchAtCorner : public ::testing::TestWithParam<CornerCase> {
protected:
  LatchAtCorner() { chr.timestep = 5e-12; }
  Characterizer chr;
};

TEST_P(LatchAtCorner, StandardReadCorrect) {
  const auto& tc = GetParam();
  EXPECT_TRUE(chr.standard_read(tc.corner, tc.d0).correct);
}

TEST_P(LatchAtCorner, ProposedReadCorrect) {
  const auto& tc = GetParam();
  EXPECT_TRUE(chr.proposed_read(tc.corner, tc.d0, tc.d1).correct);
}

std::vector<CornerCase> all_corner_cases() {
  std::vector<CornerCase> cases;
  for (Corner c : kAllCorners) {
    for (int v = 0; v < 4; ++v) {
      cases.push_back({c, (v & 1) != 0, (v & 2) != 0});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCornersAllData, LatchAtCorner,
                         ::testing::ValuesIn(all_corner_cases()),
                         [](const ::testing::TestParamInfo<CornerCase>& info) {
                           return std::string(corner_name(info.param.corner)) + "_d" +
                                  (info.param.d0 ? "1" : "0") +
                                  (info.param.d1 ? "1" : "0");
                         });

TEST(Table2Orderings, DelayWorstSlowerThanBest) {
  Characterizer chr;
  chr.timestep = 5e-12;
  const double stdWorst = chr.standard_read(Corner::Worst, true).delay;
  const double stdTyp = chr.standard_read(Corner::Typical, true).delay;
  const double stdBest = chr.standard_read(Corner::Best, true).delay;
  EXPECT_GT(stdWorst, stdTyp);
  EXPECT_GT(stdTyp, stdBest);
  const double propWorst = chr.proposed_read(Corner::Worst, true, true).delay;
  const double propBest = chr.proposed_read(Corner::Best, true, true).delay;
  EXPECT_GT(propWorst, propBest);
}

TEST(Table2Orderings, LeakageWorstExceedsBest) {
  Characterizer chr;
  const double worst = chr.proposed_leakage(Corner::Worst);
  const double typ = chr.proposed_leakage(Corner::Typical);
  const double best = chr.proposed_leakage(Corner::Best);
  EXPECT_GT(worst, typ);
  EXPECT_GT(typ, best);
  // The corner spread matches the paper's order of magnitude (~12x).
  EXPECT_GT(worst / best, 5.0);
  EXPECT_LT(worst / best, 30.0);
}

TEST(Table2Orderings, ProposedBeatsStandardEnergyAtEveryCorner) {
  Characterizer chr;
  chr.timestep = 5e-12;
  for (Corner c : kAllCorners) {
    const double stdE =
        chr.standard_read(c, false).energy + chr.standard_read(c, true).energy;
    const double propE = 0.5 * (chr.proposed_read(c, false, false).energy +
                                chr.proposed_read(c, true, true).energy);
    EXPECT_LT(propE, stdE) << corner_name(c);
  }
}

TEST(Table2Orderings, WriteMetricsIdenticalBetweenDesigns) {
  // The paper's reliability argument: write paths untouched, so write
  // energy/latency must match between designs at every corner.
  Characterizer chr;
  chr.timestep = 5e-12;
  for (Corner c : kAllCorners) {
    const WriteResult s = chr.standard_write(c, true);
    const WriteResult p = chr.proposed_write(c, true, false);
    ASSERT_TRUE(s.switched);
    ASSERT_TRUE(p.switched);
    EXPECT_NEAR(p.latency, s.latency, 0.05 * s.latency) << corner_name(c);
  }
}

} // namespace
} // namespace nvff::cell
