#include "cell/spice_deck.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "cell/multibit_latch.hpp"
#include "cell/standard_latch.hpp"

namespace nvff::cell {
namespace {

TEST(SpiceDeck, ExportsEveryDeviceClass) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  auto inst = MultibitNvLatch::build_read(tech, tc, true, false, TwoBitReadTiming{});
  const std::string deck = to_spice_deck(inst.circuit);
  // Header + models + directives.
  EXPECT_NE(deck.find(" NMOS (LEVEL=1"), std::string::npos);
  EXPECT_NE(deck.find(" PMOS (LEVEL=1"), std::string::npos);
  EXPECT_NE(deck.find(".tran"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
  // Key devices present.
  EXPECT_NE(deck.find("MP1 "), std::string::npos);       // cross-coupled PMOS
  EXPECT_NE(deck.find("RMTJ3 "), std::string::npos);     // MTJ as resistor
  EXPECT_NE(deck.find("state=AP"), std::string::npos);   // orientation comment
  EXPECT_NE(deck.find("VVDD "), std::string::npos);      // supply
  EXPECT_NE(deck.find("PWL("), std::string::npos);       // control waveform
  EXPECT_NE(deck.find("CCw_out "), std::string::npos);   // wire cap, sanitized
}

TEST(SpiceDeck, MtjResistanceTracksState) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  // d0 = 1 -> MTJ3 AP (11150 Ohm), MTJ4 P (5000 Ohm).
  auto inst = MultibitNvLatch::build_read(tech, tc, true, false, TwoBitReadTiming{});
  const std::string deck = to_spice_deck(inst.circuit);
  const auto mtj3 = deck.find("RMTJ3 ");
  const auto mtj4 = deck.find("RMTJ4 ");
  ASSERT_NE(mtj3, std::string::npos);
  ASSERT_NE(mtj4, std::string::npos);
  EXPECT_NE(deck.find("11150", mtj3), std::string::npos);
  EXPECT_NE(deck.find("5000", mtj4), std::string::npos);
}

TEST(SpiceDeck, ModelCardsDeduplicated) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  auto inst = StandardNvLatch::build_read(tech, tc, true, ReadTiming{});
  const std::string deck = to_spice_deck(inst.circuit);
  // All NMOS share identical corner params -> exactly one NMOS model card.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = deck.find(".model nch", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SpiceDeck, FileExport) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  auto inst = StandardNvLatch::build_idle(tech, tc);
  const std::string path = testing::TempDir() + "/nvff_latch.sp";
  save_spice_deck(inst.circuit, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("* ", 0), 0u);
}

} // namespace
} // namespace nvff::cell
