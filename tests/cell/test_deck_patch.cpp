// Deck-template contract: a compiled deck that has been patched (corner,
// mismatch, MTJ state) and re-run must be bit-identical to a freshly built
// instance with the same parameters. This is what lets the campaigns reuse
// one compiled deck per worker thread for thousands of trials.
#include "cell/multibit_latch.hpp"
#include "cell/standard_latch.hpp"
#include "spice/analysis.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace nvff::cell {
namespace {

using mtj::MtjOrientation;

struct RunResult {
  std::vector<double> lastSolution;
  MtjOrientation out;
  MtjOrientation outb;

  bool operator==(const RunResult& o) const {
    return lastSolution == o.lastSolution && out == o.out && outb == o.outb;
  }
};

RunResult run_standard_deck(StandardPowerCycleDeck& deck) {
  spice::Simulator sim(deck.compiled, deck.ws);
  spice::TransientOptions opt;
  opt.tStop = deck.inst.tEnd;
  opt.dt = 4e-12;
  RunResult r;
  sim.transient(opt, [&](double, const spice::Solution& s) { r.lastSolution = s.raw(); });
  r.out = deck.inst.mtjOut->orientation();
  r.outb = deck.inst.mtjOutb->orientation();
  return r;
}

RunResult run_standard_instance(StandardLatchInstance& inst) {
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 4e-12;
  RunResult r;
  sim.transient(opt, [&](double, const spice::Solution& s) { r.lastSolution = s.raw(); });
  r.out = inst.mtjOut->orientation();
  r.outb = inst.mtjOutb->orientation();
  return r;
}

TEST(DeckPatch, ReusedDeckMatchesFreshBuildBitwise) {
  const Technology tech = Technology::table1();
  const TechCorner typical = tech.read_corner(Corner::Typical);
  const TechCorner fast = tech.read_corner(Corner::Best);
  const PowerCycleTiming timing{};

  StandardPowerCycleDeck reused(tech, typical, /*d=*/true, timing);
  reused.patch(typical);
  const RunResult first = run_standard_deck(reused);

  // Drive the same deck through a different corner (different waveform,
  // different MTJ end state), then patch back: the third run must reproduce
  // the first bit for bit — nothing from the intervening trial leaks.
  reused.patch(fast);
  run_standard_deck(reused);
  reused.patch(typical);
  const RunResult again = run_standard_deck(reused);
  EXPECT_TRUE(first == again);

  // And a fresh compile of the same scenario agrees exactly.
  StandardPowerCycleDeck fresh(tech, typical, /*d=*/true, timing);
  fresh.patch(typical);
  const RunResult freshRun = run_standard_deck(fresh);
  EXPECT_TRUE(first == freshRun);
}

TEST(DeckPatch, MismatchDrawOrderMatchesBuilder) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  const PowerCycleTiming timing{};
  const double sigma = 0.02;

  // Builder path: draws one Vth offset per transistor at creation.
  Rng builderRng(7);
  StandardLatchInstance built = StandardNvLatch::build_power_cycle(
      tech, tc, /*d=*/true, timing, &builderRng, sigma);
  const RunResult builtRun = run_standard_instance(built);

  // Patch path: same seed, offsets applied by walking the compiled deck's
  // devices in creation order. The draw streams must line up exactly.
  Rng patchRng(7);
  StandardPowerCycleDeck deck(tech, tc, /*d=*/true, timing);
  deck.patch(tc, &patchRng, sigma);
  const RunResult patchedRun = run_standard_deck(deck);

  EXPECT_TRUE(builtRun == patchedRun);
}

TEST(DeckPatch, MultibitDeckReuseIsDeterministic) {
  const Technology tech = Technology::table1();
  const TechCorner typical = tech.read_corner(Corner::Typical);
  const TechCorner slow = tech.read_corner(Corner::Worst);
  const PowerCycleTiming timing{};

  MultibitPowerCycleDeck deck(tech, typical, /*d0=*/true, /*d1=*/false, timing);

  const auto run = [&]() {
    spice::Simulator sim(deck.compiled, deck.ws);
    spice::TransientOptions opt;
    opt.tStop = deck.inst.tEnd;
    opt.dt = 4e-12;
    std::vector<double> last;
    sim.transient(opt, [&](double, const spice::Solution& s) { last = s.raw(); });
    return std::make_tuple(last, deck.inst.mtj1->orientation(),
                           deck.inst.mtj2->orientation(),
                           deck.inst.mtj3->orientation(),
                           deck.inst.mtj4->orientation());
  };

  deck.patch(typical);
  const auto first = run();
  deck.patch(slow);
  run();
  deck.patch(typical);
  const auto again = run();
  EXPECT_TRUE(first == again);
}

} // namespace
} // namespace nvff::cell
