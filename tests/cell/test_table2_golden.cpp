// Golden numerics for the paper's Table II read metrics: read energy, read
// delay, and leakage for both designs at all three technology corners, pinned
// to the values the engine produced when this golden was recorded (full
// 2e-12 s characterization timestep). A drift beyond 0.1 % relative means the
// analog engine's numerics changed — deliberate solver changes must re-record
// these constants, everything else is a regression.
#include "cell/characterize.hpp"

#include <gtest/gtest.h>

namespace nvff::cell {
namespace {

struct GoldenRow {
  Corner corner;
  double readEnergy; ///< [J] 2-bit restore (standard: both latches)
  double readDelay;  ///< [s] resolution time (standard: single-latch, parallel)
  double leakage;    ///< [W] (standard: both latches)
};

constexpr double kRelTol = 1e-3;

// 2x standard 1-bit latch (Table II convention: energy/leakage doubled).
constexpr GoldenRow kStandardGolden[] = {
    {Corner::Worst, 2.594370889476e-14, 2.385315907669e-10, 1.649362495003e-09},
    {Corner::Typical, 2.589109972448e-14, 1.921073566719e-10, 4.637371299049e-10},
    {Corner::Best, 2.588207517280e-14, 1.554822115858e-10, 1.525028815561e-10},
};

// Proposed 2-bit latch (averaged over the four stored-data values).
constexpr GoldenRow kProposedGolden[] = {
    {Corner::Worst, 2.229928017358e-14, 6.031750419631e-10, 1.459375246063e-09},
    {Corner::Typical, 2.274060766071e-14, 4.753812953026e-10, 4.039224682006e-10},
    {Corner::Best, 2.289059294865e-14, 3.781782074354e-10, 1.257795937007e-10},
};

TEST(Table2Golden, StandardPairReadMetricsAllCorners) {
  Characterizer chr;
  for (const GoldenRow& row : kStandardGolden) {
    SCOPED_TRACE(corner_name(row.corner));
    const ReadResult r0 = chr.standard_read(row.corner, false);
    const ReadResult r1 = chr.standard_read(row.corner, true);
    EXPECT_TRUE(r0.correct);
    EXPECT_TRUE(r1.correct);
    EXPECT_NEAR(r0.energy + r1.energy, row.readEnergy, kRelTol * row.readEnergy);
    EXPECT_NEAR(0.5 * (r0.delay + r1.delay), row.readDelay, kRelTol * row.readDelay);
    const double leak = 2.0 * chr.standard_leakage(row.corner);
    EXPECT_NEAR(leak, row.leakage, kRelTol * row.leakage);
  }
}

TEST(Table2Golden, Proposed2BitReadMetricsAllCorners) {
  Characterizer chr;
  for (const GoldenRow& row : kProposedGolden) {
    SCOPED_TRACE(corner_name(row.corner));
    double energy = 0.0;
    double delay = 0.0;
    for (int v = 0; v < 4; ++v) {
      const ReadResult r = chr.proposed_read(row.corner, (v & 1) != 0, (v & 2) != 0);
      EXPECT_TRUE(r.correct) << "data " << v;
      energy += r.energy;
      delay += r.delay;
    }
    EXPECT_NEAR(energy / 4.0, row.readEnergy, kRelTol * row.readEnergy);
    EXPECT_NEAR(delay / 4.0, row.readDelay, kRelTol * row.readDelay);
    const double leak = chr.proposed_leakage(row.corner);
    EXPECT_NEAR(leak, row.leakage, kRelTol * row.leakage);
  }
}

} // namespace
} // namespace nvff::cell
