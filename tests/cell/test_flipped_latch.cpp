// Fig. 4(a) flipped latch: functional store/restore, symmetry with the
// standard design.
#include <gtest/gtest.h>

#include "cell/flipped_latch.hpp"
#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

namespace nvff::cell {
namespace {
using namespace nvff::units;

struct ReadOutcome {
  bool correct;
  double delay;
  double energy;
};

ReadOutcome run_read(bool storedBit) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  ReadTiming timing{};
  auto inst = FlippedNvLatch::build_read(tech, tc, storedBit, timing);
  spice::Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  spice::SupplyEnergyMeter meter(inst.circuit, "VDD");
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 4 * ps;
  auto obs = trace.observer();
  spice::Solution zero(std::vector<double>(inst.circuit.num_unknowns(), 0.0),
                       inst.circuit.num_nodes());
  sim.transient_from(zero, opt, [&](double t, const spice::Solution& s) {
    obs(t, s);
    meter.observe(t, s);
  });
  ReadOutcome r;
  const std::string rising = storedBit ? "out" : "outb";
  const auto tCross =
      trace.crossing_time(rising, 0.9 * tech.vdd, spice::Edge::Rising, inst.tEvalStart);
  r.delay = tCross ? *tCross - inst.tEvalStart : -1.0;
  r.energy = meter.energy();
  const bool outHigh = trace.value_at("out", inst.tEnd) > tech.vdd / 2;
  const bool outbHigh = trace.value_at("outb", inst.tEnd) > tech.vdd / 2;
  r.correct = (outHigh == storedBit) && (outbHigh == !storedBit);
  return r;
}

TEST(FlippedLatch, RestoresBothValues) {
  for (bool bit : {false, true}) {
    const ReadOutcome r = run_read(bit);
    EXPECT_TRUE(r.correct) << "bit " << bit;
    EXPECT_GT(r.delay, 0.0);
    EXPECT_LT(r.delay, 500 * ps);
  }
}

TEST(FlippedLatch, WriteFlipsBothMtjs) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.write_corner(Corner::Typical);
  for (bool d : {false, true}) {
    auto inst = FlippedNvLatch::build_write(tech, tc, d, WriteTiming{});
    spice::Simulator sim(inst.circuit);
    spice::TransientOptions opt;
    opt.tStop = inst.tEnd;
    opt.dt = 5 * ps;
    sim.transient(opt, nullptr);
    const auto want = d ? mtj::MtjOrientation::Parallel
                        : mtj::MtjOrientation::AntiParallel;
    EXPECT_EQ(inst.mtjOut->orientation(), want) << "d=" << d;
    EXPECT_NE(inst.mtjOutb->orientation(), want) << "d=" << d;
  }
}

TEST(FlippedLatch, LeakageComparableToStandard) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.leakage_corner(Corner::Typical);
  auto inst = FlippedNvLatch::build_idle(tech, tc);
  spice::Simulator sim(inst.circuit);
  const auto op = sim.dc_operating_point();
  const auto* vdd =
      dynamic_cast<const spice::VoltageSource*>(inst.circuit.find_device("VDD"));
  const double leak = vdd->delivered_current(op.as_state()) * tech.vdd;
  EXPECT_GT(leak, 1 * pW);
  EXPECT_LT(leak, 10 * nW);
}

TEST(FlippedLatch, TransistorBudgetMatchesStandard) {
  // Fig. 4's point: same cost as the standard latch, opposite orientation —
  // which is what makes the combination into the 2-bit cell nearly free.
  EXPECT_EQ(FlippedNvLatch::kReadTransistors, 11);
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  auto inst = FlippedNvLatch::build_read(tech, tc, true, ReadTiming{});
  // 11 read transistors + 8 write-driver transistors in the netlist.
  EXPECT_EQ(inst.circuit.count_of<spice::Mosfet>(), 19u);
}

} // namespace
} // namespace nvff::cell
