// Scalable N-bit latch: functional restore for N in {2,4,6}, transistor
// accounting, per-bit area scaling, write independence.
#include <gtest/gtest.h>

#include "cell/layout.hpp"
#include "cell/scalable_latch.hpp"
#include "spice/analysis.hpp"
#include "util/units.hpp"

namespace nvff::cell {
namespace {
using namespace nvff::units;

TEST(ScalableLatch, TransistorFormula) {
  EXPECT_EQ(scalable_read_transistors(2), 18);
  EXPECT_EQ(scalable_read_transistors(4), 26);
  EXPECT_EQ(scalable_read_transistors(8), 42);
  EXPECT_EQ(scalable_mtj_count(4), 8);
}

TEST(ScalableLatch, RejectsOddOrTinyBitCounts) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.read_corner(Corner::Typical);
  EXPECT_THROW(ScalableNvLatch::build_read(tech, tc, {true}, ReadTiming{}),
               std::invalid_argument);
  EXPECT_THROW(
      ScalableNvLatch::build_read(tech, tc, {true, false, true}, ReadTiming{}),
      std::invalid_argument);
}

class ScalableBits : public ::testing::TestWithParam<int> {};

TEST_P(ScalableBits, SequentialRestoreReturnsEveryBit) {
  const int bits = GetParam();
  const ScalableMetrics m =
      characterize_scalable(Technology::table1(), Corner::Typical, bits, 6e-12);
  EXPECT_TRUE(m.functional) << bits << "-bit restore failed";
  EXPECT_EQ(m.bits, bits);
  EXPECT_GT(m.readEnergy, 0.0);
  EXPECT_GT(m.readDelayTotal, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BitCounts, ScalableBits, ::testing::Values(2, 4, 6));

TEST(ScalableLatch, PerBitAreaShrinksWithBits) {
  const double perBit2 =
      CellLayout("s2", scalable_read_transistors(2), scalable_mtj_count(2)).area_um2() /
      2.0;
  const double perBit4 =
      CellLayout("s4", scalable_read_transistors(4), scalable_mtj_count(4)).area_um2() /
      4.0;
  const double perBit8 =
      CellLayout("s8", scalable_read_transistors(8), scalable_mtj_count(8)).area_um2() /
      8.0;
  EXPECT_GT(perBit2, perBit4);
  EXPECT_GT(perBit4, perBit8);
  // Amortization saturates toward the per-pair increment.
  EXPECT_GT(perBit8, 0.9);
}

TEST(ScalableLatch, RestoreWallClockGrowsLinearly) {
  const ScalableMetrics m2 =
      characterize_scalable(Technology::table1(), Corner::Typical, 2, 8e-12);
  const ScalableMetrics m4 =
      characterize_scalable(Technology::table1(), Corner::Typical, 4, 8e-12);
  EXPECT_GT(m4.restoreWallClock, 1.7 * m2.restoreWallClock);
  EXPECT_LT(m4.restoreWallClock, 2.5 * m2.restoreWallClock);
}

TEST(ScalableLatch, ParallelWriteFlipsAllMtjs) {
  const Technology tech = Technology::table1();
  const TechCorner tc = tech.write_corner(Corner::Typical);
  const std::vector<bool> data = {true, false, false, true};
  auto inst = ScalableNvLatch::build_write(tech, tc, data, WriteTiming{});
  spice::Simulator sim(inst.circuit);
  spice::TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = 6e-12;
  sim.transient(opt, nullptr);
  // Every bit's pair must hold complementary states encoding `data`.
  for (std::size_t b = 0; b < data.size(); ++b) {
    const auto [t, c] = inst.mtjs[b];
    EXPECT_NE(t->orientation(), c->orientation()) << "bit " << b;
    EXPECT_EQ(t->flip_count() + c->flip_count(), 2) << "bit " << b;
  }
}

TEST(ScalableLatch, LeakageGrowsSlowlyWithBits) {
  const ScalableMetrics m2 =
      characterize_scalable(Technology::table1(), Corner::Typical, 2, 8e-12);
  const ScalableMetrics m6 =
      characterize_scalable(Technology::table1(), Corner::Typical, 6, 8e-12);
  EXPECT_GT(m6.leakage, m2.leakage);
  // Sub-linear in bits: the shared core does not replicate.
  EXPECT_LT(m6.leakage, 3.0 * m2.leakage);
}

} // namespace
} // namespace nvff::cell
