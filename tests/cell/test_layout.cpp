// Layout/area model: must reproduce the paper's published footprints.
#include <gtest/gtest.h>

#include "cell/layout.hpp"

namespace nvff::cell {
namespace {

TEST(Layout, TwelveTrackHeight) {
  EXPECT_NEAR(standard_1bit_layout().height_um(), 1.68, 1e-9);
  EXPECT_NEAR(proposed_2bit_layout().height_um(), 1.68, 1e-9);
}

TEST(Layout, ProposedCellAreaMatchesPaper) {
  // Table II: 3.696 um^2.
  EXPECT_NEAR(proposed_2bit_area_um2(), 3.696, 0.002);
}

TEST(Layout, StandardPairAreaMatchesPaper) {
  // Table II: 5.635 um^2 for two cells + minimum spacing.
  EXPECT_NEAR(standard_pair_area_um2(), 5.635, 0.002);
}

TEST(Layout, PerBitAreasAndImprovement) {
  const double std2 = standard_pair_area_um2();
  const double prop = proposed_2bit_area_um2();
  // Paper: ~34 % cell-level improvement.
  EXPECT_NEAR((std2 - prop) / std2 * 100.0, 34.4, 1.0);
}

TEST(Layout, PairingThresholdMatchesPaper) {
  // Paper Sec IV-C: <= 3.35 um.
  EXPECT_NEAR(pairing_distance_threshold_um(), 3.35, 0.01);
}

TEST(Layout, ColumnsFollowTransistorPairs) {
  EXPECT_EQ(standard_1bit_layout().columns(), 6);  // 11 transistors
  EXPECT_EQ(proposed_2bit_layout().columns(), 8);  // 16 transistors
  EXPECT_EQ(CellLayout("x", 1, 0).columns(), 1);
}

TEST(Layout, WidthMonotoneInDevices) {
  const CellLayout small("s", 10, 2);
  const CellLayout big("b", 14, 2);
  const CellLayout moreMtj("m", 10, 4);
  EXPECT_LT(small.width_um(), big.width_um());
  EXPECT_LT(small.width_um(), moreMtj.width_um());
}

TEST(Layout, TrackMapRendersDimensions) {
  const std::string map = proposed_2bit_layout().track_map();
  EXPECT_NE(map.find("16T + 4 MTJ"), std::string::npos);
  EXPECT_NE(map.find("12-track"), std::string::npos);
  EXPECT_NE(map.find("um^2"), std::string::npos);
}

TEST(Layout, MergedCellFitsThreshold) {
  // The merged 2-bit cell must physically fit within the span that defined
  // the pairing threshold (that's what makes replacement legal).
  EXPECT_LE(proposed_2bit_layout().width_um(), pairing_distance_threshold_um());
}

} // namespace
} // namespace nvff::cell
