// Local Vth mismatch injection: plumbing correctness and robustness claims.
#include <gtest/gtest.h>

#include "cell/characterize.hpp"
#include "util/rng.hpp"

namespace nvff::cell {
namespace {

class MismatchTest : public ::testing::Test {
protected:
  MismatchTest() { chr.timestep = 6e-12; }
  Characterizer chr;
};

TEST_F(MismatchTest, ZeroSigmaMatchesNominal) {
  const TechCorner tc = chr.technology().read_corner(Corner::Typical);
  Rng rng(1);
  const ReadResult nominal = chr.proposed_read_at(tc, true, false);
  const ReadResult withRngButZeroSigma = chr.proposed_read_at(tc, true, false, &rng, 0.0);
  EXPECT_DOUBLE_EQ(nominal.energy, withRngButZeroSigma.energy);
  EXPECT_DOUBLE_EQ(nominal.delay, withRngButZeroSigma.delay);
}

TEST_F(MismatchTest, SmallMismatchPreservesFunction) {
  // Realistic 40 nm-class mismatch (sigma = 20 mV) must not break restores.
  const TechCorner tc = chr.technology().read_corner(Corner::Typical);
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    const bool d0 = (i & 1) != 0;
    const bool d1 = (i & 2) != 0;
    EXPECT_TRUE(chr.proposed_read_at(tc, d0, d1, &rng, 0.020).correct)
        << "sample " << i;
    EXPECT_TRUE(chr.standard_read_at(tc, d0, &rng, 0.020).correct) << "sample " << i;
  }
}

TEST_F(MismatchTest, MismatchActuallyPerturbsTheCircuit) {
  // Different mismatch samples must give measurably different delays
  // (guards against the plumbing silently ignoring the offsets).
  const TechCorner tc = chr.technology().read_corner(Corner::Typical);
  Rng rngA(7);
  Rng rngB(8);
  const ReadResult a = chr.proposed_read_at(tc, true, false, &rngA, 0.030);
  const ReadResult b = chr.proposed_read_at(tc, true, false, &rngB, 0.030);
  EXPECT_NE(a.delay, b.delay);
}

TEST_F(MismatchTest, ExtremeMismatchEventuallyFails) {
  // Sanity of the failure mode: a huge offset (sigma = 0.4 V, beyond any
  // real process) must produce at least one incorrect restore, proving the
  // yield metric can actually detect failures.
  const TechCorner tc = chr.technology().read_corner(Corner::Worst);
  Rng rng(99);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!chr.proposed_read_at(tc, (i & 1) != 0, (i & 2) != 0, &rng, 0.4).correct) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
}

} // namespace
} // namespace nvff::cell
