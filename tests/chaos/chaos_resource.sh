#!/bin/sh
# Resource-exhaustion survival drills, driven through the deterministic
# failpoint registry (--failpoints): disk full at every durable commit
# stage, EMFILE on the coordinator's accept path, an EINTR storm from a
# real SIGUSR1 ticker, and allocation failure in the trial hot path.
#
# The contract under drill: environmental exhaustion NEVER costs committed
# work and NEVER perturbs a result byte. A full disk at the final commit
# exits 75 (EX_TEMPFAIL) with the previous checkpoint generation intact and
# the same command resumable once space returns; a shed connection degrades
# to local execution; an interrupted syscall is retried, not reported.
#
#   usage: chaos_resource.sh /path/to/nvfftool [seed]
set -u

NVFFTOOL="$1"
SEED="${2:-7}"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
failures=0

note() { printf '%s\n' "$*" >&2; }

# compare <name> <golden> <file>
compare() {
  if cmp -s "$2" "$3"; then
    note "ok: $1 — report byte-identical to the clean run"
  else
    note "FAIL: $1 — report diverged from the clean run"
    diff "$2" "$3" | head -20 >&2
    failures=$((failures + 1))
  fi
}

# expect_exit <name> <expected> <actual>
expect_exit() {
  if [ "$3" -eq "$2" ]; then
    note "ok: $1 exited $2"
  else
    note "FAIL: $1 — expected exit $2, got $3"
    failures=$((failures + 1))
  fi
}

MC_ARGS="--trials 24 --seed $SEED"
PF_ARGS="--trials 16 --seed $SEED"

# Clean goldens, one per engine.
if ! "$NVFFTOOL" mc $MC_ARGS --threads 2 >"$WORK/mc.golden" 2>/dev/null; then
  note "FAIL: clean mc golden run failed"; exit 1
fi
if ! "$NVFFTOOL" powerfail $PF_ARGS --threads 2 >"$WORK/pf.golden" 2>/dev/null; then
  note "FAIL: clean powerfail golden run failed"; exit 1
fi

# --- drill 1: disk full at EVERY durable commit stage, both engines ---------
# Shape of each case: a clean checkpointed run commits the campaign; a rerun
# with the stage's failpoint armed resumes every trial, reaches the final
# commit, and hits injected ENOSPC there. That rerun must exit 75 with a
# clean stdout (durability promised, not delivered — no report), must leave
# the previously committed generation loadable, and the SAME command without
# the failpoint must then resume to a byte-identical report.
for engine in mc powerfail; do
  case "$engine" in
    mc) args="$MC_ARGS"; golden="$WORK/mc.golden" ;;
    *)  args="$PF_ARGS"; golden="$WORK/pf.golden" ;;
  esac
  for site in durable.open durable.write durable.fsync durable.close \
              durable.rotate durable.rename; do
    label="drill1 $engine $site"
    ckpt="$WORK/d1_${engine}_${site}.json"
    if ! "$NVFFTOOL" "$engine" $args --threads 2 --checkpoint "$ckpt" \
        >/dev/null 2>&1; then
      note "FAIL: $label — seeding checkpointed run failed"
      failures=$((failures + 1)); continue
    fi
    "$NVFFTOOL" "$engine" $args --threads 2 --checkpoint "$ckpt" --resume \
      --failpoints "$site=every(1):errno(ENOSPC)" \
      >"$WORK/d1.out" 2>"$WORK/d1.err"
    expect_exit "$label ENOSPC run" 75 $?
    if [ -s "$WORK/d1.out" ]; then
      note "FAIL: $label — printed a report despite failing durability"
      failures=$((failures + 1))
    fi
    if ! grep -q "previous checkpoint generation intact" "$WORK/d1.err"; then
      note "FAIL: $label — diagnostic does not promise the intact generation"
      sed 's/^/  | /' "$WORK/d1.err" | tail -3 >&2
      failures=$((failures + 1))
    fi
    "$NVFFTOOL" "$engine" $args --threads 2 --checkpoint "$ckpt" --resume \
      >"$WORK/d1_resume.out" 2>"$WORK/d1_resume.err"
    expect_exit "$label resume after space returns" 0 $?
    compare "$label resumed report" "$golden" "$WORK/d1_resume.out"
  done
done

# --- drill 2: mid-campaign ENOSPC is a warning, not a lost campaign ---------
# times(1): exactly the first commit's write fails; later cadence commits
# and the final commit succeed. The campaign must complete with exit 0 and
# the exact golden report — a transient full disk costs nothing but a warn.
"$NVFFTOOL" mc $MC_ARGS --threads 1 --checkpoint "$WORK/d2.json" \
  --checkpoint-every 4 --failpoints "durable.write=times(1):errno(ENOSPC)" \
  >"$WORK/d2.out" 2>"$WORK/d2.err"
expect_exit "drill2 transient mid-campaign ENOSPC" 0 $?
compare "drill2 report" "$WORK/mc.golden" "$WORK/d2.out"
if ! grep -qi "checkpoint" "$WORK/d2.err"; then
  note "FAIL: drill2 — the failed mid-campaign commit was not warned about"
  failures=$((failures + 1))
fi

# --- drill 3: EMFILE on accept — shed, keep serving, finish locally ---------
# every(1): the coordinator can NEVER accept the worker; every pending
# connection is shed with a warning while the event loop keeps serving, and
# the campaign completes through --local-threads with the exact report.
SOCK="$WORK/emfile.sock"
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 \
  --reconnect-budget-s 2 2>"$WORK/d3.worker.err" & w=$!
"$NVFFTOOL" serve --engine mc $MC_ARGS --endpoint "unix:$SOCK" \
  --local-threads 2 --failpoints "dist.accept=every(1):errno(EMFILE)" \
  >"$WORK/d3.out" 2>"$WORK/d3.err"
expect_exit "drill3 coordinator under EMFILE" 0 $?
wait "$w" 2>/dev/null # never adopted; retires via its reconnect budget
compare "drill3 report" "$WORK/mc.golden" "$WORK/d3.out"
if ! grep -q "shedding connection" "$WORK/d3.err"; then
  note "FAIL: drill3 — no shed-and-continue warning for the EMFILE accept"
  sed 's/^/  | /' "$WORK/d3.err" | tail -5 >&2
  failures=$((failures + 1))
fi

# --- drill 4: transient EMFILE — shed a few accepts, then adopt the worker --
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 \
  --reconnect-budget-s 10 2>"$WORK/d4.worker.err" & w=$!
"$NVFFTOOL" serve --engine mc $MC_ARGS --endpoint "unix:$SOCK" \
  --local-threads 1 --shard-size 4 \
  --failpoints "dist.accept=times(2):errno(EMFILE)" \
  >"$WORK/d4.out" 2>"$WORK/d4.err"
expect_exit "drill4 coordinator after transient EMFILE" 0 $?
wait "$w"
expect_exit "drill4 worker adopted after the shed window" 0 $?
compare "drill4 report" "$WORK/mc.golden" "$WORK/d4.out"

# --- drill 5: EINTR storm — a real SIGUSR1 ticker during the campaign -------
# The campaign commands install a no-op SIGUSR1 handler WITHOUT SA_RESTART,
# so every blocking syscall underneath genuinely returns EINTR while the
# ticker runs. No interruption instant may change a single report byte.
storm() { # storm <pid> — ~100 signals/s until the target exits
  # Give the target a beat to get through exec and install its no-op
  # handler; a signal landing in the exec window would just kill it
  # (default SIGUSR1 disposition), which is not the drill.
  sleep 0.3
  while kill -USR1 "$1" 2>/dev/null; do
    sleep 0.01 2>/dev/null || sleep 1
  done
}
"$NVFFTOOL" mc $MC_ARGS --threads 2 --checkpoint "$WORK/d5.json" \
  --checkpoint-every 4 >"$WORK/d5.out" 2>"$WORK/d5.err" & camp=$!
storm "$camp" & ticker=$!
wait "$camp"
expect_exit "drill5 mc under SIGUSR1 storm" 0 $?
wait "$ticker" 2>/dev/null
compare "drill5 report" "$WORK/mc.golden" "$WORK/d5.out"

# The same storm over the distributed path: coordinator AND worker both get
# ticked, so the socket send/recv/accept loops take the interruptions too.
SOCK="$WORK/eintr.sock"
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 \
  2>"$WORK/d5w.err" & w=$!
"$NVFFTOOL" serve --engine mc $MC_ARGS --endpoint "unix:$SOCK" \
  --shard-size 4 --local-threads 1 \
  >"$WORK/d5d.out" 2>"$WORK/d5d.err" & coord=$!
storm "$coord" & t1=$!
storm "$w" & t2=$!
wait "$coord"
expect_exit "drill5 distributed coordinator under storm" 0 $?
wait "$w"
expect_exit "drill5 worker under storm" 0 $?
wait "$t1" 2>/dev/null; wait "$t2" 2>/dev/null
compare "drill5 distributed report" "$WORK/mc.golden" "$WORK/d5d.out"

# --- drill 6: injected EINTR + EIO on the checkpoint LOAD path --------------
# times(4):eintr — four interrupted reads during resume must be retried
# transparently: full resume, zero re-run trials, byte-identical report.
"$NVFFTOOL" mc $MC_ARGS --threads 2 --checkpoint "$WORK/d6.json" \
  >/dev/null 2>&1
"$NVFFTOOL" mc $MC_ARGS --threads 2 --checkpoint "$WORK/d6.json" --resume \
  --failpoints "checkpoint.load=times(4):eintr" \
  >"$WORK/d6.out" 2>"$WORK/d6.err"
expect_exit "drill6 resume through an EINTR-storm load" 0 $?
compare "drill6 report" "$WORK/mc.golden" "$WORK/d6.out"

# --- drill 7: allocation failure in the trial hot path ----------------------
# times(2):errno(ENOMEM) — two trial slots fail to allocate and ride the
# transient-retry ladder (maxTrialAttempts 3 > 2 even if one slot eats both
# hits). The campaign completes exactly.
"$NVFFTOOL" powerfail $PF_ARGS --threads 2 \
  --failpoints "engine.alloc=times(2):errno(ENOMEM)" \
  >"$WORK/d7.out" 2>"$WORK/d7.err"
expect_exit "drill7 powerfail through injected ENOMEM" 0 $?
compare "drill7 report" "$WORK/pf.golden" "$WORK/d7.out"

if [ "$failures" -ne 0 ]; then
  note "$failures resource-exhaustion check(s) failed"
  exit 1
fi
note "all resource-exhaustion survival drills passed"
exit 0
