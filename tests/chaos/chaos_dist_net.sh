#!/bin/sh
# Network-chaos drill for the distributed campaign service: every frame
# between the workers and the coordinator crosses the deterministic netchaos
# proxy — per-connection latency, throttling, 1-byte dribble, mid-frame
# resets, black holes, and bit corruption, drawn from Rng::stream(seed,
# connection#) — and the merged report must STILL come out byte-identical to
# the uninterrupted single-process run, for both campaign engines, at every
# seed.
#
# Why this can be demanded exactly: trial t is a pure function of
# (config, t), corrupted frames are caught by the CRC envelope and the shard
# re-dispatched, a reset or black-holed connection degrades through the
# reconnect / quarantine / re-dispatch ladder, and shard results merge into
# slots that never alias. The network weather may change WHO computes a
# shard and WHEN — never a single output byte.
#
#   usage: chaos_dist_net.sh /path/to/nvfftool [extra-weather-seed]
#
# The optional second argument adds one more mc drill at that seed, so each
# CI config can explore network weather developers' fixed seeds don't.
set -u

NVFFTOOL="$1"
EXTRA_SEED="${2:-}"
WORK=$(mktemp -d)
PIDS=""
cleanup() {
  # Shoot anything the drill left behind (stuck workers, the proxy).
  for p in $PIDS; do kill -9 "$p" 2>/dev/null; done
  rm -rf "$WORK"
}
trap cleanup EXIT
failures=0

note() { printf '%s\n' "$*" >&2; }

# wait_for_file <file> — poll for an --endpoint-file to appear (the writer
# renames it into place atomically, so existence means complete content).
wait_for_file() {
  i=0
  while [ ! -f "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      note "FAIL: endpoint file $1 never appeared"
      return 1
    fi
    sleep 0.1
  done
  return 0
}

# compare <name> <golden> <actual>
compare() {
  if cmp -s "$2" "$3"; then
    note "ok: $1 — report byte-identical to the single-process run"
  else
    note "FAIL: $1 — report diverged from the single-process run"
    diff "$2" "$3" | head -20 >&2
    failures=$((failures + 1))
  fi
}

# expect_worker_retired <name> <exit> <errfile> — through heavy weather a
# worker may miss the final Shutdown frame (black-holed or mid-reconnect
# when the coordinator finished) and retire through its reconnect budget
# with exit 1; that is the documented best-effort shutdown contract.
expect_worker_retired() {
  if [ "$2" -eq 0 ]; then
    note "ok: $1 exited 0"
  elif [ "$2" -eq 1 ] && grep -q "within the reconnect budget" "$3"; then
    note "ok: $1 retired via its reconnect budget"
  else
    note "FAIL: $1 — expected exit 0 or budget retirement, got exit $2"
    sed 's/^/    /' "$3" | tail -5 >&2
    failures=$((failures + 1))
  fi
}

# mc trials are expensive (real SPICE transients, ~0.5 s each): 32 keep the
# coordinator busy for seconds while chaos plays out. powerfail trials are
# ~1 ms each: 2048 give the campaign enough wall-clock for workers to join
# through the proxy AND push hundreds of shard frames through the weather.
MC_ARGS="--trials 32 --seed 7"
PF_ARGS="--trials 2048 --seed 3"
BH_ARGS="--trials 16 --seed 9"

note "building single-process goldens..."
mc_golden="$WORK/mc.golden"
pf_golden="$WORK/pf.golden"
bh_golden="$WORK/bh.golden"
if ! "$NVFFTOOL" mc $MC_ARGS --threads 2 >"$mc_golden" 2>/dev/null; then
  note "FAIL: mc golden run failed"; exit 1
fi
if ! "$NVFFTOOL" powerfail $PF_ARGS --threads 2 >"$pf_golden" 2>/dev/null; then
  note "FAIL: powerfail golden run failed"; exit 1
fi
if ! "$NVFFTOOL" mc $BH_ARGS --threads 2 >"$bh_golden" 2>/dev/null; then
  note "FAIL: blackhole golden run failed"; exit 1
fi

# drill <tag> <seed> <coordinator-endpoint> <golden> <engine+args...>
#
# Coordinator listens on <coordinator-endpoint> (tcp ephemeral or unix —
# the proxy bridges schemes, so a tcp-facing fleet can front a unix-domain
# coordinator); the proxy draws its weather from <seed>; two workers dial
# the PROXY. --local-threads 1 is the degradation floor: even if every
# worker connection draws a black hole, the campaign completes.
#
# Start order depends on the coordinator's scheme. tcp:...:0 is ephemeral,
# so the coordinator must come up first to learn the port. A unix PATH is
# known a priori, so the proxy and the workers start FIRST and are already
# knocking (proxy dropping their dials as upstream-unreachable, workers
# burning backoff) the instant the coordinator binds — which both exercises
# the reconnect path and guarantees fast engines don't finish before any
# worker ever got through the weather.
drill() {
  tag="$1"; seed="$2"; coord_ep="$3"; golden="$4"; shift 4
  coord_file="$WORK/$tag.coord.ep"
  chaos_file="$WORK/$tag.chaos.ep"
  coord=""

  start_coord() {
    "$NVFFTOOL" serve --engine "$@" \
      --endpoint "$coord_ep" --endpoint-file "$coord_file" \
      --shard-size 4 --local-threads 1 \
      --stall-timeout-s 2 --send-timeout-ms 500 \
      >"$WORK/$tag.out" 2>"$WORK/$tag.err" & coord=$!
    PIDS="$PIDS $coord"
  }
  start_proxy() {
    "$NVFFTOOL" netchaos --listen tcp:127.0.0.1:0 \
      --upstream "$1" --seed "$seed" \
      --endpoint-file "$chaos_file" 2>"$WORK/$tag.chaos.err" & proxy=$!
    PIDS="$PIDS $proxy"
  }
  start_workers() {
    "$NVFFTOOL" worker --endpoint "$(cat "$chaos_file")" --threads 2 \
      --reconnect-budget-s 10 2>"$WORK/$tag.w1.err" & w1=$!
    "$NVFFTOOL" worker --endpoint "$(cat "$chaos_file")" --threads 2 \
      --reconnect-budget-s 10 2>"$WORK/$tag.w2.err" & w2=$!
    PIDS="$PIDS $w1 $w2"
  }

  case "$coord_ep" in
    unix:*)
      start_proxy "$coord_ep"
      wait_for_file "$chaos_file" || { failures=$((failures + 1)); return; }
      start_workers
      start_coord "$@"
      ;;
    *)
      start_coord "$@"
      wait_for_file "$coord_file" || { failures=$((failures + 1)); return; }
      start_proxy "$(cat "$coord_file")"
      wait_for_file "$chaos_file" || { failures=$((failures + 1)); return; }
      start_workers
      ;;
  esac

  wait "$coord"; rc=$?
  if [ "$rc" -ne 0 ]; then
    note "FAIL: $tag — coordinator exited $rc"
    sed 's/^/    /' "$WORK/$tag.err" | tail -8 >&2
    failures=$((failures + 1))
  fi
  compare "$tag (seed $seed)" "$golden" "$WORK/$tag.out"
  wait "$w1"; expect_worker_retired "$tag worker 1" $? "$WORK/$tag.w1.err"
  wait "$w2"; expect_worker_retired "$tag worker 2" $? "$WORK/$tag.w2.err"

  kill -TERM "$proxy" 2>/dev/null
  wait "$proxy"; rc=$?
  if [ "$rc" -ne 0 ]; then
    note "FAIL: $tag — proxy exited $rc on SIGTERM"
    failures=$((failures + 1))
  fi
  # Every drawn profile is logged; surface the weather this seed produced.
  note "  weather: $(grep -c 'profile=' "$WORK/$tag.chaos.err" || true) \
connection(s): $(sed -n 's/.*profile=//p' "$WORK/$tag.chaos.err" | sort | \
uniq -c | tr -s ' \n' ' ' )"
}

# --- mc through three distinct seeds of network weather ---------------------
drill mc1031 1031 tcp:127.0.0.1:0 "$mc_golden" mc $MC_ARGS
drill mc2063 2063 tcp:127.0.0.1:0 "$mc_golden" mc $MC_ARGS
drill mc4099 4099 tcp:127.0.0.1:0 "$mc_golden" mc $MC_ARGS
if [ -n "$EXTRA_SEED" ]; then
  drill "mc$EXTRA_SEED" "$EXTRA_SEED" tcp:127.0.0.1:0 "$mc_golden" mc $MC_ARGS
fi

# --- powerfail through two seeds, tcp proxy fronting a UNIX coordinator -----
drill pf17 17 "unix:$WORK/pf17.sock" "$pf_golden" powerfail $PF_ARGS
drill pf29 29 "unix:$WORK/pf29.sock" "$pf_golden" powerfail $PF_ARGS

# --- black-hole drill: a silent peer must not stall the coordinator ---------
# Every connection through this proxy is a pure black hole: the worker's
# frames vanish, the coordinator accepts a connection that never speaks.
# The mc engine keeps the coordinator busy for seconds — plenty of window
# for the worker to dial into the black hole while the campaign runs. The
# campaign must complete on the local executor within a bounded time — a
# wedged event loop would blow the budget (and the ctest timeout).
bh_coord="$WORK/bh.coord.ep"
bh_chaos="$WORK/bh.chaos.ep"
start=$(date +%s)
"$NVFFTOOL" serve --engine mc $BH_ARGS \
  --endpoint tcp:127.0.0.1:0 --endpoint-file "$bh_coord" \
  --shard-size 4 --local-threads 1 --stall-timeout-s 1 --send-timeout-ms 250 \
  >"$WORK/bh.out" 2>"$WORK/bh.err" & coord=$!
PIDS="$PIDS $coord"
wait_for_file "$bh_coord" || failures=$((failures + 1))
"$NVFFTOOL" netchaos --listen tcp:127.0.0.1:0 --upstream "$(cat "$bh_coord")" \
  --seed 13 --only blackhole --clean-share 0 \
  --endpoint-file "$bh_chaos" 2>"$WORK/bh.chaos.err" & proxy=$!
PIDS="$PIDS $proxy"
wait_for_file "$bh_chaos" || failures=$((failures + 1))
"$NVFFTOOL" worker --endpoint "$(cat "$bh_chaos")" --threads 2 \
  --reconnect-budget-s 3 2>"$WORK/bh.w.err" & w=$!
PIDS="$PIDS $w"
wait "$coord"; rc=$?
elapsed=$(( $(date +%s) - start ))
if [ "$rc" -ne 0 ]; then
  note "FAIL: blackhole drill — coordinator exited $rc"
  failures=$((failures + 1))
fi
if [ "$elapsed" -gt 120 ]; then
  note "FAIL: blackhole drill — coordinator took ${elapsed}s (stalled?)"
  failures=$((failures + 1))
else
  note "ok: blackhole drill — coordinator finished in ${elapsed}s despite a silent peer"
fi
compare "blackhole drill" "$bh_golden" "$WORK/bh.out"
wait "$w"; rc=$?
if [ "$rc" -eq 1 ] && grep -q "within the reconnect budget" "$WORK/bh.w.err"; then
  note "ok: blackhole drill — worker retired via its reconnect budget"
else
  note "FAIL: blackhole drill — black-holed worker exited $rc"
  sed 's/^/    /' "$WORK/bh.w.err" | tail -5 >&2
  failures=$((failures + 1))
fi
if ! grep -q "blackhole" "$WORK/bh.chaos.err"; then
  note "FAIL: blackhole drill — the proxy never drew a blackhole profile"
  failures=$((failures + 1))
fi
kill -TERM "$proxy" 2>/dev/null
wait "$proxy" 2>/dev/null

if [ "$failures" -ne 0 ]; then
  note "$failures network-chaos check(s) failed"
  exit 1
fi
note "all network-chaos checks passed"
exit 0
