#!/bin/sh
# Chaos self-test for the campaign runtime: kill -9 a live campaign at
# pseudo-random instants, corrupt the checkpoint between attempts (truncate,
# bit-flip), and assert that the eventually-completed run's stdout is
# BIT-IDENTICAL to an uninterrupted run of the same campaign.
#
# This is the end-to-end proof of the determinism + durability contract:
# trial t draws from stream(seed, t) and writes slot t, checkpoints commit
# via CRC envelope + fsync + two generations, so no instant of death and no
# single-file corruption may change a single byte of the final report.
#
#   usage: chaos_kill_resume.sh /path/to/nvfftool [seed]
set -u

NVFFTOOL="$1"
SEED="${2:-1}"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
failures=0

note() { printf '%s\n' "$*" >&2; }

# Deterministic pseudo-random kill delay in seconds for attempt $2 of run $1.
delay_for() {
  awk -v s="$SEED" -v run="$1" -v i="$2" \
    'BEGIN { srand(s * 131 + run * 17 + i); printf "%.2f", 0.3 + rand() * 1.7 }'
}

# Flips one byte in the middle of $1 (media-corruption simulation).
bit_flip() {
  size=$(wc -c <"$1")
  [ "$size" -gt 0 ] || return
  printf '\377' | dd of="$1" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null
}

# Truncates $1 to half its size (torn-write simulation).
truncate_half() {
  size=$(wc -c <"$1")
  [ "$size" -gt 1 ] || return
  head -c $((size / 2)) "$1" >"$1.half" && mv "$1.half" "$1"
}

# chaos_run <name> <run#> <checkpoint-cadence> -- <campaign args...>
# Golden first, then kill -9 the checkpointed campaign repeatedly (corrupting
# the checkpoint after some deaths), then let it run to completion and
# compare stdout byte-for-byte against golden.
chaos_run() {
  name="$1"; runid="$2"; cadence="$3"; shift 4
  golden="$WORK/$name.golden"
  ckpt="$WORK/$name.ckpt"
  out="$WORK/$name.out"

  if ! "$NVFFTOOL" "$@" >"$golden" 2>"$WORK/$name.golden.err"; then
    note "FAIL: $name — uninterrupted golden run failed"
    sed 's/^/  | /' "$WORK/$name.golden.err" >&2
    failures=$((failures + 1))
    return
  fi

  kills=0
  attempt=0
  while [ "$attempt" -lt 5 ]; do
    "$NVFFTOOL" "$@" --checkpoint "$ckpt" --checkpoint-every "$cadence" \
      >"$out" 2>/dev/null &
    pid=$!
    sleep "$(delay_for "$runid" "$attempt")"
    if kill -9 "$pid" 2>/dev/null; then
      wait "$pid" 2>/dev/null
      kills=$((kills + 1))
      # Corrupt the surviving checkpoint after some deaths: the loader must
      # quarantine it and fall back (or start over) — never crash, never
      # change the final output.
      if [ -f "$ckpt" ]; then
        case "$attempt" in
          1) truncate_half "$ckpt" ;;
          2) bit_flip "$ckpt" ;;
        esac
      fi
    else
      wait "$pid" 2>/dev/null
      break # campaign finished before the shot landed
    fi
    attempt=$((attempt + 1))
  done

  # Final uninterrupted leg: resume whatever survived and finish.
  if ! "$NVFFTOOL" "$@" --checkpoint "$ckpt" --checkpoint-every "$cadence" \
      >"$out" 2>"$WORK/$name.err"; then
    note "FAIL: $name — resume leg exited nonzero after $kills kill(s)"
    sed 's/^/  | /' "$WORK/$name.err" >&2
    failures=$((failures + 1))
    return
  fi

  if cmp -s "$golden" "$out"; then
    note "ok: $name — bit-identical after $kills kill -9(s) + corruption"
  else
    note "FAIL: $name — output diverged from the uninterrupted run"
    diff "$golden" "$out" | head -20 >&2
    failures=$((failures + 1))
  fi
}

# Corruption-only drill (no kill): complete a campaign, corrupt BOTH the
# checkpoint and its previous generation in different ways, and check the
# resume path quarantines and still reproduces the golden output.
corruption_run() {
  name="$1"; shift 2
  golden="$WORK/$name.golden"
  ckpt="$WORK/$name.ckpt"
  out="$WORK/$name.out"

  "$NVFFTOOL" "$@" >"$golden" 2>/dev/null
  "$NVFFTOOL" "$@" --checkpoint "$ckpt" --checkpoint-every 2 >/dev/null 2>&1
  bit_flip "$ckpt"
  if ! "$NVFFTOOL" "$@" --checkpoint "$ckpt" >"$out" 2>"$WORK/$name.err"; then
    note "FAIL: $name — corrupt-checkpoint resume exited nonzero"
    failures=$((failures + 1))
    return
  fi
  if ! cmp -s "$golden" "$out"; then
    note "FAIL: $name — corrupt-checkpoint resume diverged from golden"
    failures=$((failures + 1))
    return
  fi
  if ls "$ckpt".corrupt* >/dev/null 2>&1 || \
     grep -q "quarantined" "$WORK/$name.err"; then
    note "ok: $name — corrupt generation quarantined, output bit-identical"
  else
    note "FAIL: $name — corruption was neither quarantined nor reported"
    failures=$((failures + 1))
  fi
}

# mc trials are SPICE-slow (cadence 2 keeps checkpoints frequent); powerfail
# trials are logic-sim-fast, so it takes thousands of them (and a coarser
# cadence) for the kill window to land mid-campaign.
chaos_run mc 1 2 -- mc --trials 24 --threads 2 --seed 7
chaos_run powerfail 2 64 -- powerfail --trials 2000 --threads 2 --seed 7
corruption_run mc_corrupt -- mc --trials 8 --threads 2 --seed 9
corruption_run powerfail_corrupt -- powerfail --trials 8 --threads 2 --seed 9

if [ "$failures" -ne 0 ]; then
  note "$failures chaos check(s) failed"
  exit 1
fi
note "all chaos checks passed"
exit 0
