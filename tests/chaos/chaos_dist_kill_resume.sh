#!/bin/sh
# Chaos drill for the DISTRIBUTED campaign service: the merged report of a
# coordinator/worker run must be bit-identical to the single-process run of
# the same campaign — through worker kill -9, coordinator kill -9 + restart,
# frame corruption on the wire, and full degradation to zero workers.
#
# Why this can be demanded exactly: trial t is a pure function of
# (config, t) via counter-based RNG streams, shard results merge into slots
# that never alias, and the coordinator's merged state is an ordinary durable
# checkpoint (CRC envelope, fsync, two generations). No instant of death,
# no flipped wire bit, and no topology change may alter a single output byte.
#
#   usage: chaos_dist_kill_resume.sh /path/to/nvfftool
set -u

NVFFTOOL="$1"
WORK=$(mktemp -d)
SOCK="$WORK/coord.sock"
trap 'rm -rf "$WORK"' EXIT
failures=0

note() { printf '%s\n' "$*" >&2; }

MC_ARGS="--trials 32 --seed 7"
SERVE_ARGS="serve --engine mc $MC_ARGS --endpoint unix:$SOCK --shard-size 4"

golden="$WORK/golden.out"
if ! "$NVFFTOOL" mc $MC_ARGS --threads 2 >"$golden" 2>/dev/null; then
  note "FAIL: uninterrupted single-process golden run failed"
  exit 1
fi

# compare <name> <file>
compare() {
  if cmp -s "$golden" "$2"; then
    note "ok: $1 — report bit-identical to the single-process run"
  else
    note "FAIL: $1 — report diverged from the single-process run"
    diff "$golden" "$2" | head -20 >&2
    failures=$((failures + 1))
  fi
}

# expect_exit <name> <expected> <actual>
expect_exit() {
  if [ "$3" -eq "$2" ]; then
    note "ok: $1 exited $2"
  else
    note "FAIL: $1 — expected exit $2, got $3"
    failures=$((failures + 1))
  fi
}

# expect_worker_retired <name> <actual> <errfile>
# A worker that spans a coordinator kill may miss the final Shutdown frame
# (it was mid-reconnect when the restarted coordinator finished) and retire
# through its reconnect budget with exit 1 — the documented best-effort
# shutdown contract. Exit 0 (got Shutdown) and that retirement are both
# clean; anything else is a failure.
expect_worker_retired() {
  if [ "$2" -eq 0 ]; then
    note "ok: $1 exited 0"
  elif [ "$2" -eq 1 ] && grep -q "within the reconnect budget" "$3"; then
    note "ok: $1 missed the shutdown race and retired via its reconnect budget"
  else
    note "FAIL: $1 — expected exit 0 or budget retirement, got exit $2"
    sed 's/^/    /' "$3" | tail -5 >&2
    failures=$((failures + 1))
  fi
}

# --- drill 1: plain distributed run, two workers ----------------------------
# The workers dial via the deprecated --socket alias on purpose: old fleet
# scripts must keep working against an --endpoint coordinator (the alias is
# pinned here AND in tests/cli/test_nvfftool_cli.sh).
"$NVFFTOOL" worker --socket "$SOCK" --threads 2 2>"$WORK/w1.err" & w1=$!
"$NVFFTOOL" worker --socket "$SOCK" --threads 2 2>"$WORK/w2.err" & w2=$!
"$NVFFTOOL" $SERVE_ARGS >"$WORK/d1.out" 2>"$WORK/d1.err"
expect_exit "drill1 coordinator" 0 $?
wait "$w1"; expect_exit "drill1 worker 1" 0 $?
wait "$w2"; expect_exit "drill1 worker 2" 0 $?
compare "drill1 two-worker run" "$WORK/d1.out"

# --- drill 2: kill -9 one worker mid-flight ---------------------------------
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 2>"$WORK/w3.err" & w3=$!
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 2>"$WORK/w4.err" & w4=$!
"$NVFFTOOL" $SERVE_ARGS --stall-timeout-s 1 \
  >"$WORK/d2.out" 2>"$WORK/d2.err" & coord=$!
sleep 1
kill -9 "$w3" 2>/dev/null && note "drill2: shot worker $w3 mid-flight"
wait "$coord"; expect_exit "drill2 coordinator" 0 $?
wait "$w4"; expect_exit "drill2 surviving worker" 0 $?
wait "$w3" 2>/dev/null
compare "drill2 worker-killed run" "$WORK/d2.out"
if ! grep -q "re-dispatch" "$WORK/d2.err"; then
  note "note: drill2 — kill landed without a re-dispatch (worker between shards); still exact"
fi

# --- drill 3: kill -9 the coordinator, restart, workers reconnect -----------
ckpt="$WORK/merged.ckpt"
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 2>"$WORK/w5.err" & w5=$!
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 2>"$WORK/w6.err" & w6=$!
"$NVFFTOOL" $SERVE_ARGS --checkpoint "$ckpt" --checkpoint-every 1 \
  >/dev/null 2>"$WORK/d3a.err" & coord=$!
sleep 1
if kill -9 "$coord" 2>/dev/null; then
  note "drill3: shot the coordinator mid-flight"
fi
wait "$coord" 2>/dev/null
# Workers are now orphaned and retrying inside their reconnect budget; the
# restarted coordinator must adopt them plus whatever the checkpoint holds.
"$NVFFTOOL" $SERVE_ARGS --checkpoint "$ckpt" --checkpoint-every 1 \
  >"$WORK/d3.out" 2>"$WORK/d3.err"
expect_exit "drill3 restarted coordinator" 0 $?
wait "$w5"; expect_worker_retired "drill3 worker 1" $? "$WORK/w5.err"
wait "$w6"; expect_worker_retired "drill3 worker 2" $? "$WORK/w6.err"
compare "drill3 coordinator-killed-and-restarted run" "$WORK/d3.out"

# --- drill 4: frame corruption on the wire ----------------------------------
"$NVFFTOOL" worker --endpoint "unix:$SOCK" --threads 2 --chaos-corrupt-every 5 \
  2>"$WORK/w7.err" & w7=$!
"$NVFFTOOL" $SERVE_ARGS --local-threads 1 --stall-timeout-s 1 \
  >"$WORK/d4.out" 2>"$WORK/d4.err"
expect_exit "drill4 coordinator" 0 $?
wait "$w7" 2>/dev/null # corrupting worker may end mid-reconnect; exit code free
compare "drill4 corrupted-frames run" "$WORK/d4.out"
if grep -q "rejected frame" "$WORK/d4.err" && \
   ! grep -q " 0 rejected frame" "$WORK/d4.err"; then
  note "ok: drill4 — corrupted frames were detected and classified"
else
  note "FAIL: drill4 — no frame rejection recorded despite the chaos hook"
  cat "$WORK/d4.err" >&2
  failures=$((failures + 1))
fi

# --- drill 5: graceful degradation to zero workers --------------------------
"$NVFFTOOL" serve --engine mc $MC_ARGS --local-threads 2 \
  >"$WORK/d5.out" 2>"$WORK/d5.err"
expect_exit "drill5 coordinator-only fallback" 0 $?
compare "drill5 coordinator-only run" "$WORK/d5.out"

# --- drill 6: merged checkpoint is a normal single-process checkpoint -------
cp "$ckpt" "$WORK/sp.ckpt"
if ! "$NVFFTOOL" mc $MC_ARGS --threads 2 --checkpoint "$WORK/sp.ckpt" --resume \
    >"$WORK/d6.out" 2>"$WORK/d6.err"; then
  note "FAIL: drill6 — single-process resume of the merged checkpoint failed"
  sed 's/^/  | /' "$WORK/d6.err" >&2
  failures=$((failures + 1))
else
  if ! grep -q "resumed" "$WORK/d6.err"; then
    note "FAIL: drill6 — nothing was actually resumed from the merged state"
    failures=$((failures + 1))
  fi
  compare "drill6 single-process resume of merged checkpoint" "$WORK/d6.out"
fi

if [ "$failures" -ne 0 ]; then
  note "$failures distributed chaos check(s) failed"
  exit 1
fi
note "all distributed chaos checks passed"
exit 0
