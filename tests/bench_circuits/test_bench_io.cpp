#include "bench_circuits/bench_io.hpp"

#include <gtest/gtest.h>

namespace nvff::bench {
namespace {

const char* kSample = R"(# a tiny sequential circuit
INPUT(a)
INPUT(b)
OUTPUT(o)
n1 = NAND(a, b)
q = DFF(n1)
o = NOT(q)
)";

TEST(BenchIo, ParsesSample) {
  const Netlist nl = parse_bench_string(kSample, "tiny");
  EXPECT_EQ(nl.name(), "tiny");
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_flip_flops(), 1u);
  EXPECT_EQ(nl.num_logic_gates(), 2u);
  const Gate& n1 = nl.gate(nl.find("n1"));
  EXPECT_EQ(n1.type, GateType::Nand);
  ASSERT_EQ(n1.fanin.size(), 2u);
}

TEST(BenchIo, ForwardReferencesAllowed) {
  // DFF referenced before its definition (feedback).
  const char* text = R"(
INPUT(a)
g = XOR(a, q)
q = DFF(g)
OUTPUT(g)
)";
  const Netlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.num_flip_flops(), 1u);
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist nl = parse_bench_string(kSample, "tiny");
  const std::string text = to_bench(nl);
  const Netlist again = parse_bench_string(text, "tiny");
  EXPECT_EQ(again.size(), nl.size());
  EXPECT_EQ(again.num_inputs(), nl.num_inputs());
  EXPECT_EQ(again.num_outputs(), nl.num_outputs());
  EXPECT_EQ(again.num_flip_flops(), nl.num_flip_flops());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    const GateId id = again.find(g.name);
    ASSERT_NE(id, kNoGate) << g.name;
    EXPECT_EQ(again.gate(id).type, g.type);
    EXPECT_EQ(again.gate(id).fanin.size(), g.fanin.size());
  }
}

TEST(BenchIo, ReportsLineNumbersOnErrors) {
  try {
    parse_bench_string("INPUT(a)\nz = FROB(a)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, RejectsUndefinedSignals) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nz = AND(a, ghost)\n"),
               std::runtime_error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(ghost)\n"), std::runtime_error);
}

TEST(BenchIo, IgnoresCommentsAndBlankLines) {
  const Netlist nl = parse_bench_string("\n# comment\n\nINPUT(x)\n\n");
  EXPECT_EQ(nl.num_inputs(), 1u);
}

TEST(BenchIo, FileRoundTrip) {
  const Netlist nl = parse_bench_string(kSample, "tiny");
  const std::string path = testing::TempDir() + "/nvff_roundtrip.bench";
  save_bench_file(nl, path);
  const Netlist loaded = load_bench_file(path);
  EXPECT_EQ(loaded.name(), "nvff_roundtrip");
  EXPECT_EQ(loaded.size(), nl.size());
}

} // namespace
} // namespace nvff::bench
