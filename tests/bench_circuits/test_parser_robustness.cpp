// Parser robustness: malformed and adversarial inputs must throw cleanly
// (never crash, never accept garbage), and valid inputs must round-trip.
#include <gtest/gtest.h>

#include <string>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"
#include "physdes/def_io.hpp"
#include "util/rng.hpp"

namespace nvff::bench {
namespace {

TEST(ParserRobustness, BenchMalformedInputsThrow) {
  const char* cases[] = {
      "INPUT(",                    // unterminated
      "x = (a)",                   // missing function
      "x = AND(a",                 // unterminated args (a undefined anyway)
      "= AND(a, b)",               // missing lhs
      "INPUT(a)\nx = DFF()",       // empty args
      "INPUT(a)\nx = AND(a)",      // arity violation (caught at finalize)
      "INPUT(a)\nINPUT(a)",        // duplicate
      "OUTPUT(nothing)",           // undefined output
      "INPUT(a)\nx = NOPE(a)",     // unknown gate
  };
  for (const char* text : cases) {
    EXPECT_THROW(parse_bench_string(text), std::runtime_error) << text;
  }
}

TEST(ParserRobustness, BenchRandomGarbageNeverCrashes) {
  Rng rng(0xfeed);
  const std::string alphabet = "ABC()=, \n#xyz019_";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const auto len = 1 + rng.uniform_index(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.uniform_index(alphabet.size())]);
    }
    try {
      parse_bench_string(text);
    } catch (const std::exception&) {
      // Throwing is fine; crashing or hanging is not.
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, BenchRoundTripAllSmallBenchmarks) {
  for (const char* name : {"s344", "s838", "s1423", "s5378"}) {
    const Netlist original = generate_benchmark(find_benchmark(name));
    const Netlist again = parse_bench_string(to_bench(original), name);
    ASSERT_EQ(again.size(), original.size()) << name;
    ASSERT_EQ(again.num_outputs(), original.num_outputs()) << name;
    for (std::size_t i = 0; i < original.size(); ++i) {
      const Gate& g = original.gate(static_cast<GateId>(i));
      const GateId id = again.find(g.name);
      ASSERT_NE(id, kNoGate) << name << ":" << g.name;
      const Gate& h = again.gate(id);
      ASSERT_EQ(h.type, g.type) << name << ":" << g.name;
      ASSERT_EQ(h.fanin.size(), g.fanin.size()) << name << ":" << g.name;
      for (std::size_t f = 0; f < g.fanin.size(); ++f) {
        ASSERT_EQ(again.gate(h.fanin[f]).name, original.gate(g.fanin[f]).name);
      }
    }
  }
}

TEST(ParserRobustness, DefRandomGarbageNeverCrashes) {
  Rng rng(0xdef);
  const std::string alphabet = "-+();DESIGNCOMPONENTSPLACED 0123456789\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const auto len = 1 + rng.uniform_index(200);
    for (std::uint64_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.uniform_index(alphabet.size())]);
    }
    try {
      physdes::parse_def_string(text);
    } catch (const std::exception&) {
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, DefIgnoresUnknownSections) {
  const char* text = R"(VERSION 5.8 ;
DESIGN x ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 1000 1000 ) ;
TRACKS X 0 DO 10 STEP 100 ;
SPECIALNETS 1 ;
END SPECIALNETS
COMPONENTS 1 ;
  - u1 DFF + PLACED ( 10 20 ) N ;
END COMPONENTS
END DESIGN
)";
  const auto d = physdes::parse_def_string(text);
  EXPECT_EQ(d.components.size(), 1u);
}

TEST(ParserRobustness, LargeBenchFileParsesLinearly) {
  // Guard against accidental quadratic behaviour: 20k gates parse quickly.
  BenchmarkSpec spec = find_benchmark("s5378");
  spec.logicGates = 20000;
  spec.flipFlops = 500;
  const Netlist big = generate_benchmark(spec);
  const std::string text = to_bench(big);
  const Netlist parsed = parse_bench_string(text);
  EXPECT_EQ(parsed.size(), big.size());
}

} // namespace
} // namespace nvff::bench
