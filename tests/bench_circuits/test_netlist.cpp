#include "bench_circuits/netlist.hpp"

#include <gtest/gtest.h>

namespace nvff::bench {
namespace {

Netlist tiny() {
  // a, b inputs; n1 = NAND(a,b); q = DFF(n1); out = NOT(q)
  Netlist nl("tiny");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId b = nl.add_gate(GateType::Input, "b");
  const GateId n1 = nl.add_gate(GateType::Nand, "n1", {a, b});
  const GateId q = nl.add_gate(GateType::Dff, "q", {n1});
  const GateId o = nl.add_gate(GateType::Not, "o", {q});
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

TEST(Netlist, CountsAndLookup) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.size(), 5u);
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 1u);
  EXPECT_EQ(nl.num_flip_flops(), 1u);
  EXPECT_EQ(nl.num_logic_gates(), 2u);
  EXPECT_EQ(nl.find("n1"), 2);
  EXPECT_EQ(nl.find("missing"), kNoGate);
}

TEST(Netlist, RejectsDuplicateNames) {
  Netlist nl;
  nl.add_gate(GateType::Input, "a");
  EXPECT_THROW(nl.add_gate(GateType::Input, "a"), std::runtime_error);
}

TEST(Netlist, FinalizeRejectsBadArity) {
  {
    Netlist nl;
    const GateId a = nl.add_gate(GateType::Input, "a");
    nl.add_gate(GateType::Nand, "n", {a}); // needs >= 2
    EXPECT_THROW(nl.finalize(), std::runtime_error);
  }
  {
    Netlist nl;
    nl.add_gate(GateType::Not, "n", {}); // needs exactly 1
    EXPECT_THROW(nl.finalize(), std::runtime_error);
  }
  {
    Netlist nl;
    const GateId a = nl.add_gate(GateType::Input, "a");
    const GateId b = nl.add_gate(GateType::Input, "b");
    nl.add_gate(GateType::Dff, "q", {a, b}); // DFF takes 1
    EXPECT_THROW(nl.finalize(), std::runtime_error);
  }
}

TEST(Netlist, FinalizeRejectsDanglingFanin) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId n = nl.add_gate(GateType::Buf, "n", {a});
  nl.set_fanin(n, {static_cast<GateId>(99)});
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, FinalizeRejectsCombinationalCycle) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId g1 = nl.add_gate(GateType::Nand, "g1", {a, a});
  const GateId g2 = nl.add_gate(GateType::Nand, "g2", {g1, a});
  nl.set_fanin(g1, {a, g2}); // g1 -> g2 -> g1 without a DFF
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, CycleThroughDffIsLegal) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId q = nl.add_gate(GateType::Dff, "q", {});
  const GateId g = nl.add_gate(GateType::Xor, "g", {a, q});
  nl.set_fanin(q, {g}); // feedback through the DFF
  EXPECT_NO_THROW(nl.finalize());
}

TEST(Netlist, TopoOrderRespectsCombinationalEdges) {
  const Netlist nl = tiny();
  const auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), nl.size());
  std::vector<std::size_t> position(nl.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    position[static_cast<std::size_t>(topo[i])] = i;
  }
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    if (g.type == GateType::Dff || g.type == GateType::Input) continue;
    for (GateId f : g.fanin) {
      EXPECT_LT(position[static_cast<std::size_t>(f)], position[i])
          << "fanin must precede gate " << g.name;
    }
  }
}

TEST(Netlist, FanoutRebuiltOnFinalize) {
  const Netlist nl = tiny();
  const Gate& a = nl.gate(nl.find("a"));
  ASSERT_EQ(a.fanout.size(), 1u);
  EXPECT_EQ(a.fanout[0], nl.find("n1"));
}

TEST(Netlist, GateTypeNamesRoundTrip) {
  for (GateType t : {GateType::Buf, GateType::Not, GateType::And, GateType::Nand,
                     GateType::Or, GateType::Nor, GateType::Xor, GateType::Xnor,
                     GateType::Dff}) {
    GateType parsed;
    ASSERT_TRUE(parse_gate_type(gate_type_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  GateType dummy;
  EXPECT_FALSE(parse_gate_type("FROB", dummy));
}

} // namespace
} // namespace nvff::bench
