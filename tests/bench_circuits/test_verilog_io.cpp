#include "bench_circuits/verilog_io.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"

namespace nvff::bench {
namespace {

TEST(VerilogIo, IdentifierValidation) {
  EXPECT_TRUE(is_valid_verilog_identifier("q0"));
  EXPECT_TRUE(is_valid_verilog_identifier("_n1$x"));
  EXPECT_FALSE(is_valid_verilog_identifier("0q"));
  EXPECT_FALSE(is_valid_verilog_identifier("a.b"));
  EXPECT_FALSE(is_valid_verilog_identifier(""));
}

TEST(VerilogIo, EmitsModuleStructure) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
n1 = NAND(a, b)
q = DFF(n1)
o = NOT(q)
OUTPUT(o)
)",
                                        "demo");
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module demo ("), std::string::npos);
  EXPECT_NE(v.find("module nvff_dff"), std::string::npos);
  EXPECT_NE(v.find("nand u"), std::string::npos);
  EXPECT_NE(v.find(".d(n1), .q(q)"), std::string::npos);
  EXPECT_NE(v.find("assign po0 = o;"), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
}

TEST(VerilogIo, NoDffModuleWithoutFlipFlops) {
  const Netlist nl = parse_bench_string("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n");
  const std::string v = to_verilog(nl);
  EXPECT_EQ(v.find("nvff_dff"), std::string::npos);
}

TEST(VerilogIo, InstanceCountMatchesGates) {
  const auto nl = generate_benchmark(find_benchmark("s344"));
  const std::string v = to_verilog(nl);
  std::size_t instances = 0;
  std::size_t pos = 0;
  while ((pos = v.find(" u", pos)) != std::string::npos) {
    // count "uN (" instance markers
    std::size_t k = pos + 2;
    bool digits = false;
    while (k < v.size() && std::isdigit(static_cast<unsigned char>(v[k]))) {
      ++k;
      digits = true;
    }
    if (digits && k < v.size() && v[k] == ' ') ++instances;
    pos = pos + 2;
  }
  EXPECT_EQ(instances, nl.num_logic_gates() + nl.num_flip_flops());
}

TEST(VerilogIo, RejectsUnfinalizedNetlist) {
  Netlist nl;
  nl.add_gate(GateType::Input, "a");
  EXPECT_THROW(to_verilog(nl), std::invalid_argument);
}

TEST(VerilogIo, FileExport) {
  const auto nl = generate_benchmark(find_benchmark("s344"));
  const std::string path = testing::TempDir() + "/nvff_s344.v";
  save_verilog_file(nl, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("module s344"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

} // namespace
} // namespace nvff::bench
