// Synthetic benchmark generator: exact published FF counts, determinism,
// structural validity, locality. Parameterized over all 13 benchmarks.
#include <gtest/gtest.h>

#include "bench_circuits/generator.hpp"

namespace nvff::bench {
namespace {

class GeneratorTest : public ::testing::TestWithParam<BenchmarkSpec> {};

TEST_P(GeneratorTest, FlipFlopCountMatchesTable3Exactly) {
  const BenchmarkSpec& spec = GetParam();
  if (spec.logicGates > 50000) GTEST_SKIP() << "large circuit covered by flow bench";
  const Netlist nl = generate_benchmark(spec);
  EXPECT_EQ(nl.num_flip_flops(), static_cast<std::size_t>(spec.flipFlops));
  EXPECT_EQ(nl.num_inputs(), static_cast<std::size_t>(spec.inputs));
  EXPECT_EQ(nl.num_outputs(), static_cast<std::size_t>(spec.outputs));
  EXPECT_EQ(nl.num_logic_gates(), static_cast<std::size_t>(spec.logicGates));
  EXPECT_TRUE(nl.finalized());
}

TEST_P(GeneratorTest, DeterministicForSameSeed) {
  const BenchmarkSpec& spec = GetParam();
  if (spec.logicGates > 10000) GTEST_SKIP() << "determinism covered on small circuits";
  const Netlist a = generate_benchmark(spec);
  const Netlist b = generate_benchmark(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Gate& ga = a.gate(static_cast<GateId>(i));
    const Gate& gb = b.gate(static_cast<GateId>(i));
    ASSERT_EQ(ga.type, gb.type);
    ASSERT_EQ(ga.name, gb.name);
    ASSERT_EQ(ga.fanin, gb.fanin);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GeneratorTest,
                         ::testing::ValuesIn(paper_benchmarks()),
                         [](const ::testing::TestParamInfo<BenchmarkSpec>& info) {
                           return info.param.name;
                         });

TEST(Generator, ClusterLocalityHolds) {
  // Most fanin edges must be intra-cluster (that is the generator's whole
  // point: it drives placement adjacency).
  const GeneratedCircuit gc = generate_benchmark_detailed(find_benchmark("s5378"));
  std::size_t intra = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < gc.netlist.size(); ++i) {
    const Gate& g = gc.netlist.gate(static_cast<GateId>(i));
    if (g.type == GateType::Input || g.type == GateType::Dff) continue;
    for (GateId f : g.fanin) {
      ++total;
      if (gc.clusterOf[i] == gc.clusterOf[static_cast<std::size_t>(f)]) ++intra;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(total), 0.6);
}

TEST(Generator, RegistersShareClusters) {
  const GeneratedCircuit gc = generate_benchmark_detailed(find_benchmark("s838"));
  // FF D inputs must come from the FF's own cluster.
  for (GateId ff : gc.netlist.flip_flops()) {
    const Gate& g = gc.netlist.gate(ff);
    ASSERT_EQ(g.fanin.size(), 1u);
    EXPECT_EQ(gc.clusterOf[static_cast<std::size_t>(ff)],
              gc.clusterOf[static_cast<std::size_t>(g.fanin[0])]);
  }
}

TEST(Generator, ThirteenPaperBenchmarks) {
  EXPECT_EQ(paper_benchmarks().size(), 13u);
  EXPECT_EQ(find_benchmark("b19").flipFlops, 6042);
  EXPECT_EQ(find_benchmark("or1200").paperPairs, 1269);
  EXPECT_THROW(find_benchmark("nope"), std::invalid_argument);
}

TEST(Generator, PaperPairCountsAreConsistentWithTable3) {
  // Sanity on the transcribed reference data: pairs <= FFs / 2 and the
  // published improvements are positive and below the cell-level bound 34 %.
  for (const auto& spec : paper_benchmarks()) {
    EXPECT_LE(2 * spec.paperPairs, spec.flipFlops) << spec.name;
    EXPECT_GT(spec.paperAreaImpr, 0.0) << spec.name;
    EXPECT_LT(spec.paperAreaImpr, 34.5) << spec.name;
    EXPECT_GT(spec.paperEnergyImpr, 0.0) << spec.name;
    EXPECT_LT(spec.paperEnergyImpr, spec.paperAreaImpr) << spec.name;
  }
}

TEST(Generator, RejectsDegenerateSpecs) {
  BenchmarkSpec bad;
  bad.flipFlops = 0;
  bad.inputs = 1;
  EXPECT_THROW(generate_benchmark(bad), std::invalid_argument);
}

} // namespace
} // namespace nvff::bench
