#include "util/table.hpp"

#include <gtest/gtest.h>

namespace nvff {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   | value"), std::string::npos);
  EXPECT_NE(out.find("longer | 22"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, SeparatorAppearsBetweenSections) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header separator + section separator = two dash lines.
  int dashLines = 0;
  std::size_t pos = 0;
  while ((pos = out.find("\n-", pos)) != std::string::npos) {
    ++dashLines;
    ++pos;
  }
  EXPECT_EQ(dashLines, 2);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TextTable, CsvRowCountMatches) {
  TextTable t({"h"});
  t.add_row({"r1"});
  t.add_row({"r2"});
  const std::string csv = t.to_csv();
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3); // header + 2 rows
  EXPECT_EQ(t.row_count(), 2u);
}

} // namespace
} // namespace nvff
