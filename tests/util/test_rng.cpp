#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nvff {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(99);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) {
    const auto idx = rng.uniform_index(10);
    ASSERT_LT(idx, 10u);
    seen[idx] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalHasCorrectMoments) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalClampedStaysWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.normal_clamped(0.0, 1.0, 3.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LE(x, 3.0);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ReseedReproducesSequence) {
  Rng rng(1234);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.seed(1234);
  EXPECT_EQ(rng.next_u64(), first);
}

} // namespace
} // namespace nvff
