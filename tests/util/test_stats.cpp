#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace nvff {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    a.add(x);
    whole.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = 0.37 * i - 3.0;
    b.add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SampleSet, StatsMatchRunningStats) {
  SampleSet set;
  RunningStats run;
  for (int i = 0; i < 200; ++i) {
    const double x = (i * 37) % 101;
    set.add(x);
    run.add(x);
  }
  EXPECT_NEAR(set.mean(), run.mean(), 1e-9);
  EXPECT_NEAR(set.stddev(), run.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(set.min(), run.min());
  EXPECT_DOUBLE_EQ(set.max(), run.max());
}

TEST(SampleSet, HistogramCountsAllSamples) {
  SampleSet s;
  for (int i = 0; i < 64; ++i) s.add(static_cast<double>(i));
  const std::string h = s.ascii_histogram(8, 20);
  // Eight bins, each with count 8.
  int lines = 0;
  for (char c : h) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 8);
}

TEST(Improvement, MatchesPaperConvention) {
  // Table III s344: area 42.255 -> 32.565 = 22.93 % improvement.
  EXPECT_NEAR(improvement_percent(42.255, 32.565), 22.93, 0.01);
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(0.0, 5.0), 0.0); // guarded
  EXPECT_LT(improvement_percent(10.0, 12.0), 0.0);       // regressions go negative
}

} // namespace
} // namespace nvff
