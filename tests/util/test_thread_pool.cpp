// ThreadPool edge cases: shutdown with work still queued, tasks that throw,
// re-entrant submission from inside a task, and wait_idle() on an idle pool.
// These run under the tsan ctest label so the TSan CI leg exercises the
// pool's locking (work stealing, condvar wakeups, destructor drain).
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace nvff {
namespace {

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  // Destroy the pool while tasks are still queued: every submitted task
  // must run exactly once before join (the "drains remaining tasks"
  // contract) — none dropped, none double-executed.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): the destructor owns the drain.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ThrowingTaskDoesNotWedgeWaitIdle) {
  // A stray exception is caught and logged by the worker; the task still
  // counts as finished, so wait_idle() returns and later tasks run.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 2 == 0) throw std::runtime_error("trial contract breach");
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);

  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, ThrowingNonStdExceptionIsAlsoContained) {
  ThreadPool pool(1);
  std::atomic<bool> after{false};
  pool.submit([] { throw 42; });
  pool.submit([&after] { after.store(true, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_TRUE(after.load());
}

TEST(ThreadPool, ReentrantSubmitIsCountedBeforeParentFinishes) {
  // A task that submits children must not let wait_idle() wake between the
  // parent finishing and the children starting. Fan out two levels deep.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  pool.submit([&pool, &leaves] {
    for (int i = 0; i < 4; ++i) {
      pool.submit([&pool, &leaves] {
        for (int j = 0; j < 4; ++j) {
          pool.submit(
              [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle(); // nothing submitted: must not block
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  pool.wait_idle(); // second wait after drain: also immediate
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManySmallTasksFromManySubmitters) {
  // Cross-thread submission hammers the round-robin queue selection and
  // stealing paths; under TSan this is the main race detector for the pool.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < 200; ++i) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 800);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  ThreadPool::parallel_for(4, hits.size(),
                           [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

} // namespace
} // namespace nvff
