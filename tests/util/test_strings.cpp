#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace nvff {
namespace {

TEST(Strings, TrimRemovesEdges) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitDropsEmptyTokens) {
  const auto parts = split("  a  b\tc ", " \t");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepEmptyPreservesFields) {
  const auto parts = split_keep_empty("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("DfF_Q1"), "dff_q1"); }

TEST(Strings, FormatBehavesLikePrintf) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(Strings, EngineeringNotation) {
  EXPECT_EQ(eng(4.587e-15, "J"), "4.587 fJ");
  EXPECT_EQ(eng(360e-12, "s"), "360.000 ps");
  EXPECT_EQ(eng(1.1, "V", 1), "1.1 V");
  EXPECT_EQ(eng(1528e-12, "W", 0), "2 nW"); // 1528 pW rounds to 2 nW at P=0
  EXPECT_EQ(eng(0.0, "J"), "0 J");
  EXPECT_EQ(eng(11e3, "Ohm", 0), "11 kOhm");
}

} // namespace
} // namespace nvff
