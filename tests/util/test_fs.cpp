// write_file_atomic: the audited endpoint-file writer. Readers must only
// ever observe a complete file, failures must clean up the temp file, and
// a pre-existing destination must survive a failed attempt.
#include "util/fs.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace nvff::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::string scratch(const std::string& name) {
  const std::string path = ::testing::TempDir() + "nvff_fs_" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

TEST(WriteFileAtomic, RoundTripsContents) {
  const std::string path = scratch("roundtrip");
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "unix:/tmp/sock.1234\n", error)) << error;
  EXPECT_EQ(slurp(path), "unix:/tmp/sock.1234\n");
  EXPECT_FALSE(file_exists(path + ".tmp")) << "temp file must not linger";
}

TEST(WriteFileAtomic, OverwritesAtomically) {
  const std::string path = scratch("overwrite");
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "first", error)) << error;
  ASSERT_TRUE(write_file_atomic(path, "second, longer contents", error))
      << error;
  EXPECT_EQ(slurp(path), "second, longer contents");
}

TEST(WriteFileAtomic, EmptyContentsAreValid) {
  const std::string path = scratch("empty");
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "", error)) << error;
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(slurp(path), "");
}

TEST(WriteFileAtomic, MissingDirectoryFailsWithDiagnostic) {
  const std::string path =
      ::testing::TempDir() + "nvff_fs_no_such_dir/endpoint";
  std::string error;
  EXPECT_FALSE(write_file_atomic(path, "payload", error));
  EXPECT_NE(error.find(path + ".tmp"), std::string::npos) << error;
}

TEST(WriteFileAtomic, FailedAttemptLeavesExistingFileUntouched) {
  // Simulate the failure by pointing the write at a directory that exists
  // but then making the rename target collide with a directory.
  const std::string path = scratch("collide");
  std::string error;
  ASSERT_TRUE(write_file_atomic(path, "survivor", error)) << error;
  const std::string bad = ::testing::TempDir() + "nvff_fs_absent/nested/x";
  EXPECT_FALSE(write_file_atomic(bad, "doomed", error));
  EXPECT_EQ(slurp(path), "survivor");
}

} // namespace
} // namespace nvff::util
