// Failpoint registry: spec grammar, policy semantics, and the determinism
// contract (same seed + spec => same fire/no-fire sequence at any thread
// count). The registry is a process-wide singleton, so every test disarms
// it on exit via the guard below.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <string>
#include <thread>
#include <vector>

namespace nvff::util {
namespace {

struct Disarm {
  ~Disarm() { Failpoints::instance().reset(); }
};

bool arm(const std::string& spec) {
  std::string error;
  const bool ok = Failpoints::instance().configure(spec, error);
  EXPECT_TRUE(ok) << error;
  return ok;
}

TEST(Failpoint, EverythingOffByDefault) {
  Disarm guard;
  Failpoints::instance().reset();
  EXPECT_FALSE(Failpoints::instance().armed());
  EXPECT_FALSE(failpoint("durable.write").has_value());
}

TEST(Failpoint, EveryPolicyFiresOnMultiplesOnly) {
  Disarm guard;
  ASSERT_TRUE(arm("dist.send=every(3):errno(EPIPE)"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i)
    fired.push_back(failpoint("dist.send").has_value());
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
}

TEST(Failpoint, AfterPolicyFiresForeverOnceReached) {
  Disarm guard;
  ASSERT_TRUE(arm("durable.fsync=after(2):errno(ENOSPC)"));
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i)
    fired.push_back(failpoint("durable.fsync").has_value());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true}));
}

TEST(Failpoint, TimesPolicyStopsFiringAfterTheBudget) {
  Disarm guard;
  ASSERT_TRUE(arm("dist.recv=times(2):eintr"));
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i)
    fired.push_back(failpoint("dist.recv").has_value());
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false}));
}

TEST(Failpoint, ActionsCarryTheirParameters) {
  Disarm guard;
  ASSERT_TRUE(arm("durable.write=every(1):short-write,"
                  "dist.accept=every(1):errno(EMFILE),"
                  "dist.recv=every(1):eintr"));
  const auto sw = failpoint("durable.write");
  ASSERT_TRUE(sw.has_value());
  EXPECT_EQ(sw->action, FailAction::ShortWrite);
  const auto em = failpoint("dist.accept");
  ASSERT_TRUE(em.has_value());
  EXPECT_EQ(em->action, FailAction::Errno);
  EXPECT_EQ(em->err, EMFILE);
  const auto ei = failpoint("dist.recv");
  ASSERT_TRUE(ei.has_value());
  EXPECT_EQ(ei->action, FailAction::Eintr);
  EXPECT_EQ(ei->err, EINTR);
}

TEST(Failpoint, DefaultActionIsEio) {
  Disarm guard;
  ASSERT_TRUE(arm("durable.rotate=every(1)"));
  const auto hit = failpoint("durable.rotate");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, FailAction::Errno);
  EXPECT_EQ(hit->err, EIO);
}

TEST(Failpoint, LaterEntriesOverrideEarlierOnesPerSite) {
  Disarm guard;
  ASSERT_TRUE(arm("dist.send=every(1):errno(EPIPE),dist.send=off"));
  EXPECT_FALSE(failpoint("dist.send").has_value());
}

TEST(Failpoint, ResetDisarmsAndZeroesCounters) {
  Disarm guard;
  ASSERT_TRUE(arm("dist.send=after(1):errno(EPIPE)"));
  (void)failpoint("dist.send");
  (void)failpoint("dist.send");
  EXPECT_EQ(Failpoints::instance().evaluations("dist.send"), 2);
  Failpoints::instance().reset();
  EXPECT_FALSE(Failpoints::instance().armed());
  EXPECT_EQ(Failpoints::instance().evaluations("dist.send"), 0);
}

TEST(Failpoint, MalformedSpecsAreRejectedAtomically) {
  Disarm guard;
  std::string error;
  auto& fp = Failpoints::instance();
  // Entirely bogus entries.
  EXPECT_FALSE(fp.configure("durable.write", error));
  EXPECT_FALSE(fp.configure("durable.write=", error));
  EXPECT_FALSE(fp.configure("durable.write=sometimes", error));
  EXPECT_FALSE(fp.configure("durable.write=every(0)", error));
  EXPECT_FALSE(fp.configure("durable.write=prob(1.5)", error));
  EXPECT_FALSE(fp.configure("durable.write=every(1):errno(EWHAT)", error));
  EXPECT_FALSE(fp.configure("seed=notanumber", error));
  // A valid prefix followed by a bad entry must not arm the valid part.
  EXPECT_FALSE(fp.configure("dist.send=every(1):errno(EPIPE),bogus", error));
  EXPECT_FALSE(fp.armed());
  EXPECT_FALSE(failpoint("dist.send").has_value());
}

TEST(Failpoint, UnknownSiteDiagnosticListsTheInventory) {
  Disarm guard;
  std::string error;
  EXPECT_FALSE(
      Failpoints::instance().configure("durable.wirte=every(1)", error));
  EXPECT_NE(error.find("durable.wirte"), std::string::npos) << error;
  // The diagnostic must carry the registered inventory so a typo is
  // self-correcting from the error message alone.
  for (const FailpointSite& site : Failpoints::sites())
    EXPECT_NE(error.find(site.name), std::string::npos)
        << "missing " << site.name << " in: " << error;
}

TEST(Failpoint, DescribeListsEverySiteAndArmedPolicies) {
  Disarm guard;
  ASSERT_TRUE(arm("dist.accept=every(1):errno(EMFILE)"));
  const std::string listing = Failpoints::instance().describe();
  for (const FailpointSite& site : Failpoints::sites())
    EXPECT_NE(listing.find(site.name), std::string::npos) << listing;
  EXPECT_NE(listing.find("every(1)"), std::string::npos) << listing;
}

TEST(Failpoint, ProbSequenceIsAPureFunctionOfSeedAndSite) {
  Disarm guard;
  auto& fp = Failpoints::instance();
  ASSERT_TRUE(arm("seed=42,dist.send=prob(0.5):errno(EPIPE)"));
  std::vector<bool> first;
  for (long k = 0; k < 64; ++k) first.push_back(fp.would_fire("dist.send", k));
  // Re-configuring with the same seed replays the identical sequence…
  fp.reset();
  ASSERT_TRUE(arm("seed=42,dist.send=prob(0.5):errno(EPIPE)"));
  std::vector<bool> replay;
  for (long k = 0; k < 64; ++k) replay.push_back(fp.would_fire("dist.send", k));
  EXPECT_EQ(first, replay);
  // …a different seed gives a different one…
  fp.reset();
  ASSERT_TRUE(arm("seed=43,dist.send=prob(0.5):errno(EPIPE)"));
  std::vector<bool> other;
  for (long k = 0; k < 64; ++k) other.push_back(fp.would_fire("dist.send", k));
  EXPECT_NE(first, other);
  // …and the draws are site-keyed, so two sites at the same k differ.
  fp.reset();
  ASSERT_TRUE(arm("seed=42,dist.send=prob(0.5),dist.recv=prob(0.5)"));
  std::vector<bool> sendSeq, recvSeq;
  for (long k = 0; k < 64; ++k) {
    sendSeq.push_back(fp.would_fire("dist.send", k));
    recvSeq.push_back(fp.would_fire("dist.recv", k));
  }
  EXPECT_NE(sendSeq, recvSeq);
  // Sanity: p=0.5 over 64 draws fires somewhere in the open middle.
  int fires = 0;
  for (const bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 8);
  EXPECT_LT(fires, 56);
}

TEST(Failpoint, EvaluateAgreesWithWouldFire) {
  Disarm guard;
  auto& fp = Failpoints::instance();
  ASSERT_TRUE(arm("seed=7,durable.write=prob(0.3):errno(ENOSPC)"));
  for (long k = 0; k < 128; ++k) {
    const bool predicted = fp.would_fire("durable.write", k);
    EXPECT_EQ(failpoint("durable.write").has_value(), predicted) << "k=" << k;
  }
}

// The determinism contract under contention: N threads hammer one armed
// site concurrently; the TOTAL number of fires must equal the number of
// indices k in [0, total) for which would_fire(k) is true — i.e. the
// decision depends only on the evaluation index, never on thread timing.
TEST(Failpoint, FireCountIsDeterministicUnderThreadRaces) {
  Disarm guard;
  auto& fp = Failpoints::instance();
  ASSERT_TRUE(arm("seed=99,dist.send=prob(0.25):errno(EPIPE)"));
  constexpr int kThreads = 8;
  constexpr long kPerThread = 500;
  std::atomic<long> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&fires] {
      for (long i = 0; i < kPerThread; ++i)
        if (failpoint("dist.send")) fires.fetch_add(1);
    });
  for (std::thread& th : threads) th.join();
  const long total = kThreads * kPerThread;
  EXPECT_EQ(fp.evaluations("dist.send"), total);
  long expected = 0;
  for (long k = 0; k < total; ++k)
    if (fp.would_fire("dist.send", k)) ++expected;
  EXPECT_EQ(fires.load(), expected);
}

TEST(Failpoint, UnknownSiteNeverFiresAtEvaluation) {
  Disarm guard;
  ASSERT_TRUE(arm("dist.send=every(1):errno(EPIPE)"));
  EXPECT_FALSE(failpoint("no.such.site").has_value());
}

} // namespace
} // namespace nvff::util
