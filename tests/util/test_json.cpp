// Shared JSON reader/writer helpers (extracted from the reliability
// checkpoint so the fault campaign can reuse them).
#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hpp"

namespace nvff::json {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const Value v = parse(R"({"a":1.5,"b":"text","c":[true,false,null],"d":{"e":-2}})");
  EXPECT_EQ(v.kind, Value::Kind::Obj);
  EXPECT_DOUBLE_EQ(v.at("a").as_num(), 1.5);
  EXPECT_EQ(v.at("b").as_str(), "text");
  const Value& arr = v.at("c");
  ASSERT_EQ(arr.items.size(), 3u);
  EXPECT_TRUE(arr.items[0].as_bool());
  EXPECT_FALSE(arr.items[1].as_bool());
  EXPECT_EQ(arr.items[2].kind, Value::Kind::Null);
  EXPECT_DOUBLE_EQ(v.at("d").at("e").as_num(), -2.0);
}

TEST(Json, FindReturnsNullForMissingKeys) {
  const Value v = parse(R"({"present":1})");
  EXPECT_NE(v.find("present"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), std::runtime_error);
}

TEST(Json, ErrorsCarryTheCallerLabel) {
  try {
    parse("{broken", "powerfail checkpoint");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("powerfail checkpoint"),
              std::string::npos);
  }
}

TEST(Json, EscapeRoundTrip) {
  std::string out;
  append_escaped(out, "line\n\"quoted\"\tback\\slash");
  const Value v = parse("{\"s\":" + out + "}");
  EXPECT_EQ(v.at("s").as_str(), "line\n\"quoted\"\tback\\slash");
}

TEST(Json, NumFormatsRoundTripDoubles) {
  // %.17g keeps every double bit-exact through a text round-trip.
  for (double x : {0.1, 1.0 / 3.0, 6.02214076e23, -4.9e-324, 0.0}) {
    const Value v = parse("{\"x\":" + num(x) + "}");
    EXPECT_EQ(v.at("x").as_num(), x);
  }
}

TEST(Json, NonFiniteSerializesAsNullAndReadsBackAsNan) {
  EXPECT_EQ(num(std::nan("")), "null");
  EXPECT_EQ(num(INFINITY), "null");
  const Value v = parse(R"({"x":null})");
  EXPECT_TRUE(std::isnan(v.at("x").as_num()));
}

// Table-driven malformed-input sweep: every row must be REJECTED. The
// checkpoint loader feeds this parser bytes that survived a crash — a
// lenient accept here turns a torn file into silently wrong statistics.
TEST(Json, RejectsMalformedInput) {
  const struct {
    const char* text;
    const char* why;
  } kBad[] = {
      {"", "empty document"},
      {"   ", "whitespace only"},
      {"{", "unterminated object"},
      {"[", "unterminated array"},
      {"\"abc", "unterminated string"},
      {"\"\\q\"", "unknown escape"},
      {"\"\\u12g4\"", "bad unicode escape"},
      {"{\"a\":1,}", "trailing comma in object"},
      {"[1,]", "trailing comma in array"},
      {"{\"a\" 1}", "missing colon"},
      {"{1:2}", "non-string key"},
      {"tru", "truncated literal"},
      {"falsehood", "literal with trailing letters"},
      {"nul", "truncated null"},
      {"1 2", "trailing garbage after document"},
      {"{}x", "trailing garbage after object"},
      {"[1]]", "trailing bracket"},
      {"+1", "leading plus"},
      {".5", "missing integer part"},
      {"1.", "missing fraction digits"},
      {"-", "bare minus"},
      {"-.5", "minus without integer part"},
      {"01", "leading zero"},
      {"1e", "missing exponent digits"},
      {"1e+", "signed exponent without digits"},
      {"0x10", "hex number"},
      {"inf", "strtod inf spelling"},
      {"nan", "strtod nan spelling"},
      {"NaN", "capitalized nan"},
      {"Infinity", "infinity spelling"},
      {"-Infinity", "negative infinity spelling"},
      {"1e999", "overflow to infinity"},
      {"-1e999", "overflow to negative infinity"},
  };
  for (const auto& row : kBad)
    EXPECT_THROW(parse(row.text), std::runtime_error) << row.why;
}

TEST(Json, AcceptsStrictNumberGrammar) {
  const struct {
    const char* text;
    double want;
  } kGood[] = {
      {"0", 0.0},          {"-0", -0.0},         {"10", 10.0},
      {"0.5", 0.5},        {"-0.5", -0.5},       {"1e3", 1000.0},
      {"1E3", 1000.0},     {"1e+3", 1000.0},     {"1e-3", 1e-3},
      {"2.5e2", 250.0},    {"4.9e-324", 4.9e-324},
  };
  for (const auto& row : kGood) {
    const Value v = parse(row.text);
    EXPECT_EQ(v.as_num(), row.want) << row.text;
  }
}

TEST(Json, DepthCapRejectsDeepNestingButAllowsSchemas) {
  // 1000 nested arrays would overflow the recursive parser's stack without
  // the cap; well-formed checkpoint schemas sit at depth 4-5.
  std::string deep;
  for (int i = 0; i < 1000; ++i) deep += '[';
  for (int i = 0; i < 1000; ++i) deep += ']';
  EXPECT_THROW(parse(deep), std::runtime_error);

  std::string ok = "1";
  for (int i = 0; i < 60; ++i) ok = "[" + ok + "]";
  EXPECT_NO_THROW(parse(ok));

  std::string tooDeep = "1";
  for (int i = 0; i < 65; ++i) tooDeep = "[" + tooDeep + "]";
  EXPECT_THROW(parse(tooDeep), std::runtime_error);
}

} // namespace
} // namespace nvff::json
