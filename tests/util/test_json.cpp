// Shared JSON reader/writer helpers (extracted from the reliability
// checkpoint so the fault campaign can reuse them).
#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hpp"

namespace nvff::json {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const Value v = parse(R"({"a":1.5,"b":"text","c":[true,false,null],"d":{"e":-2}})");
  EXPECT_EQ(v.kind, Value::Kind::Obj);
  EXPECT_DOUBLE_EQ(v.at("a").as_num(), 1.5);
  EXPECT_EQ(v.at("b").as_str(), "text");
  const Value& arr = v.at("c");
  ASSERT_EQ(arr.items.size(), 3u);
  EXPECT_TRUE(arr.items[0].as_bool());
  EXPECT_FALSE(arr.items[1].as_bool());
  EXPECT_EQ(arr.items[2].kind, Value::Kind::Null);
  EXPECT_DOUBLE_EQ(v.at("d").at("e").as_num(), -2.0);
}

TEST(Json, FindReturnsNullForMissingKeys) {
  const Value v = parse(R"({"present":1})");
  EXPECT_NE(v.find("present"), nullptr);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), std::runtime_error);
}

TEST(Json, ErrorsCarryTheCallerLabel) {
  try {
    parse("{broken", "powerfail checkpoint");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("powerfail checkpoint"),
              std::string::npos);
  }
}

TEST(Json, EscapeRoundTrip) {
  std::string out;
  append_escaped(out, "line\n\"quoted\"\tback\\slash");
  const Value v = parse("{\"s\":" + out + "}");
  EXPECT_EQ(v.at("s").as_str(), "line\n\"quoted\"\tback\\slash");
}

TEST(Json, NumFormatsRoundTripDoubles) {
  // %.17g keeps every double bit-exact through a text round-trip.
  for (double x : {0.1, 1.0 / 3.0, 6.02214076e23, -4.9e-324, 0.0}) {
    const Value v = parse("{\"x\":" + num(x) + "}");
    EXPECT_EQ(v.at("x").as_num(), x);
  }
}

TEST(Json, NonFiniteSerializesAsNullAndReadsBackAsNan) {
  EXPECT_EQ(num(std::nan("")), "null");
  EXPECT_EQ(num(INFINITY), "null");
  const Value v = parse(R"({"x":null})");
  EXPECT_TRUE(std::isnan(v.at("x").as_num()));
}

} // namespace
} // namespace nvff::json
