// CancelToken contract tests, including the CrossThreadVisibility regression
// referenced by the memory-ordering audit in src/util/cancellation.hpp: a
// thread that observes cancelled()==true must also observe the reason that
// was CAS'd before the release store. Runs under the tsan ctest label.
#include "util/cancellation.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace nvff {
namespace {

TEST(CancelToken, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::None);
}

TEST(CancelToken, CancelIsIdempotentAndFirstReasonWins) {
  CancelToken token;
  token.cancel(CancelToken::Reason::Timeout);
  token.cancel(CancelToken::Reason::Cancelled); // loses the CAS
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::Timeout);
}

TEST(CancelToken, ChildObservesParent) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel(CancelToken::Reason::Cancelled);
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.reason(), CancelToken::Reason::Cancelled);
}

TEST(CancelToken, ParentUnaffectedByChild) {
  CancelToken parent;
  CancelToken child(&parent);
  child.cancel(CancelToken::Reason::Timeout);
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
  EXPECT_EQ(parent.reason(), CancelToken::Reason::None);
}

TEST(CancelToken, OwnReasonShadowsParentReason) {
  // A trial that timed out keeps Reason::Timeout even if the campaign is
  // later drained — the supervisor's outcome taxonomy depends on this.
  CancelToken parent;
  CancelToken child(&parent);
  child.cancel(CancelToken::Reason::Timeout);
  parent.cancel(CancelToken::Reason::Cancelled);
  EXPECT_EQ(child.reason(), CancelToken::Reason::Timeout);
  EXPECT_EQ(parent.reason(), CancelToken::Reason::Cancelled);
}

// The release/acquire pairing regression (see cancellation.hpp): spin until
// cancelled() flips, then require the reason to be fully visible. With a
// relaxed load in cancelled() this fails under TSan and on weakly-ordered
// hardware; the acquire makes it a hard guarantee.
TEST(CancelToken, CrossThreadVisibility) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    CancelToken token;
    std::atomic<bool> go{false};
    std::thread canceller([&token, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      token.cancel(CancelToken::Reason::Timeout);
    });
    std::thread observer([&token, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!token.cancelled()) {
      }
      // cancelled()==true must imply the reason is published.
      EXPECT_EQ(token.reason(), CancelToken::Reason::Timeout);
    });
    go.store(true, std::memory_order_release);
    canceller.join();
    observer.join();
  }
}

TEST(CancelToken, ConcurrentCancelKeepsExactlyOneReason) {
  // Racing cancel() calls with different reasons: monotonic flag, exactly
  // one winner, and every observer agrees on it afterwards.
  constexpr int kRounds = 100;
  for (int round = 0; round < kRounds; ++round) {
    CancelToken token;
    std::atomic<bool> go{false};
    auto racer = [&token, &go](CancelToken::Reason reason) {
      while (!go.load(std::memory_order_acquire)) {
      }
      token.cancel(reason);
    };
    std::thread a(racer, CancelToken::Reason::Timeout);
    std::thread b(racer, CancelToken::Reason::Cancelled);
    go.store(true, std::memory_order_release);
    a.join();
    b.join();
    ASSERT_TRUE(token.cancelled());
    const auto reason = token.reason();
    EXPECT_TRUE(reason == CancelToken::Reason::Timeout ||
                reason == CancelToken::Reason::Cancelled);
    EXPECT_EQ(token.reason(), reason); // stable once raised
  }
}

TEST(CancelToken, ParentCancelVisibleThroughChildAcrossThreads) {
  // The supervisor's shape: watchdog raises the campaign parent; workers
  // poll their trial child. Visibility must flow through the hierarchy.
  CancelToken parent;
  // CancelToken is neither copyable nor movable: heap-allocate the children.
  constexpr int kChildren = 4;
  std::vector<std::unique_ptr<CancelToken>> trial;
  trial.reserve(kChildren);
  for (int i = 0; i < kChildren; ++i) {
    trial.push_back(std::make_unique<CancelToken>(&parent));
  }
  std::vector<std::thread> pollers;
  pollers.reserve(kChildren);
  for (int i = 0; i < kChildren; ++i) {
    pollers.emplace_back([&trial, i] {
      while (!trial[static_cast<std::size_t>(i)]->cancelled()) {
      }
      EXPECT_EQ(trial[static_cast<std::size_t>(i)]->reason(),
                CancelToken::Reason::Cancelled);
    });
  }
  parent.cancel(CancelToken::Reason::Cancelled);
  for (auto& p : pollers) p.join();
}

} // namespace
} // namespace nvff
