#include "util/log.hpp"

#include <gtest/gtest.h>

namespace nvff {
namespace {

class LogLevelGuard {
public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

private:
  LogLevel saved_;
};

TEST(Log, LevelFiltering) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold messages are dropped silently (no observable side
  // effect to assert beyond not crashing).
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  set_log_level(LogLevel::Off);
  log_error("also dropped");
}

TEST(Log, AllLevelsCallable) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  log_debug("d");
  log_info("i");
  log_warn("w");
  log_error("e");
  log_message(LogLevel::Info, "m");
  SUCCEED();
}

} // namespace
} // namespace nvff
