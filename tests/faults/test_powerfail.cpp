// Campaign engine: context, classification, determinism, checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "faults/powerfail.hpp"

namespace nvff::faults {
namespace {

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.benchmark = "s344"; // 15 FFs: cheap enough for many unit-test trials
  cfg.trials = 40;
  cfg.seed = 11;
  cfg.warmupCycles = 24;
  cfg.staleLagCycles = 6;
  cfg.checkCycles = 12;
  return cfg;
}

TEST(Powerfail, ContextBuildsGoldenRun) {
  const CampaignConfig cfg = small_config();
  const CampaignContext ctx = build_context(cfg);
  const std::size_t ffs = ctx.netlist().num_flip_flops();
  EXPECT_EQ(ctx.storedState.size(), ffs);
  EXPECT_EQ(ctx.staleState.size(), ffs);
  EXPECT_EQ(ctx.goldenFinalState.size(), ffs);
  EXPECT_EQ(ctx.inputs.size(),
            static_cast<std::size_t>(cfg.warmupCycles + cfg.checkCycles));
  ASSERT_EQ(ctx.goldenOutputs.size(), static_cast<std::size_t>(cfg.checkCycles));
  EXPECT_EQ(ctx.goldenOutputs[0].size(), ctx.netlist().num_outputs());
  EXPECT_EQ(ctx.schedules[0].numFfs, ffs);
  EXPECT_EQ(ctx.schedules[1].numFfs, ffs);
  // The warmup must actually have separated stale from stored state.
  EXPECT_NE(ctx.staleState, ctx.storedState);
}

TEST(Powerfail, RejectsDegenerateConfigs) {
  CampaignConfig cfg = small_config();
  cfg.runUnprotected = cfg.runProtected = false;
  EXPECT_THROW(build_context(cfg), std::runtime_error);
  cfg = small_config();
  cfg.checkCycles = 0;
  EXPECT_THROW(build_context(cfg), std::runtime_error);
  cfg = small_config();
  cfg.staleLagCycles = cfg.warmupCycles + 1;
  EXPECT_THROW(build_context(cfg), std::runtime_error);
  cfg = small_config();
  cfg.weightPowerLoss = cfg.weightBrownOut = cfg.weightGlitch = 0.0;
  EXPECT_THROW(build_context(cfg), std::runtime_error);
  cfg = small_config();
  cfg.benchmark = "no-such-bench";
  EXPECT_THROW(build_context(cfg), std::exception);
}

TEST(Powerfail, EventFreeTrialIsCleanEverywhere) {
  CampaignConfig cfg = small_config();
  cfg.eventProb = 0.0;
  const CampaignContext ctx = build_context(cfg);
  for (int t = 0; t < 8; ++t) {
    const TrialResult tr = run_trial(ctx, t);
    EXPECT_FALSE(tr.hasEvent);
    for (int d = 0; d < 2; ++d)
      for (int pr = 0; pr < 2; ++pr) {
        ASSERT_TRUE(tr.arms[d][pr].present);
        EXPECT_EQ(tr.arms[d][pr].cls, TrialClass::Clean)
            << "design " << d << " protection " << pr << " trial " << t;
        EXPECT_EQ(tr.arms[d][pr].xLoaded, 0);
      }
  }
}

TEST(Powerfail, TrialsAreReproducible) {
  const CampaignContext ctx = build_context(small_config());
  for (int t : {0, 7, 23}) {
    const TrialResult a = run_trial(ctx, t);
    const TrialResult b = run_trial(ctx, t);
    EXPECT_EQ(serialize_powerfail_checkpoint(ctx.config, {a}),
              serialize_powerfail_checkpoint(ctx.config, {b}));
  }
}

TEST(Powerfail, UnprotectedCorruptsSilentlyProtectedNever) {
  // The PR's acceptance core: mid-sequence interruptions corrupt the bare
  // protocol silently, while verify-after-write + canary converts every
  // one of them into a detected failure — across both fabrics.
  const CampaignResult result = run_campaign(small_config());
  EXPECT_GT(result.count_sdc(/*protectedOnly=*/false), 0);
  EXPECT_EQ(result.count_sdc(/*protectedOnly=*/true), 0);
  for (int d = 0; d < 2; ++d) {
    const ArmSummary unprot = result.summarize(static_cast<DesignKind>(d), false);
    const ArmSummary prot = result.summarize(static_cast<DesignKind>(d), true);
    EXPECT_GT(unprot.sdc_rate(), 0.0);
    EXPECT_EQ(unprot.counts[static_cast<int>(TrialClass::Detected)], 0)
        << "bare protocol has no detection mechanism at all";
    EXPECT_EQ(prot.counts[static_cast<int>(TrialClass::Sdc)], 0);
    EXPECT_GT(prot.counts[static_cast<int>(TrialClass::Detected)], 0);
  }
}

TEST(Powerfail, ThreadCountDoesNotChangeResults) {
  CampaignConfig cfg = small_config();
  cfg.trials = 24;
  cfg.threads = 1;
  const CampaignResult one = run_campaign(cfg);
  cfg.threads = 8;
  const CampaignResult eight = run_campaign(cfg);
  EXPECT_EQ(serialize_powerfail_checkpoint(cfg, one.trials),
            serialize_powerfail_checkpoint(cfg, eight.trials));
  EXPECT_EQ(render_report(one), render_report(eight));
}

TEST(Powerfail, CheckpointRoundTripsExactly) {
  CampaignConfig cfg = small_config();
  cfg.trials = 6;
  const CampaignResult result = run_campaign(cfg);
  const std::string text = serialize_powerfail_checkpoint(cfg, result.trials);
  const PowerfailCheckpoint cp = parse_powerfail_checkpoint(text);
  EXPECT_EQ(cp.trials.size(), result.trials.size());
  EXPECT_EQ(serialize_powerfail_checkpoint(cp.config, cp.trials), text);
  EXPECT_NO_THROW(validate_powerfail_checkpoint(cfg, cp.config));
}

TEST(Powerfail, CheckpointRejectsForeignCampaigns) {
  const CampaignConfig cfg = small_config();
  CampaignConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_THROW(validate_powerfail_checkpoint(cfg, other), std::runtime_error);
  other = cfg;
  other.threads = cfg.threads + 7; // thread count must NOT invalidate
  EXPECT_NO_THROW(validate_powerfail_checkpoint(cfg, other));
  other = cfg;
  other.protocol.maxRetries = 9;
  EXPECT_THROW(validate_powerfail_checkpoint(cfg, other), std::runtime_error);
}

TEST(Powerfail, ResumeMatchesUninterruptedRun) {
  CampaignConfig cfg = small_config();
  cfg.trials = 16;
  const CampaignResult full = run_campaign(cfg);

  // Seed a checkpoint holding only the first half of the trials, then let
  // run_campaign fill in the rest from it.
  const std::string path = "powerfail_resume_test.ckpt.json";
  std::vector<TrialResult> half(full.trials.begin(), full.trials.begin() + 8);
  write_powerfail_checkpoint(path, cfg, half);
  const CampaignResult resumed = run_campaign(cfg, path);
  std::remove(path.c_str());
  EXPECT_EQ(serialize_powerfail_checkpoint(cfg, resumed.trials),
            serialize_powerfail_checkpoint(cfg, full.trials));
}

TEST(Powerfail, ReportIsDeterministicAndLabelsTheGuarantee) {
  CampaignConfig cfg = small_config();
  cfg.trials = 12;
  const CampaignResult result = run_campaign(cfg);
  const std::string report = render_report(result);
  EXPECT_EQ(report, render_report(result));
  EXPECT_NE(report.find("zero silent corruption"), std::string::npos);
  EXPECT_NE(report.find("1-bit cells"), std::string::npos);
  EXPECT_NE(report.find("2-bit paired"), std::string::npos);
}

TEST(Powerfail, SummariesAgreeWithCountSdc) {
  CampaignConfig cfg = small_config();
  cfg.trials = 20;
  const CampaignResult result = run_campaign(cfg);
  long all = 0;
  long prot = 0;
  for (int d = 0; d < 2; ++d)
    for (int pr = 0; pr < 2; ++pr) {
      const long n = result.summarize(static_cast<DesignKind>(d), pr == 1)
                         .counts[static_cast<int>(TrialClass::Sdc)];
      all += n;
      if (pr == 1) prot += n;
    }
  EXPECT_EQ(all, result.count_sdc(false));
  EXPECT_EQ(prot, result.count_sdc(true));
}

} // namespace
} // namespace nvff::faults
