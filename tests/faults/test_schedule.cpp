// Backup schedules: cell construction, domain partition, op ordering.
#include <gtest/gtest.h>

#include <set>

#include "faults/schedule.hpp"

namespace nvff::faults {
namespace {

std::vector<pairing::FlipFlopSite> grid_sites(int n, double pitch) {
  std::vector<pairing::FlipFlopSite> sites;
  for (int i = 0; i < n; ++i)
    sites.push_back({"f" + std::to_string(i), (i % 6) * pitch, (i / 6) * pitch});
  return sites;
}

pairing::PairingResult pair_adjacent(int n, int pairs) {
  pairing::PairingResult pr;
  for (int i = 0; i < pairs; ++i) pr.pairs.push_back({2 * i, 2 * i + 1, 0.0});
  for (int i = 2 * pairs; i < n; ++i) pr.unmatched.push_back(i);
  return pr;
}

TEST(BackupSchedule, SingleBitCoversEveryFfOnce) {
  const auto sites = grid_sites(30, 2.0);
  const auto schedule = build_schedule(sites, pair_adjacent(30, 10),
                                       DesignKind::AllSingleBit);
  EXPECT_EQ(schedule.numFfs, 30u);
  EXPECT_EQ(schedule.cells.size(), 30u); // pairing ignored
  EXPECT_EQ(schedule.storeOps.size(), 30u);
  std::set<int> ffs;
  for (const BackupOp& op : schedule.storeOps) {
    EXPECT_EQ(op.bit, 0);
    EXPECT_TRUE(ffs.insert(op.ff).second) << "FF scheduled twice";
  }
  EXPECT_EQ(ffs.size(), 30u);
  EXPECT_EQ(schedule.restoreOps.size(), schedule.storeOps.size());
}

TEST(BackupSchedule, PairedCellsEmitLowerThenUpper) {
  const auto sites = grid_sites(30, 2.0);
  const auto schedule =
      build_schedule(sites, pair_adjacent(30, 10), DesignKind::Paired2Bit);
  EXPECT_EQ(schedule.cells.size(), 20u); // 10 pairs + 10 singles
  EXPECT_EQ(schedule.storeOps.size(), 30u); // every FF still moves one bit
  std::set<int> ffs;
  for (std::size_t i = 0; i < schedule.storeOps.size(); ++i) {
    const BackupOp& op = schedule.storeOps[i];
    EXPECT_TRUE(ffs.insert(op.ff).second);
    const NvCell& cell = schedule.cells[static_cast<std::size_t>(op.cell)];
    if (op.bit == 1) {
      // An upper bit immediately follows its lower sibling: the paper's
      // sequential two-phase access, never interleaved with another cell.
      ASSERT_GT(i, 0u);
      const BackupOp& prev = schedule.storeOps[i - 1];
      EXPECT_EQ(prev.cell, op.cell);
      EXPECT_EQ(prev.bit, 0);
      EXPECT_EQ(prev.ff, cell.ffLower);
      EXPECT_EQ(op.ff, cell.ffUpper);
      EXPECT_LT(cell.ffLower, cell.ffUpper);
    }
  }
  EXPECT_EQ(ffs.size(), 30u);
}

TEST(BackupSchedule, DomainsAreContiguousAndExhaustive) {
  const auto sites = grid_sites(40, 2.0);
  core::ClockModelParams clock;
  clock.sinksPerLeafBuffer = 8;
  const auto schedule = build_schedule(sites, pair_adjacent(40, 12),
                                       DesignKind::Paired2Bit, clock);
  ASSERT_GT(schedule.numDomains, 1) << "grouping should split 28 sinks";
  ASSERT_EQ(schedule.domainOpEnd.size(),
            static_cast<std::size_t>(schedule.numDomains));
  int begin = 0;
  for (int d = 0; d < schedule.numDomains; ++d) {
    const int end = schedule.domainOpEnd[static_cast<std::size_t>(d)];
    ASSERT_GT(end, begin) << "empty domain " << d;
    for (int i = begin; i < end; ++i)
      EXPECT_EQ(schedule.storeOps[static_cast<std::size_t>(i)].domain, d);
    begin = end;
  }
  EXPECT_EQ(begin, static_cast<int>(schedule.storeOps.size()));
}

TEST(BackupSchedule, DeterministicRebuild) {
  const auto sites = grid_sites(24, 1.5);
  const auto pr = pair_adjacent(24, 7);
  for (DesignKind design : {DesignKind::AllSingleBit, DesignKind::Paired2Bit}) {
    const auto a = build_schedule(sites, pr, design);
    const auto b = build_schedule(sites, pr, design);
    ASSERT_EQ(a.storeOps.size(), b.storeOps.size());
    for (std::size_t i = 0; i < a.storeOps.size(); ++i) {
      EXPECT_EQ(a.storeOps[i].ff, b.storeOps[i].ff);
      EXPECT_EQ(a.storeOps[i].domain, b.storeOps[i].domain);
    }
  }
}

TEST(BackupSchedule, RejectsOutOfRangePairing) {
  const auto sites = grid_sites(10, 2.0);
  pairing::PairingResult bad;
  bad.pairs.push_back({3, 99, 0.0});
  EXPECT_THROW(build_schedule(sites, bad, DesignKind::Paired2Bit),
               std::invalid_argument);
  pairing::PairingResult badUnmatched;
  badUnmatched.unmatched.push_back(-1);
  EXPECT_THROW(build_schedule(sites, badUnmatched, DesignKind::Paired2Bit),
               std::invalid_argument);
}

} // namespace
} // namespace nvff::faults
