// Interruptible store/restore protocol: fault semantics, protection paths.
#include <gtest/gtest.h>

#include "faults/protocol.hpp"

namespace nvff::faults {
namespace {

/// Hand-built schedule: 6 FFs, one 2-bit cell (FFs 2,3), two domains of
/// three ops each — small enough to reason about op timing by hand.
BackupSchedule toy_schedule() {
  BackupSchedule s;
  s.design = DesignKind::Paired2Bit;
  s.numFfs = 6;
  s.numDomains = 2;
  s.cells.resize(5);
  s.cells[0] = {0, -1, 0};
  s.cells[1] = {1, -1, 0};
  s.cells[2] = {2, 3, 1};
  s.cells[3] = {4, -1, 1};
  s.cells[4] = {5, -1, 1};
  auto op = [](int cell, int ff, int bit, int domain) {
    BackupOp o;
    o.cell = cell;
    o.ff = ff;
    o.bit = bit;
    o.domain = domain;
    return o;
  };
  s.storeOps = {op(0, 0, 0, 0), op(1, 1, 0, 0), op(3, 4, 0, 0),
                op(2, 2, 0, 1), op(2, 3, 1, 1), op(4, 5, 0, 1)};
  s.restoreOps = s.storeOps;
  s.domainOpEnd = {3, 6};
  return s;
}

const std::vector<bool> kStored = {true, false, true, true, false, true};
const std::vector<bool> kStale = {false, false, false, true, true, true};

FaultEvent event(FaultKind kind, FaultPhase phase, double atFrac,
                 double brownoutNs = 0.0) {
  FaultEvent e;
  e.armed = true;
  e.kind = kind;
  e.phase = phase;
  e.atFrac = atFrac;
  e.brownoutNs = brownoutNs;
  return e;
}

TEST(Protocol, NominalDurations) {
  const BackupSchedule s = toy_schedule();
  ProtocolParams p;
  EXPECT_DOUBLE_EQ(nominal_store_ns(s, p), 6 * 10.0);
  EXPECT_DOUBLE_EQ(nominal_restore_ns(s, p), 6 * 4.0);
  const ProtocolParams prot = p.with_protection(true);
  // Verified writes add the read-back, canaries add one write per domain.
  EXPECT_DOUBLE_EQ(nominal_store_ns(s, prot), 6 * 14.0 + 2 * 14.0);
  EXPECT_DOUBLE_EQ(nominal_restore_ns(s, prot), 6 * 8.0);
}

TEST(Protocol, CleanStoreRestoreRoundTrips) {
  const BackupSchedule s = toy_schedule();
  for (bool prot : {false, true}) {
    ProtocolParams p;
    p = p.with_protection(prot);
    Rng rng(1);
    const StoreResult st = simulate_store(s, p, FaultEvent{}, rng);
    EXPECT_FALSE(st.errorFlagged);
    EXPECT_EQ(st.retries, 0);
    EXPECT_EQ(st.opsAttempted, 6);
    EXPECT_DOUBLE_EQ(st.durationNs, nominal_store_ns(s, p));
    for (NvBitContent b : st.bits) EXPECT_EQ(b, NvBitContent::Correct);
    for (char ok : st.canaryOk) EXPECT_TRUE(ok);

    const RestoreResult rs =
        simulate_restore(s, p, FaultEvent{}, st, kStored, kStale);
    EXPECT_FALSE(rs.aborted);
    EXPECT_FALSE(rs.errorFlagged);
    ASSERT_EQ(rs.loaded.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_EQ(rs.loaded[i], sim::trit_from_bool(kStored[i])) << "FF " << i;
  }
}

TEST(Protocol, PowerLossMidStoreUnprotectedLoadsStaleAndX) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p;
  Rng rng(1);
  // Cut at 45 ns: ops 0-3 wrote (40 ns), op 4 is mid-pulse, op 5 never ran.
  const StoreResult st =
      simulate_store(s, p, event(FaultKind::PowerLoss, FaultPhase::Store, 0.75),
                     rng);
  EXPECT_FALSE(st.errorFlagged); // bare protocol has no way to notice
  EXPECT_EQ(st.opsAttempted, 5);
  EXPECT_DOUBLE_EQ(st.durationNs, 45.0);
  EXPECT_EQ(st.bits[3], NvBitContent::Correct);
  EXPECT_EQ(st.bits[4], NvBitContent::Unknown);
  EXPECT_EQ(st.bits[5], NvBitContent::Stale);

  const RestoreResult rs =
      simulate_restore(s, p, FaultEvent{}, st, kStored, kStale);
  EXPECT_FALSE(rs.aborted);
  EXPECT_EQ(rs.loaded[2], sim::trit_from_bool(kStored[2])); // op 3 -> FF 2
  EXPECT_EQ(rs.loaded[3], sim::Trit::X);                    // cut mid-write
  EXPECT_EQ(rs.loaded[5], sim::trit_from_bool(kStale[5]));  // never written
}

TEST(Protocol, PowerLossMidStoreProtectedIsDetected) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p = ProtocolParams{}.with_protection(true);
  Rng rng(1);
  const StoreResult st =
      simulate_store(s, p, event(FaultKind::PowerLoss, FaultPhase::Store, 0.5),
                     rng);
  // Whatever was written, at least the last domain's canary is missing.
  bool anyMissing = false;
  for (char ok : st.canaryOk) anyMissing |= !ok;
  EXPECT_TRUE(anyMissing);
  const RestoreResult rs =
      simulate_restore(s, p, FaultEvent{}, st, kStored, kStale);
  EXPECT_TRUE(rs.aborted);
}

TEST(Protocol, BrownOutSilentlyKeepsStaleUnprotected) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p;
  Rng rng(1);
  // Sag [15, 35): ops 1-3 overlap (windows [10,20),[20,30),[30,40)).
  const StoreResult st = simulate_store(
      s, p, event(FaultKind::BrownOut, FaultPhase::Store, 0.25, 20.0), rng);
  EXPECT_FALSE(st.errorFlagged);
  EXPECT_EQ(st.bits[0], NvBitContent::Correct);
  EXPECT_EQ(st.bits[1], NvBitContent::Stale);
  EXPECT_EQ(st.bits[2], NvBitContent::Stale);
  EXPECT_EQ(st.bits[3], NvBitContent::Stale);
  EXPECT_EQ(st.bits[4], NvBitContent::Correct);
  EXPECT_DOUBLE_EQ(st.durationNs, 60.0); // controller sails straight through
}

TEST(Protocol, BrownOutProtectedRetriesPastTheSag) {
  const BackupSchedule s = toy_schedule();
  ProtocolParams p = ProtocolParams{}.with_protection(true);
  Rng rng(1);
  const StoreResult st = simulate_store(
      s, p, event(FaultKind::BrownOut, FaultPhase::Store, 0.2, 30.0), rng);
  EXPECT_FALSE(st.errorFlagged);
  EXPECT_GT(st.retries, 0); // paid in time...
  for (NvBitContent b : st.bits) EXPECT_EQ(b, NvBitContent::Correct); // ...not data
  for (char ok : st.canaryOk) EXPECT_TRUE(ok);
  EXPECT_GT(st.durationNs, nominal_store_ns(s, p));
  const RestoreResult rs =
      simulate_restore(s, p, FaultEvent{}, st, kStored, kStale);
  EXPECT_FALSE(rs.aborted);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(rs.loaded[i], sim::trit_from_bool(kStored[i]));
}

TEST(Protocol, GlitchCommitsInvertedBitUnprotected) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p;
  Rng rng(1);
  // Glitch at 25 ns: inside op 2's write window [20, 30).
  const StoreResult st = simulate_store(
      s, p, event(FaultKind::ControlGlitch, FaultPhase::Store, 25.0 / 60.0),
      rng);
  EXPECT_EQ(st.bits[2], NvBitContent::Flipped);
  const RestoreResult rs =
      simulate_restore(s, p, FaultEvent{}, st, kStored, kStale);
  // Op 2 moves FF 4; everything else restored exactly.
  EXPECT_EQ(rs.loaded[4], sim::trit_from_bool(!kStored[4]));
  EXPECT_EQ(rs.loaded[0], sim::trit_from_bool(kStored[0]));
}

TEST(Protocol, GlitchRetriedToCorrectWhenProtected) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p = ProtocolParams{}.with_protection(true);
  Rng rng(1);
  const StoreResult st = simulate_store(
      s, p, event(FaultKind::ControlGlitch, FaultPhase::Store, 0.3), rng);
  EXPECT_FALSE(st.errorFlagged);
  EXPECT_GE(st.retries, 1);
  for (NvBitContent b : st.bits) EXPECT_EQ(b, NvBitContent::Correct);
}

TEST(Protocol, RestorePowerLossLeavesSuffixXUnprotected) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p;
  Rng rng(1);
  const StoreResult st = simulate_store(s, p, FaultEvent{}, rng);
  // Cut at 12 ns of a 24 ns restore: ops 0-2 sensed, 3-5 lost.
  const RestoreResult rs = simulate_restore(
      s, p, event(FaultKind::PowerLoss, FaultPhase::Restore, 0.5), st, kStored,
      kStale);
  EXPECT_FALSE(rs.aborted); // nothing in the bare protocol notices
  EXPECT_EQ(rs.loaded[0], sim::trit_from_bool(kStored[0]));
  EXPECT_EQ(rs.loaded[4], sim::trit_from_bool(kStored[4])); // op 2 -> FF 4
  EXPECT_EQ(rs.loaded[2], sim::Trit::X);                    // op 3 lost
  EXPECT_EQ(rs.loaded[5], sim::Trit::X);
}

TEST(Protocol, RestorePowerLossAbortsWhenProtected) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p = ProtocolParams{}.with_protection(true);
  Rng rng(1);
  const StoreResult st = simulate_store(s, p, FaultEvent{}, rng);
  const RestoreResult rs = simulate_restore(
      s, p, event(FaultKind::PowerLoss, FaultPhase::Restore, 0.5), st, kStored,
      kStale);
  EXPECT_TRUE(rs.aborted); // wake-completion check fires
}

TEST(Protocol, RestoreGlitchCaughtByDoubleSampling) {
  const BackupSchedule s = toy_schedule();
  const ProtocolParams p = ProtocolParams{}.with_protection(true);
  Rng rng(1);
  const StoreResult st = simulate_store(s, p, FaultEvent{}, rng);
  const RestoreResult rs = simulate_restore(
      s, p, event(FaultKind::ControlGlitch, FaultPhase::Restore, 0.4), st,
      kStored, kStale);
  EXPECT_FALSE(rs.aborted);
  EXPECT_FALSE(rs.errorFlagged);
  EXPECT_GE(rs.retries, 1); // the two samples disagreed once
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(rs.loaded[i], sim::trit_from_bool(kStored[i]));
}

TEST(Protocol, ExhaustedRetriesRaiseTheErrorFlag) {
  const BackupSchedule s = toy_schedule();
  ProtocolParams p = ProtocolParams{}.with_protection(true);
  p.writeFailProb = 1.0; // every write fails, verify always catches it
  p.maxRetries = 3;
  Rng rng(1);
  const StoreResult st = simulate_store(s, p, FaultEvent{}, rng);
  EXPECT_TRUE(st.errorFlagged);
  const RestoreResult rs =
      simulate_restore(s, p, FaultEvent{}, st, kStored, kStale);
  EXPECT_TRUE(rs.aborted); // flagged store is never trusted
}

TEST(Protocol, StochasticWriteFailureIsSilentWithoutVerify) {
  const BackupSchedule s = toy_schedule();
  ProtocolParams p;
  p.writeFailProb = 1.0;
  Rng rng(1);
  const StoreResult st = simulate_store(s, p, FaultEvent{}, rng);
  EXPECT_FALSE(st.errorFlagged);
  for (NvBitContent b : st.bits) EXPECT_EQ(b, NvBitContent::Stale);
}

} // namespace
} // namespace nvff::faults
