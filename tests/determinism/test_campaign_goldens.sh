#!/bin/sh
# Determinism pin for the campaign CLIs: with a fixed seed, the Monte-Carlo
# and power-fail campaigns must print byte-identical output to the recorded
# goldens — across thread counts (threads=2 exercises the work-stealing
# schedule) and across engine refactors. The goldens were recorded before the
# compile-once/run-many engine migration, so a diff here means the migration
# (or a later change) perturbed campaign numerics.
#
#   usage: test_campaign_goldens.sh /path/to/nvfftool /path/to/golden-dir
set -u

NVFFTOOL="$1"
GOLDEN_DIR="$2"
failures=0

note() { printf '%s\n' "$*" >&2; }

check() {
  name="$1"
  golden="$GOLDEN_DIR/$2"
  shift 2
  out=$("$NVFFTOOL" "$@" 2>/dev/null)
  if [ ! -f "$golden" ]; then
    note "FAIL $name: missing golden $golden"
    failures=$((failures + 1))
    return
  fi
  if printf '%s\n' "$out" | diff -u "$golden" - >/dev/null 2>&1; then
    note "ok   $name"
  else
    note "FAIL $name: output differs from $golden"
    printf '%s\n' "$out" | diff -u "$golden" - | head -40 >&2
    failures=$((failures + 1))
  fi
}

check "mc seed=1 threads=2" mc_trials32_seed1.txt \
  mc --trials 32 --seed 1 --threads 2
check "powerfail seed=1 threads=2" powerfail_trials64_seed1.txt \
  powerfail --trials 64 --seed 1 --threads 2

if [ "$failures" -ne 0 ]; then
  note "$failures golden comparison(s) failed"
  exit 1
fi
exit 0
