// Determinism-linter tests: every rule has a violating fixture, the clean
// fixture pins the false-positive surface, suppression comments are honored
// (and audited), and the repo's own src/ tree must lint clean — the
// regression gate that keeps nondeterminism hazards out of trial paths.
#include "erc/detlint.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nvff::erc {
namespace {

std::string fixture(const std::string& name) {
  return std::string(NVFF_DETLINT_FIXTURE_DIR) + "/" + name;
}

TEST(DetLint, RuleTableIsStable) {
  const auto& rules = detlint_rules();
  ASSERT_EQ(rules.size(), 7u);
  EXPECT_STREQ(rules.front().id, "DET001");
  EXPECT_STREQ(rules.back().id, "DET007");
}

TEST(DetLint, WallClockFixture) {
  const Report r = detlint_file(fixture("det001_wall_clock.cpp"));
  EXPECT_EQ(r.count_rule("DET001"), 3u);
  EXPECT_EQ(r.size(), r.count_rule("DET001"));
}

TEST(DetLint, AmbientRngFixture) {
  const Report r = detlint_file(fixture("det002_ambient_rng.cpp"));
  EXPECT_EQ(r.count_rule("DET002"), 3u);
  EXPECT_EQ(r.size(), r.count_rule("DET002"));
}

TEST(DetLint, StdEngineFixture) {
  const Report r = detlint_file(fixture("det003_std_engine.cpp"));
  EXPECT_EQ(r.count_rule("DET003"), 2u);
  EXPECT_EQ(r.size(), r.count_rule("DET003"));
}

TEST(DetLint, UnorderedIterationFixture) {
  const Report r = detlint_file(fixture("det004_unordered_iteration.cpp"));
  EXPECT_EQ(r.count_rule("DET004"), 2u); // range-for + .begin() loop
  EXPECT_EQ(r.size(), r.count_rule("DET004"));
}

TEST(DetLint, ParallelPolicyFixture) {
  const Report r = detlint_file(fixture("det005_parallel_policy.cpp"));
  EXPECT_EQ(r.count_rule("DET005"), 2u); // include + policy use
  EXPECT_EQ(r.size(), r.count_rule("DET005"));
}

TEST(DetLint, PointerKeyedFixture) {
  const Report r = detlint_file(fixture("det006_pointer_keyed.cpp"));
  EXPECT_EQ(r.count_rule("DET006"), 2u); // set<Node*> + map<const Node*,..>
  EXPECT_EQ(r.size(), r.count_rule("DET006"));
}

TEST(DetLint, BadAllowFixture) {
  const Report r = detlint_file(fixture("det007_bad_allow.cpp"));
  // Both suppressions are malformed (unknown rule, missing reason), and
  // neither may mask the clock reads it sat next to.
  EXPECT_EQ(r.count_rule("DET007"), 2u);
  EXPECT_EQ(r.count_rule("DET001"), 2u);
}

TEST(DetLint, CleanFixtureHasNoFindings) {
  const Report r = detlint_file(fixture("clean.cpp"));
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, EveryViolationFixtureGates) {
  for (const char* name :
       {"det001_wall_clock.cpp", "det002_ambient_rng.cpp",
        "det003_std_engine.cpp", "det004_unordered_iteration.cpp",
        "det005_parallel_policy.cpp", "det006_pointer_keyed.cpp",
        "det007_bad_allow.cpp"}) {
    EXPECT_TRUE(detlint_file(fixture(name)).has_errors()) << name;
  }
}

// --- inline sources: mechanism details ---------------------------------------

TEST(DetLint, AllowOnSameLineSuppresses) {
  const Report r = detlint_source(
      "t.cpp",
      "auto t = Clock::now(); // DETLINT-ALLOW(DET001): watchdog only\n");
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, AllowOnPrecedingLineSuppresses) {
  const Report r = detlint_source(
      "t.cpp",
      "// DETLINT-ALLOW(DET001): deadline arm, results unaffected\n"
      "auto t = Clock::now();\n");
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, AllowReachesAcrossCommentBlock) {
  const Report r = detlint_source(
      "t.cpp",
      "// DETLINT-ALLOW(DET001): the explanation of why this is fine\n"
      "// continues on a second comment line before the code.\n"
      "auto t = Clock::now();\n");
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, AllowDoesNotLeakPastItsLine) {
  const Report r = detlint_source(
      "t.cpp",
      "// DETLINT-ALLOW(DET001): only covers the next code line\n"
      "auto a = Clock::now();\n"
      "auto b = Clock::now();\n");
  EXPECT_EQ(r.count_rule("DET001"), 1u);
}

TEST(DetLint, AllowForWrongRuleDoesNotSuppress) {
  const Report r = detlint_source(
      "t.cpp", "auto t = Clock::now(); // DETLINT-ALLOW(DET002): wrong rule\n");
  EXPECT_EQ(r.count_rule("DET001"), 1u);
}

TEST(DetLint, CommentsAndStringsNeverMatch) {
  const Report r = detlint_source(
      "t.cpp",
      "// calling time() or rand() here would be bad\n"
      "/* std::random_device in a block comment */\n"
      "const char* s = \"steady_clock::now()\";\n"
      "const char* t = \"rand()\";\n");
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, CompoundIdentifiersDoNotMatch) {
  const Report r = detlint_source(
      "t.cpp",
      "double crossing_time(double t);\n"
      "double x = crossing_time(1.0);\n"
      "int y = randomize(3);\n"
      "int z = my_clock(0);\n");
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, GlobalSuppressOptionDropsRule) {
  DetLintOptions opt;
  opt.suppress = {"DET001"};
  const Report r = detlint_source("t.cpp", "auto t = Clock::now();\n", opt);
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, FindingCarriesPathAndLine) {
  const Report r =
      detlint_source("dir/file.cpp", "int a;\nauto t = Clock::now();\n");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].object, "dir/file.cpp:2");
  EXPECT_EQ(r.diagnostics()[0].severity, Severity::Error);
}

// --- the gate itself ---------------------------------------------------------

// The repo's own sources must stay clean: every wall-clock read, RNG use and
// unordered iteration in a trial path is either fixed or carries a reviewed
// DETLINT-ALLOW with a reason. This is the compile-time determinism gate —
// if this test fails, a nondeterminism hazard entered src/.
TEST(DetLint, RepositorySourceTreeIsClean) {
  const Report r = detlint_tree(std::string(NVFF_SRC_DIR));
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(DetLint, TreeScanIsDeterministic) {
  const Report a = detlint_tree(std::string(NVFF_SRC_DIR));
  const Report b = detlint_tree(std::string(NVFF_SRC_DIR));
  EXPECT_EQ(a.to_json(), b.to_json());
}

} // namespace
} // namespace nvff::erc
