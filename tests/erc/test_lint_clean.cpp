// Regression gate: every paper benchmark and every latch variant deck must
// pass the static checkers. Benchmarks may carry Info-level dead-logic notes
// (the synthetic generator leaves dead sinks by construction) but no errors
// or warnings; the hand-built SPICE decks must be spotless.
#include <gtest/gtest.h>

#include "bench_circuits/generator.hpp"
#include "cell/flipped_latch.hpp"
#include "cell/multibit_latch.hpp"
#include "cell/scalable_latch.hpp"
#include "cell/standard_latch.hpp"
#include "cell/technology.hpp"
#include "erc/erc.hpp"

namespace nvff::erc {
namespace {

class BenchmarkLintTest : public ::testing::TestWithParam<bench::BenchmarkSpec> {};

TEST_P(BenchmarkLintTest, LintsClean) {
  const bench::Netlist nl = bench::generate_benchmark(GetParam());
  const Report r = lint_netlist(nl);
  EXPECT_TRUE(r.clean()) << r.to_text();
  EXPECT_EQ(r.count(Severity::Error), 0u);
  EXPECT_EQ(r.count(Severity::Warning), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkLintTest,
                         ::testing::ValuesIn(bench::paper_benchmarks()),
                         [](const ::testing::TestParamInfo<bench::BenchmarkSpec>& info) {
                           return info.param.name;
                         });

class DeckErcTest : public ::testing::Test {
protected:
  const cell::Technology tech = cell::Technology::table1();
  const cell::TechCorner corner = tech.read_corner(cell::Corner::Typical);

  void expect_clean(const spice::Circuit& circuit, const char* what) {
    const Report r = check_circuit(circuit);
    EXPECT_TRUE(r.empty()) << what << ":\n" << r.to_text();
  }
};

TEST_F(DeckErcTest, StandardLatchDecks) {
  expect_clean(cell::StandardNvLatch::build_read(tech, corner, true, {}).circuit,
               "standard read");
  expect_clean(cell::StandardNvLatch::build_write(tech, corner, false, {}).circuit,
               "standard write");
  expect_clean(cell::StandardNvLatch::build_idle(tech, corner).circuit,
               "standard idle");
  expect_clean(
      cell::StandardNvLatch::build_power_cycle(tech, corner, true, {}).circuit,
      "standard power cycle");
}

TEST_F(DeckErcTest, FlippedLatchDecks) {
  expect_clean(cell::FlippedNvLatch::build_read(tech, corner, true, {}).circuit,
               "flipped read");
  expect_clean(cell::FlippedNvLatch::build_write(tech, corner, false, {}).circuit,
               "flipped write");
  expect_clean(cell::FlippedNvLatch::build_idle(tech, corner).circuit,
               "flipped idle");
}

TEST_F(DeckErcTest, MultibitLatchDecks) {
  expect_clean(
      cell::MultibitNvLatch::build_read(tech, corner, true, false, {}).circuit,
      "multibit read");
  expect_clean(
      cell::MultibitNvLatch::build_write(tech, corner, false, true, {}).circuit,
      "multibit write");
  expect_clean(cell::MultibitNvLatch::build_idle(tech, corner).circuit,
               "multibit idle");
  expect_clean(cell::MultibitNvLatch::build_power_cycle(tech, corner, true, true, {})
                   .circuit,
               "multibit power cycle");
}

TEST_F(DeckErcTest, ScalableLatchDecks) {
  const std::vector<bool> data{true, false, true, false};
  expect_clean(cell::ScalableNvLatch::build_read(tech, corner, data, {}).circuit,
               "scalable read");
  expect_clean(cell::ScalableNvLatch::build_write(tech, corner, data, {}).circuit,
               "scalable write");
  expect_clean(cell::ScalableNvLatch::build_idle(tech, corner, 4).circuit,
               "scalable idle");
}

} // namespace
} // namespace nvff::erc
