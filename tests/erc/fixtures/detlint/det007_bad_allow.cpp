// Fixture: DET007 — malformed suppressions: unknown rule id, and a
// missing reason. Each is itself a gating finding.
#include <chrono>

double lazy_suppression_bad() {
  // DETLINT-ALLOW(DET999): no such rule
  const auto t0 = std::chrono::steady_clock::now();
  // DETLINT-ALLOW(DET001)
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
