// Fixture: DET002 — ambient RNG instead of counter-based streams.
#include <cstdlib>
#include <random>

int sample_bad() {
  std::random_device entropy; // DET002
  (void)entropy;
  srand(42);                  // DET002
  return rand();              // DET002
}
