// Fixture: DET006 — ordered containers keyed by object address iterate in
// allocation order, which ASLR and the allocator reshuffle run to run.
#include <map>
#include <set>

struct Node {
  double value = 0.0;
};

double first_node_value_bad(Node* a, Node* b) {
  std::set<Node*> frontier; // DET006
  frontier.insert(a);
  frontier.insert(b);
  std::map<const Node*, double> score; // DET006
  score[a] = 1.0;
  return (*frontier.begin())->value;
}
