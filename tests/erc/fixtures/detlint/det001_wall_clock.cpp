// Fixture: DET001 — wall-clock reads in a trial path.
#include <chrono>
#include <ctime>

double trial_duration_bad() {
  const auto start = std::chrono::steady_clock::now(); // DET001
  const std::time_t stamp = time(nullptr);             // DET001
  (void)stamp;
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - start) // DET001
      .count();
}
