// Fixture: DET003 — std <random> engine (stdlib-dependent, invites
// seeding from time) instead of the portable counter-based Rng.
#include <random>

double jitter_bad(unsigned seed) {
  std::mt19937 engine(seed); // DET003
  std::default_random_engine fallback; // DET003
  (void)fallback;
  return static_cast<double>(engine());
}
