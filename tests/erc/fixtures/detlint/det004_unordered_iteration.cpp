// Fixture: DET004 — hash-order iteration feeding an accumulation.
#include <string>
#include <unordered_map>

double total_energy_bad() {
  std::unordered_map<std::string, double> energyByCell;
  energyByCell["latch"] = 1.0;
  double total = 0.0;
  for (const auto& [name, energy] : energyByCell) { // DET004
    total += energy; // float add is not associative: order changes the sum
  }
  for (auto it = energyByCell.begin(); it != energyByCell.end(); ++it) { // DET004
    total += it->second;
  }
  return total;
}
