// Fixture: DET005 — parallel execution policies reduce in
// scheduler-dependent order.
#include <execution>
#include <numeric>
#include <vector>

double sum_bad(const std::vector<double>& xs) {
  return std::reduce(std::execution::par_unseq, xs.begin(), xs.end());
}
