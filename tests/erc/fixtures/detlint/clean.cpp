// Fixture: clean trial-path code — counter-based randomness, ordered
// iteration, one justified wall-clock suppression. Must produce zero
// findings; pins the false-positive surface (compound identifiers like
// crossing_time(), words inside comments and strings, find/count on
// unordered containers without iteration).
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Words that must NOT trip rules: rand() time() now() in prose is fine.
double crossing_time(double t) { return t; } // not "time("
int randomize_gate_count(int n) { return n; } // not "random("

double lookup_only(const std::unordered_map<std::string, double>& byName) {
  const auto it = byName.find("s1423"); // find is order-free: fine
  return it == byName.end() ? 0.0 : it->second;
}

// Distinct name from the unordered parameter above: DET004 tracks names
// per file, so an identifier used for both container kinds would flag.
double ordered_accumulation(const std::map<std::string, double>& byRank) {
  double total = 0.0;
  for (const auto& [name, value] : byRank) total += value; // ordered: fine
  return total;
}

double watchdog_heartbeat_seconds() {
  const char* why = "the string \"steady_clock::now()\" must not match";
  (void)why;
  // DETLINT-ALLOW(DET001): example watchdog heartbeat; never feeds results.
  return crossing_time(1.0);
}
