#include "erc/diagnostics.hpp"

#include <gtest/gtest.h>

namespace nvff::erc {
namespace {

Report two_errors_one_warning_one_info() {
  Report r;
  r.add("ERC001", Severity::Error, "n1", "floating gate of M1", "drive it");
  r.add("ERC002", Severity::Error, "n2", "undriven node");
  r.add("ERC002", Severity::Warning, "n3", "dangling node");
  r.add("LNT004", Severity::Info, "g1", "dead gate");
  return r;
}

TEST(DiagnosticsTest, CountsBySeverityAndRule) {
  const Report r = two_errors_one_warning_one_info();
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.count(Severity::Error), 2u);
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_EQ(r.count(Severity::Info), 1u);
  EXPECT_EQ(r.count_rule("ERC002"), 2u);
  EXPECT_EQ(r.count_rule("ERC001"), 1u);
  EXPECT_EQ(r.count_rule("ERC999"), 0u);
}

TEST(DiagnosticsTest, CleanSemantics) {
  Report r;
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.empty());
  r.add("LNT004", Severity::Info, "g", "dead gate");
  EXPECT_TRUE(r.clean()) << "Info notes must not gate";
  EXPECT_FALSE(r.empty());
  r.add("ERC002", Severity::Warning, "n", "dangling");
  EXPECT_FALSE(r.clean());
  EXPECT_FALSE(r.has_errors());
  r.add("ERC001", Severity::Error, "n", "floating gate");
  EXPECT_TRUE(r.has_errors());
}

TEST(DiagnosticsTest, SuppressionDropsOnAdd) {
  Report r;
  r.set_suppressed({"ERC002"});
  r.add("ERC002", Severity::Error, "n", "undriven");
  r.add("ERC001", Severity::Error, "n", "floating gate");
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.count_rule("ERC002"), 0u);
  EXPECT_EQ(r.count_rule("ERC001"), 1u);
}

TEST(DiagnosticsTest, MergeRespectsSuppression) {
  Report src = two_errors_one_warning_one_info();
  Report dst;
  dst.set_suppressed({"LNT004"});
  dst.merge(src);
  EXPECT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.count_rule("LNT004"), 0u);
  EXPECT_EQ(dst.count(Severity::Error), 2u);
}

TEST(DiagnosticsTest, TextRendering) {
  const Report r = two_errors_one_warning_one_info();
  const std::string text = r.to_text();
  EXPECT_NE(text.find("error[ERC001] n1: floating gate of M1 (drive it)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("warning[ERC002] n3: dangling node"), std::string::npos);
  EXPECT_NE(text.find("2 error(s), 1 warning(s), 1 note(s)"), std::string::npos);
}

TEST(DiagnosticsTest, JsonRendering) {
  Report r;
  r.add("ERC005", Severity::Error, "V\"1\"", "loop", "fix");
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"rule\":\"ERC005\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("V\\\"1\\\""), std::string::npos)
      << "quotes must be escaped: " << json;
}

} // namespace
} // namespace nvff::erc
