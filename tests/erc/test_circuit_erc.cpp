// Each ERC rule gets a deliberately broken minimal circuit and must fire
// exactly once with its own rule id. A known-good circuit must come back
// empty.
#include "erc/circuit_erc.hpp"

#include <gtest/gtest.h>

#include "mtj/device.hpp"
#include "spice/circuit.hpp"

namespace nvff::erc {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::kInvalidNode;
using spice::Waveform;

mtj::MtjModel table1_model() { return mtj::MtjModel(mtj::MtjParams::table1()); }

TEST(CircuitErcTest, CleanDividerReportsNothing) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("R1", vdd, mid, 10e3);
  ckt.add_resistor("R2", mid, kGround, 10e3);
  const Report r = check_circuit(ckt);
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(CircuitErcTest, Erc001FloatingGate) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto out = ckt.node("out");
  const auto gate = ckt.node("float_g");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("Rload", vdd, out, 10e3);
  ckt.add_nmos("M1", out, gate, kGround, kGround, {}, {});
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC001"), 1u) << r.to_text();
  EXPECT_TRUE(r.has_errors());
  // The floating-gate diagnostic subsumes the generic undriven-node one.
  EXPECT_EQ(r.count_rule("ERC002"), 0u) << r.to_text();
  const auto& d = r.diagnostics().front();
  EXPECT_EQ(d.object, "float_g");
  EXPECT_NE(d.message.find("M1"), std::string::npos)
      << "must name the MOSFET whose gate floats";
}

TEST(CircuitErcTest, Erc002UnusedNodeWarns) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  ckt.node("orphan"); // created, never wired
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("Rload", vdd, kGround, 10e3);
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC002"), 1u) << r.to_text();
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_FALSE(r.has_errors());
  EXPECT_FALSE(r.clean());
}

TEST(CircuitErcTest, Erc002UndrivenCapacitorOnlyNode) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto hang = ckt.node("hang");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("Rload", vdd, kGround, 10e3);
  ckt.add_capacitor("C1", hang, kGround, 1e-15);
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC002"), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics().front().severity, Severity::Error);
}

TEST(CircuitErcTest, Erc002DanglingSingleTerminalWarns) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto stub = ckt.node("stub");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("Rstub", vdd, stub, 1e3);
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC002"), 1u) << r.to_text();
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_FALSE(r.has_errors());
}

TEST(CircuitErcTest, Erc003IslandWithoutGroundPath) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("Rload", vdd, kGround, 10e3);
  // Resistor triangle floating in space: every node driven, none grounded.
  const auto a = ckt.node("isl_a");
  const auto b = ckt.node("isl_b");
  const auto c = ckt.node("isl_c");
  ckt.add_resistor("Ra", a, b, 1e3);
  ckt.add_resistor("Rb", b, c, 1e3);
  ckt.add_resistor("Rc", c, a, 1e3);
  const Report r = check_circuit(ckt);
  ASSERT_EQ(r.count_rule("ERC003"), 1u) << r.to_text();
  EXPECT_EQ(r.size(), 1u) << "one diagnostic per island, not per node";
  EXPECT_NE(r.diagnostics().front().message.find("isl_a"), std::string::npos);
}

TEST(CircuitErcTest, Erc004AlwaysOnRailShort) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto g = ckt.node("tied_high");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_vsource("Vg", g, kGround, Waveform::dc(1.1));
  // Gate hard-tied above vth: the channel statically shorts vdd to gnd.
  ckt.add_nmos("Mshort", vdd, g, kGround, kGround, {}, {});
  const Report r = check_circuit(ckt);
  ASSERT_EQ(r.count_rule("ERC004"), 1u) << r.to_text();
  EXPECT_NE(r.diagnostics().back().object.find("Mshort"), std::string::npos);
}

TEST(CircuitErcTest, Erc004SilentWhenGateTiedOff) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  // Gate at 0 V keeps the NMOS off: same topology, no short.
  ckt.add_nmos("Moff", vdd, kGround, kGround, kGround, {}, {});
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC004"), 0u) << r.to_text();
}

TEST(CircuitErcTest, Erc005ParallelSourcesFight) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Waveform::dc(1.0));
  ckt.add_vsource("V2", a, kGround, Waveform::dc(1.2));
  const Report r = check_circuit(ckt);
  ASSERT_EQ(r.count_rule("ERC005"), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics().front().object, "V2")
      << "the second source closes the loop";
}

TEST(CircuitErcTest, Erc006NonPositiveMosGeometry) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto g = ckt.node("g");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_resistor("Rg", g, kGround, 1e3);
  ckt.add_nmos("Mzero", vdd, g, kGround, kGround, {.w = 0.0, .l = 40e-9}, {});
  const Report r = check_circuit(ckt);
  ASSERT_EQ(r.count_rule("ERC006"), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics().front().object, "Mzero");
}

TEST(CircuitErcTest, Erc007LonelyMtjTerminal) {
  Circuit ckt;
  const auto top = ckt.node("top");
  const auto stub = ckt.node("mtj_stub");
  ckt.add_vsource("Vtop", top, kGround, Waveform::dc(0.5));
  ckt.add_device<mtj::MtjDevice>("MTJ1", stub, top, table1_model(),
                                 mtj::MtjOrientation::Parallel);
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC007"), 1u) << r.to_text();
}

TEST(CircuitErcTest, Erc007SelfShortedMtj) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add_vsource("Vn", n, kGround, Waveform::dc(0.5));
  ckt.add_device<mtj::MtjDevice>("MTJshort", n, n, table1_model(),
                                 mtj::MtjOrientation::Parallel);
  const Report r = check_circuit(ckt);
  EXPECT_EQ(r.count_rule("ERC007"), 1u) << r.to_text();
}

TEST(CircuitErcTest, Erc008InvalidNodeId) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  // A failed find_node() used without checking.
  ckt.add_resistor("Rbad", vdd, ckt.find_node("no_such_node"), 1e3);
  const Report r = check_circuit(ckt);
  ASSERT_EQ(r.count_rule("ERC008"), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics().front().object, "Rbad");
  EXPECT_NE(r.diagnostics().front().hint.find("kInvalidNode"), std::string::npos);
}

TEST(CircuitErcTest, SuppressionFiltersRules) {
  Circuit ckt;
  ckt.node("orphan");
  CircuitErcOptions opt;
  opt.suppress = {"ERC002"};
  const Report r = check_circuit(ckt, opt);
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(CircuitErcTest, RequireCleanThrowsWithReport) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("g");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(1.1));
  ckt.add_nmos("M1", vdd, gate, kGround, kGround, {}, {});
  try {
    require_clean(ckt, "unit-test deck");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit-test deck"), std::string::npos);
    EXPECT_NE(what.find("ERC001"), std::string::npos);
  }
}

TEST(CircuitErcTest, RequireCleanIgnoresWarnings) {
  Circuit ckt;
  ckt.node("orphan"); // warning-only circuit
  EXPECT_NO_THROW(require_clean(ckt, "warning deck"));
}

} // namespace
} // namespace nvff::erc
