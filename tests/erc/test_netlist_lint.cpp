// Each lint rule gets a deliberately broken minimal netlist (or .bench text)
// and must fire exactly once with its own rule id.
#include "erc/netlist_lint.hpp"

#include <gtest/gtest.h>

#include "bench_circuits/netlist.hpp"

namespace nvff::erc {
namespace {

using bench::GateId;
using bench::GateType;
using bench::Netlist;

TEST(NetlistLintTest, CleanNetlistReportsNothing) {
  Netlist nl("clean");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId b = nl.add_gate(GateType::Input, "b");
  const GateId g = nl.add_gate(GateType::Nand, "g", {a, b});
  const GateId q = nl.add_gate(GateType::Dff, "q", {g});
  const GateId o = nl.add_gate(GateType::Not, "o", {q});
  nl.mark_output(o);
  nl.finalize();
  const Report r = lint_netlist(nl);
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(NetlistLintTest, Lnt001CombinationalCycleWithPath) {
  Netlist nl("loop");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId g1 = nl.add_gate(GateType::And, "g1");
  const GateId g2 = nl.add_gate(GateType::Or, "g2", {g1, a});
  nl.set_fanin(g1, {g2, a});
  nl.mark_output(g2);
  const Report r = lint_netlist(nl);
  ASSERT_EQ(r.count_rule("LNT001"), 1u) << r.to_text();
  const auto& d = r.diagnostics().front();
  // The whole point of the rule: the report carries the actual cycle path.
  const bool pathShown = d.message.find("g1 -> g2 -> g1") != std::string::npos ||
                         d.message.find("g2 -> g1 -> g2") != std::string::npos;
  EXPECT_TRUE(pathShown) << d.message;
}

TEST(NetlistLintTest, Lnt001CycleThroughDffIsFine) {
  Netlist nl("ff_loop");
  const GateId q = nl.add_gate(GateType::Dff, "q");
  const GateId g = nl.add_gate(GateType::Not, "g", {q});
  nl.set_fanin(q, {g});
  nl.mark_output(g);
  nl.finalize();
  const Report r = lint_netlist(nl);
  EXPECT_EQ(r.count_rule("LNT001"), 0u) << r.to_text();
}

TEST(NetlistLintTest, Lnt002MultiDrivenSignal) {
  const std::string text = "INPUT(a)\n"
                           "OUTPUT(y)\n"
                           "y = NOT(a)\n"
                           "y = BUF(a)\n";
  const Report r = lint_bench_text(text, "dup");
  EXPECT_EQ(r.count_rule("LNT002"), 1u) << r.to_text();
  EXPECT_TRUE(r.has_errors());
}

TEST(NetlistLintTest, Lnt003ArityViolations) {
  Netlist low("low_arity");
  const GateId a = low.add_gate(GateType::Input, "a");
  const GateId g = low.add_gate(GateType::Nand, "g", {a}); // needs >= 2
  low.mark_output(g);
  const Report rLow = lint_netlist(low);
  EXPECT_EQ(rLow.count_rule("LNT003"), 1u) << rLow.to_text();

  Netlist high("high_arity");
  std::vector<GateId> pins;
  for (std::size_t i = 0; i < bench::kMaxFanin + 1; ++i) {
    pins.push_back(high.add_gate(GateType::Input, "p" + std::to_string(i)));
  }
  const GateId wide = high.add_gate(GateType::And, "wide", pins);
  high.mark_output(wide);
  const Report rHigh = lint_netlist(high);
  EXPECT_EQ(rHigh.count_rule("LNT003"), 1u) << rHigh.to_text();
}

TEST(NetlistLintTest, Lnt004DeadGateIsInfoOnly) {
  Netlist nl("dead");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId used = nl.add_gate(GateType::Not, "used", {a});
  nl.add_gate(GateType::Not, "dead_gate", {a});
  nl.mark_output(used);
  nl.finalize();
  const Report r = lint_netlist(nl);
  ASSERT_EQ(r.count_rule("LNT004"), 1u) << r.to_text();
  EXPECT_EQ(r.diagnostics().front().severity, Severity::Info);
  EXPECT_TRUE(r.clean()) << "dead logic must not gate";
}

TEST(NetlistLintTest, Lnt004CapsPerGateReports) {
  Netlist nl("many_dead");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId used = nl.add_gate(GateType::Not, "used", {a});
  nl.mark_output(used);
  for (int i = 0; i < 20; ++i) {
    nl.add_gate(GateType::Not, "d" + std::to_string(i), {a});
  }
  nl.finalize();
  const Report r = lint_netlist(nl);
  // 8 individual notes plus one "N more" summary.
  EXPECT_EQ(r.count_rule("LNT004"), 9u) << r.to_text();
  EXPECT_NE(r.to_text().find("12 more dead gates"), std::string::npos)
      << r.to_text();
}

TEST(NetlistLintTest, Lnt005DffFaninCount) {
  Netlist none("dff_none");
  const GateId q0 = none.add_gate(GateType::Dff, "q0");
  none.mark_output(q0);
  EXPECT_EQ(lint_netlist(none).count_rule("LNT005"), 1u);

  Netlist two("dff_two");
  const GateId a = two.add_gate(GateType::Input, "a");
  const GateId b = two.add_gate(GateType::Input, "b");
  const GateId q = two.add_gate(GateType::Dff, "q", {a, b});
  two.mark_output(q);
  const Report r = lint_netlist(two);
  EXPECT_EQ(r.count_rule("LNT005"), 1u) << r.to_text();
  EXPECT_EQ(r.count_rule("LNT003"), 0u) << "DFF arity is LNT005, not LNT003";
}

TEST(NetlistLintTest, Lnt006UndrivenPrimaryOutput) {
  Netlist nl("bad_out");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId ok = nl.add_gate(GateType::Buf, "ok", {a});
  const GateId bad = nl.add_gate(GateType::Or, "bad");
  nl.mark_output(ok);
  nl.mark_output(bad);
  const Report r = lint_netlist(nl);
  EXPECT_EQ(r.count_rule("LNT006"), 1u) << r.to_text();
}

TEST(NetlistLintTest, Lnt007DanglingFaninReference) {
  Netlist nl("dangle");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId g = nl.add_gate(GateType::Buf, "g", {a});
  nl.set_fanin(g, {static_cast<GateId>(99)});
  nl.mark_output(g);
  const Report r = lint_netlist(nl);
  EXPECT_EQ(r.count_rule("LNT007"), 1u) << r.to_text();
}

TEST(NetlistLintTest, Lnt007UndefinedSignalInBenchText) {
  const std::string text = "INPUT(a)\n"
                           "OUTPUT(y)\n"
                           "y = AND(a, ghost)\n";
  const Report r = lint_bench_text(text, "undef");
  EXPECT_EQ(r.count_rule("LNT007"), 1u) << r.to_text();
}

TEST(NetlistLintTest, Lnt008BenchSyntaxError) {
  const std::string text = "INPUT(a)\n"
                           "OUTPUT(y)\n"
                           "y = WIBBLE(a)\n";
  const Report r = lint_bench_text(text, "syntax");
  EXPECT_EQ(r.count_rule("LNT008"), 1u) << r.to_text();
  EXPECT_TRUE(r.has_errors());
}

TEST(NetlistLintTest, SuppressionFiltersRules) {
  Netlist nl("dead");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId used = nl.add_gate(GateType::Not, "used", {a});
  nl.add_gate(GateType::Not, "dead_gate", {a});
  nl.mark_output(used);
  NetlistLintOptions opt;
  opt.suppress = {"LNT004"};
  const Report r = lint_netlist(nl, opt);
  EXPECT_TRUE(r.empty()) << r.to_text();
}

TEST(NetlistLintTest, FinalizeCycleErrorNamesThePath) {
  Netlist nl("loop");
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId g1 = nl.add_gate(GateType::And, "g1");
  const GateId g2 = nl.add_gate(GateType::Or, "g2", {g1, a});
  nl.set_fanin(g1, {g2, a});
  nl.mark_output(g2);
  try {
    nl.finalize();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("combinational cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("->"), std::string::npos)
        << "finalize must report the cycle path, not a bare 'cycle detected': "
        << what;
  }
}

} // namespace
} // namespace nvff::erc
