// MTJ compact model: Table I values, TMR roll-off, switching dynamics,
// process variation.
#include <gtest/gtest.h>

#include <cmath>

#include "mtj/model.hpp"
#include "util/units.hpp"

namespace nvff::mtj {
namespace {
using namespace nvff::units;

TEST(MtjParams, Table1Defaults) {
  const MtjParams p = MtjParams::table1();
  EXPECT_DOUBLE_EQ(p.rParallel, 5e3);
  EXPECT_DOUBLE_EQ(p.rAntiParallel, 11e3);
  EXPECT_DOUBLE_EQ(p.tmr0, 1.23);
  EXPECT_DOUBLE_EQ(p.iCritical, 37 * uA);
  EXPECT_DOUBLE_EQ(p.iSwitching, 70 * uA);
  EXPECT_DOUBLE_EQ(p.radius, 20 * nm);
  // Consistency: R_AP ~= R_P * (1 + TMR) within rounding of the paper table.
  EXPECT_NEAR(p.rParallel * (1.0 + p.tmr0), p.rAntiParallel, 0.2e3);
}

TEST(MtjModel, ZeroBiasResistances) {
  const MtjModel m(MtjParams::table1());
  EXPECT_DOUBLE_EQ(m.resistance(MtjOrientation::Parallel, 0.0), 5e3);
  EXPECT_NEAR(m.resistance(MtjOrientation::AntiParallel, 0.0), 11.15e3, 200.0);
}

TEST(MtjModel, TmrRollsOffWithBias) {
  const MtjModel m(MtjParams::table1());
  EXPECT_NEAR(m.tmr(0.0), 1.23, 1e-12);
  EXPECT_NEAR(m.tmr(m.params().vHalf), 1.23 / 2.0, 1e-12);
  EXPECT_LT(m.tmr(1.0), m.tmr(0.5));
  // Symmetric in bias sign.
  EXPECT_DOUBLE_EQ(m.tmr(0.3), m.tmr(-0.3));
}

TEST(MtjModel, ApResistanceFallsWithBias) {
  const MtjModel m(MtjParams::table1());
  const double r0 = m.resistance(MtjOrientation::AntiParallel, 0.0);
  const double r5 = m.resistance(MtjOrientation::AntiParallel, 0.5);
  EXPECT_LT(r5, r0);
  // P state is bias-independent.
  EXPECT_DOUBLE_EQ(m.resistance(MtjOrientation::Parallel, 0.5),
                   m.resistance(MtjOrientation::Parallel, 0.0));
}

TEST(MtjModel, ResistanceDerivativeMatchesFiniteDifference) {
  const MtjModel m(MtjParams::table1());
  const double h = 1e-6;
  for (double v : {-0.8, -0.3, 0.0, 0.2, 0.7}) {
    const double fd = (m.resistance(MtjOrientation::AntiParallel, v + h) -
                       m.resistance(MtjOrientation::AntiParallel, v - h)) /
                      (2 * h);
    EXPECT_NEAR(m.resistance_derivative(MtjOrientation::AntiParallel, v), fd,
                std::abs(fd) * 1e-4 + 1e-6);
  }
}

TEST(MtjModel, SwitchingTimeCalibratedToPaper) {
  const MtjModel m(MtjParams::table1());
  // 70 uA write -> 2 ns (the paper's worst-case write latency).
  EXPECT_NEAR(m.switching_time(70 * uA), 2 * ns, 0.01 * ns);
}

TEST(MtjModel, SwitchingTimeMonotoneInCurrent) {
  const MtjModel m(MtjParams::table1());
  EXPECT_GT(m.switching_time(50 * uA), m.switching_time(70 * uA));
  EXPECT_GT(m.switching_time(70 * uA), m.switching_time(100 * uA));
}

TEST(MtjModel, SubcriticalCurrentsAreAstronomicallySlow) {
  const MtjModel m(MtjParams::table1());
  // A ~5 uA read current must not disturb on any realistic timescale.
  EXPECT_GT(m.switching_time(5 * uA), 1.0); // > 1 second
  EXPECT_TRUE(std::isinf(m.switching_time(0.0)));
}

TEST(MtjModel, PolarityConvention) {
  EXPECT_TRUE(MtjModel::polarity_favours(50 * uA, MtjOrientation::Parallel));
  EXPECT_FALSE(MtjModel::polarity_favours(50 * uA, MtjOrientation::AntiParallel));
  EXPECT_TRUE(MtjModel::polarity_favours(-50 * uA, MtjOrientation::AntiParallel));
}

TEST(MtjModel, RejectsInconsistentCurrents) {
  MtjParams p = MtjParams::table1();
  p.iSwitching = p.iCritical; // not above critical
  EXPECT_THROW(MtjModel{p}, std::invalid_argument);
}

TEST(MtjParams, SigmaShiftsScaleLinearly) {
  const MtjParams base = MtjParams::table1();
  const MtjParams hi = base.at_sigma(3.0, 0.0, 0.0);
  EXPECT_NEAR(hi.rParallel, base.rParallel * 1.15, 1.0);
  EXPECT_NEAR(hi.ra, base.ra * 1.15, 1e-15);
  // TMR shift moves R_AP but not R_P.
  const MtjParams tmrLo = base.at_sigma(0.0, -3.0, 0.0);
  EXPECT_DOUBLE_EQ(tmrLo.rParallel, base.rParallel);
  EXPECT_LT(tmrLo.rAntiParallel, base.rAntiParallel);
  // Ic shift tracks both critical and nominal write current.
  const MtjParams icHi = base.at_sigma(0.0, 0.0, 3.0);
  EXPECT_NEAR(icHi.iCritical, base.iCritical * 1.15, 1e-9);
  EXPECT_NEAR(icHi.iSwitching, base.iSwitching * 1.15, 1e-9);
}

TEST(MtjParams, SampleStaysWithinThreeSigma) {
  const MtjParams base = MtjParams::table1();
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const MtjParams s = base.sample(rng);
    EXPECT_GE(s.rParallel, base.rParallel * (1 - 3 * MtjParams::kSigmaRaRel) - 1e-9);
    EXPECT_LE(s.rParallel, base.rParallel * (1 + 3 * MtjParams::kSigmaRaRel) + 1e-9);
    EXPECT_GE(s.iCritical, base.iCritical * (1 - 3 * MtjParams::kSigmaIcRel) - 1e-12);
    EXPECT_LE(s.iCritical, base.iCritical * (1 + 3 * MtjParams::kSigmaIcRel) + 1e-12);
  }
}

TEST(MtjParams, WorstCaseReadCornerShrinksWindow) {
  // Worst read corner: TMR down (smaller R difference). The sensing margin
  // R_AP - R_P must shrink but stay positive at -3 sigma.
  // Compare against the recomputed (not paper-rounded) nominal point so both
  // sides use the same R_AP = R_P * (1 + TMR) convention.
  const MtjParams base = MtjParams::table1().at_sigma(0.0, 0.0, 0.0);
  const MtjParams worst = base.at_sigma(3.0, -3.0, 0.0);
  const double marginBase = base.rAntiParallel - base.rParallel;
  const double marginWorst = worst.rAntiParallel - worst.rParallel;
  EXPECT_LT(marginWorst, marginBase);
  EXPECT_GT(marginWorst, 0.0);
}

} // namespace
} // namespace nvff::mtj
