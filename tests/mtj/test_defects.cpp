// MTJ defect-injection semantics.
#include <gtest/gtest.h>

#include "mtj/device.hpp"
#include "spice/analysis.hpp"
#include "util/units.hpp"

namespace nvff::mtj {
namespace {
using namespace nvff::units;
using spice::Circuit;
using spice::kGround;
using spice::Waveform;

TEST(MtjDefect, PinnedForcesOrientationAndBlocksWrites) {
  Circuit ckt;
  const auto drive = ckt.node("drive");
  ckt.add_isource("IW", kGround, drive, Waveform::pulse(0.0, 70 * uA, 0.1 * ns,
                                                        10 * ps, 10 * ps, 3 * ns, 0.0));
  auto& dev = ckt.add_device<MtjDevice>("X", drive, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::Parallel);
  dev.inject_defect(MtjDefect::PinnedAntiParallel);
  EXPECT_EQ(dev.orientation(), MtjOrientation::AntiParallel);
  spice::Simulator sim(ckt);
  spice::TransientOptions opt;
  opt.tStop = 4 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr); // 70 uA toward P for 3 ns
  EXPECT_EQ(dev.orientation(), MtjOrientation::AntiParallel);
  EXPECT_EQ(dev.flip_count(), 0);
}

TEST(MtjDefect, BarrierDefectsOverrideResistance) {
  for (auto [defect, lo, hi] :
       {std::tuple{MtjDefect::ShortedBarrier, 100.0, 1000.0},
        std::tuple{MtjDefect::OpenBarrier, 1e6, 1e8}}) {
    Circuit ckt;
    const auto a = ckt.node("a");
    ckt.add_vsource("V", a, kGround, Waveform::dc(0.1));
    auto& dev = ckt.add_device<MtjDevice>("X", a, kGround,
                                          MtjModel(MtjParams::table1()),
                                          MtjOrientation::Parallel);
    dev.inject_defect(defect);
    spice::Simulator sim(ckt);
    const auto op = sim.dc_operating_point();
    const double r = dev.resistance(op.as_state());
    EXPECT_GT(r, lo);
    EXPECT_LT(r, hi);
  }
}

TEST(MtjDefect, HealthyDeviceUnaffected) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V", a, kGround, Waveform::dc(0.1));
  auto& dev = ckt.add_device<MtjDevice>("X", a, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::Parallel);
  EXPECT_EQ(dev.defect(), MtjDefect::None);
  spice::Simulator sim(ckt);
  const auto op = sim.dc_operating_point();
  EXPECT_NEAR(dev.resistance(op.as_state()), 5e3, 1.0);
}

} // namespace
} // namespace nvff::mtj
