// MTJ device in circuit: read currents, write switching, read disturb.
#include <gtest/gtest.h>

#include "mtj/device.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

namespace nvff::mtj {
namespace {
using namespace nvff::units;
using spice::Circuit;
using spice::kGround;
using spice::NodeId;
using spice::Simulator;
using spice::TransientOptions;
using spice::Waveform;

TEST(MtjDevice, DcReadCurrentMatchesResistance) {
  // 0.1 V across the MTJ: I = V/R.
  for (auto state : {MtjOrientation::Parallel, MtjOrientation::AntiParallel}) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add_vsource("V1", a, kGround, Waveform::dc(0.1));
    auto& mtj = ckt.add_device<MtjDevice>("X1", a, kGround,
                                          MtjModel(MtjParams::table1()), state);
    Simulator sim(ckt);
    const auto op = sim.dc_operating_point();
    const double r = mtj.resistance(op.as_state());
    EXPECT_NEAR(mtj.current(op.as_state()), 0.1 / r, 1e-9);
    if (state == MtjOrientation::Parallel) {
      EXPECT_NEAR(r, 5 * kOhm, 1.0);
    } else {
      EXPECT_GT(r, 10 * kOhm);
    }
  }
}

TEST(MtjDevice, SeriesDividerDistinguishesStates) {
  // The sensing principle: series reference resistor, mid voltage differs
  // between P and AP.
  auto midVoltage = [](MtjOrientation state) {
    Circuit ckt;
    const NodeId top = ckt.node("top");
    const NodeId mid = ckt.node("mid");
    ckt.add_vsource("V1", top, kGround, Waveform::dc(1.1));
    ckt.add_resistor("Rref", top, mid, 8 * kOhm);
    ckt.add_device<MtjDevice>("X1", mid, kGround, MtjModel(MtjParams::table1()),
                              state);
    Simulator sim(ckt);
    return sim.dc_operating_point().v(mid);
  };
  const double vP = midVoltage(MtjOrientation::Parallel);
  const double vAP = midVoltage(MtjOrientation::AntiParallel);
  EXPECT_GT(vAP - vP, 0.1); // > 100 mV of signal
}

TEST(MtjDevice, WritePulseSwitchesApToP) {
  // Positive current free->ref favours P. Drive ~70 uA for 3 ns.
  Circuit ckt;
  const NodeId drive = ckt.node("drive");
  // V = I * R: 70 uA through ~5-11 kOhm needs a series resistor to set the
  // current; use an ideal current source for exactness.
  ckt.add_isource("IW", kGround, drive, Waveform::pulse(0.0, 70 * uA, 0.1 * ns,
                                                        10 * ps, 10 * ps, 3 * ns, 0.0));
  auto& mtj = ckt.add_device<MtjDevice>("X1", drive, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::AntiParallel);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 4 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(mtj.orientation(), MtjOrientation::Parallel);
  EXPECT_EQ(mtj.flip_count(), 1);
}

TEST(MtjDevice, ReversePolaritySwitchesPToAp) {
  Circuit ckt;
  const NodeId drive = ckt.node("drive");
  ckt.add_isource("IW", drive, kGround, Waveform::pulse(0.0, 70 * uA, 0.1 * ns,
                                                        10 * ps, 10 * ps, 3 * ns, 0.0));
  auto& mtj = ckt.add_device<MtjDevice>("X1", drive, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::Parallel);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 4 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(mtj.orientation(), MtjOrientation::AntiParallel);
}

TEST(MtjDevice, WrongPolarityDoesNotSwitch) {
  // Current favouring P applied to a device already in P: no flip.
  Circuit ckt;
  const NodeId drive = ckt.node("drive");
  ckt.add_isource("IW", kGround, drive, Waveform::pulse(0.0, 70 * uA, 0.1 * ns,
                                                        10 * ps, 10 * ps, 3 * ns, 0.0));
  auto& mtj = ckt.add_device<MtjDevice>("X1", drive, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::Parallel);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 4 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(mtj.orientation(), MtjOrientation::Parallel);
  EXPECT_EQ(mtj.flip_count(), 0);
}

TEST(MtjDevice, ShortPulseDoesNotSwitch) {
  // 70 uA for only 0.5 ns (< 2 ns switching time): must not flip, and the
  // partial progress must relax afterwards.
  Circuit ckt;
  const NodeId drive = ckt.node("drive");
  ckt.add_isource("IW", kGround, drive, Waveform::pulse(0.0, 70 * uA, 0.1 * ns,
                                                        10 * ps, 10 * ps, 0.5 * ns, 0.0));
  auto& mtj = ckt.add_device<MtjDevice>("X1", drive, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::AntiParallel);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 2 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(mtj.orientation(), MtjOrientation::AntiParallel);
  EXPECT_DOUBLE_EQ(mtj.switching_progress(), 0.0);
}

TEST(MtjDevice, ReadCurrentDoesNotDisturb) {
  // Sustained 10 uA (well below Ic = 37 uA) for 100 ns in the disturb-prone
  // polarity: no flip.
  Circuit ckt;
  const NodeId drive = ckt.node("drive");
  ckt.add_isource("IW", kGround, drive, Waveform::dc(10 * uA));
  auto& mtj = ckt.add_device<MtjDevice>("X1", drive, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::AntiParallel);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 100 * ns;
  opt.dt = 100 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(mtj.orientation(), MtjOrientation::AntiParallel);
}

TEST(MtjDevice, SetOrientationResetsProgress) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& mtj = ckt.add_device<MtjDevice>("X1", a, kGround,
                                        MtjModel(MtjParams::table1()),
                                        MtjOrientation::Parallel);
  mtj.set_orientation(MtjOrientation::AntiParallel);
  EXPECT_EQ(mtj.orientation(), MtjOrientation::AntiParallel);
  EXPECT_DOUBLE_EQ(mtj.switching_progress(), 0.0);
}

TEST(MtjDevice, ComplementaryPairWritesOpposite) {
  // The paper's write arrangement: two MTJs in series, current flows through
  // both; their free/ref terminals are arranged so the same current writes
  // opposite states. Emulate: MTJ-A free->ref in current path, MTJ-B
  // ref->free.
  Circuit ckt;
  const NodeId top = ckt.node("top");
  const NodeId mid = ckt.node("mid");
  ckt.add_isource("IW", kGround, top, Waveform::pulse(0.0, 70 * uA, 0.1 * ns,
                                                      10 * ps, 10 * ps, 5 * ns, 0.0));
  // Current top->mid->gnd. A: free=top, ref=mid -> positive current -> P.
  auto& a = ckt.add_device<MtjDevice>("XA", top, mid, MtjModel(MtjParams::table1()),
                                      MtjOrientation::AntiParallel);
  // B: free=gnd ... current flows mid->gnd, so from ref(mid) to free(gnd):
  // negative free->ref current -> AP.
  auto& b = ckt.add_device<MtjDevice>("XB", kGround, mid, MtjModel(MtjParams::table1()),
                                      MtjOrientation::Parallel);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 6 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(a.orientation(), MtjOrientation::Parallel);
  EXPECT_EQ(b.orientation(), MtjOrientation::AntiParallel);
}

} // namespace
} // namespace nvff::mtj
