#include "physdes/def_io.hpp"

#include <gtest/gtest.h>

#include "bench_circuits/generator.hpp"

namespace nvff::physdes {
namespace {

TEST(DefIo, RoundTripPlacement) {
  const auto spec = bench::find_benchmark("s344");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions opt;
  opt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);

  const std::string text = to_def(p, nl);
  const DefDesign parsed = parse_def_string(text);

  EXPECT_EQ(parsed.name, "s344");
  EXPECT_NEAR(parsed.dieWidth, p.dieWidth, 0.01);
  EXPECT_NEAR(parsed.dieHeight, p.dieHeight, 0.01);

  std::size_t rowCells = 0;
  for (const auto& c : p.cells) {
    if (!c.fixedPad) ++rowCells;
  }
  ASSERT_EQ(parsed.components.size(), rowCells);

  // Coordinates survive with DBU rounding (1/1000 um).
  std::size_t ffCount = 0;
  for (const auto& comp : parsed.components) {
    if (comp.cellType == "DFF") ++ffCount;
    const auto id = nl.find(comp.name);
    ASSERT_NE(id, bench::kNoGate) << comp.name;
    const auto& cell = p.cells[static_cast<std::size_t>(id)];
    EXPECT_NEAR(comp.x, cell.x, 0.002);
    EXPECT_NEAR(comp.y, cell.y, 0.002);
  }
  EXPECT_EQ(ffCount, nl.num_flip_flops());
}

TEST(DefIo, ParsesHandWrittenDef) {
  const char* text = R"(VERSION 5.8 ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 50000 30000 ) ;
COMPONENTS 2 ;
  - u1 DFF + PLACED ( 1000 2000 ) N ;
  - u2 NAND + FIXED ( 3000 4000 ) N ;
END COMPONENTS
END DESIGN
)";
  const DefDesign d = parse_def_string(text);
  EXPECT_EQ(d.name, "demo");
  EXPECT_DOUBLE_EQ(d.dieWidth, 50.0);
  EXPECT_DOUBLE_EQ(d.dieHeight, 30.0);
  ASSERT_EQ(d.components.size(), 2u);
  EXPECT_EQ(d.components[0].name, "u1");
  EXPECT_EQ(d.components[0].cellType, "DFF");
  EXPECT_DOUBLE_EQ(d.components[0].x, 1.0);
  EXPECT_DOUBLE_EQ(d.components[0].y, 2.0);
  EXPECT_FALSE(d.components[0].fixed);
  EXPECT_TRUE(d.components[1].fixed);
}

TEST(DefIo, RejectsMalformedComponent) {
  const char* text = R"(DESIGN x ;
COMPONENTS 1 ;
  - u1 DFF ;
END COMPONENTS
)";
  EXPECT_THROW(parse_def_string(text), std::runtime_error);
}

TEST(DefIo, FileRoundTrip) {
  const auto spec = bench::find_benchmark("s344");
  const auto nl = bench::generate_benchmark(spec);
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like());
  const std::string path = testing::TempDir() + "/nvff_test.def";
  save_def_file(p, nl, path);
  const DefDesign d = load_def_file(path);
  EXPECT_EQ(d.name, "s344");
  EXPECT_FALSE(d.components.empty());
}

} // namespace
} // namespace nvff::physdes
