// Placement substrate: legality, locality, determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bench_circuits/generator.hpp"
#include "physdes/placement.hpp"
#include "util/rng.hpp"

namespace nvff::physdes {
namespace {

using bench::GateId;
using bench::GateType;

Placement place_benchmark(const std::string& name) {
  const auto spec = bench::find_benchmark(name);
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions opt;
  opt.utilization = spec.utilization;
  return place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
}

TEST(Placement, CellsInsideDieAndOnRows) {
  const auto spec = bench::find_benchmark("s5378");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions opt;
  opt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
  for (const auto& c : p.cells) {
    if (c.fixedPad) continue;
    EXPECT_GE(c.x, -1e-9);
    EXPECT_LE(c.x + c.width, p.dieWidth + 1e-6);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, p.numRows);
    // y snapped to the row grid.
    EXPECT_NEAR(c.y, c.row * p.rowHeight, 1e-9);
  }
}

TEST(Placement, NoOverlapsWithinRows) {
  const auto spec = bench::find_benchmark("s1423");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions opt;
  opt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
  // Group by row, sort by x, check pairwise.
  std::vector<std::vector<const PlacedCell*>> rows(
      static_cast<std::size_t>(p.numRows));
  for (const auto& c : p.cells) {
    if (!c.fixedPad && c.row >= 0) rows[static_cast<std::size_t>(c.row)].push_back(&c);
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const PlacedCell* a, const PlacedCell* b) { return a->x < b->x; });
    for (std::size_t i = 1; i < row.size(); ++i) {
      EXPECT_GE(row[i]->x + 1e-9, row[i - 1]->x + row[i - 1]->width)
          << "overlap in row " << row[i]->row;
    }
  }
}

TEST(Placement, UtilizationNearTarget) {
  const auto spec = bench::find_benchmark("s13207");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions opt;
  opt.utilization = 0.65;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
  EXPECT_NEAR(p.utilization(), 0.65, 0.1);
}

TEST(Placement, ConnectivityBeatsRandomShuffle) {
  // The quadratic placement must produce markedly lower wirelength than a
  // random permutation of the same legal sites.
  const auto spec = bench::find_benchmark("s5378");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions opt;
  opt.utilization = spec.utilization;
  Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), opt);
  const double placedHpwl = p.hpwl(nl);

  // Shuffle movable cell positions among themselves.
  Rng rng(99);
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < p.cells.size(); ++i) {
    if (!p.cells[i].fixedPad) movable.push_back(i);
  }
  for (std::size_t i = movable.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(p.cells[movable[i - 1]].x, p.cells[movable[j]].x);
    std::swap(p.cells[movable[i - 1]].y, p.cells[movable[j]].y);
  }
  const double shuffledHpwl = p.hpwl(nl);
  EXPECT_LT(placedHpwl, 0.6 * shuffledHpwl);
}

TEST(Placement, FlipFlopNeighborhoodsForm) {
  // Register banks should land close: median nearest-neighbour FF distance
  // well under the pairing threshold.
  const Placement p = place_benchmark("s13207");
  const auto spec = bench::find_benchmark("s13207");
  const auto nl = bench::generate_benchmark(spec);
  std::vector<std::pair<double, double>> ffs;
  for (GateId id : nl.flip_flops()) ffs.emplace_back(p.cx(id), p.cy(id));
  std::vector<double> nearest;
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < ffs.size(); ++j) {
      if (i == j) continue;
      const double dx = ffs[i].first - ffs[j].first;
      const double dy = ffs[i].second - ffs[j].second;
      best = std::min(best, dx * dx + dy * dy);
    }
    nearest.push_back(std::sqrt(best));
  }
  std::nth_element(nearest.begin(), nearest.begin() + nearest.size() / 2,
                   nearest.end());
  EXPECT_LT(nearest[nearest.size() / 2], 3.35);
}

TEST(Placement, DeterministicForSameSeed) {
  const Placement a = place_benchmark("s838");
  const Placement b = place_benchmark("s838");
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].x, b.cells[i].x);
    EXPECT_DOUBLE_EQ(a.cells[i].y, b.cells[i].y);
  }
}

TEST(Placement, RejectsUnfinalizedNetlist) {
  bench::Netlist nl;
  nl.add_gate(GateType::Input, "a");
  EXPECT_THROW(place(nl, cell::CmosCellLibrary::tsmc40_like()), std::invalid_argument);
}

TEST(Placement, CellWidthsFollowLibrary) {
  const auto lib = cell::CmosCellLibrary::tsmc40_like();
  bench::Netlist nl;
  const GateId a = nl.add_gate(GateType::Input, "a");
  const GateId ff = nl.add_gate(GateType::Dff, "ff", {a});
  const GateId inv = nl.add_gate(GateType::Not, "inv", {ff});
  const GateId big = nl.add_gate(GateType::Nand, "big4", {a, ff, inv});
  nl.mark_output(big);
  nl.finalize();
  EXPECT_DOUBLE_EQ(cell_width(nl, ff, lib), lib.ffWidth);
  EXPECT_NEAR(cell_width(nl, inv, lib), lib.inverterArea / lib.rowHeight, 1e-12);
  EXPECT_DOUBLE_EQ(cell_width(nl, a, lib), 0.0); // pad
  // 3-input gate wider than the 2-input version.
  EXPECT_GT(cell_width(nl, big, lib), lib.nand2Area / lib.rowHeight);
}

} // namespace
} // namespace nvff::physdes
