// STA: hand-computed paths, launch/capture semantics, displacement effects.
#include <gtest/gtest.h>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"
#include "physdes/sta.hpp"

namespace nvff::physdes {
namespace {

using bench::GateId;
using bench::Netlist;

/// Places every cell of a small netlist at explicit coordinates.
Placement manual_placement(const Netlist& nl,
                           const std::vector<std::pair<double, double>>& xy) {
  Placement p;
  p.designName = nl.name();
  p.dieWidth = 100;
  p.dieHeight = 100;
  p.rowHeight = 1.68;
  p.numRows = 60;
  p.cells.resize(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    p.cells[i].gate = static_cast<GateId>(i);
    p.cells[i].width = 1.0;
    p.cells[i].x = xy[i].first;
    p.cells[i].y = xy[i].second;
  }
  return p;
}

TEST(Sta, HandComputedChain) {
  // in -> g1 -> g2 -> ff, all at the same spot (no wire delay).
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(in)
g1 = NOT(in)
g2 = NOT(g1)
ff = DFF(g2)
OUTPUT(g2)
)");
  const Placement p = manual_placement(nl, {{0, 0}, {0, 0}, {0, 0}, {0, 0}});
  StaOptions opt;
  opt.intrinsicPs = 10;
  opt.perFanoutPs = 2;
  opt.wirePsPerUm = 0;
  opt.setupPs = 5;
  opt.clkToQPs = 7;
  const TimingReport r = analyze_timing(nl, p, opt);
  // g1: 0 + 10 + 2*1(fanout g2) = 12; g2: 12 + 10 + 2*2(ff + output... g2
  // fans out to ff only -> fanout 1) = 24; capture at ff: 24 + setup 5 = 29.
  const GateId g1 = nl.find("g1");
  const GateId g2 = nl.find("g2");
  EXPECT_DOUBLE_EQ(r.arrivalPs[static_cast<std::size_t>(g1)], 12.0);
  EXPECT_DOUBLE_EQ(r.arrivalPs[static_cast<std::size_t>(g2)], 24.0);
  EXPECT_DOUBLE_EQ(r.criticalPathPs, 29.0);
  EXPECT_EQ(r.criticalEndpoint, nl.find("ff"));
}

TEST(Sta, FfLaunchUsesClkToQ) {
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(in)
q = DFF(g)
g = NOT(q)
OUTPUT(g)
)");
  const Placement p = manual_placement(nl, {{0, 0}, {0, 0}, {0, 0}});
  StaOptions opt;
  opt.intrinsicPs = 10;
  opt.perFanoutPs = 0;
  opt.wirePsPerUm = 0;
  opt.setupPs = 5;
  opt.clkToQPs = 50;
  const TimingReport r = analyze_timing(nl, p, opt);
  // q(50) -> g(60) -> back to q's D with setup: 65.
  EXPECT_DOUBLE_EQ(r.criticalPathPs, 65.0);
}

TEST(Sta, WireDelayFollowsManhattanDistance) {
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(in)
g = NOT(in)
OUTPUT(g)
)");
  StaOptions opt;
  opt.intrinsicPs = 0;
  opt.perFanoutPs = 0;
  opt.wirePsPerUm = 2.0;
  const Placement near = manual_placement(nl, {{0, 0}, {1, 0}});
  const Placement far = manual_placement(nl, {{0, 0}, {10, 5}});
  const double dNear = analyze_timing(nl, near, opt).criticalPathPs;
  const double dFar = analyze_timing(nl, far, opt).criticalPathPs;
  EXPECT_NEAR(dFar - dNear, 2.0 * ((10 - 1) + 5), 1e-9);
}

TEST(Sta, CriticalPathIsTraceable) {
  const auto spec = bench::find_benchmark("s838");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions popt;
  popt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), popt);
  const TimingReport r = analyze_timing(nl, p);
  EXPECT_GT(r.criticalPathPs, 0.0);
  ASSERT_GE(r.criticalPath.size(), 2u);
  // Path must start (back of vector) at a launch point.
  const auto& src = nl.gate(r.criticalPath.back());
  EXPECT_TRUE(src.type == bench::GateType::Input || src.type == bench::GateType::Dff);
}

TEST(Sta, PairDisplacementMovesBothToMidpoint) {
  const Netlist nl = bench::parse_bench_string(R"(
INPUT(in)
a = DFF(in)
b = DFF(in)
OUTPUT(a)
)");
  Placement p = manual_placement(nl, {{0, 0}, {0, 0}, {10, 4}});
  p.cells[1].width = 1.0;
  p.cells[2].width = 1.0;
  const Placement moved = apply_pair_displacement(p, nl, {{0, 1}});
  const auto a = nl.find("a");
  const auto b = nl.find("b");
  EXPECT_NEAR(moved.cx(a) + moved.cx(b),
              p.cx(a) + p.cx(b), 1e-9); // midpoint preserved
  EXPECT_DOUBLE_EQ(moved.cells[static_cast<std::size_t>(a)].y,
                   moved.cells[static_cast<std::size_t>(b)].y);
  EXPECT_NEAR(moved.cx(b) - moved.cx(a), 1.0, 1e-9); // side by side
}

TEST(Sta, SmallDisplacementSmallPenalty) {
  // Merging close FFs must barely move the critical path.
  const auto spec = bench::find_benchmark("s1423");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions popt;
  popt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), popt);
  const TimingReport before = analyze_timing(nl, p);

  // Pair FFs within the paper threshold.
  std::vector<std::pair<int, int>> pairs;
  const auto& ffs = nl.flip_flops();
  std::vector<char> used(ffs.size(), 0);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (used[i]) continue;
    for (std::size_t j = i + 1; j < ffs.size(); ++j) {
      if (used[j]) continue;
      const double dx = p.cx(ffs[i]) - p.cx(ffs[j]);
      const double dy = p.cy(ffs[i]) - p.cy(ffs[j]);
      if (dx * dx + dy * dy <= 3.35 * 3.35) {
        pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
        used[i] = used[j] = 1;
        break;
      }
    }
  }
  ASSERT_FALSE(pairs.empty());
  const Placement moved = apply_pair_displacement(p, nl, pairs);
  const TimingReport after = analyze_timing(nl, moved);
  // Penalty bounded by the wire delay of half the threshold distance plus
  // rounding: a few ps on a multi-hundred-ps path.
  EXPECT_LT(after.criticalPathPs - before.criticalPathPs,
            0.05 * before.criticalPathPs + 5.0);
}

TEST(Sta, RejectsMismatchedInputs) {
  const Netlist nl = bench::parse_bench_string("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n");
  Placement wrong;
  wrong.cells.resize(1);
  EXPECT_THROW(analyze_timing(nl, wrong), std::invalid_argument);
}

} // namespace
} // namespace nvff::physdes
