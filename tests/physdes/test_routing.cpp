// Global router: wirelength accounting, congestion avoidance, merge impact.
#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/bench_io.hpp"
#include "bench_circuits/generator.hpp"
#include "physdes/routing.hpp"
#include "physdes/sta.hpp"

namespace nvff::physdes {
namespace {

using bench::GateId;
using bench::Netlist;

Placement two_cell_placement(const Netlist& nl, double x0, double y0, double x1,
                             double y1) {
  Placement p;
  p.designName = nl.name();
  p.dieWidth = 50;
  p.dieHeight = 50;
  p.rowHeight = 1.68;
  p.numRows = 30;
  p.cells.resize(nl.size());
  const std::vector<std::pair<double, double>> xy = {{x0, y0}, {x1, y1}};
  for (std::size_t i = 0; i < nl.size(); ++i) {
    p.cells[i].gate = static_cast<GateId>(i);
    p.cells[i].width = 0.0; // point cells: cx == x
    p.cells[i].x = xy[i].first;
    p.cells[i].y = xy[i].second;
  }
  return p;
}

TEST(Routing, SingleNetWirelengthIsManhattan) {
  const Netlist nl = bench::parse_bench_string("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n");
  const Placement p = two_cell_placement(nl, 2.0, 3.0, 12.0, 23.0);
  const RoutingResult r = route(nl, p);
  EXPECT_NEAR(r.totalWirelengthUm, 10.0 + 20.0, 1e-9);
  // The routed wire must appear in the bins.
  double used = 0.0;
  for (double u : r.usage) used += u;
  EXPECT_NEAR(used, 30.0, 1e-6);
}

TEST(Routing, GridDimensionsCoverDie) {
  const Netlist nl = bench::parse_bench_string("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n");
  const Placement p = two_cell_placement(nl, 0, 0, 49, 49);
  RouterOptions opt;
  opt.binSizeUm = 10.0;
  const RoutingResult r = route(nl, p, opt);
  EXPECT_EQ(r.binsX, 5);
  EXPECT_EQ(r.binsY, 5);
}

TEST(Routing, CongestionSpreadsAcrossLs) {
  // Many identical nets between two points: with congestion-aware L choice
  // the two L routes share the load instead of all piling on one.
  Netlist nl;
  const GateId a = nl.add_gate(bench::GateType::Input, "a");
  std::vector<GateId> sinks;
  for (int i = 0; i < 40; ++i) {
    sinks.push_back(nl.add_gate(bench::GateType::Buf, "b" + std::to_string(i), {a}));
  }
  nl.finalize();
  Placement p;
  p.designName = "cong";
  p.dieWidth = 40;
  p.dieHeight = 40;
  p.rowHeight = 1.68;
  p.numRows = 20;
  p.cells.resize(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    p.cells[i].gate = static_cast<GateId>(i);
    p.cells[i].width = 0;
    // Source at (5,5), all sinks at (35,35): two L corners available.
    p.cells[i].x = (i == 0) ? 5.0 : 35.0;
    p.cells[i].y = (i == 0) ? 5.0 : 35.0;
  }
  RouterOptions opt;
  opt.binSizeUm = 5.0;
  const RoutingResult r = route(nl, p, opt);
  // Load in the two corner bins (35,5) and (5,35) should both be nonzero.
  const int cornerA = r.binsX * (5 / 5) + (35 / 5); // y=5 row, x=35
  const int cornerB = r.binsX * (35 / 5) + (5 / 5);
  EXPECT_GT(r.usage[static_cast<std::size_t>(cornerA)], 0.0);
  EXPECT_GT(r.usage[static_cast<std::size_t>(cornerB)], 0.0);
}

TEST(Routing, BenchmarkRoutesWithoutPathologicalOverflow) {
  const auto spec = bench::find_benchmark("s5378");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions popt;
  popt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), popt);
  const RoutingResult r = route(nl, p);
  EXPECT_GT(r.totalWirelengthUm, 0.0);
  // Most bins healthy: overflow limited to a small fraction.
  const int totalBins = r.binsX * r.binsY;
  EXPECT_LT(r.overflowedBins, totalBins / 4);
}

TEST(Routing, MergedPairsDoNotIncreaseWirelength) {
  // Moving paired FFs to their midpoints shortens (or preserves) their nets
  // on average — routing supports the merge.
  const auto spec = bench::find_benchmark("s1423");
  const auto nl = bench::generate_benchmark(spec);
  PlacerOptions popt;
  popt.utilization = spec.utilization;
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like(), popt);
  const RoutingResult before = route(nl, p);

  std::vector<std::pair<int, int>> pairs;
  const auto& ffs = nl.flip_flops();
  std::vector<char> used(ffs.size(), 0);
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (used[i]) continue;
    for (std::size_t j = i + 1; j < ffs.size(); ++j) {
      if (used[j]) continue;
      const double dx = p.cx(ffs[i]) - p.cx(ffs[j]);
      const double dy = p.cy(ffs[i]) - p.cy(ffs[j]);
      if (std::hypot(dx, dy) <= 3.35) {
        pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
        used[i] = used[j] = 1;
        break;
      }
    }
  }
  ASSERT_FALSE(pairs.empty());
  const Placement moved = apply_pair_displacement(p, nl, pairs);
  const RoutingResult after = route(nl, moved);
  EXPECT_LT(after.totalWirelengthUm, before.totalWirelengthUm * 1.02);
}

TEST(Routing, CongestionMapRenders) {
  const auto spec = bench::find_benchmark("s344");
  const auto nl = bench::generate_benchmark(spec);
  const Placement p = place(nl, cell::CmosCellLibrary::tsmc40_like());
  const RoutingResult r = route(nl, p);
  const std::string map = r.congestion_map();
  // binsY lines of binsX glyphs.
  std::size_t lines = 0;
  for (char c : map) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(r.binsY));
}

TEST(Routing, RejectsMismatchedInputs) {
  const Netlist nl = bench::parse_bench_string("INPUT(a)\ng = NOT(a)\nOUTPUT(g)\n");
  Placement wrong;
  wrong.cells.resize(1);
  EXPECT_THROW(route(nl, wrong), std::invalid_argument);
}

} // namespace
} // namespace nvff::physdes
