// Pairing: threshold semantics, matcher quality vs exact optimum, stats.
#include <gtest/gtest.h>

#include "pairing/pairing.hpp"
#include "util/rng.hpp"

namespace nvff::pairing {
namespace {

std::vector<FlipFlopSite> line(std::initializer_list<double> xs) {
  std::vector<FlipFlopSite> sites;
  int i = 0;
  for (double x : xs) {
    sites.push_back({"ff" + std::to_string(i++), x, 0.0});
  }
  return sites;
}

TEST(Pairing, RespectsDistanceThreshold) {
  PairingOptions opt;
  opt.maxDistance = 3.35;
  const auto sites = line({0.0, 2.0, 10.0, 12.0, 30.0});
  const auto edges = candidate_edges(sites, opt);
  // Only (0,1) and (2,3) are close enough.
  EXPECT_EQ(edges.size(), 2u);
  const PairingResult r = pair_flip_flops(sites, opt);
  EXPECT_EQ(r.num_pairs(), 2u);
  ASSERT_EQ(r.unmatched.size(), 1u);
  EXPECT_EQ(r.unmatched[0], 4);
}

TEST(Pairing, EveryFlipFlopInAtMostOnePair) {
  Rng rng(5);
  std::vector<FlipFlopSite> sites;
  for (int i = 0; i < 200; ++i) {
    sites.push_back({"f" + std::to_string(i), rng.uniform(0, 50), rng.uniform(0, 50)});
  }
  const PairingResult r = pair_flip_flops(sites);
  std::vector<int> seen(sites.size(), 0);
  for (const auto& p : r.pairs) {
    ++seen[static_cast<std::size_t>(p.a)];
    ++seen[static_cast<std::size_t>(p.b)];
  }
  for (int idx : r.unmatched) ++seen[static_cast<std::size_t>(idx)];
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(Pairing, PairDistancesWithinThreshold) {
  Rng rng(6);
  std::vector<FlipFlopSite> sites;
  for (int i = 0; i < 300; ++i) {
    sites.push_back({"f" + std::to_string(i), rng.uniform(0, 40), rng.uniform(0, 40)});
  }
  PairingOptions opt;
  opt.maxDistance = 3.35;
  const PairingResult r = pair_flip_flops(sites, opt);
  for (const auto& p : r.pairs) EXPECT_LE(p.distance, opt.maxDistance + 1e-12);
  EXPECT_EQ(r.pairDistances.size(), r.pairs.size());
  EXPECT_LE(r.pairDistances.max(), opt.maxDistance + 1e-12);
}

TEST(Pairing, GreedyImprovedFixesChainTrap) {
  // Chain 0-1-2-3 where greedy shortest-first takes the middle edge (1,2)
  // and strands 0 and 3; improved matching finds (0,1)+(2,3).
  PairingOptions opt;
  opt.maxDistance = 1.5;
  const auto sites = line({0.0, 1.2, 2.2, 3.4});
  opt.algorithm = MatchAlgorithm::Greedy;
  const auto greedy = pair_flip_flops(sites, opt);
  EXPECT_EQ(greedy.num_pairs(), 1u);
  opt.algorithm = MatchAlgorithm::GreedyImproved;
  const auto improved = pair_flip_flops(sites, opt);
  EXPECT_EQ(improved.num_pairs(), 2u);
}

class MatcherQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherQuality, ImprovedNearOptimalOnRandomClusters) {
  // Property: on random instances the improved matcher reaches the exact
  // maximum computed by bitmask DP (or at most one pair short, which the
  // length-3 improvement cannot always close).
  Rng rng(GetParam());
  std::vector<FlipFlopSite> sites;
  const int n = 3 + static_cast<int>(rng.uniform_index(14)); // 3..16
  for (int i = 0; i < n; ++i) {
    sites.push_back({"f" + std::to_string(i), rng.uniform(0, 8), rng.uniform(0, 8)});
  }
  PairingOptions opt;
  opt.maxDistance = 3.0;
  const std::size_t exact = exact_max_matching(sites, opt);
  opt.algorithm = MatchAlgorithm::GreedyImproved;
  const std::size_t ours = pair_flip_flops(sites, opt).num_pairs();
  EXPECT_LE(ours, exact);
  EXPECT_GE(ours + 1, exact);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MatcherQuality,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(Pairing, SameRowOnlyMode) {
  PairingOptions opt;
  opt.maxDistance = 3.0;
  opt.sameRowOnly = true;
  opt.rowHeight = 1.68;
  std::vector<FlipFlopSite> sites = {
      {"a", 0.0, 0.84}, {"b", 2.0, 0.84},  // same row, close
      {"c", 0.0, 2.52}, {"d", 0.5, 4.20},  // different rows, vertically close
  };
  const PairingResult r = pair_flip_flops(sites, opt);
  EXPECT_EQ(r.num_pairs(), 1u);
  EXPECT_EQ(r.pairs[0].a, 0);
  EXPECT_EQ(r.pairs[0].b, 1);
}

TEST(Pairing, PairedFractionFormula) {
  PairingResult r;
  r.pairs.resize(5);
  EXPECT_DOUBLE_EQ(r.paired_fraction(15), 2.0 * 5 / 15);
  EXPECT_DOUBLE_EQ(r.paired_fraction(0), 0.0);
}

TEST(Pairing, EmptyAndSingletonInputs) {
  const PairingResult empty = pair_flip_flops({});
  EXPECT_EQ(empty.num_pairs(), 0u);
  const PairingResult one = pair_flip_flops({{"solo", 1.0, 1.0}});
  EXPECT_EQ(one.num_pairs(), 0u);
  ASSERT_EQ(one.unmatched.size(), 1u);
}

TEST(Pairing, ExactMatcherRejectsLargeInputs) {
  std::vector<FlipFlopSite> sites(21);
  EXPECT_THROW(exact_max_matching(sites, {}), std::invalid_argument);
}

TEST(Pairing, GridBinningFindsDiagonalNeighbors) {
  // Two sites in adjacent diagonal bins but within the radius.
  PairingOptions opt;
  opt.maxDistance = 2.0;
  std::vector<FlipFlopSite> sites = {{"a", 1.9, 1.9}, {"b", 2.1, 2.1}};
  EXPECT_EQ(candidate_edges(sites, opt).size(), 1u);
}

} // namespace
} // namespace nvff::pairing
