// Grouping for N-bit cells: capacity, distance budget, degradation to
// pairing, density seeding.
#include <gtest/gtest.h>

#include <cmath>

#include "pairing/grouping.hpp"
#include "util/rng.hpp"

namespace nvff::pairing {
namespace {

std::vector<FlipFlopSite> cluster_at(double x, double y, int n, double spread,
                                     Rng& rng) {
  std::vector<FlipFlopSite> sites;
  for (int i = 0; i < n; ++i) {
    sites.push_back({"f", x + rng.uniform(-spread, spread),
                     y + rng.uniform(-spread, spread)});
  }
  return sites;
}

TEST(Grouping, EachFlipFlopInExactlyOneGroupOrUngrouped) {
  Rng rng(1);
  std::vector<FlipFlopSite> sites;
  for (int c = 0; c < 10; ++c) {
    auto cl = cluster_at(c * 12.0, 0.0, 5, 1.0, rng);
    sites.insert(sites.end(), cl.begin(), cl.end());
  }
  GroupingOptions opt;
  opt.groupSize = 4;
  const GroupingResult r = group_flip_flops(sites, opt);
  std::vector<int> seen(sites.size(), 0);
  for (const auto& g : r.groups) {
    EXPECT_GE(g.members.size(), 2u);
    EXPECT_LE(g.members.size(), 4u);
    for (int m : g.members) ++seen[static_cast<std::size_t>(m)];
  }
  for (int u : r.ungrouped) ++seen[static_cast<std::size_t>(u)];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Grouping, RespectsDistanceBudget) {
  Rng rng(2);
  auto sites = cluster_at(0, 0, 30, 5.0, rng);
  GroupingOptions opt;
  opt.groupSize = 4;
  opt.maxDistance = 2.0;
  const GroupingResult r = group_flip_flops(sites, opt);
  for (const auto& g : r.groups) {
    EXPECT_LE(g.spanUm, opt.maxDistance + 1e-12);
    const auto& seed = sites[static_cast<std::size_t>(g.members[0])];
    for (int m : g.members) {
      const auto& s = sites[static_cast<std::size_t>(m)];
      const double d = std::hypot(s.x - seed.x, s.y - seed.y);
      EXPECT_LE(d, opt.maxDistance + 1e-12);
    }
  }
}

TEST(Grouping, GroupSizeTwoMatchesPairingSemantics) {
  Rng rng(3);
  auto sites = cluster_at(0, 0, 40, 6.0, rng);
  GroupingOptions gopt;
  gopt.groupSize = 2;
  gopt.maxDistance = 3.35;
  const GroupingResult groups = group_flip_flops(sites, gopt);
  PairingOptions popt;
  popt.maxDistance = 3.35;
  const PairingResult pairs = pair_flip_flops(sites, popt);
  // Same threshold, same capacity: counts should be comparable (greedy
  // strategies differ, allow 20 % slack).
  EXPECT_NEAR(static_cast<double>(groups.groups.size()),
              static_cast<double>(pairs.num_pairs()),
              0.2 * static_cast<double>(pairs.num_pairs()) + 1.0);
}

TEST(Grouping, DenseClusterFillsFullGroups) {
  Rng rng(4);
  auto sites = cluster_at(0, 0, 16, 1.0, rng); // all within ~2.8 um
  GroupingOptions opt;
  opt.groupSize = 4;
  opt.maxDistance = 3.35;
  const GroupingResult r = group_flip_flops(sites, opt);
  EXPECT_EQ(r.grouped_ffs(), 16u);
  EXPECT_EQ(r.groups.size(), 4u);
  for (const auto& g : r.groups) EXPECT_EQ(g.members.size(), 4u);
}

TEST(Grouping, RequireFullDropsPartialGroups) {
  Rng rng(5);
  auto sites = cluster_at(0, 0, 6, 0.5, rng); // 6 FFs, groupSize 4
  GroupingOptions opt;
  opt.groupSize = 4;
  opt.requireFull = true;
  const GroupingResult r = group_flip_flops(sites, opt);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].members.size(), 4u);
  EXPECT_EQ(r.ungrouped.size(), 2u);
}

TEST(Grouping, IsolatedSitesStayUngrouped) {
  std::vector<FlipFlopSite> sites = {{"a", 0, 0}, {"b", 100, 0}, {"c", 200, 0}};
  const GroupingResult r = group_flip_flops(sites, {});
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.ungrouped.size(), 3u);
}

TEST(Grouping, DegenerateGroupSizeReturnsAllUngrouped) {
  std::vector<FlipFlopSite> sites = {{"a", 0, 0}, {"b", 1, 0}};
  GroupingOptions opt;
  opt.groupSize = 1;
  const GroupingResult r = group_flip_flops(sites, opt);
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.ungrouped.size(), 2u);
}

} // namespace
} // namespace nvff::pairing
