// MOSFET model sanity: regions of operation, symmetry, corners, inverter VTC.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

constexpr double kVdd = 1.1;

/// Drain current of a single NMOS at the given gate/drain voltages (source
/// and bulk grounded), measured via a DC operating point with ideal sources.
double nmos_id(double vg, double vd, CmosCorner corner = CmosCorner::Typical) {
  Circuit ckt;
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add_vsource("VG", g, kGround, Waveform::dc(vg));
  auto& vds = ckt.add_vsource("VD", d, kGround, Waveform::dc(vd));
  ckt.add_nmos("M1", d, g, kGround, kGround, MosGeometry{},
               MosParams::nmos_40nm_lp().at_corner(corner));
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  // All drain current comes from VD.
  return vds.delivered_current(op.as_state());
}

double pmos_id(double vg, double vd, CmosCorner corner = CmosCorner::Typical) {
  Circuit ckt;
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  const NodeId vddN = ckt.node("vdd");
  ckt.add_vsource("VDD", vddN, kGround, Waveform::dc(kVdd));
  ckt.add_vsource("VG", g, kGround, Waveform::dc(vg));
  auto& vds = ckt.add_vsource("VD", d, kGround, Waveform::dc(vd));
  ckt.add_pmos("M1", d, g, vddN, vddN, MosGeometry{},
               MosParams::pmos_40nm_lp().at_corner(corner));
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  // Current INTO the VD source = current sourced by the PMOS.
  return -vds.delivered_current(op.as_state());
}

TEST(Mosfet, NmosCutoffLeakageIsPicoampere) {
  const double ioff = nmos_id(0.0, kVdd);
  EXPECT_GT(ioff, 0.1 * pA);
  EXPECT_LT(ioff, 1.0 * nA);
}

TEST(Mosfet, NmosOnCurrentIsTensOfMicroamps) {
  const double ion = nmos_id(kVdd, kVdd);
  EXPECT_GT(ion, 20 * uA);
  EXPECT_LT(ion, 300 * uA);
}

TEST(Mosfet, OnOffRatioExceedsFiveDecades) {
  const double ratio = nmos_id(kVdd, kVdd) / nmos_id(0.0, kVdd);
  EXPECT_GT(ratio, 1e5);
}

TEST(Mosfet, SubthresholdSlopeNearIdeal) {
  // Current should change by about a decade per n*Vt*ln(10) ~ 84 mV.
  const double i1 = nmos_id(0.10, kVdd);
  const double i2 = nmos_id(0.20, kVdd);
  const double decadesPer100mV = std::log10(i2 / i1);
  EXPECT_GT(decadesPer100mV, 0.8);
  EXPECT_LT(decadesPer100mV, 1.6);
}

TEST(Mosfet, LinearVsSaturationRegions) {
  const double iLin = nmos_id(kVdd, 0.05);
  const double iSat = nmos_id(kVdd, kVdd);
  EXPECT_LT(iLin, iSat);
  // Saturation: doubling Vd beyond saturation barely changes current.
  const double iSat2 = nmos_id(kVdd, 0.8);
  EXPECT_NEAR(iSat / iSat2, 1.0, 0.15);
}

TEST(Mosfet, DrainSourceSymmetry) {
  // Swap drain/source roles: current magnitude must match (EKV symmetry).
  Circuit ckt;
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add_vsource("VG", g, kGround, Waveform::dc(0.9));
  auto& vd = ckt.add_vsource("VD", d, kGround, Waveform::dc(-0.5));
  ckt.add_nmos("M1", d, g, kGround, kGround, MosGeometry{}, MosParams::nmos_40nm_lp());
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  const double reverse = vd.delivered_current(op.as_state());
  // Conduction with drain below source: current flows INTO VD.
  EXPECT_LT(reverse, 0.0);
}

TEST(Mosfet, PmosMirrorsNmos) {
  // PMOS fully on (gate at 0) sources current; fully off (gate at VDD) leaks.
  const double ion = pmos_id(0.0, 0.0);
  const double ioff = pmos_id(kVdd, 0.0);
  EXPECT_GT(ion, 10 * uA);
  EXPECT_LT(ioff, 1.0 * nA);
  EXPECT_GT(ion / ioff, 1e4);
}

TEST(Mosfet, CornerOrderingOnCurrent) {
  const double ss = nmos_id(kVdd, kVdd, CmosCorner::SlowSlow);
  const double tt = nmos_id(kVdd, kVdd, CmosCorner::Typical);
  const double ff = nmos_id(kVdd, kVdd, CmosCorner::FastFast);
  EXPECT_LT(ss, tt);
  EXPECT_LT(tt, ff);
}

TEST(Mosfet, CornerOrderingOnLeakage) {
  const double ss = nmos_id(0.0, kVdd, CmosCorner::SlowSlow);
  const double tt = nmos_id(0.0, kVdd, CmosCorner::Typical);
  const double ff = nmos_id(0.0, kVdd, CmosCorner::FastFast);
  EXPECT_LT(ss, tt);
  EXPECT_LT(tt, ff);
  // The corner spread should be large (exponential in delta-Vth), matching
  // the 3-12x leakage spread in Table II.
  EXPECT_GT(ff / ss, 4.0);
}

TEST(Inverter, VtcSwitchesNearMidrail) {
  // CMOS inverter driven by a swept input; check VTC endpoints and midpoint.
  auto vtc = [](double vin) {
    Circuit ckt;
    const NodeId vddN = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add_vsource("VDD", vddN, kGround, Waveform::dc(kVdd));
    ckt.add_vsource("VIN", in, kGround, Waveform::dc(vin));
    ckt.add_pmos("MP", out, in, vddN, vddN, MosGeometry{240e-9, 40e-9},
                 MosParams::pmos_40nm_lp());
    ckt.add_nmos("MN", out, in, kGround, kGround, MosGeometry{120e-9, 40e-9},
                 MosParams::nmos_40nm_lp());
    Simulator sim(ckt);
    return sim.dc_operating_point().v(out);
  };
  EXPECT_GT(vtc(0.0), 0.95 * kVdd);
  EXPECT_LT(vtc(kVdd), 0.05 * kVdd);
  // Transition region: output crosses mid-rail somewhere between 0.3 and 0.8.
  EXPECT_GT(vtc(0.3), kVdd / 2);
  EXPECT_LT(vtc(0.8), kVdd / 2);
}

TEST(Inverter, StaticLeakagePowerIsNanowattClass) {
  Circuit ckt;
  const NodeId vddN = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  auto& vdd = ckt.add_vsource("VDD", vddN, kGround, Waveform::dc(kVdd));
  ckt.add_vsource("VIN", in, kGround, Waveform::dc(0.0));
  ckt.add_pmos("MP", out, in, vddN, vddN, MosGeometry{240e-9, 40e-9},
               MosParams::pmos_40nm_lp());
  ckt.add_nmos("MN", out, in, kGround, kGround, MosGeometry{120e-9, 40e-9},
               MosParams::nmos_40nm_lp());
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  const double leakW = vdd.delivered_current(op.as_state()) * kVdd;
  EXPECT_GT(leakW, 0.01 * pW);
  EXPECT_LT(leakW, 10 * nW);
}

} // namespace
} // namespace nvff::spice
