// SolveReport result layer + recovery ladder: gmin stepping, timestep
// backoff, source stepping, retry budget, and failure diagnostics.
//
// The hard circuits here are made hard *deterministically* by starving
// Newton of iterations (tiny maxIterations) rather than by exotic device
// setups: a cold-started inverter chain needs several damped iterations to
// walk its nodes to the rails, while every warm-started rung of a
// continuation ladder only needs a couple — exactly the situation the
// ladder exists for.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

constexpr double kVdd = 1.1;

void add_inverter(Circuit& ckt, const std::string& prefix, NodeId vdd, NodeId in,
                  NodeId out) {
  ckt.add_pmos(prefix + "P", out, in, vdd, vdd, MosGeometry{240e-9, 40e-9},
               MosParams::pmos_40nm_lp());
  ckt.add_nmos(prefix + "N", out, in, kGround, kGround, MosGeometry{120e-9, 40e-9},
               MosParams::nmos_40nm_lp());
}

/// Cross-coupled inverter pair: cold-start Newton must find the metastable
/// balance point, which takes many damped iterations.
Circuit bistable() {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(kVdd));
  add_inverter(ckt, "I1", vdd, ckt.node("a"), ckt.node("b"));
  add_inverter(ckt, "I2", vdd, ckt.node("b"), ckt.node("a"));
  return ckt;
}

TEST(SolveReport, DirectConvergenceReportsCleanly) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V", a, kGround, Waveform::dc(1.0));
  ckt.add_resistor("R1", a, ckt.node("mid"), 1 * kOhm);
  ckt.add_resistor("R2", ckt.node("mid"), kGround, 1 * kOhm);
  Simulator sim(ckt);
  Solution op;
  const SolveReport report = sim.solve_dc(op);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.status, SolveStatus::Converged);
  EXPECT_EQ(report.deepestStage, RecoveryStage::Direct);
  EXPECT_EQ(report.retriesUsed, 0);
  EXPECT_EQ(report.gminSteps, 0);
  EXPECT_EQ(report.sourceSteps, 0);
  EXPECT_GT(report.iterations, 0);
  EXPECT_NEAR(op.v(ckt.find_node("mid")), 0.5, 1e-3);
}

TEST(SolveReport, GminSteppingRescuesIterationStarvedSolve) {
  Circuit ckt = bistable();
  Simulator sim(ckt);
  NewtonOptions newton;
  newton.maxIterations = 5; // too few for a cold start, plenty per warm rung
  RecoveryOptions recovery;
  recovery.sourceStepping = false; // isolate the gmin rung
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton, recovery);
  ASSERT_TRUE(report.ok()) << report.message;
  EXPECT_EQ(report.deepestStage, RecoveryStage::GminStepping);
  EXPECT_GT(report.gminSteps, 0);
  EXPECT_GE(report.retriesUsed, 1);
  // The rescued solution is a real operating point, inside the rails.
  EXPECT_GE(op.v(ckt.find_node("a")), -0.01);
  EXPECT_LE(op.v(ckt.find_node("a")), kVdd + 0.01);
}

TEST(SolveReport, SourceSteppingRescuesWhenGminDisabled) {
  Circuit ckt = bistable();
  Simulator sim(ckt);
  NewtonOptions newton;
  newton.maxIterations = 4;
  RecoveryOptions recovery;
  recovery.gminStepping = false; // force the ladder past its first rung
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton, recovery);
  ASSERT_TRUE(report.ok()) << report.message;
  EXPECT_EQ(report.deepestStage, RecoveryStage::SourceStepping);
  EXPECT_GT(report.sourceSteps, 0);
  EXPECT_GE(report.retriesUsed, 1);
  EXPECT_GE(op.v(ckt.find_node("a")), -0.01);
  EXPECT_LE(op.v(ckt.find_node("a")), kVdd + 0.01);
}

TEST(SolveReport, ImpossibleSolveNamesTheWorstUnknown) {
  Circuit ckt = bistable();
  Simulator sim(ckt);
  NewtonOptions newton;
  // The convergence check needs at least two iterations (it compares against
  // the previous iterate), so one iteration can never converge — a
  // deterministic "impossible" solve.
  newton.maxIterations = 1;
  RecoveryOptions recovery;
  recovery.gminStepping = false;
  recovery.timestepBackoff = false;
  recovery.sourceStepping = false;
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton, recovery);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, SolveStatus::MaxIterations);
  EXPECT_FALSE(report.worstNode.empty());
  EXPECT_GT(report.iterations, 0);
  EXPECT_NE(report.message.find("max-iterations"), std::string::npos);
  // The throwing shim reports the same trouble as an exception.
  EXPECT_THROW(sim.dc_operating_point(newton), ConvergenceError);
}

TEST(SolveReport, ZeroRetryBudgetReportsBudgetExhausted) {
  Circuit ckt = bistable();
  Simulator sim(ckt);
  NewtonOptions newton;
  newton.maxIterations = 1;
  RecoveryOptions recovery;
  recovery.retryBudget = 0; // direct attempt is free; any escalation is not
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton, recovery);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, SolveStatus::BudgetExhausted);
  EXPECT_GE(report.retriesUsed, 1);
}

TEST(SolveReport, TransientBackoffSubdividesTheHardStep) {
  // A loaded three-stage inverter chain hit by a near-instant input edge,
  // integrated with an absurdly coarse dt. The DC operating point converges
  // directly (the input sits quietly low), but the edge step must ripple a
  // full-rail swing through every stage in ONE solve — more damped Newton
  // iterations than the budget allows at full dt. Halving the step lets the
  // load capacitors anchor the interior nodes (C/h grows each round), so
  // timestep backoff rescues the step.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(kVdd));
  Pwl edge;
  edge.add_point(0.0, 0.0);
  edge.add_step(0.4 * ns, kVdd, 1 * ps);
  ckt.add_vsource("VIN", in, kGround, Waveform::pwl(edge));
  add_inverter(ckt, "I1", vdd, in, ckt.node("s1"));
  ckt.add_capacitor("C1", ckt.find_node("s1"), kGround, 50 * fF);
  add_inverter(ckt, "I2", vdd, ckt.find_node("s1"), ckt.node("s2"));
  ckt.add_capacitor("C2", ckt.find_node("s2"), kGround, 50 * fF);
  add_inverter(ckt, "I3", vdd, ckt.find_node("s2"), ckt.node("s3"));
  ckt.add_capacitor("C3", ckt.find_node("s3"), kGround, 50 * fF);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 2 * ns;
  opt.dt = 1 * ns;
  opt.newton.maxIterations = 7; // enough for the quiet DC op, not the edge
  Trace trace;
  trace.watch_node(ckt, "s3");
  const SolveReport report = sim.run_transient(opt, trace.observer());
  ASSERT_TRUE(report.ok()) << report.message;
  EXPECT_GE(report.subdivisions, 1);
  EXPECT_GE(report.retriesUsed, 1);
  EXPECT_GE(sim.stats().subdividedSteps, 1);
  EXPECT_TRUE(report.deepestStage == RecoveryStage::TimestepBackoff ||
              report.deepestStage == RecoveryStage::GminStepping)
      << recovery_stage_name(report.deepestStage);
  // The waveform is still correct: an odd chain ends low after a rising edge.
  EXPECT_LT(trace.final_value("s3"), 0.1 * kVdd);
}

TEST(SolveReport, TransientFailureRecordsFailTimeAndDiagnostics) {
  Circuit ckt = bistable();
  ckt.add_capacitor("Ca", ckt.find_node("a"), kGround, 1 * fF);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 1 * ns;
  opt.dt = 100 * ps;
  opt.newton.maxIterations = 1; // every step is impossible
  RecoveryOptions recovery;
  recovery.gminStepping = false;
  recovery.timestepBackoff = false;
  recovery.sourceStepping = false;
  const Solution zero(std::vector<double>(ckt.num_unknowns(), 0.0),
                      ckt.num_nodes());
  const SolveReport report = sim.run_transient_from(zero, opt, nullptr, recovery);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, SolveStatus::MaxIterations);
  EXPECT_GT(report.failTime, 0.0);
  EXPECT_LE(report.failTime, opt.dt * 1.01);
  EXPECT_FALSE(report.worstNode.empty());
  EXPECT_NE(report.message.find("transient"), std::string::npos);
}

TEST(SolveReport, InvalidOptionsAreClassifiedNotThrown) {
  Circuit ckt;
  ckt.add_vsource("V", ckt.node("a"), kGround, Waveform::dc(1.0));
  ckt.add_resistor("R", ckt.find_node("a"), kGround, 1 * kOhm);
  Simulator sim(ckt);
  const Solution zero(std::vector<double>(ckt.num_unknowns(), 0.0),
                      ckt.num_nodes());
  TransientOptions bad;
  bad.tStop = 0.0;
  bad.dt = 1 * ps;
  const SolveReport report = sim.run_transient_from(zero, bad, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, SolveStatus::InvalidOptions);
  // The legacy shim keeps its historical std::invalid_argument contract.
  EXPECT_THROW(sim.transient_from(zero, bad, nullptr), std::invalid_argument);
}

TEST(SolveReport, RecoveredRunMatchesDirectRunBitForBit) {
  // The ladder must rescue the SOLVE, not change the ANSWER: the same
  // circuit solved directly (generous iterations) and via gmin stepping
  // (starved iterations) must land on the same operating point to solver
  // tolerance.
  Circuit direct = bistable();
  Circuit rescued = bistable();
  Solution opDirect;
  Solution opRescued;
  {
    Simulator sim(direct);
    ASSERT_TRUE(sim.solve_dc(opDirect).ok());
  }
  {
    Simulator sim(rescued);
    NewtonOptions newton;
    newton.maxIterations = 5;
    RecoveryOptions recovery;
    recovery.sourceStepping = false;
    const SolveReport report = sim.solve_dc(opRescued, newton, recovery);
    ASSERT_TRUE(report.ok()) << report.message;
    ASSERT_EQ(report.deepestStage, RecoveryStage::GminStepping);
  }
  EXPECT_NEAR(opDirect.v(direct.find_node("a")),
              opRescued.v(rescued.find_node("a")), 1e-3);
  EXPECT_NEAR(opDirect.v(direct.find_node("b")),
              opRescued.v(rescued.find_node("b")), 1e-3);
}

TEST(SolveReport, ToleranceScalesWithIterateMagnitude) {
  // Convergence is judged per unknown against absTol + relTol * |x|, so a
  // solve with large node voltages must not demand micro-volt absolute
  // precision there (the old check hardcoded the relative reference to 1 V
  // and a solve like this one paid for it in iterations).
  Circuit ckt;
  const NodeId hv = ckt.node("hv");
  const NodeId d = ckt.node("d");
  ckt.add_vsource("V", hv, kGround, Waveform::dc(8.0));
  ckt.add_resistor("R", hv, d, 100 * kOhm);
  ckt.add_nmos("M", d, d, kGround, kGround, MosGeometry{},
               MosParams::nmos_40nm_lp());
  Simulator sim(ckt);
  NewtonOptions newton;
  newton.vAbsTol = 1e-12; // absolute floor far below what 8 V can resolve
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton);
  ASSERT_TRUE(report.ok()) << report.message;
  EXPECT_EQ(report.deepestStage, RecoveryStage::Direct);
  EXPECT_GT(op.v(d), 0.3);
  EXPECT_LT(op.v(d), 1.0);
}

} // namespace
} // namespace nvff::spice
