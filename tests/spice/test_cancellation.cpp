// Cooperative cancellation in the solver: a raised CancelToken must stop a
// DC solve, a transient, and a deliberately divergent recovery-ladder climb
// at the next iteration boundary — the mechanism the campaign watchdog uses
// to turn a hung trial into a recorded `timeout` instead of a wedged run.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "util/cancellation.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

constexpr double kVdd = 1.1;

void add_inverter(Circuit& ckt, const std::string& prefix, NodeId vdd, NodeId in,
                  NodeId out) {
  ckt.add_pmos(prefix + "P", out, in, vdd, vdd, MosGeometry{240e-9, 40e-9},
               MosParams::pmos_40nm_lp());
  ckt.add_nmos(prefix + "N", out, in, kGround, kGround, MosGeometry{120e-9, 40e-9},
               MosParams::nmos_40nm_lp());
}

/// Cross-coupled pair: with starved Newton iterations this needs the whole
/// recovery ladder, which is exactly the climb cancellation must cut short.
Circuit bistable() {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(kVdd));
  add_inverter(ckt, "I1", vdd, ckt.node("a"), ckt.node("b"));
  add_inverter(ckt, "I2", vdd, ckt.node("b"), ckt.node("a"));
  return ckt;
}

TEST(Cancellation, PreCancelledDcSolveReturnsCancelledImmediately) {
  Circuit ckt = bistable();
  Simulator sim(ckt);
  CancelToken token;
  token.cancel(CancelToken::Reason::Timeout);
  RecoveryOptions recovery;
  recovery.cancel = &token;
  Solution op;
  const SolveReport report = sim.solve_dc(op, {}, recovery);
  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  // Polled at the loop top: not a single Newton iteration is spent.
  EXPECT_EQ(report.iterations, 0);
}

TEST(Cancellation, PreCancelledTransientReturnsCancelled) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V", a, kGround, Waveform::dc(1.0));
  ckt.add_resistor("R", a, ckt.node("out"), 1 * kOhm);
  ckt.add_capacitor("C", ckt.find_node("out"), kGround, 1 * pF);
  Simulator sim(ckt);
  CancelToken token;
  token.cancel();
  RecoveryOptions recovery;
  recovery.cancel = &token;
  TransientOptions opt;
  opt.tStop = 1 * ns;
  opt.dt = 1 * ps;
  const SolveReport report = sim.run_transient(opt, nullptr, recovery);
  EXPECT_EQ(report.status, SolveStatus::Cancelled);
}

TEST(Cancellation, ShortCircuitsTheRecoveryLadderOnADivergentSolve) {
  // One Newton iteration can never converge (the convergence check compares
  // consecutive iterates), so without cancellation this solve climbs every
  // rung until the budget dies. With a raised token it must stop without
  // charging a single escalation to the budget.
  Circuit ckt = bistable();
  Simulator sim(ckt);
  NewtonOptions newton;
  newton.maxIterations = 1;
  CancelToken token;
  token.cancel(CancelToken::Reason::Timeout);
  RecoveryOptions recovery;
  recovery.cancel = &token;
  recovery.retryBudget = 1 << 20; // a budget the ladder must never consume
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton, recovery);
  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  EXPECT_EQ(report.retriesUsed, 0);
}

TEST(Cancellation, WatchdogStopsACrawlingSolveWithinTheDeadline) {
  // The campaign scenario end-to-end: a solve that makes progress too slowly
  // to ever matter (here: the per-iteration damping clamp set so small that
  // reaching the operating point needs millions of iterations — a
  // deterministic stand-in for a hung trial). A watchdog thread raises the
  // token after 50 ms and the solve must come back Cancelled promptly
  // instead of crawling on for minutes.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V", a, kGround, Waveform::dc(1.0));
  ckt.add_resistor("R1", a, ckt.node("mid"), 1 * kOhm);
  ckt.add_resistor("R2", ckt.find_node("mid"), kGround, 1 * kOhm);
  Simulator sim(ckt);
  NewtonOptions newton;
  newton.maxVoltageStep = 1e-7; // ~10M clamped steps to walk 1 V
  newton.maxIterations = 2000000000;
  // Tolerances far below the step clamp, so the clamped crawl is never
  // mistaken for convergence before the operating point is actually reached.
  newton.vAbsTol = 1e-12;
  newton.iAbsTol = 1e-15;
  newton.relTol = 1e-12;
  CancelToken token;
  RecoveryOptions recovery;
  recovery.cancel = &token;

  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel(CancelToken::Reason::Timeout);
  });
  const auto start = std::chrono::steady_clock::now();
  Solution op;
  const SolveReport report = sim.solve_dc(op, newton, recovery);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  watchdog.join();

  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  EXPECT_GT(report.iterations, 0) << "the solve must actually have started";
  // Generous bound (CI machines stall): the point is seconds, not minutes.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30);
}

TEST(Cancellation, MidTransientCancelStopsALongRun) {
  // tStop/dt = 10^6 major steps of a switching inverter chain: far more work
  // than 20 ms allows, so the token always fires mid-run.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(kVdd));
  ckt.add_vsource("VIN", ckt.node("in"), kGround,
                  Waveform::pulse(0.0, kVdd, 1 * ns, 0.1 * ns, 0.1 * ns, 2 * ns, 4 * ns));
  NodeId prev = ckt.find_node("in");
  for (int i = 0; i < 4; ++i) {
    const NodeId next = ckt.node("s" + std::to_string(i));
    add_inverter(ckt, "I" + std::to_string(i), vdd, prev, next);
    ckt.add_capacitor("C" + std::to_string(i), next, kGround, 1 * fF);
    prev = next;
  }
  Simulator sim(ckt);
  CancelToken token;
  RecoveryOptions recovery;
  recovery.cancel = &token;
  TransientOptions opt;
  opt.tStop = 1 * us;
  opt.dt = 1 * ps;

  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel();
  });
  long steps = 0;
  const SolveReport report = sim.run_transient(
      opt, [&steps](double, const Solution&) { ++steps; }, recovery);
  watchdog.join();

  EXPECT_EQ(report.status, SolveStatus::Cancelled);
  EXPECT_LT(steps, 1000000) << "cancellation must land before completion";
}

TEST(Cancellation, TokenHierarchyPropagatesParentCancellation) {
  CancelToken campaign;
  CancelToken trial(&campaign);
  EXPECT_FALSE(trial.cancelled());
  campaign.cancel(CancelToken::Reason::Cancelled);
  EXPECT_TRUE(trial.cancelled());
  EXPECT_EQ(trial.reason(), CancelToken::Reason::Cancelled);
  // The trial's own reason (set first) wins over the parent's.
  CancelToken trial2(&campaign);
  trial2.cancel(CancelToken::Reason::Timeout);
  EXPECT_EQ(trial2.reason(), CancelToken::Reason::Timeout);
  // cancel() is idempotent and the first reason sticks.
  trial2.cancel(CancelToken::Reason::Cancelled);
  EXPECT_EQ(trial2.reason(), CancelToken::Reason::Timeout);
}

} // namespace
} // namespace nvff::spice
