// Tests of the compile-once/run-many engine core: CompiledCircuit +
// SimWorkspace + StampTape. Pins the three contracts the campaign migration
// rests on:
//  * linear (value-invariant) devices are stamped once per Newton solve and
//    replayed from the tape on every iteration — nonlinear devices alone pay
//    the per-iteration stamp cost;
//  * after warm-up, the transient stepping loop performs no heap allocation
//    that scales with the step count (the Newton inner loop is allocation
//    free);
//  * the compile-on-construction ctor and the caller-owned workspace ctor
//    produce bit-identical waveforms.
#include "spice/analysis.hpp"
#include "spice/compiled.hpp"
#include "spice/devices.hpp"
#include "spice/workspace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding the (unaligned) global operator new
// for this test binary lets TransientAllocationsAreStepCountIndependent
// observe the engine's allocation behavior directly; counting is off except
// inside that test's measured regions, so every other test is unaffected.
// ---------------------------------------------------------------------------
namespace {
std::atomic<long>& alloc_count() {
  static std::atomic<long> count{0};
  return count;
}
std::atomic<bool>& alloc_counting() {
  static std::atomic<bool> enabled{false};
  return enabled;
}
} // namespace

void* operator new(std::size_t size) {
  if (alloc_counting().load(std::memory_order_relaxed)) {
    alloc_count().fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nvff::spice {
namespace {

/// Resistor that counts its stamp() invocations.
class CountingResistor : public Resistor {
public:
  CountingResistor(std::string name, NodeId a, NodeId b, double ohms, int* hits)
      : Resistor(std::move(name), a, b, ohms), hits_(hits) {}
  void stamp(Stamper& stamper, const SimState& state) override {
    ++*hits_;
    Resistor::stamp(stamper, state);
  }

private:
  int* hits_;
};

/// Mildly nonlinear grounded conductance i(v) = g0 (v + 0.1 v^3); smooth, so
/// plain Newton converges without the recovery ladder kicking in.
class CountingCubicConductance : public Device {
public:
  CountingCubicConductance(std::string name, NodeId a, double g0, int* hits)
      : Device(std::move(name)), a_(a), g0_(g0), hits_(hits) {}

  bool is_nonlinear() const override { return true; }

  void stamp(Stamper& stamper, const SimState& state) override {
    ++*hits_;
    const double v = state.v(a_);
    const double i0 = g0_ * (v + 0.1 * v * v * v);
    const double didv = g0_ * (1.0 + 0.3 * v * v);
    stamper.nonlinear_current(a_, kGround, i0, {{a_, didv}}, state);
  }

private:
  NodeId a_;
  double g0_;
  int* hits_;
};

/// V(pulse) -- R -- n2 -- (C || cubic conductance) -- gnd.
void build_test_circuit(Circuit& c, int* linHits, int* nonHits) {
  const NodeId n1 = c.node("n1");
  const NodeId n2 = c.node("n2");
  c.add_vsource("V1", n1, kGround,
                Waveform::pulse(0.0, 1.0, 2e-11, 2e-11, 2e-11, 4e-10, 1e-9));
  c.add_device<CountingResistor>("R1", n1, n2, 1e3, linHits);
  c.add_capacitor("C1", n2, kGround, 1e-12);
  c.add_device<CountingCubicConductance>("G1", n2, 1e-3, nonHits);
}

Solution zero_state(const Circuit& c) {
  return Solution(std::vector<double>(c.num_unknowns(), 0.0), c.num_nodes());
}

TEST(CompiledEngine, LinearDevicesStampOncePerSolve) {
  Circuit c;
  int linHits = 0;
  int nonHits = 0;
  build_test_circuit(c, &linHits, &nonHits);

  CompiledCircuit compiled(c);
  SimWorkspace ws;
  Simulator sim(compiled, ws);
  // Compiling probe-stamps every device once for the occupancy pattern;
  // count only the solve-loop stamps.
  linHits = 0;
  nonHits = 0;

  TransientOptions opt;
  opt.dt = 1e-11;
  opt.tStop = 20e-11; // exactly 20 steps
  sim.transient_from(zero_state(c), opt, {});

  // One linear stamp per Newton SOLVE (the tape refresh), not per iteration:
  // 20 steps, each converging in one direct attempt.
  EXPECT_EQ(linHits, 20);
  // The nonlinear device is live-stamped every iteration, and every solve
  // takes at least two iterations (convergence needs a confirming pass).
  EXPECT_GE(nonHits, 2 * linHits);
}

TEST(CompiledEngine, OwnedAndPooledConstructionBitIdentical) {
  int dummyA1 = 0, dummyA2 = 0, dummyB1 = 0, dummyB2 = 0;
  Circuit a;
  build_test_circuit(a, &dummyA1, &dummyA2);
  Circuit b;
  build_test_circuit(b, &dummyB1, &dummyB2);

  TransientOptions opt;
  opt.dt = 1e-11;
  opt.tStop = 4e-10;

  std::vector<std::vector<double>> wavesA;
  Simulator simA(a); // compile-on-construction mode
  simA.transient_from(zero_state(a), opt,
                      [&](double, const Solution& s) { wavesA.push_back(s.raw()); });

  std::vector<std::vector<double>> wavesB;
  CompiledCircuit compiled(b);
  SimWorkspace ws;
  Simulator simB(compiled, ws); // caller-owned run-many mode
  simB.transient_from(zero_state(b), opt,
                      [&](double, const Solution& s) { wavesB.push_back(s.raw()); });

  ASSERT_EQ(wavesA.size(), wavesB.size());
  for (std::size_t i = 0; i < wavesA.size(); ++i) {
    EXPECT_EQ(wavesA[i], wavesB[i]) << "step " << i;
  }
}

TEST(CompiledEngine, TransientAllocationsAreStepCountIndependent) {
  Circuit c;
  int linHits = 0;
  int nonHits = 0;
  build_test_circuit(c, &linHits, &nonHits);
  CompiledCircuit compiled(c);
  SimWorkspace ws;
  Simulator sim(compiled, ws);

  TransientOptions optShort;
  optShort.dt = 1e-11;
  optShort.tStop = 40e-11; // 40 steps
  TransientOptions optLong = optShort;
  optLong.tStop = 80e-11; // 80 steps

  // Warm-up at the longer horizon sizes every workspace buffer.
  sim.transient_from(zero_state(c), optLong, {});

  const auto measure = [&](const TransientOptions& opt) {
    const Solution zero = zero_state(c);
    alloc_count().store(0);
    alloc_counting().store(true);
    sim.transient_from(zero, opt, {});
    alloc_counting().store(false);
    return alloc_count().load();
  };

  const long shortRun = measure(optShort);
  const long longRun = measure(optLong);
  // Doubling the step count must not change the allocation count: all
  // per-step and per-iteration work runs on pre-sized workspace buffers.
  // (The residual constant is the final report message.)
  EXPECT_EQ(shortRun, longRun);
  EXPECT_LT(shortRun, 32);
}

} // namespace
} // namespace nvff::spice
