// Transient engine: RC analytic comparison, energy accounting, inverter
// switching, trace measurements.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

constexpr double kVdd = 1.1;

TEST(Transient, RcChargingMatchesAnalytic) {
  // 1 kOhm / 1 pF driven by a step: tau = 1 ns.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  Pwl step;
  step.add_point(0.0, 0.0);
  step.add_point(1 * ps, 1.0);
  ckt.add_vsource("V1", in, kGround, Waveform::pwl(step));
  ckt.add_resistor("R1", in, out, 1.0 * kOhm);
  ckt.add_capacitor("C1", out, kGround, 1.0 * pF);

  Trace trace;
  trace.watch_node(ckt, "out");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 5 * ns;
  opt.dt = 5 * ps;
  sim.transient(opt, trace.observer());

  // v(t) = 1 - exp(-t/tau); check at t = tau, 2tau, 3tau (offset by the
  // 1 ps ramp, negligible vs 1 ns tau).
  const double tau = 1 * ns;
  EXPECT_NEAR(trace.value_at("out", tau), 1.0 - std::exp(-1.0), 0.01);
  EXPECT_NEAR(trace.value_at("out", 2 * tau), 1.0 - std::exp(-2.0), 0.01);
  EXPECT_NEAR(trace.value_at("out", 3 * tau), 1.0 - std::exp(-3.0), 0.01);
}

TEST(Transient, SupplyEnergyOfCapCharge) {
  // Charging C through R from a step supply delivers E = C * V^2 total
  // (half stored, half dissipated), independent of R.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  Pwl step;
  step.add_point(0.0, 0.0);
  step.add_point(1 * ps, 1.0);
  ckt.add_vsource("V1", in, kGround, Waveform::pwl(step));
  ckt.add_resistor("R1", in, out, 10.0 * kOhm);
  ckt.add_capacitor("C1", out, kGround, 10.0 * fF);

  SupplyEnergyMeter meter(ckt, "V1");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 2 * ns; // 20 tau
  opt.dt = 1 * ps;
  sim.transient(opt, [&](double t, const Solution& s) { meter.observe(t, s); });

  const double expected = 10 * fF * 1.0 * 1.0; // C V^2
  EXPECT_NEAR(meter.energy(), expected, 0.05 * expected);
}

TEST(Transient, EnergyMeterMarkWindows) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround, Waveform::dc(1.0));
  ckt.add_resistor("R1", a, kGround, 1.0 * mega);
  SupplyEnergyMeter meter(ckt, "V1");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 1 * us;
  opt.dt = 10 * ns;
  double halfEnergy = 0.0;
  bool marked = false;
  sim.transient(opt, [&](double t, const Solution& s) {
    meter.observe(t, s);
    if (!marked && t >= 0.5 * us) {
      halfEnergy = meter.energy();
      meter.mark();
      marked = true;
    }
  });
  // P = V^2/R = 1 uW; over 1 us -> 1 pJ total, 0.5 pJ per half.
  EXPECT_NEAR(meter.energy(), 1.0 * pJ, 0.02 * pJ);
  EXPECT_NEAR(halfEnergy, 0.5 * pJ, 0.02 * pJ);
  EXPECT_NEAR(meter.energy_since_mark(), 0.5 * pJ, 0.02 * pJ);
}

TEST(Transient, InverterPropagationDelay) {
  Circuit ckt;
  const NodeId vddN = ckt.node("vdd");
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add_vsource("VDD", vddN, kGround, Waveform::dc(kVdd));
  ckt.add_vsource("VIN", in, kGround,
                  Waveform::pulse(0.0, kVdd, 100 * ps, 20 * ps, 20 * ps, 2 * ns, 0.0));
  ckt.add_pmos("MP", out, in, vddN, vddN, MosGeometry{240e-9, 40e-9},
               MosParams::pmos_40nm_lp());
  ckt.add_nmos("MN", out, in, kGround, kGround, MosGeometry{120e-9, 40e-9},
               MosParams::nmos_40nm_lp());
  ckt.add_capacitor("CL", out, kGround, 1.0 * fF);

  Trace trace;
  trace.watch_node(ckt, "in");
  trace.watch_node(ckt, "out");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 1 * ns;
  opt.dt = 1 * ps;
  sim.transient(opt, trace.observer());

  const auto tIn = trace.crossing_time("in", kVdd / 2, Edge::Rising);
  const auto tOut = trace.crossing_time("out", kVdd / 2, Edge::Falling);
  ASSERT_TRUE(tIn.has_value());
  ASSERT_TRUE(tOut.has_value());
  const double delay = *tOut - *tIn;
  // 40 nm-class inverter into 1 fF: a few ps to a few tens of ps.
  EXPECT_GT(delay, 0.1 * ps);
  EXPECT_LT(delay, 100 * ps);
}

TEST(Transient, TraceMeasurements) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround,
                  Waveform::pulse(0.0, 1.0, 1 * ns, 10 * ps, 10 * ps, 1 * ns, 0.0));
  ckt.add_resistor("R1", a, kGround, 1.0 * kOhm);
  Trace trace;
  trace.watch_node(ckt, "a");
  trace.watch_source_current(ckt, "V1");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 4 * ns;
  opt.dt = 10 * ps;
  sim.transient(opt, trace.observer());

  EXPECT_NEAR(trace.max_value("a"), 1.0, 1e-6);
  EXPECT_NEAR(trace.min_value("a"), 0.0, 1e-6);
  EXPECT_NEAR(trace.final_value("a"), 0.0, 1e-6);
  // Pulse of 1 V across 1 kOhm for ~1 ns -> charge ~ 1 nA*s * 1e-3 = 1 pC.
  const double charge = trace.integral("V1.i", 0.0, 4 * ns);
  EXPECT_NEAR(charge, 1.0 * mA * ns + 0.01 * pico, 0.05 * pico);
  EXPECT_EQ(trace.count_transitions("a", 1.0), 2); // up then down
  // CSV includes both columns.
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("time,a,V1.i"), std::string::npos);
}

TEST(Transient, RejectsBadOptions) {
  Circuit ckt;
  ckt.add_resistor("R1", ckt.node("a"), kGround, 1.0);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 0.0;
  EXPECT_THROW(sim.transient(opt, nullptr), std::invalid_argument);
}

TEST(Trace, UnknownSignalsThrow) {
  Circuit ckt;
  ckt.node("a");
  Trace trace;
  EXPECT_THROW(trace.watch_node(ckt, "nope"), std::invalid_argument);
  EXPECT_THROW(trace.watch_source_current(ckt, "nope"), std::invalid_argument);
}

} // namespace
} // namespace nvff::spice
