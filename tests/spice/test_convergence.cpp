// Solver robustness: bistable circuits, stiff networks, integration
// accuracy order, power-collapse transients.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/trace.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

constexpr double kVdd = 1.1;

void add_inverter(Circuit& ckt, const std::string& prefix, NodeId vdd, NodeId in,
                  NodeId out) {
  ckt.add_pmos(prefix + "P", out, in, vdd, vdd, MosGeometry{240e-9, 40e-9},
               MosParams::pmos_40nm_lp());
  ckt.add_nmos(prefix + "N", out, in, kGround, kGround, MosGeometry{120e-9, 40e-9},
               MosParams::nmos_40nm_lp());
}

TEST(Convergence, CrossCoupledPairFindsValidState) {
  // Bistable: the DC solver must converge to *some* self-consistent state
  // (typically the metastable point without an initial kick).
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(kVdd));
  add_inverter(ckt, "I1", vdd, a, b);
  add_inverter(ckt, "I2", vdd, b, a);
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  EXPECT_TRUE(std::isfinite(op.v(a)));
  EXPECT_TRUE(std::isfinite(op.v(b)));
  // Self-consistency: both nodes within the rails.
  EXPECT_GE(op.v(a), -0.01);
  EXPECT_LE(op.v(a), kVdd + 0.01);
}

TEST(Convergence, BistableResolvesInTransientWithKick) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("VDD", vdd, kGround, Waveform::dc(kVdd));
  add_inverter(ckt, "I1", vdd, a, b);
  add_inverter(ckt, "I2", vdd, b, a);
  // Small asymmetric kick through a current pulse.
  ckt.add_isource("IK", kGround, a,
                  Waveform::pulse(0.0, 5 * uA, 10 * ps, 5 * ps, 5 * ps, 100 * ps, 0.0));
  ckt.add_capacitor("Ca", a, kGround, 1 * fF);
  ckt.add_capacitor("Cb", b, kGround, 1 * fF);
  Trace trace;
  trace.watch_node(ckt, "a");
  trace.watch_node(ckt, "b");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 2 * ns;
  opt.dt = 2 * ps;
  sim.transient(opt, trace.observer());
  // Fully resolved complementary state.
  EXPECT_GT(trace.final_value("a"), 0.9 * kVdd);
  EXPECT_LT(trace.final_value("b"), 0.1 * kVdd);
}

TEST(Convergence, StiffResistorLadder) {
  // 9 decades of resistance spread in one network.
  Circuit ckt;
  NodeId prev = ckt.node("n0");
  ckt.add_vsource("V", prev, kGround, Waveform::dc(1.0));
  double r = 1.0;
  for (int i = 1; i <= 9; ++i) {
    const NodeId next = ckt.node("n" + std::to_string(i));
    ckt.add_resistor("R" + std::to_string(i), prev, next, r);
    ckt.add_resistor("Rg" + std::to_string(i), next, kGround, r * 10.0);
    prev = next;
    r *= 10.0;
  }
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  for (int i = 0; i <= 9; ++i) {
    EXPECT_TRUE(std::isfinite(op.v(ckt.find_node("n" + std::to_string(i)))));
  }
}

TEST(Convergence, DiodeConnectedMosfet) {
  Circuit ckt;
  const NodeId d = ckt.node("d");
  ckt.add_isource("IB", kGround, d, Waveform::dc(10 * uA));
  ckt.add_nmos("M", d, d, kGround, kGround, MosGeometry{}, MosParams::nmos_40nm_lp());
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  // Gate-drain tied: settles at Vth-ish overdrive above ground.
  EXPECT_GT(op.v(d), 0.3);
  EXPECT_LT(op.v(d), 0.9);
}

TEST(Convergence, BackwardEulerIsFirstOrderAccurate) {
  // Global RC error at t = tau must shrink ~linearly with dt.
  auto errorAt = [](double dt) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    Pwl step;
    step.add_point(0.0, 1.0); // start charged source; cap from 0
    ckt.add_vsource("V", in, kGround, Waveform::pwl(step));
    ckt.add_resistor("R", in, out, 1 * kOhm);
    ckt.add_capacitor("C", out, kGround, 1 * pF);
    Trace trace;
    trace.watch_node(ckt, "out");
    Simulator sim(ckt);
    // Start the cap discharged explicitly (zero initial state).
    Solution zero(std::vector<double>(ckt.num_unknowns(), 0.0), ckt.num_nodes());
    TransientOptions opt;
    opt.tStop = 1 * ns;
    opt.dt = dt;
    sim.transient_from(zero, opt, trace.observer());
    const double exact = 1.0 - std::exp(-1.0);
    return std::fabs(trace.final_value("out") - exact);
  };
  const double eCoarse = errorAt(20 * ps);
  const double eFine = errorAt(5 * ps);
  // First order: 4x smaller step -> ~4x smaller error (allow 2.5x..6x).
  EXPECT_GT(eCoarse / eFine, 2.5);
  EXPECT_LT(eCoarse / eFine, 6.0);
}

TEST(Convergence, SupplyCollapseAndRecovery) {
  // An inverter chain through a full power cycle must end in a consistent
  // logic state with all nodes inside the rails at every step.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  Pwl rail;
  rail.add_point(0.0, kVdd);
  rail.add_step(1 * ns, 0.0, 0.3 * ns);
  rail.add_step(3 * ns, kVdd, 0.3 * ns);
  ckt.add_vsource("VDD", vdd, kGround, Waveform::pwl(rail));
  ckt.add_vsource("VIN", ckt.node("in"), kGround, Waveform::dc(0.0));
  NodeId prev = ckt.node("in");
  for (int i = 0; i < 4; ++i) {
    const NodeId next = ckt.node("s" + std::to_string(i));
    add_inverter(ckt, "I" + std::to_string(i), vdd, prev, next);
    prev = next;
  }
  Trace trace;
  trace.watch_node(ckt, "s3");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 5 * ns;
  opt.dt = 5 * ps;
  sim.transient(opt, trace.observer());
  // s3 is the 4th inversion of a low input: s0=1, s1=0, s2=1, s3=0.
  EXPECT_NEAR(trace.final_value("s3"), 0.0, 0.05);
  EXPECT_GT(trace.min_value("s3"), -0.2);
  EXPECT_LT(trace.max_value("s3"), kVdd + 0.2);
}

TEST(Convergence, SimulatorStatsAreTracked) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V", a, kGround, Waveform::dc(1.0));
  ckt.add_resistor("R", a, kGround, 1 * kOhm);
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 100 * ps;
  opt.dt = 10 * ps;
  sim.transient(opt, nullptr);
  EXPECT_EQ(sim.stats().totalSteps, 10);
  EXPECT_GT(sim.stats().totalNewtonIterations, 0);
}

} // namespace
} // namespace nvff::spice
