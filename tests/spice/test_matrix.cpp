#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nvff::spice {
namespace {

TEST(DenseMatrix, SolvesIdentity) {
  DenseMatrix a(3);
  for (std::size_t i = 0; i < 3; ++i) a.add(i, i, 1.0);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({1.0, 2.0, 3.0}, x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(DenseMatrix, SolvesGeneralSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  DenseMatrix a(2);
  a.add(0, 0, 2.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 3.0);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({5.0, 10.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] x = [2; 7] -> x = [7; 2]; requires row pivot.
  DenseMatrix a(2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({2.0, 7.0}, x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseMatrix, DetectsSingular) {
  DenseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  std::vector<double> x;
  EXPECT_FALSE(a.solve({1.0, 2.0}, x));
}

TEST(DenseMatrix, SolvesBadlyScaledWellConditionedSystem) {
  // Every entry is ~1e-12: tiny in absolute terms, yet the system is
  // perfectly conditioned (it is SolvesGeneralSystem uniformly scaled down).
  // Any absolute pivot threshold near machine epsilon would misclassify it
  // as singular; the relative test (kSingularRelTol * max_abs) must accept
  // it and solve to full accuracy. Companion conductances of femtofarad
  // wire capacitors at picosecond steps put real solves in this regime.
  DenseMatrix a(2);
  a.add(0, 0, 2e-12);
  a.add(0, 1, 1e-12);
  a.add(1, 0, 1e-12);
  a.add(1, 1, 3e-12);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({5e-12, 10e-12}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(DenseMatrix, DetectsSingularAtLargeScale) {
  // The rank-1 matrix of DetectsSingular blown up to 1e12: the eliminated
  // pivot's rounding residue can sit far above any fixed absolute epsilon
  // while being ~1e-16 relative to the matrix scale. Only the relative test
  // classifies this correctly.
  DenseMatrix a(2);
  a.add(0, 0, 1e12);
  a.add(0, 1, 2e12);
  a.add(1, 0, 2e12);
  a.add(1, 1, 4e12);
  std::vector<double> x;
  EXPECT_FALSE(a.solve({1e12, 2e12}, x));
}

TEST(DenseMatrix, SolveLargeWellConditioned) {
  // Diagonally dominant random-ish system; verify A*x = b.
  const std::size_t n = 40;
  DenseMatrix a(n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.add(i, j, (i == j) ? 50.0 : std::sin(static_cast<double>(i * 7 + j * 3)));
    }
    b[i] = static_cast<double>(i) - 10.0;
  }
  std::vector<double> x;
  ASSERT_TRUE(a.solve(b, x));
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a.at(i, j) * x[j];
    ASSERT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(DenseMatrix, ClearKeepsSize) {
  DenseMatrix a(4);
  a.add(2, 2, 5.0);
  a.clear();
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
}

TEST(DenseMatrix, RejectsWrongRhsSize) {
  DenseMatrix a(3);
  std::vector<double> x;
  EXPECT_FALSE(a.solve({1.0}, x));
}

} // namespace
} // namespace nvff::spice
