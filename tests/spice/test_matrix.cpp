#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nvff::spice {
namespace {

TEST(DenseMatrix, SolvesIdentity) {
  DenseMatrix a(3);
  for (std::size_t i = 0; i < 3; ++i) a.add(i, i, 1.0);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({1.0, 2.0, 3.0}, x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(DenseMatrix, SolvesGeneralSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  DenseMatrix a(2);
  a.add(0, 0, 2.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 3.0);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({5.0, 10.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] x = [2; 7] -> x = [7; 2]; requires row pivot.
  DenseMatrix a(2);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  std::vector<double> x;
  ASSERT_TRUE(a.solve({2.0, 7.0}, x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseMatrix, DetectsSingular) {
  DenseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 4.0);
  std::vector<double> x;
  EXPECT_FALSE(a.solve({1.0, 2.0}, x));
}

TEST(DenseMatrix, SolveLargeWellConditioned) {
  // Diagonally dominant random-ish system; verify A*x = b.
  const std::size_t n = 40;
  DenseMatrix a(n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.add(i, j, (i == j) ? 50.0 : std::sin(static_cast<double>(i * 7 + j * 3)));
    }
    b[i] = static_cast<double>(i) - 10.0;
  }
  std::vector<double> x;
  ASSERT_TRUE(a.solve(b, x));
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a.at(i, j) * x[j];
    ASSERT_NEAR(acc, b[i], 1e-9);
  }
}

TEST(DenseMatrix, ClearKeepsSize) {
  DenseMatrix a(4);
  a.add(2, 2, 5.0);
  a.clear();
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
}

TEST(DenseMatrix, RejectsWrongRhsSize) {
  DenseMatrix a(3);
  std::vector<double> x;
  EXPECT_FALSE(a.solve({1.0}, x));
}

} // namespace
} // namespace nvff::spice
