#include "spice/waveform.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

TEST(Waveform, DcIsConstant) {
  const auto w = Waveform::dc(1.1);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.1);
  EXPECT_DOUBLE_EQ(w.value(1e9), 1.1);
  EXPECT_DOUBLE_EQ(w.active_until(), 0.0);
}

TEST(Waveform, PulseShape) {
  // PULSE(0 1 delay=1n rise=0.1n width=2n fall=0.1n period=10n)
  const auto w = Waveform::pulse(0.0, 1.0, 1 * ns, 0.1 * ns, 0.1 * ns, 2 * ns, 10 * ns);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.9 * ns), 0.0);
  EXPECT_NEAR(w.value(1.05 * ns), 0.5, 1e-9); // mid rise
  EXPECT_DOUBLE_EQ(w.value(2.0 * ns), 1.0);   // plateau
  EXPECT_NEAR(w.value(3.15 * ns), 0.5, 1e-9); // mid fall
  EXPECT_DOUBLE_EQ(w.value(5.0 * ns), 0.0);
  // Periodicity.
  EXPECT_DOUBLE_EQ(w.value(12.0 * ns), 1.0);
}

TEST(Waveform, PwlInterpolatesAndHolds) {
  Pwl p;
  p.add_point(0.0, 0.0);
  p.add_point(1.0, 2.0);
  p.add_point(3.0, 2.0);
  const auto w = Waveform::pwl(p);
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(10.0), 2.0);
  EXPECT_DOUBLE_EQ(w.active_until(), 3.0);
}

TEST(Waveform, PwlRejectsNonMonotonicTime) {
  Pwl p;
  p.add_point(1.0, 0.0);
  EXPECT_THROW(p.add_point(0.5, 1.0), std::invalid_argument);
}

TEST(Waveform, PwlAddStepBuildsDigitalSequence) {
  Pwl p;
  p.add_step(0.0, 0.0, 10 * ps);  // initial level 0
  p.add_step(1 * ns, 1.1, 10 * ps);
  p.add_step(2 * ns, 0.0, 10 * ps);
  const auto w = Waveform::pwl(p);
  EXPECT_DOUBLE_EQ(w.value(0.5 * ns), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.5 * ns), 1.1);
  EXPECT_DOUBLE_EQ(w.value(3.0 * ns), 0.0);
}

TEST(Waveform, PulseZeroRiseIsStep) {
  const auto w = Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1 * ns, 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5 * ns), 1.0);
}

} // namespace
} // namespace nvff::spice
