#include "spice/vcd.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "spice/analysis.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

Trace make_pulse_trace() {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_vsource("V1", a, kGround,
                  Waveform::pulse(0.0, 1.1, 1 * ns, 50 * ps, 50 * ps, 1 * ns, 0.0));
  ckt.add_resistor("R1", a, kGround, 1 * kOhm);
  Trace trace;
  trace.watch_node(ckt, "a");
  Simulator sim(ckt);
  TransientOptions opt;
  opt.tStop = 3 * ns;
  opt.dt = 20 * ps;
  sim.transient(opt, trace.observer());
  return trace;
}

TEST(Vcd, HeaderAndDeclarations) {
  const Trace trace = make_pulse_trace();
  const std::string vcd = to_vcd(trace);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var real 64"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("a_v $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, DigitalViewTogglesOncePerEdge) {
  const Trace trace = make_pulse_trace();
  const std::string vcd = to_vcd(trace);
  // The digital 'a' bit should change exactly: initial 0, rise to 1, fall
  // to 0 -> one "1<id>" and two "0<id>" records (including the initial).
  // Find the bit id from the declaration line.
  const auto pos = vcd.find("$var wire 1 ");
  ASSERT_NE(pos, std::string::npos);
  const std::string id = vcd.substr(pos + 12, vcd.find(' ', pos + 12) - pos - 12);
  int ones = 0;
  int zeros = 0;
  std::istringstream lines(vcd);
  std::string line;
  while (std::getline(lines, line)) {
    if (line == "1" + id) ++ones;
    if (line == "0" + id) ++zeros;
  }
  EXPECT_EQ(ones, 1);
  EXPECT_EQ(zeros, 2);
}

TEST(Vcd, TimeTicksAreMonotonic) {
  const Trace trace = make_pulse_trace();
  const std::string vcd = to_vcd(trace);
  long long last = -1;
  std::istringstream lines(vcd);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '#') {
      const long long tick = std::stoll(line.substr(1));
      EXPECT_GT(tick, last);
      last = tick;
    }
  }
  // The last CHANGE is when the pulse finishes falling (~2.1 ns); quiet
  // samples after it correctly emit no timestamp.
  EXPECT_GE(last, 2000);
}

TEST(Vcd, RealOnlyAndDigitalOnlyModes) {
  const Trace trace = make_pulse_trace();
  VcdOptions realOnly;
  realOnly.emitDigital = false;
  EXPECT_EQ(to_vcd(trace, realOnly).find("$var wire"), std::string::npos);
  VcdOptions bitsOnly;
  bitsOnly.emitReal = false;
  EXPECT_EQ(to_vcd(trace, bitsOnly).find("$var real"), std::string::npos);
}

TEST(Vcd, FileExport) {
  const Trace trace = make_pulse_trace();
  const std::string path = testing::TempDir() + "/nvff_test.vcd";
  save_vcd_file(trace, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("$date"), std::string::npos);
}

} // namespace
} // namespace nvff::spice
