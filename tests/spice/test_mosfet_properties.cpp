// MOSFET model property tests: monotonicity, geometric scaling, smoothness,
// temperature behaviour — parameterized across corners.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

constexpr double kVdd = 1.1;

double nmos_id(double vg, double vd, MosGeometry geom, MosParams params) {
  Circuit ckt;
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add_vsource("VG", g, kGround, Waveform::dc(vg));
  auto& vds = ckt.add_vsource("VD", d, kGround, Waveform::dc(vd));
  ckt.add_nmos("M1", d, g, kGround, kGround, geom, params);
  Simulator sim(ckt);
  return vds.delivered_current(sim.dc_operating_point().as_state());
}

class MosfetCorners : public ::testing::TestWithParam<CmosCorner> {
protected:
  MosParams params() const {
    return MosParams::nmos_40nm_lp().at_corner(GetParam());
  }
};

TEST_P(MosfetCorners, CurrentMonotoneInGateVoltage) {
  double last = -1.0;
  for (double vg = 0.0; vg <= kVdd + 1e-9; vg += 0.05) {
    const double id = nmos_id(vg, kVdd, MosGeometry{}, params());
    EXPECT_GT(id, last) << "vg=" << vg;
    last = id;
  }
}

TEST_P(MosfetCorners, CurrentMonotoneInDrainVoltage) {
  double last = -1e-18;
  for (double vd = 0.05; vd <= kVdd + 1e-9; vd += 0.05) {
    const double id = nmos_id(kVdd, vd, MosGeometry{}, params());
    EXPECT_GE(id, last) << "vd=" << vd;
    last = id;
  }
}

TEST_P(MosfetCorners, CurrentScalesWithWidth) {
  const double i1 = nmos_id(kVdd, kVdd, MosGeometry{120e-9, 40e-9}, params());
  const double i2 = nmos_id(kVdd, kVdd, MosGeometry{240e-9, 40e-9}, params());
  EXPECT_NEAR(i2 / i1, 2.0, 0.01);
}

TEST_P(MosfetCorners, CurrentScalesInverselyWithLength) {
  const double iShort = nmos_id(kVdd, 0.05, MosGeometry{120e-9, 40e-9}, params());
  const double iLong = nmos_id(kVdd, 0.05, MosGeometry{120e-9, 80e-9}, params());
  // Linear region: Id ~ W/L (CLM effects are negligible at Vds = 50 mV).
  EXPECT_NEAR(iShort / iLong, 2.0, 0.1);
}

TEST_P(MosfetCorners, TransferCurveIsSmooth) {
  // No kinks across the subthreshold/strong-inversion boundary: the relative
  // second difference of log(Id) stays bounded.
  std::vector<double> logId;
  for (double vg = 0.05; vg <= kVdd; vg += 0.02) {
    logId.push_back(std::log(nmos_id(vg, kVdd, MosGeometry{}, params())));
  }
  for (std::size_t i = 2; i < logId.size(); ++i) {
    const double d2 = logId[i] - 2 * logId[i - 1] + logId[i - 2];
    EXPECT_LT(std::fabs(d2), 0.2) << "kink near sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorners, MosfetCorners,
                         ::testing::Values(CmosCorner::SlowSlow, CmosCorner::Typical,
                                           CmosCorner::FastFast),
                         [](const ::testing::TestParamInfo<CmosCorner>& info) {
                           switch (info.param) {
                             case CmosCorner::SlowSlow: return "SS";
                             case CmosCorner::Typical: return "TT";
                             case CmosCorner::FastFast: return "FF";
                           }
                           return "?";
                         });

TEST(MosfetTemperature, LeakageGrowsExponentially) {
  MosParams cold = MosParams::nmos_40nm_lp();
  cold.tempK = 273.15;
  MosParams hot = MosParams::nmos_40nm_lp();
  hot.tempK = 273.15 + 85.0;
  const double iCold = nmos_id(0.0, kVdd, MosGeometry{}, cold);
  const double iHot = nmos_id(0.0, kVdd, MosGeometry{}, hot);
  EXPECT_GT(iHot / iCold, 5.0);
}

TEST(MosfetDuality, PmosMirrorsNmosShape) {
  // A PMOS biased at mirrored voltages conducts like a (weaker) NMOS.
  Circuit ckt;
  const NodeId vddN = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add_vsource("VDD", vddN, kGround, Waveform::dc(kVdd));
  ckt.add_vsource("VG", g, kGround, Waveform::dc(0.0)); // full PMOS drive
  auto& vd = ckt.add_vsource("VD", d, kGround, Waveform::dc(0.0));
  ckt.add_pmos("MP", d, g, vddN, vddN, MosGeometry{}, MosParams::pmos_40nm_lp());
  Simulator sim(ckt);
  const double ip = -vd.delivered_current(sim.dc_operating_point().as_state());
  const double in = nmos_id(kVdd, kVdd, MosGeometry{}, MosParams::nmos_40nm_lp());
  const double kpRatio =
      MosParams::pmos_40nm_lp().kp / MosParams::nmos_40nm_lp().kp;
  // Same shape scaled by the mobility deficit (tolerance for Vth/lambda
  // differences between the N and P parameter sets).
  EXPECT_NEAR(ip / in, kpRatio, 0.5 * kpRatio);
}

TEST(MosfetCaps, GeometryDrivesParasitics) {
  Circuit ckt;
  const auto& fet = ckt.add_nmos("M", ckt.node("d"), ckt.node("g"), kGround, kGround,
                                 MosGeometry{240e-9, 40e-9},
                                 MosParams::nmos_40nm_lp());
  // Doubling the width doubles every parasitic.
  Circuit ckt2;
  const auto& fet2 = ckt2.add_nmos("M", ckt2.node("d"), ckt2.node("g"), kGround,
                                   kGround, MosGeometry{480e-9, 40e-9},
                                   MosParams::nmos_40nm_lp());
  EXPECT_NEAR(fet2.cgs() / fet.cgs(), 2.0, 1e-9);
  EXPECT_NEAR(fet2.cdb() / fet.cdb(), 2.0, 1e-9);
  EXPECT_GT(fet.cgs(), 0.0);
  EXPECT_DOUBLE_EQ(fet.cgs(), fet.cgd());
}

} // namespace
} // namespace nvff::spice
