// DC correctness of the MNA engine on circuits with known closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "util/units.hpp"

namespace nvff::spice {
namespace {
using namespace nvff::units;

TEST(LinearDc, VoltageDivider) {
  Circuit ckt;
  const NodeId vin = ckt.node("vin");
  const NodeId mid = ckt.node("mid");
  ckt.add_vsource("V1", vin, kGround, Waveform::dc(10.0));
  ckt.add_resistor("R1", vin, mid, 1.0 * kOhm);
  ckt.add_resistor("R2", mid, kGround, 3.0 * kOhm);

  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  EXPECT_NEAR(op.v(vin), 10.0, 1e-6);
  EXPECT_NEAR(op.v(mid), 7.5, 1e-6);
}

TEST(LinearDc, SourceCurrentSign) {
  // 5 V across 1 kOhm: source delivers +5 mA.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& src = ckt.add_vsource("V1", a, kGround, Waveform::dc(5.0));
  ckt.add_resistor("R1", a, kGround, 1.0 * kOhm);

  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  EXPECT_NEAR(src.delivered_current(op.as_state()), 5.0 * mA, 1e-9);
}

TEST(LinearDc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  // 1 mA from ground into node a through the source, 2 kOhm to ground.
  ckt.add_isource("I1", kGround, a, Waveform::dc(1.0 * mA));
  ckt.add_resistor("R1", a, kGround, 2.0 * kOhm);

  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  EXPECT_NEAR(op.v(a), 2.0, 1e-6);
}

TEST(LinearDc, WheatstoneBridge) {
  // Balanced bridge: zero differential voltage.
  Circuit ckt;
  const NodeId top = ckt.node("top");
  const NodeId left = ckt.node("left");
  const NodeId right = ckt.node("right");
  ckt.add_vsource("V1", top, kGround, Waveform::dc(5.0));
  ckt.add_resistor("R1", top, left, 1.0 * kOhm);
  ckt.add_resistor("R2", left, kGround, 2.0 * kOhm);
  ckt.add_resistor("R3", top, right, 2.0 * kOhm);
  ckt.add_resistor("R4", right, kGround, 4.0 * kOhm);
  ckt.add_resistor("Rbridge", left, right, 10.0 * kOhm);

  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  EXPECT_NEAR(op.v(left), op.v(right), 1e-6);
  EXPECT_NEAR(op.v(left), 5.0 * 2.0 / 3.0, 1e-5);
}

TEST(LinearDc, TwoSourcesSuperpose) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add_vsource("V1", a, kGround, Waveform::dc(4.0));
  ckt.add_vsource("V2", b, kGround, Waveform::dc(2.0));
  ckt.add_resistor("R1", a, b, 1.0 * kOhm);

  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  EXPECT_NEAR(op.v(a), 4.0, 1e-6);
  EXPECT_NEAR(op.v(b), 2.0, 1e-6);
}

TEST(LinearDc, FloatingNodeStabilizedByGmin) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId fl = ckt.node("floating");
  ckt.add_vsource("V1", a, kGround, Waveform::dc(1.0));
  ckt.add_capacitor("C1", a, fl, 1.0 * fF);
  Simulator sim(ckt);
  const Solution op = sim.dc_operating_point();
  // Must solve without throwing; floating node pulled near the cap divider /
  // gmin equilibrium, which is a finite value.
  EXPECT_TRUE(std::isfinite(op.v(fl)));
}

TEST(LinearDc, GroundAliasesResolve) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
  EXPECT_EQ(ckt.node("vss"), kGround);
  EXPECT_EQ(ckt.node_name(kGround), "gnd");
}

TEST(Circuit, NodeIdentityIsStable) {
  Circuit ckt;
  const NodeId a1 = ckt.node("a");
  const NodeId a2 = ckt.node("a");
  const NodeId b = ckt.node("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(ckt.num_nodes(), 2u);
  EXPECT_EQ(ckt.node_name(a1), "a");
}

TEST(Circuit, FindNodeAndDevice) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add_resistor("R1", a, kGround, 1.0);
  EXPECT_EQ(ckt.find_node("a"), a);
  EXPECT_EQ(ckt.find_node("missing"), kInvalidNode);
  EXPECT_NE(ckt.find_device("R1"), nullptr);
  EXPECT_EQ(ckt.find_device("R2"), nullptr);
}

TEST(Circuit, RejectsNonPhysicalComponents) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  EXPECT_THROW(ckt.add_resistor("R", a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_resistor("R", a, kGround, -5.0), std::invalid_argument);
  EXPECT_THROW(ckt.add_capacitor("C", a, kGround, -1.0 * fF), std::invalid_argument);
}

} // namespace
} // namespace nvff::spice
