// Field-by-field config fingerprint diff (the `--resume` mismatch
// diagnostic). The renderer must name exactly the divergent leaves, walk
// nested objects and arrays, survive unparseable input, and stay silent for
// semantically identical documents.
#include <gtest/gtest.h>

#include <string>

#include "runtime/config_diff.hpp"

namespace nvff::runtime {
namespace {

TEST(ConfigDiff, IdenticalDocumentsProduceNoOutput) {
  const std::string doc = R"({"seed":"1","sigma":1.5,"on":true})";
  EXPECT_EQ(render_config_diff(doc, doc), "");
}

TEST(ConfigDiff, NamesEachDivergentLeafOnce) {
  const std::string stored = R"({"seed":"1","sigma":1,"trials":256})";
  const std::string requested = R"({"seed":"2","sigma":1.5,"trials":256})";
  const std::string diff = render_config_diff(stored, requested);
  EXPECT_NE(diff.find("seed: stored \"1\", requested \"2\""), std::string::npos)
      << diff;
  EXPECT_NE(diff.find("sigma: stored 1, requested 1.5"), std::string::npos);
  EXPECT_EQ(diff.find("trials"), std::string::npos)
      << "equal fields must not be reported:\n" << diff;
}

TEST(ConfigDiff, WalksNestedObjectsWithDottedPaths) {
  const std::string stored = R"({"recovery":{"retries":64,"deadline":0}})";
  const std::string requested = R"({"recovery":{"retries":8,"deadline":0}})";
  const std::string diff = render_config_diff(stored, requested);
  EXPECT_NE(diff.find("recovery.retries: stored 64, requested 8"),
            std::string::npos)
      << diff;
  EXPECT_EQ(diff.find("deadline"), std::string::npos);
}

TEST(ConfigDiff, WalksArraysByIndex) {
  const std::string stored = R"({"timing":[1,2,3]})";
  const std::string requested = R"({"timing":[1,9,3]})";
  const std::string diff = render_config_diff(stored, requested);
  EXPECT_NE(diff.find("timing[1]: stored 2, requested 9"), std::string::npos)
      << diff;
}

TEST(ConfigDiff, ReportsFieldsPresentOnOnlyOneSide) {
  // Version skew: a newer build added a field the stored checkpoint predates.
  const std::string stored = R"({"seed":"1"})";
  const std::string requested = R"({"seed":"1","defectRate":0.01})";
  const std::string diff = render_config_diff(stored, requested);
  EXPECT_NE(diff.find("defectRate: stored (absent), requested 0.01"),
            std::string::npos)
      << diff;
  const std::string reverse = render_config_diff(requested, stored);
  EXPECT_NE(reverse.find("defectRate: stored 0.01, requested (absent)"),
            std::string::npos)
      << reverse;
}

TEST(ConfigDiff, ArrayLengthMismatchReportsTheTail) {
  const std::string diff =
      render_config_diff(R"({"w":[1,2]})", R"({"w":[1,2,3]})");
  EXPECT_NE(diff.find("w[2]: stored (absent), requested 3"), std::string::npos)
      << diff;
}

TEST(ConfigDiff, KindMismatchShowsBothRenderings) {
  const std::string diff =
      render_config_diff(R"({"x":1})", R"({"x":"1"})");
  EXPECT_NE(diff.find("x: stored 1, requested \"1\""), std::string::npos)
      << diff;
}

TEST(ConfigDiff, UnparseableInputDegradesToRawDumpWithoutThrowing) {
  const std::string diff = render_config_diff("{not json", R"({"a":1})");
  EXPECT_NE(diff.find("stored:"), std::string::npos) << diff;
  EXPECT_NE(diff.find("{not json"), std::string::npos) << diff;
  EXPECT_EQ(render_config_diff("same garbage", "same garbage"), "");
}

TEST(ConfigDiff, NumbersCompareByCanonicalRendering) {
  // 1.0 and 1 render identically under %.17g -> no diff; a 1-ulp change is
  // a real config difference and must be reported.
  EXPECT_EQ(render_config_diff(R"({"x":1.0})", R"({"x":1})"), "");
  EXPECT_NE(render_config_diff(R"({"x":0.1})",
                               R"({"x":0.10000000000000002})"),
            "");
}

} // namespace
} // namespace nvff::runtime
