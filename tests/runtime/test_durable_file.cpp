// Durable checkpoint envelope + two-generation commit/load/quarantine.
//
// These tests simulate the crashes the writer exists for: truncation (torn
// write), bit flips (media corruption), and a corrupt current generation
// with an intact previous one. Every corruption must be DETECTED and set
// aside, never parsed, and recovery must fall back rather than abort.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>

#include "runtime/crc32.hpp"
#include "runtime/durable_file.hpp"
#include "util/failpoint.hpp"

namespace nvff::runtime {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

/// Fresh path per test; removes all generations and quarantine leftovers.
std::string scratch(const std::string& name) {
  const std::string path = ::testing::TempDir() + "nvff_durable_" + name;
  for (const char* suffix : {"", ".1", ".tmp", ".corrupt", ".1.corrupt"})
    std::remove((path + suffix).c_str());
  return path;
}

TEST(Crc32, MatchesTheStandardTestVector) {
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  // One flipped bit anywhere changes the sum.
  EXPECT_NE(crc32(std::string("123456788")), 0xCBF43926u);
}

TEST(DurableFile, EnvelopeRoundTripsArbitraryBytes) {
  const std::string payload = std::string("{\"x\":1}\n\0binary\xff tail", 21);
  const std::string wrapped = envelope_wrap(payload);
  EXPECT_TRUE(is_enveloped(wrapped));
  EXPECT_FALSE(is_enveloped(payload));
  EXPECT_EQ(envelope_unwrap(wrapped), payload);
}

TEST(DurableFile, UnwrapRejectsTruncationAndBitFlips) {
  const std::string wrapped = envelope_wrap("the quick brown fox");
  // Truncation: any proper prefix must throw, not return a short payload.
  EXPECT_THROW(envelope_unwrap(wrapped.substr(0, wrapped.size() - 3)),
               std::runtime_error);
  // Bit flip in the payload.
  std::string flipped = wrapped;
  flipped[flipped.size() - 1] ^= 0x01;
  EXPECT_THROW(envelope_unwrap(flipped), std::runtime_error);
  // Flip in the recorded CRC itself ("NVFFCKPT 1 " is 11 bytes, then 8 hex).
  std::string badCrc = wrapped;
  badCrc[11] = badCrc[11] == '0' ? '1' : '0';
  EXPECT_THROW(envelope_unwrap(badCrc), std::runtime_error);
  EXPECT_THROW(envelope_unwrap("NVFFCKPT 9 00000000 0\n"), std::runtime_error);
}

TEST(DurableFile, CommitThenLoadRoundTrips) {
  const std::string path = scratch("roundtrip");
  commit_durable(path, "generation zero");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "generation zero");
  EXPECT_EQ(load.generation, 0);
  EXPECT_TRUE(load.checksummed);
  EXPECT_TRUE(load.quarantined.empty());
  // On-disk bytes are enveloped, not bare.
  EXPECT_TRUE(is_enveloped(slurp(path)));
}

TEST(DurableFile, SecondCommitRotatesThePreviousGeneration) {
  const std::string path = scratch("rotate");
  commit_durable(path, "old");
  commit_durable(path, "new");
  EXPECT_EQ(load_durable(path).payload, "new");
  EXPECT_EQ(envelope_unwrap(slurp(path + ".1")), "old");
}

TEST(DurableFile, MissingFileLoadsAsNotFound) {
  const DurableLoad load = load_durable(scratch("missing"));
  EXPECT_FALSE(load.found);
  EXPECT_TRUE(load.payload.empty());
}

TEST(DurableFile, TruncatedCurrentFallsBackToPreviousGeneration) {
  const std::string path = scratch("truncated");
  commit_durable(path, "good old");
  commit_durable(path, "good new");
  const std::string bytes = slurp(path);
  spew(path, bytes.substr(0, bytes.size() / 2)); // torn write

  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "good old");
  EXPECT_EQ(load.generation, 1);
  ASSERT_EQ(load.quarantined.size(), 1u);
  EXPECT_TRUE(file_exists(load.quarantined[0]));
  EXPECT_FALSE(file_exists(path)) << "corrupt file must be moved, not copied";
}

TEST(DurableFile, BitFlippedCurrentFallsBackToPreviousGeneration) {
  const std::string path = scratch("bitflip");
  commit_durable(path, "previous payload");
  commit_durable(path, "current payload");
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x20;
  spew(path, bytes);

  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "previous payload");
  EXPECT_EQ(load.generation, 1);
  EXPECT_EQ(load.quarantined.size(), 1u);
}

TEST(DurableFile, BothGenerationsCorruptQuarantinesBothAndReturnsNotFound) {
  const std::string path = scratch("bothbad");
  commit_durable(path, "a");
  commit_durable(path, "b");
  spew(path, "NVFFCKPT 1 deadbeef 1\nX");
  spew(path + ".1", "NVFFCKPT 1 deadbeef 1\nY");

  const DurableLoad load = load_durable(path);
  EXPECT_FALSE(load.found);
  EXPECT_EQ(load.quarantined.size(), 2u);
}

TEST(DurableFile, LegacyBareFileLoadsWithoutChecksumClaim) {
  const std::string path = scratch("legacy");
  spew(path, "{\"schema\":\"pre-envelope checkpoint\"}");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_FALSE(load.checksummed);
  EXPECT_EQ(load.payload, "{\"schema\":\"pre-envelope checkpoint\"}");
}

TEST(DurableFile, CommitIntoMissingDirectoryThrowsAndLeavesNothing) {
  const std::string path =
      ::testing::TempDir() + "nvff_no_such_dir/deep/ckpt.json";
  EXPECT_THROW(commit_durable(path, "payload"), std::runtime_error);
  EXPECT_FALSE(file_exists(path));
}

TEST(DurableFile, QuarantineMovesTheFileAside) {
  const std::string path = scratch("setaside");
  spew(path, "schema-corrupt but crc-clean");
  EXPECT_TRUE(quarantine_file(path));
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(path + ".corrupt"));
  EXPECT_FALSE(quarantine_file(path)) << "nothing left to move";
}

// --- injected write-path failures -------------------------------------------
// The ENOSPC/short-write/fsync-error family, driven through the failpoint
// registry so a full disk is simulated, not required. The contract under
// test: every failure is CLASSIFIED (DurableError with the right kind), the
// temp file is cleaned up, and the previously committed generations still
// load.

/// Arms one failpoint spec for the duration of a test; disarms on exit so
/// tests cannot leak injection into each other.
struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    std::string error;
    EXPECT_TRUE(util::Failpoints::instance().configure(spec, error)) << error;
  }
  ~FailpointGuard() { util::Failpoints::instance().reset(); }
};

/// Commits two good generations, then returns the expected survivors.
void seed_generations(const std::string& path) {
  commit_durable(path, "older good payload");
  commit_durable(path, "newest good payload");
}

CommitErrorKind kind_of(const std::function<void()>& attempt) {
  try {
    attempt();
  } catch (const DurableError& e) {
    return e.kind();
  }
  return CommitErrorKind::None;
}

// The exhaustive ENOSPC matrix: every commit stage fails in turn, and every
// failure must (a) carry its classification, (b) leave no temp file, and
// (c) leave the previously committed data loadable.
struct StageCase {
  const char* site;
  CommitErrorKind expected;
};

TEST(DurableFileFaults, EnospcAtEveryStageLeavesThePreviousGenerationLoadable) {
  const StageCase stages[] = {
      {"durable.open", CommitErrorKind::OpenFailed},
      {"durable.write", CommitErrorKind::WriteFailed},
      {"durable.fsync", CommitErrorKind::SyncFailed},
      {"durable.close", CommitErrorKind::CloseFailed},
      {"durable.rotate", CommitErrorKind::RotateFailed},
      {"durable.rename", CommitErrorKind::ReplaceFailed},
  };
  for (const StageCase& stage : stages) {
    SCOPED_TRACE(stage.site);
    const std::string path = scratch(std::string("matrix_") + stage.site);
    seed_generations(path);
    CommitErrorKind kind;
    {
      FailpointGuard guard(std::string(stage.site) +
                           "=every(1):errno(ENOSPC)");
      kind = kind_of([&] { commit_durable(path, "doomed"); });
    }
    EXPECT_EQ(kind, stage.expected);
    EXPECT_FALSE(file_exists(path + ".tmp")) << "temp file must be cleaned up";
    const DurableLoad load = load_durable(path);
    EXPECT_TRUE(load.found);
    EXPECT_EQ(load.payload, "newest good payload")
        << "the newest committed payload must survive a failed "
        << stage.site;
  }
}

TEST(DurableFileFaults, ShortWriteActionTruncatesAndClassifiesAsWriteFailed) {
  const std::string path = scratch("shortwrite");
  seed_generations(path);
  CommitErrorKind kind;
  {
    FailpointGuard guard("durable.write=every(1):short-write");
    kind = kind_of([&] { commit_durable(path, "doomed"); });
  }
  EXPECT_EQ(kind, CommitErrorKind::WriteFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(load_durable(path).payload, "newest good payload");
  EXPECT_EQ(envelope_unwrap(slurp(path + ".1")), "older good payload");
}

TEST(DurableFileFaults, RotateFailureLeavesCurrentGenerationInPlace) {
  const std::string path = scratch("erotate");
  seed_generations(path);
  CommitErrorKind kind;
  {
    FailpointGuard guard("durable.rotate=every(1):errno(EIO)");
    kind = kind_of([&] { commit_durable(path, "doomed"); });
  }
  EXPECT_EQ(kind, CommitErrorKind::RotateFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(load_durable(path).generation, 0)
      << "a failed rotate must not have touched the current generation";
}

TEST(DurableFileFaults, ReplaceFailureFallsBackToTheRotatedGeneration) {
  const std::string path = scratch("ereplace");
  seed_generations(path);
  CommitErrorKind kind;
  {
    // The rotate succeeds, the tmp -> current replace fails: the newest
    // payload now lives in `.1` and MUST still load.
    FailpointGuard guard("durable.rename=every(1):errno(EIO)");
    kind = kind_of([&] { commit_durable(path, "doomed"); });
  }
  EXPECT_EQ(kind, CommitErrorKind::ReplaceFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "newest good payload");
  EXPECT_EQ(load.generation, 1) << "previous generation rotated to .1 intact";
}

TEST(DurableFileFaults, SecondCommitSucceedsOnceTheFailpointStopsFiring) {
  // times(1): the first commit hits injected ENOSPC, the retry goes
  // through — the "free some space and re-run" recovery story.
  const std::string path = scratch("recovery");
  seed_generations(path);
  FailpointGuard guard("durable.write=times(1):errno(ENOSPC)");
  EXPECT_EQ(kind_of([&] { commit_durable(path, "doomed"); }),
            CommitErrorKind::WriteFailed);
  commit_durable(path, "after the storm");
  EXPECT_EQ(load_durable(path).payload, "after the storm");
}

TEST(DurableFileFaults, ErrorMessageCarriesTheClassification) {
  const std::string path = scratch("emessage");
  try {
    FailpointGuard guard("durable.fsync=every(1):errno(EIO)");
    commit_durable(path, "payload");
    FAIL() << "expected DurableError";
  } catch (const DurableError& e) {
    EXPECT_NE(std::string(e.what()).find("[sync-failed]"), std::string::npos)
        << e.what();
  }
  EXPECT_STREQ(commit_error_name(CommitErrorKind::WriteFailed), "write-failed");
  EXPECT_STREQ(commit_error_name(CommitErrorKind::ReplaceFailed),
               "replace-failed");
}

// --- injected read-path failures --------------------------------------------

TEST(DurableFileFaults, InjectedEintrDuringLoadIsRetriedTransparently) {
  // Regression for the EINTR-storm gap: an interrupted read during resume
  // must be retried, never reported as a corrupt or unreadable checkpoint.
  const std::string path = scratch("eintrload");
  commit_durable(path, "survives interruption");
  FailpointGuard guard("checkpoint.load=times(3):eintr");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "survives interruption");
}

TEST(DurableFileFaults, InjectedEioDuringLoadIsAHardError) {
  const std::string path = scratch("eioload");
  commit_durable(path, "unreachable");
  FailpointGuard guard("checkpoint.load=every(1):errno(EIO)");
  EXPECT_THROW(load_durable(path), std::runtime_error);
}

} // namespace
} // namespace nvff::runtime
