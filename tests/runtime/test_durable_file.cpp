// Durable checkpoint envelope + two-generation commit/load/quarantine.
//
// These tests simulate the crashes the writer exists for: truncation (torn
// write), bit flips (media corruption), and a corrupt current generation
// with an intact previous one. Every corruption must be DETECTED and set
// aside, never parsed, and recovery must fall back rather than abort.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>

#include "runtime/crc32.hpp"
#include "runtime/durable_file.hpp"

namespace nvff::runtime {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

/// Fresh path per test; removes all generations and quarantine leftovers.
std::string scratch(const std::string& name) {
  const std::string path = ::testing::TempDir() + "nvff_durable_" + name;
  for (const char* suffix : {"", ".1", ".tmp", ".corrupt", ".1.corrupt"})
    std::remove((path + suffix).c_str());
  return path;
}

TEST(Crc32, MatchesTheStandardTestVector) {
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  // One flipped bit anywhere changes the sum.
  EXPECT_NE(crc32(std::string("123456788")), 0xCBF43926u);
}

TEST(DurableFile, EnvelopeRoundTripsArbitraryBytes) {
  const std::string payload = std::string("{\"x\":1}\n\0binary\xff tail", 21);
  const std::string wrapped = envelope_wrap(payload);
  EXPECT_TRUE(is_enveloped(wrapped));
  EXPECT_FALSE(is_enveloped(payload));
  EXPECT_EQ(envelope_unwrap(wrapped), payload);
}

TEST(DurableFile, UnwrapRejectsTruncationAndBitFlips) {
  const std::string wrapped = envelope_wrap("the quick brown fox");
  // Truncation: any proper prefix must throw, not return a short payload.
  EXPECT_THROW(envelope_unwrap(wrapped.substr(0, wrapped.size() - 3)),
               std::runtime_error);
  // Bit flip in the payload.
  std::string flipped = wrapped;
  flipped[flipped.size() - 1] ^= 0x01;
  EXPECT_THROW(envelope_unwrap(flipped), std::runtime_error);
  // Flip in the recorded CRC itself ("NVFFCKPT 1 " is 11 bytes, then 8 hex).
  std::string badCrc = wrapped;
  badCrc[11] = badCrc[11] == '0' ? '1' : '0';
  EXPECT_THROW(envelope_unwrap(badCrc), std::runtime_error);
  EXPECT_THROW(envelope_unwrap("NVFFCKPT 9 00000000 0\n"), std::runtime_error);
}

TEST(DurableFile, CommitThenLoadRoundTrips) {
  const std::string path = scratch("roundtrip");
  commit_durable(path, "generation zero");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "generation zero");
  EXPECT_EQ(load.generation, 0);
  EXPECT_TRUE(load.checksummed);
  EXPECT_TRUE(load.quarantined.empty());
  // On-disk bytes are enveloped, not bare.
  EXPECT_TRUE(is_enveloped(slurp(path)));
}

TEST(DurableFile, SecondCommitRotatesThePreviousGeneration) {
  const std::string path = scratch("rotate");
  commit_durable(path, "old");
  commit_durable(path, "new");
  EXPECT_EQ(load_durable(path).payload, "new");
  EXPECT_EQ(envelope_unwrap(slurp(path + ".1")), "old");
}

TEST(DurableFile, MissingFileLoadsAsNotFound) {
  const DurableLoad load = load_durable(scratch("missing"));
  EXPECT_FALSE(load.found);
  EXPECT_TRUE(load.payload.empty());
}

TEST(DurableFile, TruncatedCurrentFallsBackToPreviousGeneration) {
  const std::string path = scratch("truncated");
  commit_durable(path, "good old");
  commit_durable(path, "good new");
  const std::string bytes = slurp(path);
  spew(path, bytes.substr(0, bytes.size() / 2)); // torn write

  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "good old");
  EXPECT_EQ(load.generation, 1);
  ASSERT_EQ(load.quarantined.size(), 1u);
  EXPECT_TRUE(file_exists(load.quarantined[0]));
  EXPECT_FALSE(file_exists(path)) << "corrupt file must be moved, not copied";
}

TEST(DurableFile, BitFlippedCurrentFallsBackToPreviousGeneration) {
  const std::string path = scratch("bitflip");
  commit_durable(path, "previous payload");
  commit_durable(path, "current payload");
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x20;
  spew(path, bytes);

  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "previous payload");
  EXPECT_EQ(load.generation, 1);
  EXPECT_EQ(load.quarantined.size(), 1u);
}

TEST(DurableFile, BothGenerationsCorruptQuarantinesBothAndReturnsNotFound) {
  const std::string path = scratch("bothbad");
  commit_durable(path, "a");
  commit_durable(path, "b");
  spew(path, "NVFFCKPT 1 deadbeef 1\nX");
  spew(path + ".1", "NVFFCKPT 1 deadbeef 1\nY");

  const DurableLoad load = load_durable(path);
  EXPECT_FALSE(load.found);
  EXPECT_EQ(load.quarantined.size(), 2u);
}

TEST(DurableFile, LegacyBareFileLoadsWithoutChecksumClaim) {
  const std::string path = scratch("legacy");
  spew(path, "{\"schema\":\"pre-envelope checkpoint\"}");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_FALSE(load.checksummed);
  EXPECT_EQ(load.payload, "{\"schema\":\"pre-envelope checkpoint\"}");
}

TEST(DurableFile, CommitIntoMissingDirectoryThrowsAndLeavesNothing) {
  const std::string path =
      ::testing::TempDir() + "nvff_no_such_dir/deep/ckpt.json";
  EXPECT_THROW(commit_durable(path, "payload"), std::runtime_error);
  EXPECT_FALSE(file_exists(path));
}

TEST(DurableFile, QuarantineMovesTheFileAside) {
  const std::string path = scratch("setaside");
  spew(path, "schema-corrupt but crc-clean");
  EXPECT_TRUE(quarantine_file(path));
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(path + ".corrupt"));
  EXPECT_FALSE(quarantine_file(path)) << "nothing left to move";
}

// --- injected write-path failures -------------------------------------------
// The ENOSPC/short-write/fsync-error family, driven through CommitHooks so a
// full disk is simulated, not required. The contract under test: every
// failure is CLASSIFIED (DurableError with the right kind), the temp file is
// cleaned up, and the previously committed generations still load.

/// Commits two good generations, then returns the expected survivors.
void seed_generations(const std::string& path) {
  commit_durable(path, "older good payload");
  commit_durable(path, "newest good payload");
}

CommitErrorKind kind_of(const std::function<void()>& attempt) {
  try {
    attempt();
  } catch (const DurableError& e) {
    return e.kind();
  }
  return CommitErrorKind::None;
}

TEST(DurableFileFaults, ShortWriteIsClassifiedAndPreviousGenerationSurvives) {
  const std::string path = scratch("enospc");
  seed_generations(path);
  CommitHooks hooks;
  hooks.write = [](const void* p, std::size_t n, std::FILE* f) {
    // ENOSPC behavior: the kernel takes part of the buffer, then refuses.
    const std::size_t accepted = n / 2;
    return std::fwrite(p, 1, accepted, f);
  };
  EXPECT_EQ(kind_of([&] { commit_durable(path, "doomed", hooks); }),
            CommitErrorKind::WriteFailed);
  EXPECT_FALSE(file_exists(path + ".tmp")) << "temp file must be cleaned up";
  EXPECT_EQ(load_durable(path).payload, "newest good payload");
  EXPECT_EQ(envelope_unwrap(slurp(path + ".1")), "older good payload");
}

TEST(DurableFileFaults, FlushFailureIsClassifiedAsSyncFailed) {
  const std::string path = scratch("eflush");
  seed_generations(path);
  CommitHooks hooks;
  hooks.flush = [](std::FILE*) { return EOF; };
  EXPECT_EQ(kind_of([&] { commit_durable(path, "doomed", hooks); }),
            CommitErrorKind::SyncFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(load_durable(path).payload, "newest good payload");
}

TEST(DurableFileFaults, FsyncFailureIsClassifiedAsSyncFailed) {
  const std::string path = scratch("efsync");
  seed_generations(path);
  CommitHooks hooks;
  hooks.sync = [](int) { return -1; };
  EXPECT_EQ(kind_of([&] { commit_durable(path, "doomed", hooks); }),
            CommitErrorKind::SyncFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(load_durable(path).payload, "newest good payload");
}

TEST(DurableFileFaults, DeferredCloseErrorIsClassified) {
  const std::string path = scratch("eclose");
  seed_generations(path);
  CommitHooks hooks;
  hooks.close = [](std::FILE* f) {
    std::fclose(f);
    return EOF; // close reported a deferred write-back error
  };
  EXPECT_EQ(kind_of([&] { commit_durable(path, "doomed", hooks); }),
            CommitErrorKind::CloseFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(load_durable(path).payload, "newest good payload");
}

TEST(DurableFileFaults, RotateFailureLeavesCurrentGenerationInPlace) {
  const std::string path = scratch("erotate");
  seed_generations(path);
  CommitHooks hooks;
  hooks.rename = [&](const char* from, const char* to) -> int {
    // Fail only current -> .1; the commit must abort BEFORE the replace.
    if (std::string(to) == path + ".1") return -1;
    return std::rename(from, to);
  };
  EXPECT_EQ(kind_of([&] { commit_durable(path, "doomed", hooks); }),
            CommitErrorKind::RotateFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(load_durable(path).payload, "newest good payload")
      << "a failed rotate must not have touched the current generation";
}

TEST(DurableFileFaults, ReplaceFailureFallsBackToTheRotatedGeneration) {
  const std::string path = scratch("ereplace");
  seed_generations(path);
  CommitHooks hooks;
  hooks.rename = [&](const char* from, const char* to) -> int {
    // The rotate succeeds, the tmp -> current replace fails: the newest
    // payload now lives in `.1` and MUST still load.
    if (std::string(from) == path + ".tmp") return -1;
    return std::rename(from, to);
  };
  const auto kind = kind_of([&] { commit_durable(path, "doomed", hooks); });
  EXPECT_EQ(kind, CommitErrorKind::ReplaceFailed);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "newest good payload");
  EXPECT_EQ(load.generation, 1) << "previous generation rotated to .1 intact";
}

TEST(DurableFileFaults, ErrorMessageCarriesTheClassification) {
  const std::string path = scratch("emessage");
  CommitHooks hooks;
  hooks.sync = [](int) { return -1; };
  try {
    commit_durable(path, "payload", hooks);
    FAIL() << "expected DurableError";
  } catch (const DurableError& e) {
    EXPECT_NE(std::string(e.what()).find("[sync-failed]"), std::string::npos)
        << e.what();
  }
  EXPECT_STREQ(commit_error_name(CommitErrorKind::WriteFailed), "write-failed");
  EXPECT_STREQ(commit_error_name(CommitErrorKind::ReplaceFailed),
               "replace-failed");
}

} // namespace
} // namespace nvff::runtime
