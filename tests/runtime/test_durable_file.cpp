// Durable checkpoint envelope + two-generation commit/load/quarantine.
//
// These tests simulate the crashes the writer exists for: truncation (torn
// write), bit flips (media corruption), and a corrupt current generation
// with an intact previous one. Every corruption must be DETECTED and set
// aside, never parsed, and recovery must fall back rather than abort.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "runtime/crc32.hpp"
#include "runtime/durable_file.hpp"

namespace nvff::runtime {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good()) << path;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

/// Fresh path per test; removes all generations and quarantine leftovers.
std::string scratch(const std::string& name) {
  const std::string path = ::testing::TempDir() + "nvff_durable_" + name;
  for (const char* suffix : {"", ".1", ".tmp", ".corrupt", ".1.corrupt"})
    std::remove((path + suffix).c_str());
  return path;
}

TEST(Crc32, MatchesTheStandardTestVector) {
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  // One flipped bit anywhere changes the sum.
  EXPECT_NE(crc32(std::string("123456788")), 0xCBF43926u);
}

TEST(DurableFile, EnvelopeRoundTripsArbitraryBytes) {
  const std::string payload = std::string("{\"x\":1}\n\0binary\xff tail", 21);
  const std::string wrapped = envelope_wrap(payload);
  EXPECT_TRUE(is_enveloped(wrapped));
  EXPECT_FALSE(is_enveloped(payload));
  EXPECT_EQ(envelope_unwrap(wrapped), payload);
}

TEST(DurableFile, UnwrapRejectsTruncationAndBitFlips) {
  const std::string wrapped = envelope_wrap("the quick brown fox");
  // Truncation: any proper prefix must throw, not return a short payload.
  EXPECT_THROW(envelope_unwrap(wrapped.substr(0, wrapped.size() - 3)),
               std::runtime_error);
  // Bit flip in the payload.
  std::string flipped = wrapped;
  flipped[flipped.size() - 1] ^= 0x01;
  EXPECT_THROW(envelope_unwrap(flipped), std::runtime_error);
  // Flip in the recorded CRC itself ("NVFFCKPT 1 " is 11 bytes, then 8 hex).
  std::string badCrc = wrapped;
  badCrc[11] = badCrc[11] == '0' ? '1' : '0';
  EXPECT_THROW(envelope_unwrap(badCrc), std::runtime_error);
  EXPECT_THROW(envelope_unwrap("NVFFCKPT 9 00000000 0\n"), std::runtime_error);
}

TEST(DurableFile, CommitThenLoadRoundTrips) {
  const std::string path = scratch("roundtrip");
  commit_durable(path, "generation zero");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "generation zero");
  EXPECT_EQ(load.generation, 0);
  EXPECT_TRUE(load.checksummed);
  EXPECT_TRUE(load.quarantined.empty());
  // On-disk bytes are enveloped, not bare.
  EXPECT_TRUE(is_enveloped(slurp(path)));
}

TEST(DurableFile, SecondCommitRotatesThePreviousGeneration) {
  const std::string path = scratch("rotate");
  commit_durable(path, "old");
  commit_durable(path, "new");
  EXPECT_EQ(load_durable(path).payload, "new");
  EXPECT_EQ(envelope_unwrap(slurp(path + ".1")), "old");
}

TEST(DurableFile, MissingFileLoadsAsNotFound) {
  const DurableLoad load = load_durable(scratch("missing"));
  EXPECT_FALSE(load.found);
  EXPECT_TRUE(load.payload.empty());
}

TEST(DurableFile, TruncatedCurrentFallsBackToPreviousGeneration) {
  const std::string path = scratch("truncated");
  commit_durable(path, "good old");
  commit_durable(path, "good new");
  const std::string bytes = slurp(path);
  spew(path, bytes.substr(0, bytes.size() / 2)); // torn write

  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "good old");
  EXPECT_EQ(load.generation, 1);
  ASSERT_EQ(load.quarantined.size(), 1u);
  EXPECT_TRUE(file_exists(load.quarantined[0]));
  EXPECT_FALSE(file_exists(path)) << "corrupt file must be moved, not copied";
}

TEST(DurableFile, BitFlippedCurrentFallsBackToPreviousGeneration) {
  const std::string path = scratch("bitflip");
  commit_durable(path, "previous payload");
  commit_durable(path, "current payload");
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x20;
  spew(path, bytes);

  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_EQ(load.payload, "previous payload");
  EXPECT_EQ(load.generation, 1);
  EXPECT_EQ(load.quarantined.size(), 1u);
}

TEST(DurableFile, BothGenerationsCorruptQuarantinesBothAndReturnsNotFound) {
  const std::string path = scratch("bothbad");
  commit_durable(path, "a");
  commit_durable(path, "b");
  spew(path, "NVFFCKPT 1 deadbeef 1\nX");
  spew(path + ".1", "NVFFCKPT 1 deadbeef 1\nY");

  const DurableLoad load = load_durable(path);
  EXPECT_FALSE(load.found);
  EXPECT_EQ(load.quarantined.size(), 2u);
}

TEST(DurableFile, LegacyBareFileLoadsWithoutChecksumClaim) {
  const std::string path = scratch("legacy");
  spew(path, "{\"schema\":\"pre-envelope checkpoint\"}");
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
  EXPECT_FALSE(load.checksummed);
  EXPECT_EQ(load.payload, "{\"schema\":\"pre-envelope checkpoint\"}");
}

TEST(DurableFile, CommitIntoMissingDirectoryThrowsAndLeavesNothing) {
  const std::string path =
      ::testing::TempDir() + "nvff_no_such_dir/deep/ckpt.json";
  EXPECT_THROW(commit_durable(path, "payload"), std::runtime_error);
  EXPECT_FALSE(file_exists(path));
}

TEST(DurableFile, QuarantineMovesTheFileAside) {
  const std::string path = scratch("setaside");
  spew(path, "schema-corrupt but crc-clean");
  EXPECT_TRUE(quarantine_file(path));
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(path + ".corrupt"));
  EXPECT_FALSE(quarantine_file(path)) << "nothing left to move";
}

} // namespace
} // namespace nvff::runtime
