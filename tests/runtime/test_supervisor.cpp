// Campaign supervisor: completion, resume, the trial-status taxonomy
// (transient retry, permanent, timeout), deadline interruption, and the
// corrupt-checkpoint fallback ladder.
//
// The hooks here are synthetic engines: a few atomics and a done-vector
// stand in for the Monte-Carlo and power-fail campaigns, so each behavior
// is pinned in isolation and in milliseconds, not SPICE-minutes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/durable_file.hpp"
#include "runtime/supervisor.hpp"
#include "util/failpoint.hpp"

namespace nvff::runtime {
namespace {

std::string scratch(const std::string& name) {
  const std::string path = ::testing::TempDir() + "nvff_supervisor_" + name;
  for (const char* suffix : {"", ".1", ".tmp", ".corrupt", ".1.corrupt"})
    std::remove((path + suffix).c_str());
  return path;
}

/// Comma-joined sorted ids — a minimal checkpoint "schema" for these tests.
std::string join_ids(const std::vector<int>& ids) {
  std::string out;
  for (int id : ids) {
    if (!out.empty()) out += ',';
    out += std::to_string(id);
  }
  return out;
}

std::vector<int> split_ids(const std::string& payload) {
  std::vector<int> ids;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t comma = payload.find(',', pos);
    const std::string tok = payload.substr(pos, comma - pos);
    ids.push_back(std::stoi(tok)); // throws on garbage — that is the point
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ids;
}

/// Hooks over the comma-id schema with an always-Ok trial body.
CampaignHooks counting_hooks(std::atomic<int>& calls) {
  CampaignHooks hooks;
  hooks.runTrial = [&calls](int, const CancelToken&) {
    calls.fetch_add(1);
    return TrialStatus::Ok;
  };
  hooks.serialize = join_ids;
  hooks.deserialize = split_ids;
  return hooks;
}

TEST(Supervisor, RunsEveryTrialToCompletion) {
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.trials = 24;
  config.threads = 3;
  const SupervisorOutcome out = run_supervised(config, counting_hooks(calls));
  EXPECT_EQ(out.cause, StopCause::Completed);
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.trialsDone, 24);
  EXPECT_EQ(calls.load(), 24);
  EXPECT_EQ(out.exit_code(), kExitOk);
}

TEST(Supervisor, RejectsDegenerateConfigs) {
  std::atomic<int> calls{0};
  SupervisorConfig config; // trials == 0
  EXPECT_THROW(run_supervised(config, counting_hooks(calls)), std::runtime_error);
}

TEST(Supervisor, ResumeSkipsEveryRecordedTrial) {
  const std::string path = scratch("resume");
  SupervisorConfig config;
  config.trials = 10;
  config.run.checkpointPath = path;
  config.run.checkpointEvery = 3;

  std::atomic<int> calls{0};
  const SupervisorOutcome first = run_supervised(config, counting_hooks(calls));
  EXPECT_TRUE(first.completed());
  EXPECT_TRUE(first.checkpointWritten);
  EXPECT_EQ(calls.load(), 10);

  const SupervisorOutcome second = run_supervised(config, counting_hooks(calls));
  EXPECT_TRUE(second.completed());
  EXPECT_EQ(second.trialsResumed, 10);
  EXPECT_EQ(calls.load(), 10) << "a fully-resumed campaign must run nothing";
}

TEST(Supervisor, RequireResumeWithNoCheckpointThrows) {
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.trials = 2;
  config.run.checkpointPath = scratch("require_resume");
  config.run.requireResume = true;
  EXPECT_THROW(run_supervised(config, counting_hooks(calls)), std::runtime_error);
  EXPECT_EQ(calls.load(), 0);
}

TEST(Supervisor, TransientRetriesWithBackoffThenSucceeds) {
  std::atomic<int> attempts{0};
  CampaignHooks hooks;
  hooks.runTrial = [&attempts](int, const CancelToken&) {
    // First two attempts hiccup, the third lands.
    return attempts.fetch_add(1) < 2 ? TrialStatus::Transient : TrialStatus::Ok;
  };
  SupervisorConfig config;
  config.trials = 1;
  config.maxTrialAttempts = 3;
  config.retryBackoffSeconds = 0.001;
  const SupervisorOutcome out = run_supervised(config, hooks);
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.transientRetries, 2);
  EXPECT_EQ(out.permanents, 0);
  EXPECT_EQ(attempts.load(), 3);
}

TEST(Supervisor, ExhaustedTransientIsRecordedAsPermanent) {
  std::atomic<int> attempts{0};
  CampaignHooks hooks;
  hooks.runTrial = [&attempts](int, const CancelToken&) {
    attempts.fetch_add(1);
    return TrialStatus::Transient;
  };
  SupervisorConfig config;
  config.trials = 2;
  config.maxTrialAttempts = 2;
  config.retryBackoffSeconds = 0.001;
  const SupervisorOutcome out = run_supervised(config, hooks);
  // Retry exhaustion must not wedge the campaign: both trials are recorded.
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.permanents, 2);
  EXPECT_EQ(out.transientRetries, 2);
  EXPECT_EQ(attempts.load(), 4);
}

TEST(Supervisor, ThrowingTrialCountsAsPermanentNotFatal) {
  CampaignHooks hooks;
  hooks.runTrial = [](int id, const CancelToken&) -> TrialStatus {
    if (id == 1) throw std::runtime_error("engine bug");
    return TrialStatus::Ok;
  };
  SupervisorConfig config;
  config.trials = 3;
  const SupervisorOutcome out = run_supervised(config, hooks);
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.permanents, 1);
}

TEST(Supervisor, WatchdogCancelsAHungTrialAsTimeout) {
  CampaignHooks hooks;
  hooks.runTrial = [](int id, const CancelToken& cancel) {
    if (id != 0) return TrialStatus::Ok;
    // A "hung solver": never finishes on its own, only notices the token.
    while (!cancel.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return cancel.reason() == CancelToken::Reason::Timeout
               ? TrialStatus::Timeout
               : TrialStatus::Cancelled;
  };
  SupervisorConfig config;
  config.trials = 4;
  config.threads = 2;
  config.run.trialTimeoutSeconds = 0.05;
  const SupervisorOutcome out = run_supervised(config, hooks);
  // The timeout is a recorded outcome, not a campaign failure.
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.timeouts, 1);
  EXPECT_EQ(out.exit_code(), kExitOk);
}

TEST(Supervisor, CampaignDeadlineCheckpointsAndResumesToCompletion) {
  const std::string path = scratch("deadline");
  CampaignHooks hooks;
  hooks.runTrial = [](int, const CancelToken& cancel) {
    for (int i = 0; i < 40 && !cancel.cancelled(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return cancel.cancelled() ? TrialStatus::Cancelled : TrialStatus::Ok;
  };
  hooks.serialize = join_ids;
  hooks.deserialize = split_ids;

  SupervisorConfig config;
  config.trials = 64;
  config.threads = 2;
  config.run.checkpointPath = path;
  config.run.deadlineSeconds = 0.3;
  const SupervisorOutcome first = run_supervised(config, hooks);
  EXPECT_EQ(first.cause, StopCause::DeadlineExceeded);
  EXPECT_FALSE(first.completed());
  EXPECT_TRUE(first.checkpointWritten);
  EXPECT_EQ(first.exit_code(), kExitInterrupted);
  EXPECT_LT(first.trialsDone, 64);

  config.run.deadlineSeconds = 0.0; // rerun without the budget
  config.run.requireResume = true;
  const SupervisorOutcome second = run_supervised(config, hooks);
  EXPECT_TRUE(second.completed());
  EXPECT_EQ(second.trialsResumed, first.trialsDone);
  EXPECT_EQ(second.trialsDone, 64);
}

TEST(Supervisor, CorruptCheckpointFallsBackToPreviousGeneration) {
  const std::string path = scratch("fallback");
  // Two generations on disk, then the current one is torn mid-write.
  commit_durable(path, join_ids({0, 1}));
  commit_durable(path, join_ids({0, 1, 2, 3}));
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NVFFCKPT 1 deadbeef 4\nto", f); // truncated payload
    std::fclose(f);
  }
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.trials = 6;
  config.run.checkpointPath = path;
  const SupervisorOutcome out = run_supervised(config, counting_hooks(calls));
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.trialsResumed, 2) << "must fall back to generation 1";
  EXPECT_EQ(calls.load(), 4);
  ASSERT_EQ(out.quarantined.size(), 1u);
}

TEST(Supervisor, SchemaCorruptPayloadIsQuarantinedAndCampaignStartsFresh) {
  const std::string path = scratch("schema_corrupt");
  // A legacy (bare, un-checksummed) file whose body the engine cannot parse:
  // the CRC layer has no opinion, the deserialize hook throws, and the
  // supervisor must quarantine and continue rather than abort.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not,a,number,at,all", f);
    std::fclose(f);
  }
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.trials = 3;
  config.run.checkpointPath = path;
  const SupervisorOutcome out = run_supervised(config, counting_hooks(calls));
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.trialsResumed, 0);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_FALSE(out.quarantined.empty());
}

TEST(Supervisor, FinalCommitFailureIsResumableNotFatal) {
  // Disk fills at the FINAL checkpoint commit: the campaign itself finished,
  // but durability was promised and not delivered. Contract: classified
  // commitError, exit 75 (EX_TEMPFAIL — free space and re-run), previous
  // checkpoint generation untouched and loadable.
  const std::string path = scratch("final_commit");
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.trials = 8;
  config.run.checkpointPath = path;
  config.run.checkpointEvery = 1000; // only the final commit writes
  commit_durable(path, join_ids({}));

  std::string fpError;
  ASSERT_TRUE(util::Failpoints::instance().configure(
      "durable.write=every(1):errno(ENOSPC)", fpError))
      << fpError;
  const SupervisorOutcome out = run_supervised(config, counting_hooks(calls));
  util::Failpoints::instance().reset();

  EXPECT_EQ(out.cause, StopCause::Completed);
  EXPECT_FALSE(out.commitError.empty());
  EXPECT_NE(out.commitError.find("write-failed"), std::string::npos)
      << out.commitError;
  EXPECT_FALSE(out.checkpointWritten);
  EXPECT_EQ(out.exit_code(), kExitInterrupted);
  // The pre-existing generation must still load for the re-run.
  const DurableLoad load = load_durable(path);
  EXPECT_TRUE(load.found);
}

TEST(Supervisor, InjectedAllocFailureRidesTheTransientRetryLadder) {
  // engine.alloc with times(2): the first two trial slots fail to allocate,
  // are recorded as transient, retried, and the campaign still completes
  // with every trial run exactly once at the engine level.
  std::atomic<int> calls{0};
  SupervisorConfig config;
  config.trials = 6;
  config.maxTrialAttempts = 3;
  config.retryBackoffSeconds = 0.001;
  std::string fpError;
  ASSERT_TRUE(util::Failpoints::instance().configure(
      "engine.alloc=times(2):errno(ENOMEM)", fpError))
      << fpError;
  const SupervisorOutcome out = run_supervised(config, counting_hooks(calls));
  util::Failpoints::instance().reset();
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.trialsDone, 6);
  EXPECT_EQ(calls.load(), 6) << "an unallocated slot must not reach the engine";
  EXPECT_EQ(out.transientRetries, 2);
  EXPECT_EQ(out.permanents, 0);
}

TEST(Supervisor, ConfigMismatchInCheckpointIsFatal) {
  const std::string path = scratch("mismatch");
  commit_durable(path, join_ids({0, 1}));
  std::atomic<int> calls{0};
  CampaignHooks hooks = counting_hooks(calls);
  hooks.deserialize = [](const std::string&) -> std::vector<int> {
    throw ConfigMismatch("checkpoint belongs to a different campaign");
  };
  SupervisorConfig config;
  config.trials = 4;
  config.run.checkpointPath = path;
  EXPECT_THROW(run_supervised(config, hooks), ConfigMismatch);
}

} // namespace
} // namespace nvff::runtime
