#!/bin/sh
# CLI exit-code contract for nvfftool.
#
# Scripts (and the CI smoke jobs) branch on nvfftool's exit status, so the
# failure modes must be loud and machine-readable: an unknown subcommand, a
# misspelled flag, or a flag missing its value must exit nonzero with a
# diagnostic on stderr and nothing on stdout — never exit 0, never crash.
#
#   usage: test_nvfftool_cli.sh /path/to/nvfftool
set -u

NVFFTOOL="$1"
failures=0

note() { printf '%s\n' "$*" >&2; }

# check <expected: zero|nonzero> <description> -- <args...>
check() {
  expected="$1"; desc="$2"; shift 3
  out=$("$NVFFTOOL" "$@" 2>/tmp/nvfftool_cli_err.$$)
  status=$?
  err=$(cat /tmp/nvfftool_cli_err.$$); rm -f /tmp/nvfftool_cli_err.$$
  if [ "$expected" = zero ] && [ "$status" -ne 0 ]; then
    note "FAIL: $desc — expected exit 0, got $status"
    failures=$((failures + 1))
    return
  fi
  if [ "$expected" = nonzero ]; then
    if [ "$status" -eq 0 ]; then
      note "FAIL: $desc — expected nonzero exit, got 0"
      failures=$((failures + 1))
      return
    fi
    if [ "$status" -ge 126 ]; then
      note "FAIL: $desc — exit $status looks like a crash/signal, not a diagnostic"
      failures=$((failures + 1))
      return
    fi
    if [ -z "$err" ]; then
      note "FAIL: $desc — no diagnostic on stderr"
      failures=$((failures + 1))
      return
    fi
    if [ -n "$out" ]; then
      note "FAIL: $desc — error path wrote to stdout: $out"
      failures=$((failures + 1))
      return
    fi
  fi
  note "ok: $desc"
}

# check_code <expected status> <description> -- <args...>
# Pins an EXACT exit code (the supervised-campaign contract: 0 ok, 1 fatal,
# 2 usage, 3 gate, 75 interrupted-with-checkpoint).
check_code() {
  expected="$1"; desc="$2"; shift 3
  "$NVFFTOOL" "$@" >/dev/null 2>/tmp/nvfftool_cli_err.$$
  status=$?
  err=$(cat /tmp/nvfftool_cli_err.$$); rm -f /tmp/nvfftool_cli_err.$$
  if [ "$status" -ne "$expected" ]; then
    note "FAIL: $desc — expected exit $expected, got $status"
    failures=$((failures + 1))
    return
  fi
  if [ "$expected" -ne 0 ] && [ -z "$err" ]; then
    note "FAIL: $desc — no diagnostic on stderr"
    failures=$((failures + 1))
    return
  fi
  note "ok: $desc"
}

check nonzero "no arguments prints usage to stderr"        --
check nonzero "unknown subcommand rejected"                -- frobnicate
check nonzero "unknown subcommand with flags rejected"     -- frobnicate --fast
check nonzero "flow without its benchmark arg rejected"    -- flow
check nonzero "cycle without its bit args rejected"        -- cycle 1
check nonzero "mc rejects an unknown flag"                 -- mc --bogus-flag
check nonzero "mc rejects a flag missing its value"        -- mc --trials
check nonzero "powerfail rejects an unknown flag"          -- powerfail --bogus
check nonzero "powerfail rejects a flag missing its value" -- powerfail --trials
check nonzero "powerfail rejects malformed --weights"      -- powerfail --weights 1,2
check nonzero "lint rejects a nonexistent target"          -- lint no/such/file.bench
check zero    "a valid command still succeeds"             -- list

# --- supervised-campaign exit-code contract ---------------------------------
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

check_code 2 "mc --resume without --checkpoint is a usage error" \
  -- mc --trials 2 --resume
check_code 2 "powerfail --resume without --checkpoint is a usage error" \
  -- powerfail --trials 2 --resume
check_code 2 "mc rejects --checkpoint-every 0" \
  -- mc --trials 2 --checkpoint "$WORK/c.json" --checkpoint-every 0
check nonzero "mc rejects --trial-timeout-s missing its value" \
  -- mc --trial-timeout-s
check_code 1 "mc --resume with no checkpoint on disk is fatal" \
  -- mc --trials 2 --checkpoint "$WORK/absent.json" --resume
check_code 1 "powerfail --resume with no checkpoint on disk is fatal" \
  -- powerfail --trials 2 --checkpoint "$WORK/absent.json" --resume
check_code 2 "mc --sweep and --checkpoint stay exclusive" \
  -- mc --trials 2 --sweep 1,2 --checkpoint "$WORK/c.json"

# SIGINT on a running checkpointed campaign: drain, final checkpoint, exit 75
# (EX_TEMPFAIL). The trial count is far beyond what could finish before the
# signal, so the only timing hazard is signalling too EARLY — the handlers are
# installed before the first trial runs, and we wait until the campaign has
# visibly started (progress line on stderr) before firing.
"$NVFFTOOL" mc --trials 100000 --threads 2 \
  --checkpoint "$WORK/int.json" --checkpoint-every 4 \
  >"$WORK/int.out" 2>"$WORK/int.err" &
mcpid=$!
waited=0
while [ ! -s "$WORK/int.err" ] && [ "$waited" -lt 120 ]; do
  sleep 1; waited=$((waited + 1))
done
sleep 2
kill -INT "$mcpid" 2>/dev/null
wait "$mcpid"
status=$?
if [ "$status" -ne 75 ]; then
  note "FAIL: SIGINT on a checkpointed mc campaign — expected exit 75, got $status"
  failures=$((failures + 1))
else
  note "ok: SIGINT on a checkpointed mc campaign exits 75"
fi
if [ ! -f "$WORK/int.json" ]; then
  note "FAIL: interrupted campaign left no checkpoint behind"
  failures=$((failures + 1))
else
  note "ok: interrupted campaign left a resumable checkpoint"
fi
if [ -s "$WORK/int.out" ]; then
  note "FAIL: interrupted campaign printed a (partial) report to stdout"
  failures=$((failures + 1))
else
  note "ok: interrupted campaign kept stdout clean"
fi

# --- distributed campaign service (serve / worker / netchaos) ---------------
check_code 2 "serve without --engine is a usage error" \
  -- serve --local-threads 1
check_code 2 "serve rejects an unknown engine" \
  -- serve --engine frobnicator
check_code 2 "serve rejects an unknown option" \
  -- serve --engine mc --bogus-flag
check_code 2 "serve --resume without --checkpoint is a usage error" \
  -- serve --engine mc --trials 2 --resume
check_code 2 "worker without an endpoint is a usage error" \
  -- worker
check_code 2 "worker rejects an unknown option" \
  -- worker --endpoint unix:/tmp/x.sock --bogus-flag
check_code 0 "coordinator-only serve completes a small campaign" \
  -- serve --engine mc --trials 2 --local-threads 2

# Endpoint spellings: a typo'd --endpoint is a usage error (exit 2) BEFORE
# anything binds or dials, on both sides of the service.
check_code 2 "serve rejects an unknown endpoint scheme" \
  -- serve --engine mc --trials 2 --endpoint udp:127.0.0.1:9 --local-threads 1
check_code 2 "serve rejects a tcp endpoint with a bad port" \
  -- serve --engine mc --trials 2 --endpoint tcp:127.0.0.1:notaport --local-threads 1
check_code 2 "worker rejects an unknown endpoint scheme" \
  -- worker --endpoint udp:127.0.0.1:9
check_code 2 "worker rejects a bare path without a scheme" \
  -- worker --endpoint /tmp/x.sock
# The deprecated --socket PATH alias must stay accepted and mean
# --endpoint unix:PATH (old fleet scripts depend on it): an alias-spelled
# worker dialing a dead path fails at RUNTIME (exit 1), never usage.
check_code 1 "worker --socket alias still parses (dead path -> exit 1)" \
  -- worker --socket "$WORK/absent.sock" --reconnect-budget-s 0.2
check_code 1 "worker --endpoint unix: spelling parses (dead path -> exit 1)" \
  -- worker --endpoint "unix:$WORK/absent.sock" --reconnect-budget-s 0.2
# serve --socket alias: same unix:PATH meaning, campaign completes.
check_code 0 "serve --socket alias still parses and serves" \
  -- serve --engine mc --trials 2 --socket "$WORK/alias.sock" --local-threads 2

check_code 2 "netchaos without --listen/--upstream is a usage error" \
  -- netchaos --seed 1
check_code 2 "netchaos rejects an unknown option" \
  -- netchaos --listen tcp:127.0.0.1:0 --upstream unix:/tmp/x.sock --bogus
check_code 2 "netchaos rejects an unknown fault class in --only" \
  -- netchaos --listen tcp:127.0.0.1:0 --upstream unix:/tmp/x.sock --only gremlins

# --- failpoint registry surface ---------------------------------------------
# The fault-injection flag is part of the operational contract: a typo'd
# spec must die as a usage error (exit 2) BEFORE any campaign work starts,
# and the unknown-site diagnostic must carry the registered inventory so
# the fix is one --list away.
"$NVFFTOOL" failpoints --list >"$WORK/fp_list.out" 2>"$WORK/fp_list.err"
if [ $? -ne 0 ]; then
  note "FAIL: failpoints --list — expected exit 0"
  failures=$((failures + 1))
elif ! grep -q "durable.write" "$WORK/fp_list.out" \
  || ! grep -q "dist.accept" "$WORK/fp_list.out" \
  || ! grep -q "engine.alloc" "$WORK/fp_list.out"; then
  note "FAIL: failpoints --list is missing registered sites"
  cat "$WORK/fp_list.out" >&2
  failures=$((failures + 1))
else
  note "ok: failpoints --list prints the site inventory"
fi
check_code 2 "failpoints without --list is a usage error" \
  -- failpoints
check_code 2 "mc rejects a malformed --failpoints policy" \
  -- mc --trials 2 --failpoints "durable.write=sometimes"
check_code 2 "mc rejects a malformed --failpoints action" \
  -- mc --trials 2 --failpoints "durable.write=every(1):errno(EWHAT)"
check_code 2 "powerfail rejects a malformed --failpoints spec" \
  -- powerfail --trials 2 --failpoints "not-an-entry"
check_code 2 "serve rejects a malformed --failpoints spec" \
  -- serve --engine mc --trials 2 --local-threads 1 --failpoints "x"
check_code 2 "worker rejects a malformed --failpoints spec" \
  -- worker --endpoint unix:/tmp/x.sock --failpoints "x"
check_code 2 "netchaos rejects a malformed --failpoints spec" \
  -- netchaos --listen tcp:127.0.0.1:0 --upstream unix:/tmp/x.sock \
     --failpoints "x"
"$NVFFTOOL" mc --trials 2 --failpoints "durable.wirte=every(1)" \
  >"$WORK/fp_bad.out" 2>"$WORK/fp_bad.err"
if [ $? -ne 2 ]; then
  note "FAIL: unknown failpoint site — expected exit 2"
  failures=$((failures + 1))
elif ! grep -q "durable.wirte" "$WORK/fp_bad.err"; then
  note "FAIL: unknown-site diagnostic does not name the offending site"
  cat "$WORK/fp_bad.err" >&2
  failures=$((failures + 1))
elif ! grep -q "durable.write" "$WORK/fp_bad.err"; then
  note "FAIL: unknown-site diagnostic does not list the registered inventory"
  cat "$WORK/fp_bad.err" >&2
  failures=$((failures + 1))
elif [ -s "$WORK/fp_bad.out" ]; then
  note "FAIL: unknown-site refusal wrote to stdout"
  failures=$((failures + 1))
else
  note "ok: unknown failpoint site exits 2 and lists the inventory"
fi
# The environment override obeys the same grammar and the same exit code.
if NVFF_FAILPOINTS="garbage-spec" "$NVFFTOOL" list >/dev/null 2>"$WORK/fp_env.err"; then
  note "FAIL: malformed NVFF_FAILPOINTS — expected a usage failure, got exit 0"
  failures=$((failures + 1))
elif ! grep -q "NVFF_FAILPOINTS\|failpoints" "$WORK/fp_env.err"; then
  note "FAIL: malformed NVFF_FAILPOINTS diagnostic does not name the source"
  cat "$WORK/fp_env.err" >&2
  failures=$((failures + 1))
else
  note "ok: malformed NVFF_FAILPOINTS env override is rejected loudly"
fi
# A well-formed spec on a campaign actually injects: disk full at the final
# commit must exit 75 with a clean stdout (resumable, not fatal).
"$NVFFTOOL" mc --trials 2 --checkpoint "$WORK/fp_inject.json" \
  --failpoints "durable.write=every(1):errno(ENOSPC)" \
  >"$WORK/fp_inject.out" 2>"$WORK/fp_inject.err"
status=$?
if [ "$status" -ne 75 ]; then
  note "FAIL: injected ENOSPC at commit — expected exit 75, got $status"
  cat "$WORK/fp_inject.err" >&2
  failures=$((failures + 1))
elif [ -s "$WORK/fp_inject.out" ]; then
  note "FAIL: injected ENOSPC run printed a report despite failing durability"
  failures=$((failures + 1))
else
  note "ok: injected ENOSPC at the final commit exits 75 with clean stdout"
fi

# --- config-fingerprint mismatch on --resume --------------------------------
# The refusal must be exit 2 (usage-class: the COMMAND asked for the wrong
# campaign) and must explain itself with a field-by-field diff, not a shrug.
"$NVFFTOOL" mc --trials 2 --checkpoint "$WORK/fp.json" \
  >/dev/null 2>&1
if [ $? -ne 0 ]; then
  note "FAIL: could not create the fingerprint-test checkpoint"
  failures=$((failures + 1))
else
  for cmdline in \
    "mc --trials 2 --seed 2 --sigma 1.5 --checkpoint $WORK/fp.json --resume" \
    "serve --engine mc --trials 2 --seed 2 --sigma 1.5 --local-threads 1 --checkpoint $WORK/fp.json --resume" \
    "serve --engine mc --trials 2 --seed 2 --sigma 1.5 --endpoint unix:$WORK/fp.sock --local-threads 1 --checkpoint $WORK/fp.json --resume"
  do
    set -- $cmdline
    "$NVFFTOOL" "$@" >"$WORK/fp.out" 2>"$WORK/fp.err"
    status=$?
    label=$1
    if [ "$status" -ne 2 ]; then
      note "FAIL: $label resume with mismatched config — expected exit 2, got $status"
      failures=$((failures + 1))
    elif ! grep -q "config mismatch, stored checkpoint vs this run:" "$WORK/fp.err"; then
      note "FAIL: $label mismatch diagnostic lacks the diff header"
      cat "$WORK/fp.err" >&2
      failures=$((failures + 1))
    elif ! grep -q 'seed: stored "1", requested "2"' "$WORK/fp.err"; then
      note "FAIL: $label mismatch diagnostic lacks the seed diff line"
      cat "$WORK/fp.err" >&2
      failures=$((failures + 1))
    elif ! grep -q 'sigmaScale: stored 1, requested 1.5' "$WORK/fp.err"; then
      note "FAIL: $label mismatch diagnostic lacks the sigmaScale diff line"
      cat "$WORK/fp.err" >&2
      failures=$((failures + 1))
    elif grep -q '^  trials' "$WORK/fp.err"; then
      note "FAIL: $label mismatch diagnostic names fields that DIDN'T change"
      cat "$WORK/fp.err" >&2
      failures=$((failures + 1))
    elif [ -s "$WORK/fp.out" ]; then
      note "FAIL: $label mismatch refusal wrote to stdout"
      failures=$((failures + 1))
    else
      note "ok: $label resume with mismatched config exits 2 with a field diff"
    fi
  done
fi

if [ "$failures" -ne 0 ]; then
  note "$failures CLI contract check(s) failed"
  exit 1
fi
note "all CLI contract checks passed"
exit 0
