#!/bin/sh
# CLI exit-code contract for nvfftool.
#
# Scripts (and the CI smoke jobs) branch on nvfftool's exit status, so the
# failure modes must be loud and machine-readable: an unknown subcommand, a
# misspelled flag, or a flag missing its value must exit nonzero with a
# diagnostic on stderr and nothing on stdout — never exit 0, never crash.
#
#   usage: test_nvfftool_cli.sh /path/to/nvfftool
set -u

NVFFTOOL="$1"
failures=0

note() { printf '%s\n' "$*" >&2; }

# check <expected: zero|nonzero> <description> -- <args...>
check() {
  expected="$1"; desc="$2"; shift 3
  out=$("$NVFFTOOL" "$@" 2>/tmp/nvfftool_cli_err.$$)
  status=$?
  err=$(cat /tmp/nvfftool_cli_err.$$); rm -f /tmp/nvfftool_cli_err.$$
  if [ "$expected" = zero ] && [ "$status" -ne 0 ]; then
    note "FAIL: $desc — expected exit 0, got $status"
    failures=$((failures + 1))
    return
  fi
  if [ "$expected" = nonzero ]; then
    if [ "$status" -eq 0 ]; then
      note "FAIL: $desc — expected nonzero exit, got 0"
      failures=$((failures + 1))
      return
    fi
    if [ "$status" -ge 126 ]; then
      note "FAIL: $desc — exit $status looks like a crash/signal, not a diagnostic"
      failures=$((failures + 1))
      return
    fi
    if [ -z "$err" ]; then
      note "FAIL: $desc — no diagnostic on stderr"
      failures=$((failures + 1))
      return
    fi
    if [ -n "$out" ]; then
      note "FAIL: $desc — error path wrote to stdout: $out"
      failures=$((failures + 1))
      return
    fi
  fi
  note "ok: $desc"
}

check nonzero "no arguments prints usage to stderr"        --
check nonzero "unknown subcommand rejected"                -- frobnicate
check nonzero "unknown subcommand with flags rejected"     -- frobnicate --fast
check nonzero "flow without its benchmark arg rejected"    -- flow
check nonzero "cycle without its bit args rejected"        -- cycle 1
check nonzero "mc rejects an unknown flag"                 -- mc --bogus-flag
check nonzero "mc rejects a flag missing its value"        -- mc --trials
check nonzero "powerfail rejects an unknown flag"          -- powerfail --bogus
check nonzero "powerfail rejects a flag missing its value" -- powerfail --trials
check nonzero "powerfail rejects malformed --weights"      -- powerfail --weights 1,2
check nonzero "lint rejects a nonexistent target"          -- lint no/such/file.bench
check zero    "a valid command still succeeds"             -- list

if [ "$failures" -ne 0 ]; then
  note "$failures CLI contract check(s) failed"
  exit 1
fi
note "all CLI contract checks passed"
exit 0
