// Campaign determinism: the contract is that a campaign's OUTPUT is a pure
// function of (config minus threads) — bit-identical across thread counts,
// and identical whether the run was uninterrupted or stitched together from
// a checkpoint. Everything here renders reports and compares strings, which
// catches any drift in ordering, aggregation or formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "reliability/checkpoint.hpp"
#include "reliability/montecarlo.hpp"

namespace nvff::reliability {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.trials = 4;
  cfg.seed = 2018;
  cfg.sigmaScale = 1.5;   // enough spread that trials differ from each other
  cfg.defectRate = 0.25;  // mixed-outcome population, not all-pass
  return cfg;
}

TEST(Determinism, ReportIsIdenticalAtAnyThreadCount) {
  CampaignConfig cfg = small_campaign();
  cfg.threads = 1;
  const std::string serial = render_report(run_campaign(cfg));
  cfg.threads = 2;
  const std::string two = render_report(run_campaign(cfg));
  cfg.threads = 8;
  const std::string eight = render_report(run_campaign(cfg));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
  // The report must not smuggle in anything wall-clock or thread shaped.
  EXPECT_EQ(serial.find("thread"), std::string::npos);
}

TEST(Determinism, ResumedCampaignMatchesUninterruptedRun) {
  const CampaignConfig cfg = [] {
    CampaignConfig c = small_campaign();
    c.threads = 2;
    return c;
  }();
  const std::string reference = render_report(run_campaign(cfg));

  // Fake an interrupted run: trials 0 and 2 finished, 1 and 3 did not.
  const std::string path = ::testing::TempDir() + "nvff_ckpt_resume.json";
  std::remove(path.c_str());
  write_checkpoint_file(path, cfg,
                        {run_trial(cfg, 0), run_trial(cfg, 2)});

  const CampaignResult resumed = run_campaign(cfg, path, /*checkpointEvery=*/1);
  EXPECT_EQ(render_report(resumed), reference);

  // The final checkpoint on disk now holds the complete campaign and can
  // seed a third run that does zero simulation work.
  CheckpointData final;
  ASSERT_TRUE(load_checkpoint_file(path, final));
  EXPECT_EQ(final.trials.size(), static_cast<std::size_t>(cfg.trials));
  const CampaignResult replay = run_campaign(cfg, path);
  EXPECT_EQ(render_report(replay), reference);
  std::remove(path.c_str());
}

TEST(Determinism, ResumeWithDifferentConfigIsRefused) {
  CampaignConfig cfg = small_campaign();
  cfg.trials = 2;
  const std::string path = ::testing::TempDir() + "nvff_ckpt_mismatch.json";
  std::remove(path.c_str());
  write_checkpoint_file(path, cfg, {run_trial(cfg, 0)});
  CampaignConfig other = cfg;
  other.seed += 1;
  EXPECT_THROW(run_campaign(other, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Determinism, SigmaSweepSharesTheSampleStream) {
  // Common random numbers: the same scale twice must give the same row.
  CampaignConfig cfg = small_campaign();
  cfg.trials = 2;
  cfg.threads = 2;
  const auto rows = sigma_sweep(cfg, {1.0, 1.0});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].yieldStandard, rows[1].yieldStandard);
  EXPECT_EQ(rows[0].yieldProposed, rows[1].yieldProposed);
  EXPECT_EQ(rows[0].berStandard, rows[1].berStandard);
  EXPECT_EQ(rows[0].berProposed, rows[1].berProposed);
  EXPECT_EQ(rows[0].p5MarginStandard, rows[1].p5MarginStandard);
  EXPECT_EQ(rows[0].p5MarginProposed, rows[1].p5MarginProposed);
}

} // namespace
} // namespace nvff::reliability
