// Monte-Carlo engine: trial classification, summary arithmetic, and the
// checkpoint format. Campaign-level determinism lives in
// test_determinism.cpp; these tests keep simulation work to a handful of
// trials so the suite stays fast.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "reliability/checkpoint.hpp"
#include "reliability/montecarlo.hpp"

namespace nvff::reliability {
namespace {

DesignTrialResult make_result(TrialOutcome outcome, int bitErrors,
                              double margin) {
  DesignTrialResult r;
  r.outcome = outcome;
  r.bitErrors = bitErrors;
  r.margin = margin;
  return r;
}

void expect_same_design_result(const DesignTrialResult& a,
                               const DesignTrialResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.bitErrors, b.bitErrors);
  if (std::isnan(a.margin)) {
    EXPECT_TRUE(std::isnan(b.margin));
  } else {
    EXPECT_EQ(a.margin, b.margin); // bit-identical, not just close
  }
  EXPECT_EQ(a.solveStatus, b.solveStatus);
  EXPECT_EQ(a.retriesUsed, b.retriesUsed);
  EXPECT_EQ(a.subdivisions, b.subdivisions);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.note, b.note);
}

void expect_same_trial(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.trialId, b.trialId);
  EXPECT_EQ(a.d0, b.d0);
  EXPECT_EQ(a.d1, b.d1);
  EXPECT_EQ(a.defectInjected, b.defectInjected);
  EXPECT_EQ(a.defectVictim, b.defectVictim);
  EXPECT_EQ(a.defectKind, b.defectKind);
  expect_same_design_result(a.standard, b.standard);
  expect_same_design_result(a.proposed, b.proposed);
}

TEST(MonteCarlo, OutcomeAndDesignNames) {
  EXPECT_STREQ(outcome_name(TrialOutcome::Pass), "pass");
  EXPECT_STREQ(outcome_name(TrialOutcome::Unclassified), "unclassified");
  EXPECT_STRNE(design_name(Design::StandardPair),
               design_name(Design::Proposed2Bit));
}

TEST(MonteCarlo, NominalTrialPassesBothDesigns) {
  CampaignConfig cfg;
  cfg.seed = 1;
  const TrialResult t = run_trial(cfg, 0);
  EXPECT_EQ(t.trialId, 0);
  EXPECT_EQ(t.standard.outcome, TrialOutcome::Pass)
      << t.standard.note << " margin=" << t.standard.margin;
  EXPECT_EQ(t.proposed.outcome, TrialOutcome::Pass)
      << t.proposed.note << " margin=" << t.proposed.margin;
  EXPECT_EQ(t.standard.bitErrors, 0);
  EXPECT_EQ(t.proposed.bitErrors, 0);
  EXPECT_GE(t.standard.margin, cfg.marginThreshold);
  EXPECT_GE(t.proposed.margin, cfg.marginThreshold);
  EXPECT_GT(t.standard.iterations, 0);
  EXPECT_GT(t.proposed.iterations, 0);
}

TEST(MonteCarlo, TrialIsAPureFunctionOfConfigAndId) {
  CampaignConfig cfg;
  cfg.seed = 99;
  cfg.sigmaScale = 1.5;
  cfg.defectRate = 0.5;
  const TrialResult first = run_trial(cfg, 7);
  const TrialResult again = run_trial(cfg, 7);
  expect_same_trial(first, again);
  // The thread count is campaign plumbing, not part of the sample space.
  CampaignConfig wide = cfg;
  wide.threads = 8;
  expect_same_trial(first, run_trial(wide, 7));
}

TEST(MonteCarlo, DefectTrialsAreClassifiedNeverUnclassified) {
  CampaignConfig cfg;
  cfg.seed = 5;
  cfg.defectRate = 1.0; // every trial carries a broken MTJ
  for (int id = 0; id < 3; ++id) {
    const TrialResult t = run_trial(cfg, id);
    EXPECT_TRUE(t.defectInjected) << "trial " << id;
    EXPECT_NE(t.standard.outcome, TrialOutcome::Unclassified)
        << "trial " << id << ": " << t.standard.note;
    EXPECT_NE(t.proposed.outcome, TrialOutcome::Unclassified)
        << "trial " << id << ": " << t.proposed.note;
    EXPECT_GE(t.defectVictim, 0);
    EXPECT_LE(t.defectVictim, 3);
    EXPECT_GE(t.defectKind, 1); // MtjDefect::None never injected
  }
}

TEST(MonteCarlo, SummaryArithmetic) {
  CampaignResult result;
  result.config.trials = 3;

  TrialResult t0;
  t0.trialId = 0;
  t0.standard = make_result(TrialOutcome::Pass, 0, 0.80);
  t0.proposed = make_result(TrialOutcome::Pass, 0, 0.70);
  TrialResult t1;
  t1.trialId = 1;
  t1.standard = make_result(TrialOutcome::BitError, 1, 0.55);
  t1.proposed = make_result(TrialOutcome::SolverFailure, 0,
                            std::numeric_limits<double>::quiet_NaN());
  TrialResult t2;
  t2.trialId = 2;
  t2.standard = make_result(TrialOutcome::Metastable, 1, 0.10);
  t2.proposed = make_result(TrialOutcome::Pass, 0, 0.60);
  result.trials = {t0, t1, t2};

  const DesignSummary std = result.summarize(Design::StandardPair);
  EXPECT_EQ(std.trials, 3);
  EXPECT_EQ(std.counts[static_cast<int>(TrialOutcome::Pass)], 1);
  EXPECT_EQ(std.counts[static_cast<int>(TrialOutcome::BitError)], 1);
  EXPECT_EQ(std.counts[static_cast<int>(TrialOutcome::Metastable)], 1);
  EXPECT_EQ(std.bitsSimulated, 6); // 3 converged trials x 2 bits
  EXPECT_EQ(std.bitErrors, 2);
  EXPECT_DOUBLE_EQ(std.ber(), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(std.yield(), 1.0 / 3.0);
  EXPECT_EQ(std.margins.size(), 3u);

  const DesignSummary prop = result.summarize(Design::Proposed2Bit);
  EXPECT_EQ(prop.counts[static_cast<int>(TrialOutcome::SolverFailure)], 1);
  // The solver-failed trial contributes no bits and no margin sample.
  EXPECT_EQ(prop.bitsSimulated, 4);
  EXPECT_DOUBLE_EQ(prop.ber(), 0.0);
  EXPECT_DOUBLE_EQ(prop.yield(), 2.0 / 3.0);
  EXPECT_EQ(prop.margins.size(), 2u);
}

TEST(MonteCarlo, EmptySummaryRatesAreZeroNotNan) {
  DesignSummary s;
  EXPECT_EQ(s.ber(), 0.0);
  EXPECT_EQ(s.yield(), 0.0);
}

/// A checkpoint round-trip must preserve every field the resume path and
/// the final report read — including a NaN margin (serialized as JSON
/// null) and diagnostic notes full of characters JSON must escape.
TEST(MonteCarlo, CheckpointRoundTripsTrialsExactly) {
  CampaignConfig cfg;
  cfg.trials = 4;
  cfg.seed = 0xdeadbeefcafe1234ull; // exercises the seed-as-string encoding
  cfg.sigmaScale = 1.25;
  cfg.defectRate = 0.125;

  TrialResult a;
  a.trialId = 0;
  a.d0 = true;
  a.d1 = false;
  a.defectInjected = true;
  a.defectVictim = 2;
  a.defectKind = 3;
  a.standard = {TrialOutcome::BitError, 1, 0.3125,
                spice::SolveStatus::Converged, 2, 1, 12345,
                "level flipped on bit 0"};
  a.proposed = {TrialOutcome::SolverFailure, 0,
                std::numeric_limits<double>::quiet_NaN(),
                spice::SolveStatus::MaxIterations, 9, 4, 777,
                "restore: \"max-iterations\" at node\n\tout\\b µ-scale"};
  TrialResult b;
  b.trialId = 3; // gaps are fine: a partial checkpoint skips unfinished ids
  b.standard = make_result(TrialOutcome::Pass, 0, 0.875);
  b.proposed = make_result(TrialOutcome::Pass, 0, 0.75);

  const std::string json = serialize_checkpoint(cfg, {a, b});
  const CheckpointData back = parse_checkpoint(json);
  ASSERT_EQ(back.trials.size(), 2u);
  expect_same_trial(back.trials[0], a);
  expect_same_trial(back.trials[1], b);
  // The restored config must fingerprint-match the original.
  EXPECT_NO_THROW(validate_checkpoint(cfg, back.config));
}

TEST(MonteCarlo, CheckpointRejectsForeignConfig) {
  CampaignConfig run;
  run.trials = 8;
  run.seed = 42;

  CampaignConfig sameStats = run;
  sameStats.threads = 16; // deliberately not fingerprinted
  EXPECT_NO_THROW(validate_checkpoint(run, sameStats));

  CampaignConfig otherSeed = run;
  otherSeed.seed = 43;
  EXPECT_THROW(validate_checkpoint(run, otherSeed), std::runtime_error);

  CampaignConfig otherTrials = run;
  otherTrials.trials = 9;
  EXPECT_THROW(validate_checkpoint(run, otherTrials), std::runtime_error);

  CampaignConfig otherSigma = run;
  otherSigma.sigmaScale = 2.0;
  EXPECT_THROW(validate_checkpoint(run, otherSigma), std::runtime_error);

  CampaignConfig otherTiming = run;
  otherTiming.timing.offDuration *= 2.0;
  EXPECT_THROW(validate_checkpoint(run, otherTiming), std::runtime_error);
}

TEST(MonteCarlo, MalformedCheckpointsThrow) {
  EXPECT_THROW(parse_checkpoint(""), std::runtime_error);
  EXPECT_THROW(parse_checkpoint("{\"schema\":1"), std::runtime_error);
  EXPECT_THROW(parse_checkpoint("[1,2,3]"), std::runtime_error);
  // A well-formed document from some future incompatible writer.
  EXPECT_THROW(parse_checkpoint("{\"schema\":999,\"trials\":[]}"),
               std::runtime_error);
}

TEST(MonteCarlo, LoadMissingCheckpointReturnsFalse) {
  const std::string path =
      ::testing::TempDir() + "nvff_no_such_checkpoint.json";
  std::remove(path.c_str());
  CheckpointData out;
  EXPECT_FALSE(load_checkpoint_file(path, out));
}

TEST(MonteCarlo, CorruptCheckpointIsQuarantinedNotFatal) {
  // Regression: the old loader fed a torn file straight into the JSON
  // parser and threw, killing the campaign it was supposed to rescue. A
  // truncated or bit-flipped checkpoint must now be detected by the CRC
  // envelope, moved aside for post-mortem, and reported as "no checkpoint".
  const std::string path = ::testing::TempDir() + "nvff_ckpt_corrupt.json";
  for (const char* suffix : {"", ".1", ".corrupt"})
    std::remove((path + suffix).c_str());
  CampaignConfig cfg;
  cfg.trials = 1;
  TrialResult t;
  t.standard = make_result(TrialOutcome::Pass, 0, 0.5);
  t.proposed = make_result(TrialOutcome::Pass, 0, 0.5);
  write_checkpoint_file(path, cfg, {t});

  // Torn write: chop the file mid-payload.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64];
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(buf, 1, n / 2, f);
  std::fclose(f);

  CheckpointData out;
  EXPECT_FALSE(load_checkpoint_file(path, out)); // no throw, no stale data
  // The evidence was moved aside, not deleted.
  f = std::fopen((path + ".corrupt").c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f) std::fclose(f);
  for (const char* suffix : {"", ".1", ".corrupt"})
    std::remove((path + suffix).c_str());
}

TEST(MonteCarlo, CheckpointFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "nvff_ckpt_roundtrip.json";
  CampaignConfig cfg;
  cfg.trials = 2;
  cfg.seed = 11;
  TrialResult t;
  t.trialId = 1;
  t.standard = make_result(TrialOutcome::Pass, 0, 0.5);
  t.proposed = make_result(TrialOutcome::Metastable, 1, 0.05);
  write_checkpoint_file(path, cfg, {t});
  CheckpointData out;
  ASSERT_TRUE(load_checkpoint_file(path, out));
  ASSERT_EQ(out.trials.size(), 1u);
  expect_same_trial(out.trials[0], t);
  std::remove(path.c_str());
}

} // namespace
} // namespace nvff::reliability
