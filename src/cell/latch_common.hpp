// Shared subcircuit builders for the NV latch netlists:
// tristate write drivers, transmission gates, precharge devices, and the
// PWL-based digital control-signal generator.
#pragma once

#include <string>

#include "cell/technology.hpp"
#include "spice/circuit.hpp"
#include "util/rng.hpp"

namespace nvff::cell {

/// Bundle of the state every latch builder needs.
///
/// When `mismatchRng` is set, every transistor's threshold voltage receives
/// an independent gaussian offset of sigma `sigmaVthMismatch` — local (
/// within-die) variation, the mechanism that limits sense-amplifier offset.
/// Corner variation (global) is carried by `corner` as before.
struct BuildContext {
  spice::Circuit* circuit;
  const Technology* tech;
  const TechCorner* corner;
  spice::NodeId vdd;
  Rng* mismatchRng = nullptr;
  double sigmaVthMismatch = 0.0; ///< [V], one sigma per device

  spice::MosGeometry ngeom(double w) const { return {w, tech->lMin}; }
  spice::MosGeometry pgeom(double w) const { return {w, tech->lMin}; }

  /// Per-device parameter draws (identical to the corner set when no
  /// mismatch source is attached).
  spice::MosParams nparams() const {
    spice::MosParams p = corner->nmos;
    if (mismatchRng != nullptr && sigmaVthMismatch > 0.0) {
      p.vth += mismatchRng->normal(0.0, sigmaVthMismatch);
    }
    return p;
  }
  spice::MosParams pparams() const {
    spice::MosParams p = corner->pmos;
    if (mismatchRng != nullptr && sigmaVthMismatch > 0.0) {
      p.vth += mismatchRng->normal(0.0, sigmaVthMismatch);
    }
    return p;
  }
};

/// Re-parameterizes every MOSFET of a built deck to `corner`, replaying the
/// per-device mismatch draws. The builders draw exactly one Vth offset per
/// transistor, at the transistor's creation site, so walking the circuit's
/// MOSFETs in device order consumes `mismatchRng` in the same sequence as
/// BuildContext::nparams()/pparams() did — the patched deck is bit-identical
/// to one freshly built with the same corner/rng/sigma. This is the deck
/// patch() API's workhorse; campaigns call it through the per-latch deck
/// wrappers (StandardPowerCycleDeck etc.) rather than directly.
void patch_transistors(spice::Circuit& circuit, const TechCorner& corner,
                       Rng* mismatchRng = nullptr, double sigmaVthMismatch = 0.0);

/// Adds a tristate inverter: out = NOT(in) when en is high, Hi-Z otherwise.
/// Structure (4 transistors): vdd - P(in) - P(enB) - out - N(en) - N(in) - gnd.
void add_tristate_inverter(BuildContext& ctx, const std::string& prefix,
                           spice::NodeId in, spice::NodeId out, spice::NodeId en,
                           spice::NodeId enB);

/// Adds a CMOS transmission gate between a and b; conducts when ctl is high
/// (ctlB low). 2 transistors.
void add_transmission_gate(BuildContext& ctx, const std::string& prefix,
                           spice::NodeId a, spice::NodeId b, spice::NodeId ctl,
                           spice::NodeId ctlB);

/// Runs the electrical-rule checker (src/erc/) over a freshly built deck
/// and throws std::logic_error naming `context` on any ERC error. Compiled
/// to a no-op when the NVFF_ERC_SELF_CHECK CMake option is OFF.
void erc_self_check(const spice::Circuit& circuit, const char* context);

/// Digital control signal described as ideal rail-to-rail steps with a short
/// ramp; realized as a PWL voltage source driving a named node.
class ControlSignal {
public:
  /// `initialHigh` sets the level before the first event.
  ControlSignal(double vdd, double rampTime, bool initialHigh);

  /// Schedules a level change at absolute time t.
  void set_at(double t, bool high);

  /// High during [t0, t1), returning to the previous level afterwards.
  void pulse(double t0, double t1);
  /// Low during [t0, t1).
  void pulse_low(double t0, double t1);

  /// Materializes the waveform.
  spice::Waveform waveform() const;

  /// Convenience: create the source in the circuit driving node `name`.
  void install(spice::Circuit& circuit, const std::string& name) const;

private:
  double vdd_;
  double ramp_;
  spice::Pwl pwl_;
  bool lastHigh_;
};

} // namespace nvff::cell
