// Timing descriptions of the store / restore / power-cycle scenarios the
// characterization harness runs on the latch netlists. All times absolute
// seconds from simulation start.
#pragma once

#include "util/units.hpp"

namespace nvff::cell {

/// Store (write) phase timing.
struct WriteTiming {
  double start = 0.5e-9;    ///< write-enable rise
  double duration = 4.0e-9; ///< enable width (worst-corner switching + margin)
  double tail = 0.5e-9;     ///< quiet time after the write
  double ramp = 20e-12;     ///< control edge rate

  double end() const { return start + duration; }
  double total() const { return end() + tail; }
};

/// Restore (read) phase timing for one sense operation.
struct ReadTiming {
  double start = 0.2e-9;      ///< precharge begins
  double precharge = 0.25e-9; ///< precharge width
  double evaluate = 0.4e-9;   ///< sense window (short: the 2-bit lower read
                              ///< holds its winning output dynamically)
  double gap = 0.1e-9;        ///< quiet tail
  double ramp = 20e-12;

  double evalStart() const { return start + precharge; }
  double evalEnd() const { return evalStart() + evaluate; }
  double total() const { return evalEnd() + gap; }
};

/// Full normally-off cycle: store, power-gate, wake, restore.
struct PowerCycleTiming {
  WriteTiming write{};
  double offRamp = 0.5e-9;  ///< supply collapse time
  double offDuration = 10e-9; ///< gated interval (arbitrary; zero leakage)
  double onRamp = 0.5e-9;   ///< supply restore time
  double wakeSettle = 1.0e-9; ///< settle before the read sequence starts
  ReadTiming read{}; ///< interpreted relative to wake completion

  double offStart() const { return write.total(); }
  double onStart() const { return offStart() + offRamp + offDuration; }
  double wakeDone() const { return onStart() + onRamp + wakeSettle; }
  double readStartAbs() const { return wakeDone() + read.start; }
  double total() const { return wakeDone() + read.total(); }
};

} // namespace nvff::cell
