#include "cell/flipped_latch.hpp"

namespace nvff::cell {

using spice::kGround;
using spice::NodeId;
using spice::Waveform;

namespace {

struct Controls {
  ControlSignal pcg;  ///< GND pre-charge (active high)
  ControlSignal renb; ///< header + T-gate enable, active low
  ControlSignal ren;  ///< complement for the T-gate NMOS
  ControlSignal wen;
  ControlSignal wenb;
  ControlSignal din;
  ControlSignal dinb;

  Controls(double vdd, double ramp, bool dataHigh)
      : pcg(vdd, ramp, false),
        renb(vdd, ramp, true),
        ren(vdd, ramp, false),
        wen(vdd, ramp, false),
        wenb(vdd, ramp, true),
        din(vdd, ramp, dataHigh),
        dinb(vdd, ramp, !dataHigh) {}

  void install(spice::Circuit& c) const {
    pcg.install(c, "pcg");
    renb.install(c, "renb");
    ren.install(c, "ren");
    wen.install(c, "wen");
    wenb.install(c, "wenb");
    din.install(c, "din");
    dinb.install(c, "dinb");
  }

  void schedule_read(const ReadTiming& t) {
    pcg.pulse(t.start, t.start + t.precharge);
    ren.pulse(t.evalStart(), t.evalEnd());
    renb.pulse_low(t.evalStart(), t.evalEnd());
  }

  void schedule_write(const WriteTiming& t) {
    // Outputs pre-charged to GND during the store (mirrors the 2-bit cell's
    // requirement: keeps the cross-coupled NMOS off while the write rails
    // swing above them... here the write terminals sit beyond the T-gates,
    // so the clamp simply parks the amplifier).
    pcg.pulse(t.start - 2.0 * t.ramp, t.end() + 2.0 * t.ramp);
    wen.pulse(t.start, t.end());
    wenb.pulse_low(t.start, t.end());
  }
};

struct CoreHandles {
  mtj::MtjDevice* mtjOut;
  mtj::MtjDevice* mtjOutb;
};

CoreHandles build_core(BuildContext& ctx, mtj::MtjOrientation stateOut,
                       mtj::MtjOrientation stateOutb) {
  spice::Circuit& c = *ctx.circuit;
  const Technology& tech = *ctx.tech;
  const TechCorner& corner = *ctx.corner;
  const NodeId vdd = ctx.vdd;
  const NodeId out = c.node("out");
  const NodeId outb = c.node("outb");
  const NodeId sp1 = c.node("sp1");
  const NodeId sp2 = c.node("sp2");
  const NodeId w1 = c.node("w1");
  const NodeId w2 = c.node("w2");
  const NodeId head = c.node("head");
  const NodeId pcg = c.node("pcg");
  const NodeId ren = c.node("ren");
  const NodeId renb = c.node("renb");
  const NodeId wen = c.node("wen");
  const NodeId wenb = c.node("wenb");
  const NodeId din = c.node("din");
  const NodeId dinb = c.node("dinb");

  // GND pre-charge pair.
  c.add_nmos("Npc1", out, pcg, kGround, kGround, ctx.ngeom(tech.wPrecharge),
             ctx.nparams());
  c.add_nmos("Npc2", outb, pcg, kGround, kGround, ctx.ngeom(tech.wPrecharge),
             ctx.nparams());
  // Cross-coupled pair; NMOS sources tied straight to ground (the mirror of
  // the standard latch's VDD-tied PMOS).
  c.add_pmos("P1", out, outb, sp1, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_pmos("P2", outb, out, sp2, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_nmos("N1", out, outb, kGround, kGround, ctx.ngeom(tech.wSenseN),
             ctx.nparams());
  c.add_nmos("N2", outb, out, kGround, kGround, ctx.ngeom(tech.wSenseN),
             ctx.nparams());
  // Isolation T-gates between the PMOS sources and the MTJ/write terminals.
  add_transmission_gate(ctx, "T1", sp1, w1, ren, renb);
  add_transmission_gate(ctx, "T2", sp2, w2, ren, renb);
  auto& mtjA = c.add_device<mtj::MtjDevice>("MTJa", w1, head,
                                            mtj::MtjModel(corner.mtj), stateOut);
  auto& mtjB = c.add_device<mtj::MtjDevice>("MTJb", w2, head,
                                            mtj::MtjModel(corner.mtj), stateOutb);
  // PMOS read header (paper: "read operation is enabled using a PMOS
  // transistor based on the R_en signal").
  c.add_pmos("Phead", head, renb, vdd, vdd, ctx.pgeom(tech.wEnable), ctx.pparams());
  // Write drivers at the outer terminals.
  add_tristate_inverter(ctx, "TI1", dinb, w1, wen, wenb);
  add_tristate_inverter(ctx, "TI2", din, w2, wen, wenb);
  c.add_capacitor("Cw.out", out, kGround, tech.cWire);
  c.add_capacitor("Cw.outb", outb, kGround, tech.cWire);
  return {&mtjA, &mtjB};
}

// D = 1 <=> MTJa = P (out charges faster).
mtj::MtjOrientation out_state(bool d) {
  return d ? mtj::MtjOrientation::Parallel : mtj::MtjOrientation::AntiParallel;
}
mtj::MtjOrientation outb_state(bool d) { return out_state(!d); }

} // namespace

FlippedLatchInstance FlippedNvLatch::build_read(const Technology& tech,
                                                const TechCorner& corner,
                                                bool storedBit,
                                                const ReadTiming& timing) {
  FlippedLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  const CoreHandles core = build_core(ctx, out_state(storedBit), outb_state(storedBit));
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;
  Controls ctl(tech.vdd, timing.ramp, false);
  ctl.schedule_read(timing);
  ctl.install(inst.circuit);
  inst.tEvalStart = timing.evalStart();
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "FlippedNvLatch::build_read");
  return inst;
}

FlippedLatchInstance FlippedNvLatch::build_write(const Technology& tech,
                                                 const TechCorner& corner, bool d,
                                                 const WriteTiming& timing) {
  FlippedLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  const CoreHandles core = build_core(ctx, out_state(!d), outb_state(!d));
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;
  Controls ctl(tech.vdd, timing.ramp, d);
  ctl.schedule_write(timing);
  ctl.install(inst.circuit);
  inst.tEvalStart = timing.start;
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "FlippedNvLatch::build_write");
  return inst;
}

FlippedLatchInstance FlippedNvLatch::build_idle(const Technology& tech,
                                                const TechCorner& corner) {
  FlippedLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  const CoreHandles core = build_core(ctx, mtj::MtjOrientation::Parallel,
                                      mtj::MtjOrientation::AntiParallel);
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;
  Controls ctl(tech.vdd, 20e-12, false);
  ctl.install(inst.circuit);
  inst.tEnd = 1e-9;
  erc_self_check(inst.circuit, "FlippedNvLatch::build_idle");
  return inst;
}

FlippedReadDeck::FlippedReadDeck(const Technology& tech, const TechCorner& corner,
                                 const ReadTiming& timing)
    : inst(FlippedNvLatch::build_read(tech, corner, /*storedBit=*/false, timing)),
      compiled(inst.circuit) {
  ws.bind(compiled);
}

void FlippedReadDeck::patch(const TechCorner& corner, bool storedBit,
                            Rng* mismatchRng, double sigmaVth) {
  patch_transistors(inst.circuit, corner, mismatchRng, sigmaVth);
  inst.mtjOut->set_model(mtj::MtjModel(corner.mtj));
  inst.mtjOut->reset_dynamics(out_state(storedBit));
  inst.mtjOutb->set_model(mtj::MtjModel(corner.mtj));
  inst.mtjOutb->reset_dynamics(outb_state(storedBit));
}

} // namespace nvff::cell
