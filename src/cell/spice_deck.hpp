// SPICE deck export: serializes a Circuit (including the MTJ devices) as a
// .sp netlist so the latch designs can be inspected, archived, or
// cross-checked in an external simulator.
//
// MOSFETs are emitted against LEVEL=1 .model cards approximating the EKV
// parameters (VTO/KP/LAMBDA); MTJs become resistors at their current
// orientation's zero-bias value, with the full compact-model parameters in
// comments (external simulators lack the switching dynamics). The deck is
// therefore a faithful DC/small-transient view, not a bit-switching one.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace nvff::cell {

struct SpiceDeckOptions {
  std::string title = "nvff export";
  double tStopSeconds = 5e-9; ///< .tran horizon
  double tStepSeconds = 2e-12;
};

/// Serializes every device of the circuit into SPICE netlist text.
std::string to_spice_deck(const spice::Circuit& circuit,
                          const SpiceDeckOptions& options = {});

void save_spice_deck(const spice::Circuit& circuit, const std::string& path,
                     const SpiceDeckOptions& options = {});

} // namespace nvff::cell
