// Scalable N-bit generalization of the proposed shadow latch (the paper's
// Sec. III design-scalability discussion, made concrete).
//
// One cross-coupled sense amplifier is shared by N bits: N/2 MTJ pairs stack
// above it and N/2 below. Each pair gets its own select devices so that the
// write paths stay fully independent (the paper's reliability requirement)
// and each pair can be sensed alone:
//
//   shared core (10T): P1 P2 N1 N2, PC_VDD x2, PC_GND x2, P4, N4
//   per UPPER pair (5T): two transmission gates (p1s<->sp1_j, p2s<->sp2_j)
//                        + private header P3_j (vdd -> head_j)
//   per LOWER pair (3T): two NMOS selects (sn1<->w3_k, sn2<->w4_k)
//                        + private footer N3_k (tail_k -> gnd)
//
// The N = 2 instance of this generalized structure costs 18 transistors; the
// paper's hand-optimized 2-bit cell gets to 16 by exploiting that a SINGLE
// lower pair needs no selects (the GND pre-charge alone isolates it). The
// scalable cell keeps the selects so any number of lower pairs coexist.
//
// Restore is fully sequential: N/2 VDD-precharge discharge races (lower
// pairs), then N/2 GND-precharge charge races (upper pairs). Total restore
// latency grows linearly with N; the paper's wake-up budget (~120 ns, ref
// [30]) bounds the useful N — quantified by bench_extension_scaling.
#pragma once

#include <vector>

#include "cell/latch_common.hpp"
#include "cell/scenarios.hpp"
#include "mtj/device.hpp"
#include "spice/compiled.hpp"
#include "spice/workspace.hpp"

namespace nvff::cell {

/// Transistor count of the generalized N-bit cell (read path only).
constexpr int scalable_read_transistors(int bits) {
  return 10 + 5 * (bits / 2) + 3 * (bits - bits / 2);
}

/// MTJ count (always 2 per bit).
constexpr int scalable_mtj_count(int bits) { return 2 * bits; }

struct ScalableLatchInstance {
  spice::Circuit circuit;
  /// MTJ pair per bit: [bit] -> (true-side device, complement-side device).
  /// Lower-side bits come first (bit 0 .. N/2-1), then upper-side bits.
  std::vector<std::pair<mtj::MtjDevice*, mtj::MtjDevice*>> mtjs;
  /// Per-bit timing anchors.
  std::vector<double> evalStart;
  std::vector<double> captureAt;
  double tEnd = 0.0;
  int bits = 0;

  static constexpr const char* kOut = "out";
  static constexpr const char* kOutb = "outb";
};

class ScalableNvLatch {
public:
  /// Restore scenario for an N-bit cell holding `data` (data.size() = bits,
  /// bits even, >= 2). Sequential per-bit sensing.
  static ScalableLatchInstance build_read(const Technology& tech,
                                          const TechCorner& corner,
                                          const std::vector<bool>& data,
                                          const ReadTiming& phase);

  /// Store scenario: all bits written in parallel from complements.
  static ScalableLatchInstance build_write(const Technology& tech,
                                           const TechCorner& corner,
                                           const std::vector<bool>& data,
                                           const WriteTiming& timing);

  /// Idle scenario (leakage).
  static ScalableLatchInstance build_idle(const Technology& tech,
                                          const TechCorner& corner, int bits);
};

/// Compile-once / run-many restore deck (see standard_latch.hpp). The data
/// pattern is structural (it sets the write-rail control levels), so one deck
/// serves one pattern; corner / mismatch / MTJ state are patched per trial.
struct ScalableReadDeck {
  ScalableReadDeck(const Technology& tech, const TechCorner& corner,
                   const std::vector<bool>& data, const ReadTiming& phase);
  ScalableReadDeck(const ScalableReadDeck&) = delete;
  ScalableReadDeck& operator=(const ScalableReadDeck&) = delete;

  void patch(const TechCorner& corner, Rng* mismatchRng = nullptr,
             double sigmaVth = 0.0);

  ScalableLatchInstance inst;
  spice::CompiledCircuit compiled;
  spice::SimWorkspace ws;
  std::vector<bool> data;
};

/// Characterization summary of one N-bit cell (same definitions as
/// cell/characterize.hpp, normalized per bit where noted).
struct ScalableMetrics {
  int bits = 0;
  double readEnergy = 0.0;      ///< [J] full N-bit restore
  double readDelayTotal = 0.0;  ///< [s] sum of per-bit resolutions
  double restoreWallClock = 0.0; ///< [s] full sequence incl. precharges
  double leakage = 0.0;         ///< [W]
  double areaUm2 = 0.0;         ///< layout model (generalized transistor count)
  bool functional = false;
  int readTransistors = 0;
};

/// Measures an N-bit cell at the given corner (averages over a small set of
/// data patterns).
ScalableMetrics characterize_scalable(const Technology& tech, Corner corner,
                                      int bits, double timestep = 4e-12);

} // namespace nvff::cell
