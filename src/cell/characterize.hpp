// Circuit-level characterization harness (paper Section IV-B, Table II).
//
// Runs the latch netlists through the analog engine and extracts the design
// parameters the paper reports: read energy, read delay, leakage, write
// energy/latency, transistor count, cell area. Measurement definitions:
//
//  * read energy    — energy delivered by VDD over one complete restore
//                     sequence (precharge(s) + evaluation(s)) of ALL bits in
//                     the design, averaged over the stored-data values.
//  * read delay     — sense resolution time: sense-enable edge until the
//                     resolving output crosses 10 % / 90 % of the rail. For
//                     the 2-bit design the total is the SUM of the two
//                     sequential per-bit resolutions (the paper's "~2x").
//  * leakage        — VDD power at the DC operating point with every control
//                     inactive and the supply on.
//  * write energy   — VDD energy over the store window, all bits flipped.
//  * write latency  — write-enable edge until the last MTJ commits its flip.
//
// Standard-design numbers follow the paper's Table II convention: one latch
// is simulated and energy/leakage are doubled ("equal number of storage
// bits"), while the delay is that of a single latch (the two 1-bit latches
// restore in parallel).
#pragma once

#include <memory>

#include "cell/layout.hpp"
#include "cell/multibit_latch.hpp"
#include "cell/standard_latch.hpp"
#include "cell/technology.hpp"
#include "util/rng.hpp"

namespace nvff::cell {

/// One Table II column (all values in SI units).
struct LatchMetrics {
  double readEnergy = 0.0;  ///< [J] per 2-bit restore
  double readDelay = 0.0;   ///< [s] total restore resolution time
  double leakage = 0.0;     ///< [W]
  double writeEnergy = 0.0; ///< [J] per 2-bit store
  double writeLatency = 0.0; ///< [s]
  int readTransistors = 0;  ///< excluding write drivers
  double areaUm2 = 0.0;     ///< layout-model footprint
  bool functional = false;  ///< every simulated restore returned the data
};

/// Result of a single restore simulation.
struct ReadResult {
  double energy = 0.0;
  double delay = 0.0;  ///< single-bit resolution (standard) / sum (2-bit)
  bool correct = false;
};

/// Result of a single store simulation.
struct WriteResult {
  double energy = 0.0;
  double latency = 0.0;
  bool switched = false;
};

class Characterizer {
public:
  explicit Characterizer(Technology tech = Technology::table1());

  const Technology& technology() const { return tech_; }

  // --- single-scenario runs -------------------------------------------------
  ReadResult standard_read(Corner corner, bool storedBit) const;
  ReadResult proposed_read(Corner corner, bool d0, bool d1) const;
  /// Variants taking an explicit device-parameter set (Monte-Carlo studies
  /// inject sampled MTJ/CMOS parameters here). `mismatchRng`/`sigmaVth`
  /// additionally inject per-transistor local Vth variation.
  ReadResult standard_read_at(const TechCorner& tc, bool storedBit,
                              Rng* mismatchRng = nullptr, double sigmaVth = 0.0) const;
  ReadResult proposed_read_at(const TechCorner& tc, bool d0, bool d1,
                              Rng* mismatchRng = nullptr, double sigmaVth = 0.0) const;
  WriteResult standard_write(Corner corner, bool d) const;
  WriteResult proposed_write(Corner corner, bool d0, bool d1) const;
  double standard_leakage(Corner corner) const; ///< one latch [W]
  double proposed_leakage(Corner corner) const; ///< [W]

  // --- Table II rows ----------------------------------------------------------
  /// Metrics of TWO standard 1-bit latches (2-bit equivalent).
  LatchMetrics standard_pair(Corner corner) const;
  /// Metrics of the proposed 2-bit latch.
  LatchMetrics proposed_2bit(Corner corner) const;

  /// Verifies a full store -> power-off -> wake -> restore cycle returns the
  /// stored data. Returns true when the restored outputs match.
  bool standard_power_cycle_ok(Corner corner, bool d) const;
  bool proposed_power_cycle_ok(Corner corner, bool d0, bool d1) const;

  /// Transient step used by all runs (tests may coarsen for speed).
  double timestep = 2e-12;

private:
  Technology tech_;
  // Compile-once deck caches for the hot read paths (Monte-Carlo ablations
  // call *_read_at thousands of times). Built lazily, patched per call; the
  // cache only skips rebuild/re-factorization work, so results are unchanged.
  // Concurrent *_read_at calls on ONE Characterizer are not supported (use
  // one instance per thread, as the campaigns do).
  mutable std::unique_ptr<StandardReadDeck> standardReadDeck_;
  mutable std::unique_ptr<MultibitReadDeck> multibitReadDecks_[4];
};

} // namespace nvff::cell
