#include "cell/characterize.hpp"

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace nvff::cell {

using spice::Edge;
using spice::Simulator;
using spice::Solution;
using spice::SupplyEnergyMeter;
using spice::Trace;
using spice::TransientOptions;

namespace {

/// Power-up-like initial condition: every node at 0 V, as after the supply
/// was gated. Restore is *defined* to happen at wake-up, so read scenarios
/// start from this state for both designs — otherwise the standard latch
/// gets its output precharge "for free" from its idle leakage equilibrium
/// (its cross-coupled PMOS sources tie straight to VDD) and the comparison
/// is skewed.
Solution zero_state(const spice::Circuit& circuit) {
  return Solution(std::vector<double>(circuit.num_unknowns(), 0.0),
                  circuit.num_nodes());
}

/// Resolution instant: the falling output reaching 10 % of the rail (for a
/// VDD-precharged discharge race) or the rising output reaching 90 % (for a
/// GND-precharged charge race). Returns NaN if it never resolves.
double resolve_time(const Trace& trace, const std::string& fallingSignal, double vdd,
                    double tStart, Edge edge) {
  const double threshold = (edge == Edge::Falling) ? 0.1 * vdd : 0.9 * vdd;
  const auto t = trace.crossing_time(fallingSignal, threshold, edge, tStart);
  return t ? *t : std::numeric_limits<double>::quiet_NaN();
}

bool logic_level(double v, double vdd) { return v > 0.5 * vdd; }

} // namespace

Characterizer::Characterizer(Technology tech) : tech_(std::move(tech)) {}

ReadResult Characterizer::standard_read(Corner corner, bool storedBit) const {
  return standard_read_at(tech_.read_corner(corner), storedBit);
}

ReadResult Characterizer::standard_read_at(const TechCorner& tc, bool storedBit,
                                           Rng* mismatchRng, double sigmaVth) const {
  if (standardReadDeck_ == nullptr) {
    standardReadDeck_ = std::make_unique<StandardReadDeck>(
        tech_, tech_.read_corner(Corner::Typical), ReadTiming{});
  }
  StandardReadDeck& deck = *standardReadDeck_;
  deck.patch(tc, storedBit, mismatchRng, sigmaVth);
  StandardLatchInstance& inst = deck.inst;

  Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  SupplyEnergyMeter meter(inst.circuit, "VDD");

  Simulator sim(deck.compiled, deck.ws);
  TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = timestep;
  auto traceObs = trace.observer();
  sim.transient_from(zero_state(inst.circuit), opt, [&](double t, const Solution& s) {
    traceObs(t, s);
    meter.observe(t, s);
  });

  ReadResult r;
  r.energy = meter.energy();
  // The side whose MTJ is P (low resistance) discharges first.
  const std::string falling = storedBit ? "outb" : "out";
  r.delay = resolve_time(trace, falling, tech_.vdd, inst.tEvalStart, Edge::Falling) -
            inst.tEvalStart;
  r.correct = logic_level(trace.value_at("out", inst.tEnd), tech_.vdd) == storedBit &&
              logic_level(trace.value_at("outb", inst.tEnd), tech_.vdd) == !storedBit;
  return r;
}

ReadResult Characterizer::proposed_read(Corner corner, bool d0, bool d1) const {
  return proposed_read_at(tech_.read_corner(corner), d0, d1);
}

ReadResult Characterizer::proposed_read_at(const TechCorner& tc, bool d0, bool d1,
                                           Rng* mismatchRng, double sigmaVth) const {
  const int key = (d0 ? 1 : 0) | (d1 ? 2 : 0);
  if (multibitReadDecks_[key] == nullptr) {
    multibitReadDecks_[key] = std::make_unique<MultibitReadDeck>(
        tech_, tech_.read_corner(Corner::Typical), d0, d1, TwoBitReadTiming{},
        ControlScheme::OptimizedSinglePc);
  }
  MultibitReadDeck& deck = *multibitReadDecks_[key];
  deck.patch(tc, mismatchRng, sigmaVth);
  MultibitLatchInstance& inst = deck.inst;

  Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  SupplyEnergyMeter meter(inst.circuit, "VDD");

  Simulator sim(deck.compiled, deck.ws);
  TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = timestep;
  auto traceObs = trace.observer();
  sim.transient_from(zero_state(inst.circuit), opt, [&](double t, const Solution& s) {
    traceObs(t, s);
    meter.observe(t, s);
  });

  ReadResult r;
  r.energy = meter.energy();
  // Phase 0 (lower pair, VDD precharge): discharge race; out falls iff D0=0.
  const std::string fall0 = d0 ? "outb" : "out";
  const double t0 =
      resolve_time(trace, fall0, tech_.vdd, inst.tEval0Start, Edge::Falling);
  // Phase 1 (upper pair, GND precharge): charge race; out rises iff D1=1.
  const std::string rise1 = d1 ? "out" : "outb";
  const double t1 =
      resolve_time(trace, rise1, tech_.vdd, inst.tEval1Start, Edge::Rising);
  r.delay = (t0 - inst.tEval0Start) + (t1 - inst.tEval1Start);
  const bool ok0 =
      logic_level(trace.value_at("out", inst.tCapture0), tech_.vdd) == d0 &&
      logic_level(trace.value_at("outb", inst.tCapture0), tech_.vdd) == !d0;
  const bool ok1 =
      logic_level(trace.value_at("out", inst.tCapture1), tech_.vdd) == d1 &&
      logic_level(trace.value_at("outb", inst.tCapture1), tech_.vdd) == !d1;
  r.correct = ok0 && ok1;
  return r;
}

WriteResult Characterizer::standard_write(Corner corner, bool d) const {
  const TechCorner tc = tech_.write_corner(corner);
  WriteTiming timing{};
  auto inst = StandardNvLatch::build_write(tech_, tc, d, timing);

  SupplyEnergyMeter meter(inst.circuit, "VDD");
  Simulator sim(inst.circuit);
  TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = timestep;
  double lastFlip = std::numeric_limits<double>::quiet_NaN();
  int flips = 0;
  sim.transient(opt, [&](double t, const Solution& s) {
    meter.observe(t, s);
    const int nowFlips = inst.mtjOut->flip_count() + inst.mtjOutb->flip_count();
    if (nowFlips > flips) {
      flips = nowFlips;
      lastFlip = t;
    }
  });

  WriteResult r;
  r.energy = meter.energy();
  r.latency = lastFlip - timing.start;
  using mtj::MtjOrientation;
  const MtjOrientation wantOut = d ? MtjOrientation::AntiParallel : MtjOrientation::Parallel;
  r.switched = inst.mtjOut->orientation() == wantOut &&
               inst.mtjOutb->orientation() != wantOut;
  return r;
}

WriteResult Characterizer::proposed_write(Corner corner, bool d0, bool d1) const {
  const TechCorner tc = tech_.write_corner(corner);
  WriteTiming timing{};
  auto inst = MultibitNvLatch::build_write(tech_, tc, d0, d1, timing);

  SupplyEnergyMeter meter(inst.circuit, "VDD");
  Simulator sim(inst.circuit);
  TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = timestep;
  double lastFlip = std::numeric_limits<double>::quiet_NaN();
  int flips = 0;
  sim.transient(opt, [&](double t, const Solution& s) {
    meter.observe(t, s);
    const int nowFlips = inst.mtj1->flip_count() + inst.mtj2->flip_count() +
                         inst.mtj3->flip_count() + inst.mtj4->flip_count();
    if (nowFlips > flips) {
      flips = nowFlips;
      lastFlip = t;
    }
  });

  WriteResult r;
  r.energy = meter.energy();
  r.latency = lastFlip - timing.start;
  using mtj::MtjOrientation;
  const MtjOrientation m1 = d1 ? MtjOrientation::Parallel : MtjOrientation::AntiParallel;
  const MtjOrientation m3 = d0 ? MtjOrientation::AntiParallel : MtjOrientation::Parallel;
  r.switched = inst.mtj1->orientation() == m1 && inst.mtj2->orientation() != m1 &&
               inst.mtj3->orientation() == m3 && inst.mtj4->orientation() != m3;
  return r;
}

double Characterizer::standard_leakage(Corner corner) const {
  const TechCorner tc = tech_.leakage_corner(corner);
  auto inst = StandardNvLatch::build_idle(tech_, tc);
  Simulator sim(inst.circuit);
  const Solution op = sim.dc_operating_point();
  const auto* vdd =
      dynamic_cast<const spice::VoltageSource*>(inst.circuit.find_device("VDD"));
  return vdd->delivered_current(op.as_state()) * tech_.vdd;
}

double Characterizer::proposed_leakage(Corner corner) const {
  const TechCorner tc = tech_.leakage_corner(corner);
  auto inst = MultibitNvLatch::build_idle(tech_, tc);
  Simulator sim(inst.circuit);
  const Solution op = sim.dc_operating_point();
  const auto* vdd =
      dynamic_cast<const spice::VoltageSource*>(inst.circuit.find_device("VDD"));
  return vdd->delivered_current(op.as_state()) * tech_.vdd;
}

LatchMetrics Characterizer::standard_pair(Corner corner) const {
  LatchMetrics m;
  // Average the two data values, then double for the pair (paper Table II:
  // "we have multiplied all single bit standard latch results by a factor of
  // two, except for the layout area").
  const ReadResult r0 = standard_read(corner, false);
  const ReadResult r1 = standard_read(corner, true);
  m.readEnergy = r0.energy + r1.energy; // = 2 * average
  m.readDelay = 0.5 * (r0.delay + r1.delay); // parallel restore: no doubling
  m.functional = r0.correct && r1.correct;

  const WriteResult w0 = standard_write(corner, false);
  const WriteResult w1 = standard_write(corner, true);
  m.writeEnergy = w0.energy + w1.energy;
  m.writeLatency = 0.5 * (w0.latency + w1.latency);
  m.functional = m.functional && w0.switched && w1.switched;

  m.leakage = 2.0 * standard_leakage(corner);
  m.readTransistors = 2 * StandardNvLatch::kReadTransistors;
  m.areaUm2 = standard_pair_area_um2();
  return m;
}

LatchMetrics Characterizer::proposed_2bit(Corner corner) const {
  LatchMetrics m;
  // Average over the four data combinations.
  double energy = 0.0;
  double delay = 0.0;
  bool functional = true;
  for (int v = 0; v < 4; ++v) {
    const ReadResult r = proposed_read(corner, (v & 1) != 0, (v & 2) != 0);
    energy += r.energy;
    delay += r.delay;
    functional = functional && r.correct;
  }
  m.readEnergy = energy / 4.0;
  m.readDelay = delay / 4.0;

  double wEnergy = 0.0;
  double wLatency = 0.0;
  for (int v = 0; v < 4; ++v) {
    const WriteResult w = proposed_write(corner, (v & 1) != 0, (v & 2) != 0);
    wEnergy += w.energy;
    wLatency = std::max(wLatency, w.latency);
    functional = functional && w.switched;
  }
  m.writeEnergy = wEnergy / 4.0;
  m.writeLatency = wLatency;
  m.functional = functional;

  m.leakage = proposed_leakage(corner);
  m.readTransistors = MultibitNvLatch::kReadTransistors;
  m.areaUm2 = proposed_2bit_area_um2();
  return m;
}

bool Characterizer::standard_power_cycle_ok(Corner corner, bool d) const {
  const TechCorner tc = tech_.read_corner(corner);
  PowerCycleTiming timing{};
  auto inst = StandardNvLatch::build_power_cycle(tech_, tc, d, timing);

  Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  Simulator sim(inst.circuit);
  TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = timestep;
  sim.transient(opt, trace.observer());

  return logic_level(trace.value_at("out", inst.tEnd), tech_.vdd) == d &&
         logic_level(trace.value_at("outb", inst.tEnd), tech_.vdd) == !d;
}

bool Characterizer::proposed_power_cycle_ok(Corner corner, bool d0, bool d1) const {
  const TechCorner tc = tech_.read_corner(corner);
  PowerCycleTiming timing{};
  auto inst = MultibitNvLatch::build_power_cycle(tech_, tc, d0, d1, timing);

  Trace trace;
  trace.watch_node(inst.circuit, "out");
  trace.watch_node(inst.circuit, "outb");
  Simulator sim(inst.circuit);
  TransientOptions opt;
  opt.tStop = inst.tEnd;
  opt.dt = timestep;
  sim.transient(opt, trace.observer());

  const bool ok0 =
      logic_level(trace.value_at("out", inst.tCapture0), tech_.vdd) == d0;
  const bool ok1 =
      logic_level(trace.value_at("out", inst.tCapture1), tech_.vdd) == d1;
  return ok0 && ok1;
}

} // namespace nvff::cell
