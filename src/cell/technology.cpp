#include "cell/technology.hpp"

namespace nvff::cell {

const char* corner_name(Corner corner) {
  switch (corner) {
    case Corner::Worst: return "worst";
    case Corner::Typical: return "typical";
    case Corner::Best: return "best";
  }
  return "?";
}

Technology Technology::table1() { return Technology{}; }

TechCorner Technology::read_corner(Corner corner) const {
  TechCorner tc;
  switch (corner) {
    case Corner::Typical:
      tc.nmos = spice::MosParams::nmos_40nm_lp();
      tc.pmos = spice::MosParams::pmos_40nm_lp();
      tc.mtj = mtj::MtjParams::table1();
      break;
    case Corner::Worst:
      // Slow CMOS + weak sensing window: higher RA (less read current),
      // lower TMR (smaller resistance contrast).
      tc.nmos = spice::MosParams::nmos_40nm_lp().at_corner(spice::CmosCorner::SlowSlow);
      tc.pmos = spice::MosParams::pmos_40nm_lp().at_corner(spice::CmosCorner::SlowSlow);
      tc.mtj = mtj::MtjParams::table1().at_sigma(+3.0, -3.0, 0.0);
      break;
    case Corner::Best:
      tc.nmos = spice::MosParams::nmos_40nm_lp().at_corner(spice::CmosCorner::FastFast);
      tc.pmos = spice::MosParams::pmos_40nm_lp().at_corner(spice::CmosCorner::FastFast);
      tc.mtj = mtj::MtjParams::table1().at_sigma(-3.0, +3.0, 0.0);
      break;
  }
  return tc;
}

TechCorner Technology::leakage_corner(Corner corner) const {
  TechCorner tc;
  tc.mtj = mtj::MtjParams::table1();
  switch (corner) {
    case Corner::Typical:
      tc.nmos = spice::MosParams::nmos_40nm_lp();
      tc.pmos = spice::MosParams::pmos_40nm_lp();
      break;
    case Corner::Worst:
      // Leakage is worst on the fast (low-Vth) corner.
      tc.nmos = spice::MosParams::nmos_40nm_lp().at_corner(spice::CmosCorner::FastFast);
      tc.pmos = spice::MosParams::pmos_40nm_lp().at_corner(spice::CmosCorner::FastFast);
      break;
    case Corner::Best:
      tc.nmos = spice::MosParams::nmos_40nm_lp().at_corner(spice::CmosCorner::SlowSlow);
      tc.pmos = spice::MosParams::pmos_40nm_lp().at_corner(spice::CmosCorner::SlowSlow);
      break;
  }
  return tc;
}

TechCorner Technology::write_corner(Corner corner) const {
  TechCorner tc;
  switch (corner) {
    case Corner::Typical:
      tc.nmos = spice::MosParams::nmos_40nm_lp();
      tc.pmos = spice::MosParams::pmos_40nm_lp();
      tc.mtj = mtj::MtjParams::table1();
      break;
    case Corner::Worst:
      // Hardest write: high switching threshold and weak drivers.
      tc.nmos = spice::MosParams::nmos_40nm_lp().at_corner(spice::CmosCorner::SlowSlow);
      tc.pmos = spice::MosParams::pmos_40nm_lp().at_corner(spice::CmosCorner::SlowSlow);
      tc.mtj = mtj::MtjParams::table1().at_sigma(+3.0, 0.0, +3.0);
      break;
    case Corner::Best:
      tc.nmos = spice::MosParams::nmos_40nm_lp().at_corner(spice::CmosCorner::FastFast);
      tc.pmos = spice::MosParams::pmos_40nm_lp().at_corner(spice::CmosCorner::FastFast);
      tc.mtj = mtj::MtjParams::table1().at_sigma(-3.0, 0.0, -3.0);
      break;
  }
  return tc;
}

CmosCellLibrary CmosCellLibrary::tsmc40_like() { return CmosCellLibrary{}; }

} // namespace nvff::cell
