// The proposed 2-bit non-volatile shadow latch (paper Fig. 5).
//
// Topology (16 read-path transistors + 4 MTJs + 16 write transistors):
//
//                       vdd
//                        |
//                       P3  (upper read enable, gate p3b)
//                        |
//                      head
//                     /      \
//                  MTJ1      MTJ2        upper pair (bit D1)
//                   sp1       sp2        upper write terminals
//                    T1        T2        transmission gates (Ren)
//                   p1s --P4-- p2s       P4 equalizer (lower read)
//                    |          |
//   vdd -Ppcv1-+    P1          P2    +-Ppcv2- vdd    VDD-precharge
//              |     |          |     |
//              +--- out        outb---+
//              |     |          |     |
//   gnd -Npcg1-+    N1          N2    +-Npcg2- gnd    GND-precharge
//                    |          |
//                   sn1 --N4-- sn2       N4 equalizer (upper read)
//                  MTJ3      MTJ4        lower pair (bit D0)
//                     \      /           (sn1/sn2 are the lower write
//                      tail               terminals, no T-gates needed:
//                       |                 out/outb are clamped to GND
//                      N3 (Ren)           during the store so N1/N2 stay
//                       |                 off)
//                      gnd
//
// P1/P2/N1/N2 form the shared cross-coupled sense amplifier. The two bits
// are restored sequentially: precharge out/outb to VDD and race the lower
// discharge paths (bit D0), then precharge to GND and race the upper charge
// paths (bit D1). That sequential reuse of one sense amplifier is the
// paper's core idea; the two bits' write paths stay fully independent.
//
// Bit conventions:  D0 = 1 <=> MTJ3 = AP (out resolves high in phase 1)
//                   D1 = 1 <=> MTJ1 = P  (out resolves high in phase 2)
#pragma once

#include "cell/latch_common.hpp"
#include "cell/scenarios.hpp"
#include "mtj/device.hpp"
#include "spice/compiled.hpp"
#include "spice/workspace.hpp"

namespace nvff::cell {

/// Restore sequence of both bits: two precharge+evaluate phases.
struct TwoBitReadTiming {
  ReadTiming phase{};       ///< shape of each phase
  double interPhaseGap = 0.1e-9;

  double phase0Start() const { return phase.start; }
  double phase0EvalStart() const { return phase.evalStart(); }
  double phase0End() const { return phase.evalEnd(); }
  double phase1Start() const { return phase0End() + interPhaseGap; }
  double phase1EvalStart() const { return phase1Start() + phase.precharge; }
  double phase1End() const { return phase1EvalStart() + phase.evaluate; }
  double total() const { return phase1End() + phase.gap; }
};

/// Control-generation scheme (paper Fig. 7): the explicit scheme exposes
/// PC_VDD, PC_GND and SEL-class signals individually; the optimized scheme
/// derives everything from a single PC plus Ren. Electrically the applied
/// gate waveforms are the same; the difference is how many externally routed
/// control nets toggle (measured by the Fig. 7 bench).
enum class ControlScheme { ThreeSignal, OptimizedSinglePc };

struct MultibitLatchInstance {
  spice::Circuit circuit;
  mtj::MtjDevice* mtj1 = nullptr; ///< upper pair, out side (D1)
  mtj::MtjDevice* mtj2 = nullptr; ///< upper pair, outb side
  mtj::MtjDevice* mtj3 = nullptr; ///< lower pair, out side (D0)
  mtj::MtjDevice* mtj4 = nullptr; ///< lower pair, outb side
  double tEval0Start = 0.0; ///< lower-bit sense enable
  double tCapture0 = 0.0;   ///< when out == D0 is valid
  double tEval1Start = 0.0; ///< upper-bit sense enable
  double tCapture1 = 0.0;   ///< when out == D1 is valid
  double tEnd = 0.0;

  static constexpr const char* kOut = "out";
  static constexpr const char* kOutb = "outb";
  static constexpr const char* kVdd = "VDD";
};

class MultibitNvLatch {
public:
  static constexpr int kReadTransistors = 16; ///< paper Table II
  static constexpr int kWriteTransistors = 16; ///< four tristate inverters
  static constexpr int kMtjCount = 4;

  /// Restore scenario: MTJs preset to hold (d0, d1); sequential 2-bit read.
  /// `mismatchRng`/`sigmaVth` inject per-transistor local Vth variation
  /// (sense-amplifier offset studies); nullptr disables mismatch.
  static MultibitLatchInstance build_read(const Technology& tech,
                                          const TechCorner& corner, bool d0, bool d1,
                                          const TwoBitReadTiming& timing,
                                          ControlScheme scheme = ControlScheme::OptimizedSinglePc,
                                          Rng* mismatchRng = nullptr,
                                          double sigmaVth = 0.0);

  /// Store scenario: write (d0, d1) in parallel from the opposite states.
  static MultibitLatchInstance build_write(const Technology& tech,
                                           const TechCorner& corner, bool d0, bool d1,
                                           const WriteTiming& timing);

  /// Idle scenario for leakage measurement.
  static MultibitLatchInstance build_idle(const Technology& tech,
                                          const TechCorner& corner);

  /// Full normally-off cycle for both bits. `mismatchRng`/`sigmaVth` inject
  /// per-transistor local Vth variation as in build_read (Monte-Carlo
  /// trials run whole cycles under mismatch).
  static MultibitLatchInstance build_power_cycle(const Technology& tech,
                                                 const TechCorner& corner, bool d0,
                                                 bool d1,
                                                 const PowerCycleTiming& timing,
                                                 Rng* mismatchRng = nullptr,
                                                 double sigmaVth = 0.0);
};

// --- compile-once / run-many deck templates (see standard_latch.hpp) --------
//
// The 2-bit cell's controls carry the data values (d0/d1 set the initial
// write-rail levels), so the data pair is structural for BOTH scenarios:
// campaigns keep one deck per (d0, d1) combination and patch corner / Vth
// mismatch / MTJ state per trial.

/// Power-cycle deck for one (d0, d1) combination.
struct MultibitPowerCycleDeck {
  MultibitPowerCycleDeck(const Technology& tech, const TechCorner& corner, bool d0,
                         bool d1, const PowerCycleTiming& timing);
  MultibitPowerCycleDeck(const MultibitPowerCycleDeck&) = delete;
  MultibitPowerCycleDeck& operator=(const MultibitPowerCycleDeck&) = delete;

  /// Transistors to `corner` (+ mismatch draws in build order); MTJs back to
  /// the complement-of-(d0,d1) preset the power cycle starts from.
  void patch(const TechCorner& corner, Rng* mismatchRng = nullptr,
             double sigmaVth = 0.0);

  MultibitLatchInstance inst;
  spice::CompiledCircuit compiled;
  spice::SimWorkspace ws;
  bool d0;
  bool d1;
};

/// Restore-scenario deck for one (d0, d1) combination.
struct MultibitReadDeck {
  MultibitReadDeck(const Technology& tech, const TechCorner& corner, bool d0,
                   bool d1, const TwoBitReadTiming& timing,
                   ControlScheme scheme = ControlScheme::OptimizedSinglePc);
  MultibitReadDeck(const MultibitReadDeck&) = delete;
  MultibitReadDeck& operator=(const MultibitReadDeck&) = delete;

  void patch(const TechCorner& corner, Rng* mismatchRng = nullptr,
             double sigmaVth = 0.0);

  MultibitLatchInstance inst;
  spice::CompiledCircuit compiled;
  spice::SimWorkspace ws;
  bool d0;
  bool d1;
};

} // namespace nvff::cell
