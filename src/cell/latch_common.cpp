#include "cell/latch_common.hpp"

#include "erc/circuit_erc.hpp"

namespace nvff::cell {

using spice::kGround;
using spice::NodeId;

void patch_transistors(spice::Circuit& circuit, const TechCorner& corner,
                       Rng* mismatchRng, double sigmaVthMismatch) {
  for (const auto& dev : circuit.devices()) {
    auto* mos = dynamic_cast<spice::Mosfet*>(dev.get());
    if (mos == nullptr) continue;
    spice::MosParams p =
        mos->type() == spice::MosType::Pmos ? corner.pmos : corner.nmos;
    if (mismatchRng != nullptr && sigmaVthMismatch > 0.0) {
      p.vth += mismatchRng->normal(0.0, sigmaVthMismatch);
    }
    mos->set_params(p);
  }
}

void add_tristate_inverter(BuildContext& ctx, const std::string& prefix, NodeId in,
                           NodeId out, NodeId en, NodeId enB) {
  spice::Circuit& c = *ctx.circuit;
  const NodeId pMid = c.node(prefix + ".pmid");
  const NodeId nMid = c.node(prefix + ".nmid");
  // Pull-up stack: input PMOS then enable PMOS (enB low = enabled).
  c.add_pmos(prefix + ".PIN", pMid, in, ctx.vdd, ctx.vdd,
             ctx.pgeom(ctx.tech->wWriteP), ctx.pparams());
  c.add_pmos(prefix + ".PEN", out, enB, pMid, ctx.vdd,
             ctx.pgeom(ctx.tech->wWriteP), ctx.pparams());
  // Pull-down stack.
  c.add_nmos(prefix + ".NEN", out, en, nMid, kGround,
             ctx.ngeom(ctx.tech->wWriteN), ctx.nparams());
  c.add_nmos(prefix + ".NIN", nMid, in, kGround, kGround,
             ctx.ngeom(ctx.tech->wWriteN), ctx.nparams());
}

void add_transmission_gate(BuildContext& ctx, const std::string& prefix, NodeId a,
                           NodeId b, NodeId ctl, NodeId ctlB) {
  spice::Circuit& c = *ctx.circuit;
  c.add_nmos(prefix + ".TN", a, ctl, b, kGround, ctx.ngeom(ctx.tech->wTgate),
             ctx.nparams());
  c.add_pmos(prefix + ".TP", a, ctlB, b, ctx.vdd, ctx.pgeom(ctx.tech->wTgate),
             ctx.pparams());
}

ControlSignal::ControlSignal(double vdd, double rampTime, bool initialHigh)
    : vdd_(vdd), ramp_(rampTime), lastHigh_(initialHigh) {
  pwl_.add_point(0.0, initialHigh ? vdd_ : 0.0);
}

void ControlSignal::set_at(double t, bool high) {
  if (high == lastHigh_) return;
  pwl_.add_step(t, high ? vdd_ : 0.0, ramp_);
  lastHigh_ = high;
}

void ControlSignal::pulse(double t0, double t1) {
  set_at(t0, true);
  set_at(t1, false);
}

void ControlSignal::pulse_low(double t0, double t1) {
  set_at(t0, false);
  set_at(t1, true);
}

spice::Waveform ControlSignal::waveform() const { return spice::Waveform::pwl(pwl_); }

void ControlSignal::install(spice::Circuit& circuit, const std::string& name) const {
  circuit.add_vsource("V" + name, circuit.node(name), kGround, waveform());
}

void erc_self_check(const spice::Circuit& circuit, const char* context) {
#ifdef NVFF_ERC_SELF_CHECK
  erc::require_clean(circuit, context);
#else
  (void)circuit;
  (void)context;
#endif
}

} // namespace nvff::cell
