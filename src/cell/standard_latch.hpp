// The state-of-the-art single-bit NV shadow latch (paper Fig. 2b).
//
// Topology (11 read-path transistors + 2 MTJs + 8 write transistors):
//
//          vdd        vdd   vdd        vdd
//           |          |     |          |
//         Ppc1         P1    P2        Ppc2      pre-charge + cross-coupled
//           |     .----+--x--+----.     |          PMOS pair
//           +-----|   out   outb  |-----+
//                 N1   |     |    N2              cross-coupled NMOS pair
//                  \  sn1   sn2  /
//                   T1 |     | T2                 isolation transmission gates
//                     w1     w2                   write terminals
//                    MTJa   MTJb                  complementary MTJ pair
//                      \     /
//                       tail
//                        |
//                      Nfoot (SEN)                sense-enable footer
//                        |
//                       gnd
//
// Write: tristate inverters drive w1/w2 with complementary rails; the
// current w2 -> tail -> w1 (or reverse) writes the two MTJs into opposite
// states. Read: pre-charge out/outb to VDD, then race the two discharge
// paths through the MTJs; the lower-resistance side loses its charge first
// and the cross-coupled pair regenerates a full-rail complementary output.
// Stored bit convention: D = 1 <=> MTJa (under `out`) is AP <=> `out`
// resolves to 1 on restore.
#pragma once

#include "cell/latch_common.hpp"
#include "cell/scenarios.hpp"
#include "mtj/device.hpp"
#include "spice/compiled.hpp"
#include "spice/workspace.hpp"

namespace nvff::cell {

/// A built testbench around one standard latch.
struct StandardLatchInstance {
  spice::Circuit circuit;
  mtj::MtjDevice* mtjOut = nullptr;  ///< MTJ on the `out` discharge path
  mtj::MtjDevice* mtjOutb = nullptr; ///< MTJ on the `outb` discharge path
  double tEvalStart = 0.0; ///< sense-enable rise (read scenarios)
  double tEnd = 0.0;       ///< transient stop time

  static constexpr const char* kOut = "out";
  static constexpr const char* kOutb = "outb";
  static constexpr const char* kVdd = "VDD";
};

/// Builder for the standard 1-bit NV latch in the scenarios the paper's
/// Table II evaluation needs.
class StandardNvLatch {
public:
  /// Read-path transistor count (excludes write drivers), paper Table II
  /// reports 22 for two latches.
  static constexpr int kReadTransistors = 11;
  /// Write driver transistors (two tristate inverters).
  static constexpr int kWriteTransistors = 8;
  static constexpr int kMtjCount = 2;

  /// Restore scenario: MTJs preset to hold `storedBit`, supply always on,
  /// one precharge + evaluate sequence.
  static StandardLatchInstance build_read(const Technology& tech,
                                          const TechCorner& corner, bool storedBit,
                                          const ReadTiming& timing,
                                          Rng* mismatchRng = nullptr,
                                          double sigmaVth = 0.0);

  /// Store scenario: write `d`, starting from the opposite stored state.
  static StandardLatchInstance build_write(const Technology& tech,
                                           const TechCorner& corner, bool d,
                                           const WriteTiming& timing);

  /// Idle scenario for leakage: supply on, every control inactive.
  static StandardLatchInstance build_idle(const Technology& tech,
                                          const TechCorner& corner);

  /// Full normally-off cycle: store `d`, collapse the supply, wake, restore.
  /// `mismatchRng`/`sigmaVth` inject per-transistor local Vth variation as
  /// in build_read (Monte-Carlo trials run whole cycles under mismatch).
  static StandardLatchInstance build_power_cycle(const Technology& tech,
                                                 const TechCorner& corner, bool d,
                                                 const PowerCycleTiming& timing,
                                                 Rng* mismatchRng = nullptr,
                                                 double sigmaVth = 0.0);
};

// --- compile-once / run-many deck templates ---------------------------------
//
// A deck template is a built instance plus its compiled form and a reusable
// workspace. The structural knobs (control waveforms — here the stored data
// bit and the timing) are fixed at construction; the per-trial knobs (corner,
// local Vth mismatch, MTJ models/orientations/defects) are re-applied with
// patch(), which restores the exact state a fresh build with the same
// arguments would have — bit-identical, including the mismatch draw order.
// One deck belongs to one thread; campaigns keep a pool per worker.

/// Power-cycle deck for one data value (the controls encode `d`).
struct StandardPowerCycleDeck {
  StandardPowerCycleDeck(const Technology& tech, const TechCorner& corner, bool d,
                         const PowerCycleTiming& timing);
  StandardPowerCycleDeck(const StandardPowerCycleDeck&) = delete;
  StandardPowerCycleDeck& operator=(const StandardPowerCycleDeck&) = delete;

  /// Re-parameterizes the deck for a new trial: transistors to `corner` (+
  /// mismatch draws in build order), MTJs back to the just-built preset for
  /// `d` (models from corner.mtj, defects cleared, progress zeroed).
  void patch(const TechCorner& corner, Rng* mismatchRng = nullptr,
             double sigmaVth = 0.0);

  StandardLatchInstance inst;
  spice::CompiledCircuit compiled;
  spice::SimWorkspace ws;
  bool d;
};

/// Restore-scenario deck. The read controls are data-independent, so the
/// stored bit is a patch()-time knob here, not a structural one.
struct StandardReadDeck {
  StandardReadDeck(const Technology& tech, const TechCorner& corner,
                   const ReadTiming& timing);
  StandardReadDeck(const StandardReadDeck&) = delete;
  StandardReadDeck& operator=(const StandardReadDeck&) = delete;

  void patch(const TechCorner& corner, bool storedBit, Rng* mismatchRng = nullptr,
             double sigmaVth = 0.0);

  StandardLatchInstance inst;
  spice::CompiledCircuit compiled;
  spice::SimWorkspace ws;
};

} // namespace nvff::cell
