// Track-based standard-cell layout/area model (paper Fig. 8, Table II).
//
// The paper drew full custom layouts in Cadence Virtuoso; we replace that
// with an analytic model of a 12-track cell:
//
//   height = tracks * trackPitch                       (1.68 um)
//   width  = columns * columnPitch + mtjs * mtjPitch + overhead
//
// where `columns` is the number of P/N transistor columns (two stacked
// transistors share a column, as in any standard cell) and `mtjPitch`
// accounts for the via landing pads of the MTJ pillars (the pillars
// themselves live between M1 and M2 above the active area).
//
// The two free parameters (columnPitch, overhead) are calibrated on the two
// published layout measurements — standard pair 5.635 um^2 (two cells plus
// the minimum spacing margin) and proposed cell 3.696 um^2 — and the model
// is then used consistently everywhere (Table II, Table III, Fig. 9). See
// EXPERIMENTS.md for the calibration arithmetic.
#pragma once

#include <string>

namespace nvff::cell {

struct LayoutParams {
  int tracks = 12;
  double trackPitchUm = 0.14;  ///< 12 tracks -> 1.68 um cell height
  double columnPitchUm = 0.2439583; ///< calibrated (see file comment)
  double mtjPitchUm = 0.06;    ///< MTJ via landing per pillar
  double overheadUm = 0.008333; ///< calibrated well/boundary overhead
  double minSpacingUm = 0.17;  ///< minimum inter-cell spacing margin

  static LayoutParams tsmc40_like() { return LayoutParams{}; }
};

/// Area/footprint of one custom NV cell.
class CellLayout {
public:
  CellLayout(std::string name, int transistors, int mtjs,
             LayoutParams params = LayoutParams::tsmc40_like());

  const std::string& name() const { return name_; }
  int transistors() const { return transistors_; }
  int mtjs() const { return mtjs_; }
  int columns() const { return (transistors_ + 1) / 2; }

  double height_um() const;
  double width_um() const;
  double area_um2() const { return height_um() * width_um(); }

  /// ASCII rendering of the track plan (Fig. 8 stand-in): rails, device
  /// columns, MTJ pillars.
  std::string track_map() const;

private:
  std::string name_;
  int transistors_;
  int mtjs_;
  LayoutParams params_;
};

/// The three published footprints.
/// Single standard 1-bit NV cell (11 transistors + 2 MTJs).
CellLayout standard_1bit_layout();
/// Proposed 2-bit NV cell (16 transistors + 4 MTJs); area 3.696 um^2.
CellLayout proposed_2bit_layout();

/// Area of TWO standard cells plus the minimum spacing margin, the way the
/// paper reports the "two standard 1-bit latch" area (5.635 um^2).
double standard_pair_area_um2(const LayoutParams& params = LayoutParams::tsmc40_like());

/// Per-bit shadow-cell areas used by the Table III roll-up.
double standard_per_bit_area_um2();
double proposed_2bit_area_um2();

/// The pairing distance threshold of the system-level flow: twice the width
/// of the standard NV component (paper: <= 3.35 um).
double pairing_distance_threshold_um();

} // namespace nvff::cell
