#include "cell/scalable_latch.hpp"

#include <stdexcept>

#include "cell/layout.hpp"
#include "spice/analysis.hpp"
#include "spice/trace.hpp"
#include "util/strings.hpp"

namespace nvff::cell {

using spice::kGround;
using spice::NodeId;
using spice::Waveform;

namespace {

struct ScalableControls {
  ControlSignal pcvb;
  ControlSignal pcg;
  ControlSignal p4b;
  ControlSignal n4;
  ControlSignal wen;
  ControlSignal wenb;
  std::vector<ControlSignal> selLo;  ///< per lower pair
  std::vector<ControlSignal> selUp;  ///< per upper pair
  std::vector<ControlSignal> selUpB; ///< complements (T-gate PMOS + P3 gates)
  std::vector<ControlSignal> data;   ///< per bit
  std::vector<ControlSignal> dataB;

  ScalableControls(double vdd, double ramp, const std::vector<bool>& bits,
                   std::size_t lower, std::size_t upper)
      : pcvb(vdd, ramp, true),
        pcg(vdd, ramp, false),
        p4b(vdd, ramp, true),
        n4(vdd, ramp, false),
        wen(vdd, ramp, false),
        wenb(vdd, ramp, true) {
    for (std::size_t k = 0; k < lower; ++k) selLo.emplace_back(vdd, ramp, false);
    for (std::size_t j = 0; j < upper; ++j) {
      selUp.emplace_back(vdd, ramp, false);
      selUpB.emplace_back(vdd, ramp, true);
    }
    for (bool b : bits) {
      data.emplace_back(vdd, ramp, b);
      dataB.emplace_back(vdd, ramp, !b);
    }
  }

  void install(spice::Circuit& c) const {
    pcvb.install(c, "pcvb");
    pcg.install(c, "pcg");
    p4b.install(c, "p4b");
    n4.install(c, "n4");
    wen.install(c, "wen");
    wenb.install(c, "wenb");
    for (std::size_t k = 0; k < selLo.size(); ++k) {
      selLo[k].install(c, format("sel_lo%zu", k));
    }
    for (std::size_t j = 0; j < selUp.size(); ++j) {
      selUp[j].install(c, format("sel_up%zu", j));
      selUpB[j].install(c, format("sel_up%zub", j));
    }
    for (std::size_t b = 0; b < data.size(); ++b) {
      data[b].install(c, format("d%zu", b));
      dataB[b].install(c, format("d%zub", b));
    }
  }
};

mtj::MtjOrientation lower_true_state(bool d) {
  return d ? mtj::MtjOrientation::AntiParallel : mtj::MtjOrientation::Parallel;
}
mtj::MtjOrientation upper_true_state(bool d) {
  return d ? mtj::MtjOrientation::Parallel : mtj::MtjOrientation::AntiParallel;
}
mtj::MtjOrientation flip(mtj::MtjOrientation s) {
  return s == mtj::MtjOrientation::Parallel ? mtj::MtjOrientation::AntiParallel
                                            : mtj::MtjOrientation::Parallel;
}

/// Builds the N-bit netlist. `data` selects MTJ preset states (complemented
/// when `presetComplement` — write scenarios start from the opposite data).
void build_scalable(BuildContext& ctx, ScalableLatchInstance& inst,
                    const std::vector<bool>& data, bool presetComplement) {
  spice::Circuit& c = *ctx.circuit;
  const Technology& tech = *ctx.tech;
  const TechCorner& corner = *ctx.corner;
  const NodeId vdd = ctx.vdd;
  const std::size_t bits = data.size();
  const std::size_t lower = bits / 2;
  const std::size_t upper = bits - lower;

  const NodeId out = c.node("out");
  const NodeId outb = c.node("outb");
  const NodeId p1s = c.node("p1s");
  const NodeId p2s = c.node("p2s");
  const NodeId sn1 = c.node("sn1");
  const NodeId sn2 = c.node("sn2");
  const NodeId pcvb = c.node("pcvb");
  const NodeId pcg = c.node("pcg");
  const NodeId p4b = c.node("p4b");
  const NodeId n4 = c.node("n4");
  const NodeId wen = c.node("wen");
  const NodeId wenb = c.node("wenb");

  // Shared core.
  c.add_pmos("Ppcv1", out, pcvb, vdd, vdd, ctx.pgeom(tech.wPrecharge), ctx.pparams());
  c.add_pmos("Ppcv2", outb, pcvb, vdd, vdd, ctx.pgeom(tech.wPrecharge), ctx.pparams());
  c.add_nmos("Npcg1", out, pcg, kGround, kGround, ctx.ngeom(tech.wPrecharge),
             ctx.nparams());
  c.add_nmos("Npcg2", outb, pcg, kGround, kGround, ctx.ngeom(tech.wPrecharge),
             ctx.nparams());
  c.add_pmos("P1", out, outb, p1s, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_pmos("P2", outb, out, p2s, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_nmos("N1", out, outb, sn1, kGround, ctx.ngeom(tech.wSenseN), ctx.nparams());
  c.add_nmos("N2", outb, out, sn2, kGround, ctx.ngeom(tech.wSenseN), ctx.nparams());
  c.add_pmos("P4", p1s, p4b, p2s, vdd, ctx.pgeom(tech.wEqualizer), ctx.pparams());
  c.add_nmos("N4", sn1, n4, sn2, kGround, ctx.ngeom(tech.wEqualizer), ctx.nparams());
  c.add_capacitor("Cw.out", out, kGround, tech.cWire);
  c.add_capacitor("Cw.outb", outb, kGround, tech.cWire);

  inst.mtjs.resize(bits);

  // Lower pairs (bits 0 .. lower-1).
  for (std::size_t k = 0; k < lower; ++k) {
    const bool d = presetComplement ? !data[k] : data[k];
    const NodeId w3 = c.node(format("w3_%zu", k));
    const NodeId w4 = c.node(format("w4_%zu", k));
    const NodeId tail = c.node(format("tail_%zu", k));
    const NodeId sel = c.node(format("sel_lo%zu", k));
    c.add_nmos(format("SN1_%zu", k), sn1, sel, w3, kGround, ctx.ngeom(tech.wTgate),
               ctx.nparams());
    c.add_nmos(format("SN2_%zu", k), sn2, sel, w4, kGround, ctx.ngeom(tech.wTgate),
               ctx.nparams());
    auto& mtjT = c.add_device<mtj::MtjDevice>(format("MTJ3_%zu", k), w3, tail,
                                              mtj::MtjModel(corner.mtj),
                                              lower_true_state(d));
    auto& mtjC = c.add_device<mtj::MtjDevice>(format("MTJ4_%zu", k), w4, tail,
                                              mtj::MtjModel(corner.mtj),
                                              flip(lower_true_state(d)));
    c.add_nmos(format("N3_%zu", k), tail, sel, kGround, kGround,
               ctx.ngeom(tech.wEnable), ctx.nparams());
    // Independent write drivers.
    add_tristate_inverter(ctx, format("TI3_%zu", k), c.node(format("d%zu", k)), w3,
                          wen, wenb);
    add_tristate_inverter(ctx, format("TI4_%zu", k), c.node(format("d%zub", k)), w4,
                          wen, wenb);
    inst.mtjs[k] = {&mtjT, &mtjC};
  }

  // Upper pairs (bits lower .. bits-1).
  for (std::size_t j = 0; j < upper; ++j) {
    const std::size_t bit = lower + j;
    const bool d = presetComplement ? !data[bit] : data[bit];
    const NodeId sp1 = c.node(format("sp1_%zu", j));
    const NodeId sp2 = c.node(format("sp2_%zu", j));
    const NodeId head = c.node(format("head_%zu", j));
    const NodeId sel = c.node(format("sel_up%zu", j));
    const NodeId selb = c.node(format("sel_up%zub", j));
    add_transmission_gate(ctx, format("T1_%zu", j), p1s, sp1, sel, selb);
    add_transmission_gate(ctx, format("T2_%zu", j), p2s, sp2, sel, selb);
    auto& mtjT = c.add_device<mtj::MtjDevice>(format("MTJ1_%zu", j), sp1, head,
                                              mtj::MtjModel(corner.mtj),
                                              upper_true_state(d));
    auto& mtjC = c.add_device<mtj::MtjDevice>(format("MTJ2_%zu", j), sp2, head,
                                              mtj::MtjModel(corner.mtj),
                                              flip(upper_true_state(d)));
    c.add_pmos(format("P3_%zu", j), head, selb, vdd, vdd, ctx.pgeom(tech.wEnable),
               ctx.pparams());
    add_tristate_inverter(ctx, format("TI1_%zu", j), c.node(format("d%zub", bit)),
                          sp1, wen, wenb);
    add_tristate_inverter(ctx, format("TI2_%zu", j), c.node(format("d%zu", bit)),
                          sp2, wen, wenb);
    inst.mtjs[bit] = {&mtjT, &mtjC};
  }
}

void validate_bits(const std::vector<bool>& data) {
  if (data.size() < 2 || data.size() % 2 != 0) {
    throw std::invalid_argument("ScalableNvLatch: bits must be even and >= 2");
  }
}

} // namespace

ScalableLatchInstance ScalableNvLatch::build_read(const Technology& tech,
                                                  const TechCorner& corner,
                                                  const std::vector<bool>& data,
                                                  const ReadTiming& phase) {
  validate_bits(data);
  ScalableLatchInstance inst;
  inst.bits = static_cast<int>(data.size());
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  build_scalable(ctx, inst, data, /*presetComplement=*/false);

  const std::size_t bits = data.size();
  const std::size_t lower = bits / 2;
  const std::size_t upper = bits - lower;
  const double gap = 0.1e-9;
  const double phaseLen = phase.precharge + phase.evaluate + gap;

  ScalableControls ctl(tech.vdd, phase.ramp, data, lower, upper);
  double t = phase.start;
  inst.evalStart.resize(bits);
  inst.captureAt.resize(bits);
  // Lower phases: VDD precharge + discharge race per pair.
  for (std::size_t k = 0; k < lower; ++k) {
    ctl.pcvb.pulse_low(t, t + phase.precharge);
    const double evalStart = t + phase.precharge;
    const double evalEnd = evalStart + phase.evaluate;
    ctl.selLo[k].pulse(evalStart, evalEnd);
    ctl.p4b.pulse_low(evalStart, evalEnd);
    inst.evalStart[k] = evalStart;
    inst.captureAt[k] = evalEnd;
    t += phaseLen;
  }
  // Upper phases: GND precharge + charge race; lower pair 0 supplies the
  // regeneration pull-down path (equalized by N4), mirroring the 2-bit cell.
  for (std::size_t j = 0; j < upper; ++j) {
    ctl.pcg.pulse(t, t + phase.precharge);
    const double evalStart = t + phase.precharge;
    const double evalEnd = evalStart + phase.evaluate;
    ctl.selUp[j].pulse(evalStart, evalEnd);
    ctl.selUpB[j].pulse_low(evalStart, evalEnd);
    ctl.selLo[0].pulse(evalStart, evalEnd);
    ctl.n4.pulse(evalStart, evalEnd);
    inst.evalStart[lower + j] = evalStart;
    inst.captureAt[lower + j] = evalEnd;
    t += phaseLen;
  }
  ctl.install(inst.circuit);
  inst.tEnd = t + phase.gap;
  erc_self_check(inst.circuit, "ScalableNvLatch::build_read");
  return inst;
}

ScalableLatchInstance ScalableNvLatch::build_write(const Technology& tech,
                                                   const TechCorner& corner,
                                                   const std::vector<bool>& data,
                                                   const WriteTiming& timing) {
  validate_bits(data);
  ScalableLatchInstance inst;
  inst.bits = static_cast<int>(data.size());
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  build_scalable(ctx, inst, data, /*presetComplement=*/true);

  const std::size_t bits = data.size();
  ScalableControls ctl(tech.vdd, timing.ramp, data, bits / 2, bits - bits / 2);
  ctl.pcg.pulse(timing.start - 2 * timing.ramp, timing.end() + 2 * timing.ramp);
  ctl.wen.pulse(timing.start, timing.end());
  ctl.wenb.pulse_low(timing.start, timing.end());
  ctl.install(inst.circuit);
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "ScalableNvLatch::build_write");
  return inst;
}

ScalableLatchInstance ScalableNvLatch::build_idle(const Technology& tech,
                                                  const TechCorner& corner, int bits) {
  std::vector<bool> data(static_cast<std::size_t>(bits), false);
  for (std::size_t i = 0; i < data.size(); i += 2) data[i] = true;
  validate_bits(data);
  ScalableLatchInstance inst;
  inst.bits = bits;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  build_scalable(ctx, inst, data, false);
  ScalableControls ctl(tech.vdd, 20e-12, data, data.size() / 2,
                       data.size() - data.size() / 2);
  ctl.install(inst.circuit);
  inst.tEnd = 1e-9;
  erc_self_check(inst.circuit, "ScalableNvLatch::build_idle");
  return inst;
}

ScalableReadDeck::ScalableReadDeck(const Technology& tech, const TechCorner& corner,
                                   const std::vector<bool>& data,
                                   const ReadTiming& phase)
    : inst(ScalableNvLatch::build_read(tech, corner, data, phase)),
      compiled(inst.circuit),
      data(data) {
  ws.bind(compiled);
}

void ScalableReadDeck::patch(const TechCorner& corner, Rng* mismatchRng,
                             double sigmaVth) {
  patch_transistors(inst.circuit, corner, mismatchRng, sigmaVth);
  const std::size_t lower = data.size() / 2;
  for (std::size_t b = 0; b < data.size(); ++b) {
    const mtj::MtjOrientation trueState =
        b < lower ? lower_true_state(data[b]) : upper_true_state(data[b]);
    inst.mtjs[b].first->set_model(mtj::MtjModel(corner.mtj));
    inst.mtjs[b].first->reset_dynamics(trueState);
    inst.mtjs[b].second->set_model(mtj::MtjModel(corner.mtj));
    inst.mtjs[b].second->reset_dynamics(flip(trueState));
  }
}

ScalableMetrics characterize_scalable(const Technology& tech, Corner corner, int bits,
                                      double timestep) {
  const TechCorner readTc = tech.read_corner(corner);
  const TechCorner leakTc = tech.leakage_corner(corner);
  ScalableMetrics m;
  m.bits = bits;
  m.readTransistors = scalable_read_transistors(bits);
  m.areaUm2 =
      CellLayout(format("scalable_%dbit", bits), m.readTransistors,
                 scalable_mtj_count(bits))
          .area_um2();

  // Two data patterns: alternating and all-ones.
  std::vector<std::vector<bool>> patterns;
  {
    std::vector<bool> alt(static_cast<std::size_t>(bits));
    for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = (i % 2) == 0;
    patterns.push_back(alt);
    patterns.push_back(std::vector<bool>(static_cast<std::size_t>(bits), true));
  }

  bool functional = true;
  double energy = 0.0;
  double delay = 0.0;
  double wall = 0.0;
  for (const auto& data : patterns) {
    ReadTiming phase{};
    auto inst = ScalableNvLatch::build_read(tech, readTc, data, phase);
    spice::Trace trace;
    trace.watch_node(inst.circuit, "out");
    trace.watch_node(inst.circuit, "outb");
    spice::SupplyEnergyMeter meter(inst.circuit, "VDD");
    spice::Simulator sim(inst.circuit);
    spice::TransientOptions opt;
    opt.tStop = inst.tEnd;
    opt.dt = timestep;
    auto obs = trace.observer();
    spice::Solution zero(std::vector<double>(inst.circuit.num_unknowns(), 0.0),
                         inst.circuit.num_nodes());
    sim.transient_from(zero, opt,
                       [&](double t, const spice::Solution& s) {
                         obs(t, s);
                         meter.observe(t, s);
                       });
    energy += meter.energy();
    wall += inst.tEnd - phase.start;
    const std::size_t lower = data.size() / 2;
    for (std::size_t b = 0; b < data.size(); ++b) {
      const bool isLower = b < lower;
      // Lower: discharge race (falling side resolves); upper: charge race.
      const std::string resolving =
          isLower ? (data[b] ? "outb" : "out") : (data[b] ? "out" : "outb");
      const auto tCross = trace.crossing_time(
          resolving, isLower ? 0.1 * tech.vdd : 0.9 * tech.vdd,
          isLower ? spice::Edge::Falling : spice::Edge::Rising, inst.evalStart[b]);
      if (tCross) delay += *tCross - inst.evalStart[b];
      const bool got = trace.value_at("out", inst.captureAt[b]) > tech.vdd / 2;
      functional = functional && (got == data[b]);
    }
  }
  m.readEnergy = energy / static_cast<double>(patterns.size());
  m.readDelayTotal = delay / static_cast<double>(patterns.size());
  m.restoreWallClock = wall / static_cast<double>(patterns.size());
  m.functional = functional;

  auto idle = ScalableNvLatch::build_idle(tech, leakTc, bits);
  spice::Simulator sim(idle.circuit);
  const auto op = sim.dc_operating_point();
  const auto* vddSrc =
      dynamic_cast<const spice::VoltageSource*>(idle.circuit.find_device("VDD"));
  m.leakage = vddSrc->delivered_current(op.as_state()) * tech.vdd;
  return m;
}

} // namespace nvff::cell
