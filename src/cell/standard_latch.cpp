#include "cell/standard_latch.hpp"

namespace nvff::cell {

using spice::kGround;
using spice::NodeId;
using spice::Waveform;

namespace {

/// Control levels of one standard-latch scenario, expressed as signals.
struct Controls {
  ControlSignal pcb;  ///< precharge-bar (low = precharge out/outb to VDD)
  ControlSignal sen;  ///< sense-enable footer
  ControlSignal tg;   ///< transmission gates (tgb derived)
  ControlSignal tgb;
  ControlSignal wen;  ///< write enable (wenb derived)
  ControlSignal wenb;
  ControlSignal din;  ///< write data (dinb derived)
  ControlSignal dinb;

  Controls(double vdd, double ramp, bool dataHigh)
      : pcb(vdd, ramp, true),
        sen(vdd, ramp, false),
        tg(vdd, ramp, false),
        tgb(vdd, ramp, true),
        wen(vdd, ramp, false),
        wenb(vdd, ramp, true),
        din(vdd, ramp, dataHigh),
        dinb(vdd, ramp, !dataHigh) {}

  void install(spice::Circuit& c) const {
    pcb.install(c, "pcb");
    sen.install(c, "sen");
    tg.install(c, "tg");
    tgb.install(c, "tgb");
    wen.install(c, "wen");
    wenb.install(c, "wenb");
    din.install(c, "din");
    dinb.install(c, "dinb");
  }

  /// Schedules a precharge + evaluate sequence starting at timing.start
  /// (+offset for power-cycle scenarios).
  void schedule_read(const ReadTiming& t, double offset = 0.0) {
    pcb.pulse_low(offset + t.start, offset + t.start + t.precharge);
    sen.pulse(offset + t.evalStart(), offset + t.evalEnd());
    tg.pulse(offset + t.evalStart(), offset + t.evalEnd());
    tgb.pulse_low(offset + t.evalStart(), offset + t.evalEnd());
  }

  void schedule_write(const WriteTiming& t) {
    wen.pulse(t.start, t.end());
    wenb.pulse_low(t.start, t.end());
  }

  /// Drops every control to ground while the supply is collapsed (the
  /// control logic is inside the power-gated domain).
  void schedule_power_gap(double tOff, double tOn) {
    for (ControlSignal* s : {&pcb, &tgb, &wenb, &dinb}) {
      s->set_at(tOff, false);
      s->set_at(tOn, true);
    }
    // Active-high signals are already low in idle; din returns to its level.
  }
};

/// Builds the latch netlist (devices only; control sources installed by the
/// caller). Returns the two MTJ device pointers.
struct CoreHandles {
  mtj::MtjDevice* mtjOut;
  mtj::MtjDevice* mtjOutb;
};

CoreHandles build_core(BuildContext& ctx, mtj::MtjOrientation stateOut,
                       mtj::MtjOrientation stateOutb) {
  spice::Circuit& c = *ctx.circuit;
  const Technology& tech = *ctx.tech;
  const TechCorner& corner = *ctx.corner;
  const NodeId vdd = ctx.vdd;
  const NodeId out = c.node("out");
  const NodeId outb = c.node("outb");
  const NodeId sn1 = c.node("sn1");
  const NodeId sn2 = c.node("sn2");
  const NodeId w1 = c.node("w1");
  const NodeId w2 = c.node("w2");
  const NodeId tail = c.node("tail");
  const NodeId pcb = c.node("pcb");
  const NodeId sen = c.node("sen");
  const NodeId tg = c.node("tg");
  const NodeId tgb = c.node("tgb");
  const NodeId wen = c.node("wen");
  const NodeId wenb = c.node("wenb");
  const NodeId din = c.node("din");
  const NodeId dinb = c.node("dinb");

  // Pre-charge PMOS pair.
  c.add_pmos("Ppc1", out, pcb, vdd, vdd, ctx.pgeom(tech.wPrecharge), ctx.pparams());
  c.add_pmos("Ppc2", outb, pcb, vdd, vdd, ctx.pgeom(tech.wPrecharge), ctx.pparams());
  // Cross-coupled sense pair.
  c.add_pmos("P1", out, outb, vdd, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_pmos("P2", outb, out, vdd, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_nmos("N1", out, outb, sn1, kGround, ctx.ngeom(tech.wSenseN), ctx.nparams());
  c.add_nmos("N2", outb, out, sn2, kGround, ctx.ngeom(tech.wSenseN), ctx.nparams());
  // Isolation transmission gates.
  add_transmission_gate(ctx, "T1", sn1, w1, tg, tgb);
  add_transmission_gate(ctx, "T2", sn2, w2, tg, tgb);
  // Complementary MTJ pair (free layer toward the write terminals).
  auto& mtjA = c.add_device<mtj::MtjDevice>(
      "MTJa", w1, tail, mtj::MtjModel(corner.mtj), stateOut);
  auto& mtjB = c.add_device<mtj::MtjDevice>(
      "MTJb", w2, tail, mtj::MtjModel(corner.mtj), stateOutb);
  // Sense-enable footer.
  c.add_nmos("Nfoot", tail, sen, kGround, kGround, ctx.ngeom(tech.wEnable),
             ctx.nparams());
  // Write drivers: w1 = NOT(din), w2 = NOT(dinb) = din when enabled.
  add_tristate_inverter(ctx, "TI1", din, w1, wen, wenb);
  add_tristate_inverter(ctx, "TI2", dinb, w2, wen, wenb);
  // Interconnect loading on the sense outputs.
  c.add_capacitor("Cw.out", out, kGround, tech.cWire);
  c.add_capacitor("Cw.outb", outb, kGround, tech.cWire);
  return {&mtjA, &mtjB};
}

/// Orientations encoding a stored bit: D = 1 <=> MTJa (out side) AP.
mtj::MtjOrientation out_state(bool d) {
  return d ? mtj::MtjOrientation::AntiParallel : mtj::MtjOrientation::Parallel;
}
mtj::MtjOrientation outb_state(bool d) {
  return d ? mtj::MtjOrientation::Parallel : mtj::MtjOrientation::AntiParallel;
}

} // namespace

StandardLatchInstance StandardNvLatch::build_read(const Technology& tech,
                                                  const TechCorner& corner,
                                                  bool storedBit,
                                                  const ReadTiming& timing,
                                                  Rng* mismatchRng, double sigmaVth) {
  StandardLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd"),
                   mismatchRng, sigmaVth};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  const CoreHandles core = build_core(ctx, out_state(storedBit), outb_state(storedBit));
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;

  Controls ctl(tech.vdd, timing.ramp, false);
  ctl.schedule_read(timing);
  ctl.install(inst.circuit);

  inst.tEvalStart = timing.evalStart();
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "StandardNvLatch::build_read");
  return inst;
}

StandardLatchInstance StandardNvLatch::build_write(const Technology& tech,
                                                   const TechCorner& corner, bool d,
                                                   const WriteTiming& timing) {
  StandardLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  // Start from the OPPOSITE stored bit so the write must flip both MTJs.
  const CoreHandles core = build_core(ctx, out_state(!d), outb_state(!d));
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;

  Controls ctl(tech.vdd, timing.ramp, d);
  ctl.schedule_write(timing);
  ctl.install(inst.circuit);

  inst.tEvalStart = timing.start;
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "StandardNvLatch::build_write");
  return inst;
}

StandardLatchInstance StandardNvLatch::build_idle(const Technology& tech,
                                                  const TechCorner& corner) {
  StandardLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  const CoreHandles core =
      build_core(ctx, mtj::MtjOrientation::Parallel, mtj::MtjOrientation::AntiParallel);
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;

  Controls ctl(tech.vdd, 20e-12, false);
  ctl.install(inst.circuit);
  inst.tEnd = 1e-9;
  erc_self_check(inst.circuit, "StandardNvLatch::build_idle");
  return inst;
}

StandardLatchInstance StandardNvLatch::build_power_cycle(const Technology& tech,
                                                         const TechCorner& corner,
                                                         bool d,
                                                         const PowerCycleTiming& timing,
                                                         Rng* mismatchRng,
                                                         double sigmaVth) {
  StandardLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd"),
                   mismatchRng, sigmaVth};
  // Supply collapses after the store and returns before the restore.
  spice::Pwl vddWave;
  vddWave.add_point(0.0, tech.vdd);
  vddWave.add_step(timing.offStart(), 0.0, timing.offRamp);
  vddWave.add_step(timing.onStart(), tech.vdd, timing.onRamp);
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::pwl(vddWave));

  const CoreHandles core = build_core(ctx, out_state(!d), outb_state(!d));
  inst.mtjOut = core.mtjOut;
  inst.mtjOutb = core.mtjOutb;

  Controls ctl(tech.vdd, timing.write.ramp, d);
  ctl.schedule_write(timing.write);
  ctl.schedule_power_gap(timing.offStart(), timing.onStart() + timing.onRamp);
  ctl.schedule_read(timing.read, timing.wakeDone());
  ctl.install(inst.circuit);

  inst.tEvalStart = timing.wakeDone() + timing.read.evalStart();
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "StandardNvLatch::build_power_cycle");
  return inst;
}

StandardPowerCycleDeck::StandardPowerCycleDeck(const Technology& tech,
                                               const TechCorner& corner, bool d,
                                               const PowerCycleTiming& timing)
    : inst(StandardNvLatch::build_power_cycle(tech, corner, d, timing)),
      compiled(inst.circuit),
      d(d) {
  ws.bind(compiled);
}

void StandardPowerCycleDeck::patch(const TechCorner& corner, Rng* mismatchRng,
                                   double sigmaVth) {
  patch_transistors(inst.circuit, corner, mismatchRng, sigmaVth);
  // The power cycle starts from the OPPOSITE stored bit (the store must flip
  // both pillars), mirroring build_power_cycle's preset.
  inst.mtjOut->set_model(mtj::MtjModel(corner.mtj));
  inst.mtjOut->reset_dynamics(out_state(!d));
  inst.mtjOutb->set_model(mtj::MtjModel(corner.mtj));
  inst.mtjOutb->reset_dynamics(outb_state(!d));
}

StandardReadDeck::StandardReadDeck(const Technology& tech, const TechCorner& corner,
                                   const ReadTiming& timing)
    : inst(StandardNvLatch::build_read(tech, corner, /*storedBit=*/false, timing)),
      compiled(inst.circuit) {
  ws.bind(compiled);
}

void StandardReadDeck::patch(const TechCorner& corner, bool storedBit,
                             Rng* mismatchRng, double sigmaVth) {
  patch_transistors(inst.circuit, corner, mismatchRng, sigmaVth);
  inst.mtjOut->set_model(mtj::MtjModel(corner.mtj));
  inst.mtjOut->reset_dynamics(out_state(storedBit));
  inst.mtjOutb->set_model(mtj::MtjModel(corner.mtj));
  inst.mtjOutb->reset_dynamics(outb_state(storedBit));
}

} // namespace nvff::cell
