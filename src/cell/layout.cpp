#include "cell/layout.hpp"

#include <sstream>

namespace nvff::cell {

CellLayout::CellLayout(std::string name, int transistors, int mtjs, LayoutParams params)
    : name_(std::move(name)), transistors_(transistors), mtjs_(mtjs), params_(params) {}

double CellLayout::height_um() const {
  return params_.tracks * params_.trackPitchUm;
}

double CellLayout::width_um() const {
  return columns() * params_.columnPitchUm + mtjs_ * params_.mtjPitchUm +
         params_.overheadUm;
}

std::string CellLayout::track_map() const {
  std::ostringstream out;
  const int cols = columns();
  const int mtjCols = mtjs_;
  const int total = cols + mtjCols;
  auto row = [&](const std::string& label, char device, char mtjGlyph) {
    out << label;
    for (int i = 0; i < cols; ++i) out << device;
    for (int i = 0; i < mtjCols; ++i) out << mtjGlyph;
    out << "|\n";
  };
  out << name_ << " (" << transistors_ << "T + " << mtjs_ << " MTJ, " << params_.tracks
      << "-track)\n";
  row("VDD  |", '=', '='); // power rail (M1)
  row("pmos |", 'P', '.');
  row("m2   |", '-', 'o'); // MTJ pillars land between M1 and M2
  row("nmos |", 'N', '.');
  row("GND  |", '=', '=');
  out << "width " << width_um() << " um x height " << height_um() << " um = "
      << area_um2() << " um^2\n";
  return out.str();
}

CellLayout standard_1bit_layout() { return CellLayout("std_nv_1bit", 11, 2); }

CellLayout proposed_2bit_layout() { return CellLayout("proposed_nv_2bit", 16, 4); }

double standard_pair_area_um2(const LayoutParams& params) {
  const CellLayout cell("std_nv_1bit", 11, 2, params);
  return (2.0 * cell.width_um() + params.minSpacingUm) * cell.height_um();
}

double standard_per_bit_area_um2() { return standard_pair_area_um2() / 2.0; }

double proposed_2bit_area_um2() { return proposed_2bit_layout().area_um2(); }

double pairing_distance_threshold_um() {
  // Twice the width of the standard NV component, plus the spacing margin —
  // i.e. exactly the width budget a merged 2-bit cell may span (3.35 um).
  const CellLayout cell = standard_1bit_layout();
  return 2.0 * cell.width_um() + LayoutParams{}.minSpacingUm;
}

} // namespace nvff::cell
