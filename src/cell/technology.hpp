// Technology setup shared by the latch netlists: supply, device sizes,
// corner definitions, and the CMOS standard-cell library used at system
// level.
//
// Corner semantics. Table II reports worst/typical/best per metric, which is
// the usual datasheet convention: each metric is evaluated at the corner
// that pessimizes (or optimizes) *that metric*:
//  * read delay / read energy: worst = slow CMOS + weak sense window
//    (RA +3s, TMR -3s); best = fast CMOS + strong window.
//  * leakage: worst = fast (low-Vth) CMOS; best = slow CMOS.
//  * write: worst = high critical current (Ic +3s) and slow CMOS drivers.
// Both designs are always evaluated at the same corner, so the comparison is
// apples-to-apples, as in the paper.
#pragma once

#include "mtj/model.hpp"
#include "spice/mosfet.hpp"

namespace nvff::cell {

/// Worst/typical/best labels of Table II.
enum class Corner { Worst, Typical, Best };

/// Name for reports ("worst", "typical", "best").
const char* corner_name(Corner corner);

/// All three corners in table order.
inline constexpr Corner kAllCorners[] = {Corner::Worst, Corner::Typical, Corner::Best};

/// One fully resolved device-parameter set.
struct TechCorner {
  spice::MosParams nmos;
  spice::MosParams pmos;
  mtj::MtjParams mtj;
};

/// Technology container with the Table I operating point.
struct Technology {
  double vdd = 1.1;        ///< supply [V]
  double tempC = 27.0;     ///< ambient [degC]

  // Transistor sizings used inside the NV latches (widths in meters,
  // minimum length 40 nm). The sense transistors are near-minimum; write
  // drivers are sized to push the 70 uA switching current through ~5-11k.
  double lMin = 40e-9;
  double wSenseN = 240e-9;
  double wSenseP = 240e-9;
  double wEnable = 360e-9;   ///< footer/header enable devices
  double wEqualizer = 120e-9;
  double wPrecharge = 240e-9;
  double wTgate = 240e-9;
  double wWriteN = 720e-9;  ///< write tristate pull-down
  double wWriteP = 1440e-9; ///< write tristate pull-up

  /// Interconnect load on each sense output node [F]. The restore outputs
  /// route to the master latch of the conventional flip-flop, so they carry
  /// real wire; this value calibrates the typical standard-latch read delay
  /// onto the paper's 187 ps and is where the energy advantage of the shared
  /// sense amplifier physically lives (fewer output-node charge events).
  double cWire = 3.0e-15;

  /// Corner resolution per metric family (see file comment).
  TechCorner read_corner(Corner corner) const;
  TechCorner leakage_corner(Corner corner) const;
  TechCorner write_corner(Corner corner) const;

  /// Default technology (Table I).
  static Technology table1();
};

/// Areas of the CMOS standard cells used by the system-level flow, in um^2.
/// The NV shadow-cell areas come from the layout model (cell/layout.hpp);
/// these are the ordinary logic cells needed to floorplan the benchmarks.
struct CmosCellLibrary {
  double ffArea = 2.4;       ///< conventional master-slave DFF
  double ffWidth = 1.43;     ///< um (12-track height assumed for all cells)
  double inverterArea = 0.35;
  double nand2Area = 0.55;
  double nor2Area = 0.55;
  double and2Area = 0.65;
  double or2Area = 0.65;
  double xor2Area = 0.95;
  double bufArea = 0.45;
  double rowHeight = 1.68;   ///< um, 12 tracks x 0.14 um pitch

  static CmosCellLibrary tsmc40_like();
};

} // namespace nvff::cell
