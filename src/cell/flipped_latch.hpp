// The "flipped" 1-bit NV latch of paper Fig. 4(a): the mirror image of the
// standard latch, with the MTJ pair connected ABOVE the read component and a
// PMOS header enabling the read.
//
//                 vdd
//                  |
//                 Phead (R_en, active low)
//                  |
//                 head
//                /    \
//             MTJa    MTJb        (free layers toward the write terminals)
//              w1      w2         write terminals (tristate drivers)
//              T1      T2         isolation transmission gates
//              sp1     sp2        PMOS sources
//               |       |
//              P1       P2        cross-coupled PMOS
//               |       |
//              out     outb       (pre-charged to GND, charge race)
//               |       |
//              N1       N2        cross-coupled NMOS, sources at gnd
//              gnd     gnd        + GND-precharge NMOS pair
//
// This is the building block the paper combines with the standard latch to
// form the 2-bit cell (Fig. 4b): the 2-bit design is literally this upper
// structure and the standard lower structure sharing one cross-coupled pair.
// Read: pre-charge out/outb to GND, enable Phead + T-gates, and the charge
// race through the MTJs resolves — the lower-resistance side rises first.
// Stored bit convention: D = 1 <=> MTJa (out side) is P <=> out resolves 1.
#pragma once

#include "cell/latch_common.hpp"
#include "cell/scenarios.hpp"
#include "mtj/device.hpp"
#include "spice/compiled.hpp"
#include "spice/workspace.hpp"

namespace nvff::cell {

struct FlippedLatchInstance {
  spice::Circuit circuit;
  mtj::MtjDevice* mtjOut = nullptr;
  mtj::MtjDevice* mtjOutb = nullptr;
  double tEvalStart = 0.0;
  double tEnd = 0.0;
};

/// Fig. 4(a) single-bit latch with the MTJs above the sense amplifier.
class FlippedNvLatch {
public:
  /// Same read-path budget as the standard latch (11 transistors): 2 GND
  /// pre-charge NMOS, 4 cross-coupled, 2x2 T-gates, 1 PMOS header.
  static constexpr int kReadTransistors = 11;
  static constexpr int kMtjCount = 2;

  static FlippedLatchInstance build_read(const Technology& tech,
                                         const TechCorner& corner, bool storedBit,
                                         const ReadTiming& timing);
  static FlippedLatchInstance build_write(const Technology& tech,
                                          const TechCorner& corner, bool d,
                                          const WriteTiming& timing);
  static FlippedLatchInstance build_idle(const Technology& tech,
                                         const TechCorner& corner);
};

/// Compile-once / run-many restore deck (see standard_latch.hpp). The read
/// controls are data-independent, so the stored bit is patched per trial
/// along with corner / mismatch / MTJ state.
struct FlippedReadDeck {
  FlippedReadDeck(const Technology& tech, const TechCorner& corner,
                  const ReadTiming& timing);
  FlippedReadDeck(const FlippedReadDeck&) = delete;
  FlippedReadDeck& operator=(const FlippedReadDeck&) = delete;

  void patch(const TechCorner& corner, bool storedBit, Rng* mismatchRng = nullptr,
             double sigmaVth = 0.0);

  FlippedLatchInstance inst;
  spice::CompiledCircuit compiled;
  spice::SimWorkspace ws;
};

} // namespace nvff::cell
