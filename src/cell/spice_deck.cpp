#include "cell/spice_deck.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "mtj/device.hpp"
#include "util/strings.hpp"

namespace nvff::cell {

using spice::Capacitor;
using spice::Circuit;
using spice::CurrentSource;
using spice::Mosfet;
using spice::NodeId;
using spice::Resistor;
using spice::VoltageSource;

namespace {

std::string node_name(const Circuit& c, NodeId n) {
  return n == spice::kGround ? "0" : c.node_name(n);
}

std::string safe(const std::string& s) {
  std::string out = s;
  for (char& ch : out) {
    if (ch == '.' || ch == ' ') ch = '_';
  }
  return out;
}

/// SPICE source expression for a waveform. DC values inline; PWL/pulse
/// expanded; the Waveform interface exposes value(t), so PWL points are
/// sampled from the authoritative representation where available.
std::string source_expr(const spice::Waveform& w) {
  // Sample-based PWL reconstruction: 41 points across the active window is
  // exact for our step-built control signals (their ramps are linear).
  const double active = w.active_until();
  if (active <= 0.0) return format("DC %g", w.value(0.0));
  std::ostringstream out;
  out << "PWL(";
  const int points = 80;
  for (int i = 0; i <= points; ++i) {
    const double t = active * static_cast<double>(i) / points;
    out << format("%g %g ", t, w.value(t));
  }
  out << ")";
  return out.str();
}

/// One .model card per distinct MOSFET parameter set.
class ModelRegistry {
public:
  std::string model_for(const Mosfet& fet) {
    const auto key = std::make_tuple(fet.type() == spice::MosType::Nmos,
                                     fet.params().vth, fet.params().kp,
                                     fet.params().lambda);
    auto it = names_.find(key);
    if (it != names_.end()) return it->second;
    const std::string name =
        format("%s%zu", fet.type() == spice::MosType::Nmos ? "nch" : "pch",
               names_.size());
    names_.emplace(key, name);
    cards_ << format(
        ".model %s %s (LEVEL=1 VTO=%g KP=%g LAMBDA=%g)\n", name.c_str(),
        fet.type() == spice::MosType::Nmos ? "NMOS" : "PMOS",
        fet.type() == spice::MosType::Nmos ? fet.params().vth : -fet.params().vth,
        fet.params().kp, fet.params().lambda);
    cards_ << format("* ^ EKV approx: n=%g tempK=%g\n", fet.params().n,
                     fet.params().tempK);
    return name;
  }
  std::string cards() const { return cards_.str(); }

private:
  std::map<std::tuple<bool, double, double, double>, std::string> names_;
  std::ostringstream cards_;
};

} // namespace

std::string to_spice_deck(const Circuit& circuit, const SpiceDeckOptions& options) {
  std::ostringstream body;
  ModelRegistry models;
  std::size_t anon = 0;

  for (const auto& devicePtr : circuit.devices()) {
    const spice::Device* device = devicePtr.get();
    const std::string id = safe(device->name());
    if (const auto* r = dynamic_cast<const Resistor*>(device)) {
      body << format("R%s %s %s %g\n", id.c_str(),
                     node_name(circuit, r->node_a()).c_str(),
                     node_name(circuit, r->node_b()).c_str(), r->resistance());
    } else if (const auto* c = dynamic_cast<const Capacitor*>(device)) {
      body << format("C%s %s %s %g\n", id.c_str(),
                     node_name(circuit, c->node_a()).c_str(),
                     node_name(circuit, c->node_b()).c_str(), c->capacitance());
    } else if (const auto* v = dynamic_cast<const VoltageSource*>(device)) {
      body << format("V%s %s %s %s\n", id.c_str(),
                     node_name(circuit, v->plus()).c_str(),
                     node_name(circuit, v->minus()).c_str(),
                     source_expr(v->waveform()).c_str());
    } else if (const auto* i = dynamic_cast<const CurrentSource*>(device)) {
      body << format("I%s %s %s %s\n", id.c_str(),
                     node_name(circuit, i->from()).c_str(),
                     node_name(circuit, i->to()).c_str(),
                     source_expr(i->waveform()).c_str());
    } else if (const auto* m = dynamic_cast<const Mosfet*>(device)) {
      body << format("M%s %s %s %s %s %s W=%g L=%g\n", id.c_str(),
                     node_name(circuit, m->drain()).c_str(),
                     node_name(circuit, m->gate()).c_str(),
                     node_name(circuit, m->source()).c_str(),
                     node_name(circuit, m->bulk()).c_str(),
                     models.model_for(*m).c_str(), m->geometry().w,
                     m->geometry().l);
    } else if (const auto* x = dynamic_cast<const mtj::MtjDevice*>(device)) {
      const double r0 = x->model().resistance(
          x->orientation() == mtj::MtjOrientation::Parallel
              ? mtj::MtjOrientation::Parallel
              : mtj::MtjOrientation::AntiParallel,
          0.0);
      body << format("R%s %s %s %g\n", id.c_str(),
                     node_name(circuit, x->free_node()).c_str(),
                     node_name(circuit, x->ref_node()).c_str(), r0);
      body << format(
          "* ^ MTJ %s state=%s Rp=%g Rap=%g Ic=%g Isw=%g (switching dynamics "
          "not exported)\n",
          id.c_str(),
          x->orientation() == mtj::MtjOrientation::Parallel ? "P" : "AP",
          x->model().params().rParallel, x->model().params().rAntiParallel,
          x->model().params().iCritical, x->model().params().iSwitching);
    } else {
      body << format("* device %s (%zu) not exportable\n", id.c_str(), anon++);
    }
  }

  std::ostringstream out;
  out << "* " << options.title << "\n";
  out << models.cards();
  out << body.str();
  out << format(".tran %g %g\n", options.tStepSeconds, options.tStopSeconds);
  out << ".end\n";
  return out.str();
}

void save_spice_deck(const Circuit& circuit, const std::string& path,
                     const SpiceDeckOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SPICE deck: " + path);
  out << to_spice_deck(circuit, options);
}

} // namespace nvff::cell
