#include "cell/multibit_latch.hpp"

namespace nvff::cell {

using spice::kGround;
using spice::NodeId;
using spice::Waveform;

namespace {

struct Controls {
  ControlSignal pcvb; ///< VDD-precharge bar (low = precharge to VDD)
  ControlSignal pcg;  ///< GND-precharge (high = clamp outputs to GND)
  ControlSignal ren;  ///< N3 + T1/T2 enable (renb derived)
  ControlSignal renb;
  ControlSignal p3b;  ///< upper read header (low = on)
  ControlSignal p4b;  ///< P4 equalizer (low = on)
  ControlSignal n4;   ///< N4 equalizer (high = on)
  ControlSignal wen;
  ControlSignal wenb;
  ControlSignal d0;
  ControlSignal d0b;
  ControlSignal d1;
  ControlSignal d1b;

  Controls(double vdd, double ramp, bool bit0, bool bit1)
      : pcvb(vdd, ramp, true),
        pcg(vdd, ramp, false),
        ren(vdd, ramp, false),
        renb(vdd, ramp, true),
        p3b(vdd, ramp, true),
        p4b(vdd, ramp, true),
        n4(vdd, ramp, false),
        wen(vdd, ramp, false),
        wenb(vdd, ramp, true),
        d0(vdd, ramp, bit0),
        d0b(vdd, ramp, !bit0),
        d1(vdd, ramp, bit1),
        d1b(vdd, ramp, !bit1) {}

  void install(spice::Circuit& c) const {
    pcvb.install(c, "pcvb");
    pcg.install(c, "pcg");
    ren.install(c, "ren");
    renb.install(c, "renb");
    p3b.install(c, "p3b");
    p4b.install(c, "p4b");
    n4.install(c, "n4");
    wen.install(c, "wen");
    wenb.install(c, "wenb");
    d0.install(c, "d0");
    d0b.install(c, "d0b");
    d1.install(c, "d1");
    d1b.install(c, "d1b");
  }

  /// Sequential two-bit restore (Fig. 6b / Fig. 7b): precharge VDD, sense
  /// the lower pair, precharge GND, sense the upper pair.
  void schedule_read(const TwoBitReadTiming& t, double offset = 0.0) {
    // Phase 0: lower pair (bit D0). P3 stays OFF (paper Sec III-C): the
    // winning output is held dynamically, which is why the evaluation
    // window is kept short and the value is captured at its end — the
    // P4/T-gate path would otherwise slowly bleed the dynamic node.
    pcvb.pulse_low(offset + t.phase0Start(), offset + t.phase0EvalStart());
    ren.pulse(offset + t.phase0EvalStart(), offset + t.phase0End());
    renb.pulse_low(offset + t.phase0EvalStart(), offset + t.phase0End());
    p4b.pulse_low(offset + t.phase0EvalStart(), offset + t.phase0End());
    // Phase 1: upper pair (bit D1).
    pcg.pulse(offset + t.phase1Start(), offset + t.phase1EvalStart());
    ren.pulse(offset + t.phase1EvalStart(), offset + t.phase1End());
    renb.pulse_low(offset + t.phase1EvalStart(), offset + t.phase1End());
    p3b.pulse_low(offset + t.phase1EvalStart(), offset + t.phase1End());
    n4.pulse(offset + t.phase1EvalStart(), offset + t.phase1End());
  }

  /// Parallel store of both bits; the outputs are clamped to GND for the
  /// whole window so the cross-coupled NMOS pair stays off (paper Sec III-C).
  void schedule_write(const WriteTiming& t) {
    pcg.pulse(t.start - 2.0 * t.ramp, t.end() + 2.0 * t.ramp);
    wen.pulse(t.start, t.end());
    wenb.pulse_low(t.start, t.end());
  }

  void schedule_power_gap(double tOff, double tOn, bool bit0, bool bit1) {
    for (ControlSignal* s : {&pcvb, &renb, &p3b, &p4b, &wenb}) {
      s->set_at(tOff, false);
      s->set_at(tOn, true);
    }
    if (bit0) {
      d0.set_at(tOff, false);
      d0.set_at(tOn, true);
    } else {
      d0b.set_at(tOff, false);
      d0b.set_at(tOn, true);
    }
    if (bit1) {
      d1.set_at(tOff, false);
      d1.set_at(tOn, true);
    } else {
      d1b.set_at(tOff, false);
      d1b.set_at(tOn, true);
    }
  }
};

struct CoreHandles {
  mtj::MtjDevice* mtj1;
  mtj::MtjDevice* mtj2;
  mtj::MtjDevice* mtj3;
  mtj::MtjDevice* mtj4;
};

CoreHandles build_core(BuildContext& ctx, mtj::MtjOrientation s1,
                       mtj::MtjOrientation s2, mtj::MtjOrientation s3,
                       mtj::MtjOrientation s4) {
  spice::Circuit& c = *ctx.circuit;
  const Technology& tech = *ctx.tech;
  const TechCorner& corner = *ctx.corner;
  const NodeId vdd = ctx.vdd;
  const NodeId out = c.node("out");
  const NodeId outb = c.node("outb");
  const NodeId p1s = c.node("p1s");
  const NodeId p2s = c.node("p2s");
  const NodeId sp1 = c.node("sp1");
  const NodeId sp2 = c.node("sp2");
  const NodeId head = c.node("head");
  const NodeId sn1 = c.node("sn1");
  const NodeId sn2 = c.node("sn2");
  const NodeId tail = c.node("tail");
  const NodeId pcvb = c.node("pcvb");
  const NodeId pcg = c.node("pcg");
  const NodeId ren = c.node("ren");
  const NodeId renb = c.node("renb");
  const NodeId p3b = c.node("p3b");
  const NodeId p4b = c.node("p4b");
  const NodeId n4 = c.node("n4");
  const NodeId wen = c.node("wen");
  const NodeId wenb = c.node("wenb");
  const NodeId d0 = c.node("d0");
  const NodeId d0b = c.node("d0b");
  const NodeId d1 = c.node("d1");
  const NodeId d1b = c.node("d1b");

  // Dual pre-charge circuitry (to VDD for the lower read, to GND for the
  // upper read and during the store).
  c.add_pmos("Ppcv1", out, pcvb, vdd, vdd, ctx.pgeom(tech.wPrecharge), ctx.pparams());
  c.add_pmos("Ppcv2", outb, pcvb, vdd, vdd, ctx.pgeom(tech.wPrecharge), ctx.pparams());
  c.add_nmos("Npcg1", out, pcg, kGround, kGround, ctx.ngeom(tech.wPrecharge),
             ctx.nparams());
  c.add_nmos("Npcg2", outb, pcg, kGround, kGround, ctx.ngeom(tech.wPrecharge),
             ctx.nparams());
  // Shared cross-coupled sense amplifier. Unlike the standard latch, the
  // PMOS sources are NOT tied to VDD: they reach it through the upper MTJ
  // branch (T-gates, MTJs, P3).
  c.add_pmos("P1", out, outb, p1s, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_pmos("P2", outb, out, p2s, vdd, ctx.pgeom(tech.wSenseP), ctx.pparams());
  c.add_nmos("N1", out, outb, sn1, kGround, ctx.ngeom(tech.wSenseN), ctx.nparams());
  c.add_nmos("N2", outb, out, sn2, kGround, ctx.ngeom(tech.wSenseN), ctx.nparams());
  // Equalizers.
  c.add_pmos("P4", p1s, p4b, p2s, vdd, ctx.pgeom(tech.wEqualizer), ctx.pparams());
  c.add_nmos("N4", sn1, n4, sn2, kGround, ctx.ngeom(tech.wEqualizer), ctx.nparams());
  // Upper branch: T-gates, MTJ pair, header.
  add_transmission_gate(ctx, "T1", p1s, sp1, ren, renb);
  add_transmission_gate(ctx, "T2", p2s, sp2, ren, renb);
  auto& mtj1 = c.add_device<mtj::MtjDevice>("MTJ1", sp1, head,
                                            mtj::MtjModel(corner.mtj), s1);
  auto& mtj2 = c.add_device<mtj::MtjDevice>("MTJ2", sp2, head,
                                            mtj::MtjModel(corner.mtj), s2);
  c.add_pmos("P3", head, p3b, vdd, vdd, ctx.pgeom(tech.wEnable), ctx.pparams());
  // Lower branch: MTJ pair, footer.
  auto& mtj3 = c.add_device<mtj::MtjDevice>("MTJ3", sn1, tail,
                                            mtj::MtjModel(corner.mtj), s3);
  auto& mtj4 = c.add_device<mtj::MtjDevice>("MTJ4", sn2, tail,
                                            mtj::MtjModel(corner.mtj), s4);
  c.add_nmos("N3", tail, ren, kGround, kGround, ctx.ngeom(tech.wEnable), ctx.nparams());
  // Write drivers: upper pair sp1 = d1 / sp2 = NOT d1, lower pair
  // sn1 = NOT d0 / sn2 = d0 (tristate inverters invert their input).
  add_tristate_inverter(ctx, "TI1", d1b, sp1, wen, wenb);
  add_tristate_inverter(ctx, "TI2", d1, sp2, wen, wenb);
  add_tristate_inverter(ctx, "TI3", d0, sn1, wen, wenb);
  add_tristate_inverter(ctx, "TI4", d0b, sn2, wen, wenb);
  // Interconnect loading.
  c.add_capacitor("Cw.out", out, kGround, tech.cWire);
  c.add_capacitor("Cw.outb", outb, kGround, tech.cWire);
  return {&mtj1, &mtj2, &mtj3, &mtj4};
}

// Orientation encodings (see header): D1 = 1 <=> MTJ1 P / MTJ2 AP;
// D0 = 1 <=> MTJ3 AP / MTJ4 P.
mtj::MtjOrientation m1_state(bool d1) {
  return d1 ? mtj::MtjOrientation::Parallel : mtj::MtjOrientation::AntiParallel;
}
mtj::MtjOrientation m2_state(bool d1) { return m1_state(!d1); }
mtj::MtjOrientation m3_state(bool d0) {
  return d0 ? mtj::MtjOrientation::AntiParallel : mtj::MtjOrientation::Parallel;
}
mtj::MtjOrientation m4_state(bool d0) { return m3_state(!d0); }

void assign(MultibitLatchInstance& inst, const CoreHandles& core) {
  inst.mtj1 = core.mtj1;
  inst.mtj2 = core.mtj2;
  inst.mtj3 = core.mtj3;
  inst.mtj4 = core.mtj4;
}

} // namespace

MultibitLatchInstance MultibitNvLatch::build_read(const Technology& tech,
                                                  const TechCorner& corner, bool d0,
                                                  bool d1,
                                                  const TwoBitReadTiming& timing,
                                                  ControlScheme /*scheme*/,
                                                  Rng* mismatchRng, double sigmaVth) {
  // Both control schemes apply identical gate waveforms (the optimized
  // scheme differs in how many external nets toggle, which the Fig. 7 bench
  // accounts for at the waveform level), so the netlist is built once.
  MultibitLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd"),
                   mismatchRng, sigmaVth};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  assign(inst, build_core(ctx, m1_state(d1), m2_state(d1), m3_state(d0), m4_state(d0)));

  Controls ctl(tech.vdd, timing.phase.ramp, d0, d1);
  ctl.schedule_read(timing);
  ctl.install(inst.circuit);

  inst.tEval0Start = timing.phase0EvalStart();
  inst.tCapture0 = timing.phase0End();
  inst.tEval1Start = timing.phase1EvalStart();
  inst.tCapture1 = timing.phase1End();
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "MultibitNvLatch::build_read");
  return inst;
}

MultibitLatchInstance MultibitNvLatch::build_write(const Technology& tech,
                                                   const TechCorner& corner, bool d0,
                                                   bool d1,
                                                   const WriteTiming& timing) {
  MultibitLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  // Start from the complements so the store must flip all four MTJs.
  assign(inst,
         build_core(ctx, m1_state(!d1), m2_state(!d1), m3_state(!d0), m4_state(!d0)));

  Controls ctl(tech.vdd, timing.ramp, d0, d1);
  ctl.schedule_write(timing);
  ctl.install(inst.circuit);

  inst.tEval0Start = timing.start;
  inst.tEnd = timing.total();
  erc_self_check(inst.circuit, "MultibitNvLatch::build_write");
  return inst;
}

MultibitLatchInstance MultibitNvLatch::build_idle(const Technology& tech,
                                                  const TechCorner& corner) {
  MultibitLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd")};
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::dc(tech.vdd));
  assign(inst, build_core(ctx, m1_state(true), m2_state(true), m3_state(false),
                          m4_state(false)));
  Controls ctl(tech.vdd, 20e-12, false, true);
  ctl.install(inst.circuit);
  inst.tEnd = 1e-9;
  erc_self_check(inst.circuit, "MultibitNvLatch::build_idle");
  return inst;
}

MultibitLatchInstance MultibitNvLatch::build_power_cycle(const Technology& tech,
                                                         const TechCorner& corner,
                                                         bool d0, bool d1,
                                                         const PowerCycleTiming& timing,
                                                         Rng* mismatchRng,
                                                         double sigmaVth) {
  MultibitLatchInstance inst;
  BuildContext ctx{&inst.circuit, &tech, &corner, inst.circuit.node("vdd"),
                   mismatchRng, sigmaVth};
  spice::Pwl vddWave;
  vddWave.add_point(0.0, tech.vdd);
  vddWave.add_step(timing.offStart(), 0.0, timing.offRamp);
  vddWave.add_step(timing.onStart(), tech.vdd, timing.onRamp);
  inst.circuit.add_vsource("VDD", ctx.vdd, kGround, Waveform::pwl(vddWave));

  assign(inst,
         build_core(ctx, m1_state(!d1), m2_state(!d1), m3_state(!d0), m4_state(!d0)));

  TwoBitReadTiming read{};
  Controls ctl(tech.vdd, timing.write.ramp, d0, d1);
  ctl.schedule_write(timing.write);
  ctl.schedule_power_gap(timing.offStart(), timing.onStart() + timing.onRamp, d0, d1);
  ctl.schedule_read(read, timing.wakeDone());
  ctl.install(inst.circuit);

  inst.tEval0Start = timing.wakeDone() + read.phase0EvalStart();
  inst.tCapture0 = timing.wakeDone() + read.phase0End();
  inst.tEval1Start = timing.wakeDone() + read.phase1EvalStart();
  inst.tCapture1 = timing.wakeDone() + read.phase1End();
  inst.tEnd = timing.wakeDone() + read.total();
  erc_self_check(inst.circuit, "MultibitNvLatch::build_power_cycle");
  return inst;
}

namespace {

/// Shared by both deck patches: transistors to `corner`, the four pillars to
/// the given presets with fresh corner models and cleared dynamics.
void patch_multibit(MultibitLatchInstance& inst, const TechCorner& corner,
                    Rng* mismatchRng, double sigmaVth, mtj::MtjOrientation s1,
                    mtj::MtjOrientation s2, mtj::MtjOrientation s3,
                    mtj::MtjOrientation s4) {
  patch_transistors(inst.circuit, corner, mismatchRng, sigmaVth);
  mtj::MtjDevice* devs[4] = {inst.mtj1, inst.mtj2, inst.mtj3, inst.mtj4};
  const mtj::MtjOrientation states[4] = {s1, s2, s3, s4};
  for (int i = 0; i < 4; ++i) {
    devs[i]->set_model(mtj::MtjModel(corner.mtj));
    devs[i]->reset_dynamics(states[i]);
  }
}

} // namespace

MultibitPowerCycleDeck::MultibitPowerCycleDeck(const Technology& tech,
                                               const TechCorner& corner, bool d0,
                                               bool d1,
                                               const PowerCycleTiming& timing)
    : inst(MultibitNvLatch::build_power_cycle(tech, corner, d0, d1, timing)),
      compiled(inst.circuit),
      d0(d0),
      d1(d1) {
  ws.bind(compiled);
}

void MultibitPowerCycleDeck::patch(const TechCorner& corner, Rng* mismatchRng,
                                   double sigmaVth) {
  patch_multibit(inst, corner, mismatchRng, sigmaVth, m1_state(!d1), m2_state(!d1),
                 m3_state(!d0), m4_state(!d0));
}

MultibitReadDeck::MultibitReadDeck(const Technology& tech, const TechCorner& corner,
                                   bool d0, bool d1, const TwoBitReadTiming& timing,
                                   ControlScheme scheme)
    : inst(MultibitNvLatch::build_read(tech, corner, d0, d1, timing, scheme)),
      compiled(inst.circuit),
      d0(d0),
      d1(d1) {
  ws.bind(compiled);
}

void MultibitReadDeck::patch(const TechCorner& corner, Rng* mismatchRng,
                             double sigmaVth) {
  patch_multibit(inst, corner, mismatchRng, sigmaVth, m1_state(d1), m2_state(d1),
                 m3_state(d0), m4_state(d0));
}

} // namespace nvff::cell
