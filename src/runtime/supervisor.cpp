#include "runtime/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "runtime/durable_file.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace nvff::runtime {

namespace {

using Clock = std::chrono::steady_clock;

// Signal flag shared with the handler. std::atomic<int> is lock-free for int
// on every platform we build on, which makes it async-signal-safe here.
// Relaxed suffices: the flag carries no payload; the watchdog merely polls
// it and flips `draining`, which workers also poll.
std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

/// Installs SIGINT/SIGTERM handlers for the duration of a scope.
class SignalScope {
public:
  explicit SignalScope(bool install) : installed_(install) {
    if (!installed_) return;
    g_signal.store(0, std::memory_order_relaxed);
    prevInt_ = std::signal(SIGINT, on_signal);
    prevTerm_ = std::signal(SIGTERM, on_signal);
  }
  ~SignalScope() {
    if (!installed_) return;
    std::signal(SIGINT, prevInt_);
    std::signal(SIGTERM, prevTerm_);
  }
  SignalScope(const SignalScope&) = delete;
  SignalScope& operator=(const SignalScope&) = delete;

private:
  bool installed_;
  void (*prevInt_)(int) = SIG_DFL;
  void (*prevTerm_)(int) = SIG_DFL;
};

/// A trial currently executing, visible to the watchdog.
struct ActiveTrial {
  CancelToken* token = nullptr;
  Clock::time_point deadline{};
  bool hasDeadline = false;
};

/// Shared campaign bookkeeping, annotated for clang's thread-safety
/// analysis: every field names the mutex that guards it, so an unlocked
/// access from a worker, the watchdog, or the main thread is a compile
/// error under -Werror=thread-safety.
struct CampaignState {
  Mutex mu; ///< guards trial bookkeeping + checkpoint writes
  std::vector<char> done GUARDED_BY(mu);
  int completed GUARDED_BY(mu) = 0;
  long timeouts GUARDED_BY(mu) = 0;
  long transientRetries GUARDED_BY(mu) = 0;
  long permanents GUARDED_BY(mu) = 0;

  Mutex activeMu; ///< guards the watchdog's view of in-flight trials
  // DETLINT-ALLOW(DET004): watchdog-only bookkeeping; iteration order feeds
  // idempotent cancel() calls, never campaign results.
  std::unordered_map<int, ActiveTrial> active GUARDED_BY(activeMu);
};

/// Serializes the done-set through the engine hook and commits it durably.
/// Callers hold `state.mu` so the done-mask cannot move under the snapshot.
void commit_checkpoint(const std::string& path, const CampaignHooks& hooks,
                       const CampaignState& state) REQUIRES(state.mu) {
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(state.completed));
  for (std::size_t i = 0; i < state.done.size(); ++i)
    if (state.done[i]) ids.push_back(static_cast<int>(i));
  commit_durable(path, hooks.serialize(ids));
}

} // namespace

void tolerate_eintr_signals() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0; // deliberately NOT SA_RESTART: syscalls must see EINTR
  ::sigaction(SIGUSR1, &sa, nullptr);
}

const char* trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::Ok: return "ok";
    case TrialStatus::Transient: return "transient";
    case TrialStatus::Permanent: return "permanent";
    case TrialStatus::Timeout: return "timeout";
    case TrialStatus::Cancelled: return "cancelled";
  }
  return "?";
}

ResumeResult resume_from_checkpoint(
    const std::string& path,
    const std::function<std::vector<int>(const std::string&)>& deserialize) {
  ResumeResult out;
  for (;;) {
    DurableLoad loaded = load_durable(path);
    out.quarantined.insert(out.quarantined.end(), loaded.quarantined.begin(),
                           loaded.quarantined.end());
    if (!loaded.found) return out;
    try {
      out.ids = deserialize(loaded.payload);
      return out;
    } catch (const ConfigMismatch&) {
      throw;
    } catch (const std::exception& e) {
      log_warn("checkpoint '" + loaded.source + "' rejected (" + e.what() +
               "); quarantining and falling back");
      out.quarantined.push_back(quarantine_file(loaded.source)
                                    ? loaded.source + ".corrupt"
                                    : loaded.source);
    }
  }
}

const char* stop_cause_name(StopCause cause) {
  switch (cause) {
    case StopCause::Completed: return "completed";
    case StopCause::Interrupted: return "interrupted";
    case StopCause::DeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

SupervisorOutcome run_supervised(const SupervisorConfig& config,
                                 const CampaignHooks& hooks) {
  if (config.trials <= 0)
    throw std::runtime_error("supervisor: campaign needs trials > 0");
  if (!hooks.runTrial)
    throw std::runtime_error("supervisor: runTrial hook is required");
  const std::string& path = config.run.checkpointPath;
  if (!path.empty() && (!hooks.serialize || !hooks.deserialize))
    throw std::runtime_error(
        "supervisor: checkpointing needs serialize + deserialize hooks");

  SupervisorOutcome outcome;
  outcome.trialsTotal = config.trials;

  const auto total = static_cast<std::size_t>(config.trials);
  CampaignState state;
  {
    MutexLock lock(state.mu);
    state.done.assign(total, 0);
  }

  // --- resume -------------------------------------------------------------
  // Walk generations newest-first. CRC failures are quarantined inside
  // load_durable; a payload that passes the CRC but fails the engine's
  // schema parse (possible for legacy un-checksummed files) is quarantined
  // here and the next generation is tried. A fingerprint mismatch is fatal.
  if (!path.empty()) {
    ResumeResult resumed = resume_from_checkpoint(path, hooks.deserialize);
    outcome.quarantined = std::move(resumed.quarantined);
    {
      MutexLock lock(state.mu);
      for (const int id : resumed.ids) {
        if (id < 0 || id >= config.trials) continue;
        if (!state.done[static_cast<std::size_t>(id)]) {
          state.done[static_cast<std::size_t>(id)] = 1;
          ++state.completed;
        }
      }
      outcome.trialsResumed = state.completed;
    }
    if (config.run.requireResume && outcome.trialsResumed == 0)
      throw std::runtime_error("--resume: no usable checkpoint at '" + path +
                               "'");
  }

  // --- watchdog + drain state ---------------------------------------------
  SignalScope signals(config.run.installSignalHandlers);
  CancelToken campaignCancel; // raised only by the campaign deadline
  std::atomic<bool> draining{false};     // skip queued trials, finish in-flight
  std::atomic<bool> deadlineHit{false};
  std::atomic<bool> signalSeen{false};

  const bool haveDeadline = config.run.deadlineSeconds > 0.0;
  const auto campaignDeadline =
      // DETLINT-ALLOW(DET001): wall-clock campaign budget — genuinely
      // time-based by spec; results stay deterministic because interrupted
      // runs print no report and resumed trials recompute from counters.
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             haveDeadline ? config.run.deadlineSeconds : 0.0));
  const bool haveTrialTimeout = config.run.trialTimeoutSeconds > 0.0;
  const auto trialBudget = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          haveTrialTimeout ? config.run.trialTimeoutSeconds : 0.0));

  std::atomic<bool> watchdogStop{false};
  std::thread watchdog([&] {
    while (!watchdogStop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (g_signal.load(std::memory_order_relaxed) != 0 &&
          !signalSeen.exchange(true, std::memory_order_relaxed)) {
        draining.store(true, std::memory_order_relaxed);
        log_warn("interrupted: draining in-flight trials, then checkpointing");
      }
      // DETLINT-ALLOW(DET001): watchdog heartbeat — the one clock read that
      // enforces --trial-timeout-s and --deadline-s.
      const auto now = Clock::now();
      if (haveDeadline && now >= campaignDeadline &&
          !deadlineHit.exchange(true, std::memory_order_relaxed)) {
        draining.store(true, std::memory_order_relaxed);
        // Unlike a drain, the deadline also reels in in-flight trials: a
        // budget is a budget.
        campaignCancel.cancel(CancelToken::Reason::Cancelled);
      }
      if (haveTrialTimeout) {
        MutexLock lock(state.activeMu);
        // DETLINT-ALLOW(DET004): cancel() is idempotent; visiting stuck
        // trials in hash order cannot change what any trial computes.
        for (auto& [id, trial] : state.active)
          if (trial.hasDeadline && now >= trial.deadline)
            trial.token->cancel(CancelToken::Reason::Timeout);
      }
    }
  });

  // --- work loop ----------------------------------------------------------
  // Snapshot the resumed done-mask before workers exist: the submit loop
  // must not read state.done while workers are writing it.
  std::vector<char> alreadyDone;
  {
    MutexLock lock(state.mu);
    alreadyDone = state.done;
  }
  {
    ThreadPool pool(static_cast<unsigned>(std::max(1, config.threads)));
    for (int t = 0; t < config.trials; ++t) {
      if (alreadyDone[static_cast<std::size_t>(t)]) continue;
      pool.submit([&, t] {
        int attempts = 0;
        double backoff = config.retryBackoffSeconds;
        for (;;) {
          if (draining.load(std::memory_order_relaxed)) return;

          CancelToken token(&campaignCancel);
          if (haveTrialTimeout) {
            // DETLINT-ALLOW(DET001): arms this trial's watchdog deadline.
            const auto trialDeadline = Clock::now() + trialBudget;
            MutexLock lock(state.activeMu);
            state.active[t] = ActiveTrial{&token, trialDeadline, true};
          }
          TrialStatus status;
          try {
            if (const auto hit = util::failpoint("engine.alloc");
                hit && hit->action != util::FailAction::DelayMs) {
              // Injected per-trial resource failure (ENOMEM and friends):
              // classified Transient so it rides the same retry-with-backoff
              // ladder a real allocation hiccup would. The retried attempt
              // recomputes identical bytes — counter-based RNG — so an
              // injected storm perturbs no report byte.
              status = TrialStatus::Transient;
            } else {
              status = hooks.runTrial(t, token);
            }
          } catch (const std::exception& e) {
            // The hook contract says "never throw"; treat a breach as a
            // permanently failed trial rather than killing the campaign.
            log_warn("trial hook threw: " + std::string(e.what()));
            status = TrialStatus::Permanent;
          }
          if (haveTrialTimeout) {
            MutexLock lock(state.activeMu);
            state.active.erase(t);
          }

          if (status == TrialStatus::Cancelled) return; // re-run on resume

          if (status == TrialStatus::Transient &&
              ++attempts < config.maxTrialAttempts &&
              !draining.load(std::memory_order_relaxed)) {
            {
              MutexLock lock(state.mu);
              ++state.transientRetries;
            }
            // Interruptible backoff: a drain must not wait out the sleep.
            auto remaining = std::chrono::duration<double>(backoff);
            while (remaining.count() > 0.0 &&
                   !draining.load(std::memory_order_relaxed)) {
              const auto slice = std::min(
                  remaining, std::chrono::duration<double>(0.005));
              std::this_thread::sleep_for(slice);
              remaining -= slice;
            }
            backoff = std::min(backoff * 2.0, config.retryBackoffCapSeconds);
            continue;
          }

          MutexLock lock(state.mu);
          state.done[static_cast<std::size_t>(t)] = 1;
          ++state.completed;
          if (status == TrialStatus::Timeout) ++state.timeouts;
          if (status == TrialStatus::Permanent ||
              status == TrialStatus::Transient)
            ++state.permanents; // Transient here = retries exhausted
          if (config.progress) config.progress(state.completed, config.trials);
          if (!path.empty() && config.run.checkpointEvery > 0 &&
              state.completed % config.run.checkpointEvery == 0 &&
              state.completed < config.trials) {
            // Best-effort from workers: a transiently unwritable checkpoint
            // must not kill the campaign. The final commit below throws.
            try {
              commit_checkpoint(path, hooks, state);
            } catch (const std::exception& e) {
              log_warn("checkpoint write failed: " + std::string(e.what()));
            }
          }
          return;
        }
      });
    }
    pool.wait_idle();
  }

  watchdogStop.store(true, std::memory_order_relaxed);
  watchdog.join();

  // --- final commit + outcome ---------------------------------------------
  MutexLock lock(state.mu);
  outcome.trialsDone = state.completed;
  outcome.timeouts = state.timeouts;
  outcome.transientRetries = state.transientRetries;
  outcome.permanents = state.permanents;
  if (deadlineHit.load(std::memory_order_relaxed))
    outcome.cause = StopCause::DeadlineExceeded;
  else if (signalSeen.load(std::memory_order_relaxed) ||
           state.completed < config.trials)
    outcome.cause = StopCause::Interrupted;
  else
    outcome.cause = StopCause::Completed;

  if (!path.empty()) {
    try {
      commit_checkpoint(path, hooks, state);
      outcome.checkpointWritten = true;
    } catch (const DurableError& e) {
      // A classified commit failure (disk full, quota, I/O) is environmental
      // and, by durable_file's contract, leaves the previous generation
      // intact — so the run is resumable, not fatal. Surface it as
      // EX_TEMPFAIL through the outcome instead of throwing.
      outcome.commitError = e.what();
      log_warn("final checkpoint commit failed: " + std::string(e.what()));
    }
  }
  return outcome;
}

} // namespace nvff::runtime
