// Field-by-field diff of two campaign-config fingerprints.
//
// Both campaign engines fingerprint their configuration as a canonical JSON
// object (doubles rendered %.17g, so equal configs render to equal text).
// When `--resume` meets a checkpoint written by a different configuration,
// "fingerprint mismatch" alone sends the operator diffing JSON by eye; this
// renders the actual disagreement:
//
//   config mismatch between the stored checkpoint and this run:
//     seed: stored 1, requested 2
//     sigmaScale: stored 1, requested 1.5
//
// Nested objects flatten to dotted paths (recovery.retryBudget), arrays to
// indexed paths (timing[3]). Fields present on only one side are reported
// as "(absent)" — that is what a version-skewed checkpoint looks like.
#pragma once

#include <string>

namespace nvff::runtime {

/// Renders the per-field differences between two JSON fingerprints, one
/// "  path: stored X, requested Y" line per divergent leaf, in stored-file
/// field order. Returns "" when the documents are semantically identical.
/// Unparseable input degrades to a raw side-by-side dump — the diff is a
/// diagnostic and must never throw on the way to reporting an error.
std::string render_config_diff(const std::string& storedJson,
                               const std::string& requestedJson);

} // namespace nvff::runtime
