// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init/xorout
// 0xFFFFFFFF) — the checksum guarding checkpoint envelopes. Standard test
// vector: crc32("123456789") == 0xCBF43926.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace nvff::runtime {

std::uint32_t crc32(const void* data, std::size_t size);

inline std::uint32_t crc32(const std::string& bytes) {
  return crc32(bytes.data(), bytes.size());
}

} // namespace nvff::runtime
