// Unified campaign supervisor: one resilient trial-execution runtime that
// every campaign engine (Monte-Carlo reliability, power-fail injection, and
// whatever comes next) runs on instead of hand-rolling its own pool loop,
// checkpoint cadence, and failure handling.
//
// The supervisor owns:
//  * the WORK LOOP — a work-stealing pool over trial ids, a done-mask, and
//    slot-ordered bookkeeping so engine output stays bit-identical at any
//    thread count (the engine's determinism contract is untouched: the
//    supervisor schedules WHEN trials run, never WHAT they compute);
//  * DURABLE CHECKPOINTS — periodic and final commits through
//    runtime/durable_file (CRC envelope, fsync, two generations), with
//    corrupt generations quarantined and the previous one recovered;
//  * WATCHDOGS — a monitor thread enforcing a wall-clock deadline per trial
//    and one for the whole campaign, cancelling stuck trials through a
//    cooperative CancelToken threaded down into the SPICE Newton loop;
//  * GRACEFUL INTERRUPTION — SIGINT/SIGTERM drain in-flight trials, write a
//    final checkpoint, and surface kExitInterrupted (75, sysexits'
//    EX_TEMPFAIL) so callers know the run is resumable by construction.
//
// Structured error taxonomy (TrialStatus, returned by the engine hook):
//   Ok        — trial finished and classified; recorded as done.
//   Transient — environmental hiccup worth retrying; retried with capped
//               exponential backoff, then recorded (give-up counts as
//               permanent).
//   Permanent — deterministic failure the engine already folded into its
//               result slot; recorded as done, campaign continues.
//   Timeout   — the per-trial watchdog cancelled it; recorded as done with
//               a distinct count so a hung solver never stalls a campaign.
//   Cancelled — campaign-wide stop (global deadline) reached it mid-flight;
//               NOT recorded, so a resumed campaign re-runs it.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cancellation.hpp"

namespace nvff::runtime {

// --- exit-code contract (shared by every campaign CLI) ----------------------
// Documented in README "Crash safety & resumption"; pinned by tests/cli.
constexpr int kExitOk = 0;          ///< campaign completed (gates passed)
constexpr int kExitFatal = 1;       ///< hard error; nothing resumable written
constexpr int kExitUsage = 2;       ///< bad command line
constexpr int kExitGateFailed = 3;  ///< completed, but --fail-on-* tripped
constexpr int kExitInterrupted = 75;///< interrupted, checkpoint written (EX_TEMPFAIL)

/// Outcome of one trial attempt, as classified by the engine hook.
enum class TrialStatus { Ok, Transient, Permanent, Timeout, Cancelled };
const char* trial_status_name(TrialStatus status);

/// Thrown by an engine's deserialize hook when a checkpoint was produced by
/// an incompatible campaign configuration. FATAL: unlike corruption, a
/// fingerprint mismatch means the file is intact but belongs to a different
/// experiment, so silently mixing or discarding it would be wrong either way.
/// When the thrower has both fingerprints as JSON it attaches them, so the
/// CLI can print a field-by-field stored-vs-requested diff instead of a
/// generic refusal (see runtime/config_diff.hpp).
class ConfigMismatch : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
  ConfigMismatch(const std::string& message, std::string storedJson,
                 std::string requestedJson)
      : std::runtime_error(message), storedJson_(std::move(storedJson)),
        requestedJson_(std::move(requestedJson)) {}

  /// Fingerprint of the on-disk checkpoint ("" when unavailable).
  const std::string& stored_json() const { return storedJson_; }
  /// Fingerprint of the configuration this run asked for.
  const std::string& requested_json() const { return requestedJson_; }

private:
  std::string storedJson_;
  std::string requestedJson_;
};

/// The CLI-facing knobs `nvfftool mc` and `nvfftool powerfail` share.
struct RunOptions {
  std::string checkpointPath; ///< empty = no checkpointing
  int checkpointEvery = 16;   ///< commit cadence in completed trials
  bool requireResume = false; ///< --resume: error out if nothing loadable
  double trialTimeoutSeconds = 0.0; ///< per-trial watchdog; 0 = off
  double deadlineSeconds = 0.0;     ///< campaign wall-clock budget; 0 = off
  bool installSignalHandlers = false; ///< SIGINT/SIGTERM drain (CLI only)
};

struct SupervisorConfig {
  int trials = 0;
  int threads = 1;
  RunOptions run;
  /// Attempts per trial for Transient statuses (1 = no retry).
  int maxTrialAttempts = 3;
  /// Exponential backoff between transient retries: first wait, doubling,
  /// capped. Sleeps are interruptible by drain.
  double retryBackoffSeconds = 0.05;
  double retryBackoffCapSeconds = 1.0;
  /// (completedTrials, totalTrials), under the supervisor lock, in
  /// completion order — for progress display only.
  std::function<void(int, int)> progress;
};

/// How an engine plugs into the supervisor. All three hooks are required
/// when checkpointing is enabled; runTrial always.
struct CampaignHooks {
  /// Runs trial `trialId`, writing its result into the engine's slot
  /// `trialId` (slots never alias, so no lock is needed). Must poll
  /// `cancel` (thread it into the solver's RecoveryOptions) and must not
  /// throw — classify instead.
  std::function<TrialStatus(int trialId, const CancelToken& cancel)> runTrial;
  /// Serializes the slots named by `doneIds` (sorted ascending) into the
  /// engine's checkpoint payload. Called under the supervisor lock.
  std::function<std::string(const std::vector<int>& doneIds)> serialize;
  /// Parses a payload, fills the engine's slots, and returns the finished
  /// trial ids. Throw ConfigMismatch for a fingerprint mismatch (fatal);
  /// any other exception marks the payload corrupt — the supervisor
  /// quarantines the file and falls back to the previous generation.
  std::function<std::vector<int>(const std::string& payload)> deserialize;
};

/// Why the supervisor returned.
enum class StopCause {
  Completed,        ///< every trial recorded
  Interrupted,      ///< SIGINT/SIGTERM drain
  DeadlineExceeded, ///< campaign wall-clock budget spent
};
const char* stop_cause_name(StopCause cause);

struct SupervisorOutcome {
  StopCause cause = StopCause::Completed;
  int trialsTotal = 0;
  int trialsDone = 0;    ///< recorded in the done-mask (includes resumed)
  int trialsResumed = 0; ///< loaded from a checkpoint before any ran
  long timeouts = 0;          ///< trials the per-trial watchdog cancelled
  long transientRetries = 0;  ///< extra attempts spent on Transient
  long permanents = 0;        ///< Permanent + retry-exhausted Transient
  bool checkpointWritten = false; ///< a final durable commit succeeded
  /// Non-empty when the FINAL durable commit failed with a classified
  /// DurableError (disk full, quota, I/O). The previous checkpoint
  /// generation is intact by durable_file's contract, so the run is
  /// resumable: exit_code() reports kExitInterrupted, not kExitFatal.
  std::string commitError;
  std::vector<std::string> quarantined; ///< corrupt files moved aside on load

  bool completed() const { return trialsDone == trialsTotal; }
  /// The documented process exit code for this outcome: 0 when complete,
  /// 75 when interrupted with a resumable checkpoint on disk (or when the
  /// final commit failed but the previous generation survives), 1 otherwise.
  int exit_code() const {
    if (!commitError.empty()) return kExitInterrupted;
    if (completed()) return kExitOk;
    return checkpointWritten ? kExitInterrupted : kExitFatal;
  }
};

/// Result of resume_from_checkpoint: which finished trials were recovered
/// and which corrupt/unparseable generations were set aside on the way.
struct ResumeResult {
  std::vector<int> ids; ///< finished trial ids recovered from disk
  std::vector<std::string> quarantined;
};

/// Walks the durable generations of `path` newest-first: CRC failures are
/// quarantined by load_durable, a payload that passes the CRC but fails
/// `deserialize` (schema-level garbage) is quarantined here and the next
/// generation is tried. A ConfigMismatch from `deserialize` is rethrown —
/// fatal by contract. Shared by the supervisor's in-process resume and the
/// distributed coordinator's merged-campaign resume, so the two recovery
/// paths cannot drift apart.
ResumeResult resume_from_checkpoint(
    const std::string& path,
    const std::function<std::vector<int>(const std::string&)>& deserialize);

/// Runs a campaign under supervision. Throws std::runtime_error on fatal
/// conditions only: bad config, checkpoint fingerprint mismatch
/// (ConfigMismatch), a hard checkpoint READ error, or --resume with nothing
/// to resume. Trial failures NEVER throw — that is what the taxonomy is for
/// — and a failed final COMMIT is reported through
/// SupervisorOutcome::commitError (resumable, exit 75), not an exception.
SupervisorOutcome run_supervised(const SupervisorConfig& config,
                                 const CampaignHooks& hooks);

/// Installs a no-op SIGUSR1 handler WITHOUT SA_RESTART, so an external
/// signal ticker makes every blocking syscall in the process actually see
/// EINTR. Campaign CLIs call this at startup; the EINTR-storm drill in
/// tests/chaos/chaos_resource.sh leans on it to prove every retry loop
/// (send/recv/poll/read/fsync) really retries. Idempotent.
void tolerate_eintr_signals();

} // namespace nvff::runtime
