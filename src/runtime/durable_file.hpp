// Durable, checksummed file commits for campaign checkpoints.
//
// A checkpoint that does not survive the crash it exists for is decoration.
// This writer makes three guarantees the hand-rolled fopen/rename code in
// the campaign engines never did:
//
//  1. DURABILITY — the payload is flushed with fsync before the rename, and
//     the parent directory is fsynced after it, so a power cut cannot leave
//     the committed generation in a kernel buffer that never hit the disk.
//  2. INTEGRITY — the payload travels inside a one-line envelope
//         NVFFCKPT 1 <crc32:8-hex> <payload-bytes>\n<payload>
//     so a torn write, a truncation, or a flipped bit is *detected* at load
//     time instead of being parsed into silently wrong statistics.
//  3. RECOVERY — every commit first rotates the current file to `<path>.1`,
//     keeping two generations. A corrupt generation is quarantined (renamed
//     to `<file>.corrupt` for post-mortem) and the loader falls back to the
//     previous one rather than aborting the campaign.
//
// Files written before the envelope existed (bare JSON) are still accepted:
// a payload without the magic is returned as-is, with no checksum claim.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace nvff::runtime {

/// Where a durable commit failed. Classified so callers (and operators
/// reading logs) can tell an out-of-disk condition from a torn rotate
/// without parsing message strings. Every kind leaves the PREVIOUS
/// generation intact: WriteFailed/SyncFailed/CloseFailed fail before any
/// rename, RotateFailed leaves the current file where it was, and
/// ReplaceFailed happens after the current generation was safely rotated to
/// `<path>.1` — the loader falls back to it.
enum class CommitErrorKind {
  None,
  OpenFailed,    ///< could not create `<path>.tmp`
  WriteFailed,   ///< short write (ENOSPC, quota, I/O error)
  SyncFailed,    ///< fflush/fsync refused — durability cannot be promised
  CloseFailed,   ///< close reported a deferred write error
  RotateFailed,  ///< renaming current -> `<path>.1` failed
  ReplaceFailed, ///< renaming `<path>.tmp` -> `<path>` failed
};
const char* commit_error_name(CommitErrorKind kind);

/// Thrown by commit_durable on any write-path failure, carrying the
/// classification. The temp file is always cleaned up before throwing.
class DurableError : public std::runtime_error {
public:
  DurableError(CommitErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  CommitErrorKind kind() const { return kind_; }

private:
  CommitErrorKind kind_;
};

/// Result of load_durable: which generation was read and what got set aside.
struct DurableLoad {
  bool found = false;     ///< an intact payload was loaded
  std::string payload;    ///< envelope stripped (or the bare legacy body)
  std::string source;     ///< the file the payload came from
  int generation = 0;     ///< 0 = current, 1 = previous
  bool checksummed = false; ///< payload was protected by an envelope CRC
  std::vector<std::string> quarantined; ///< where corrupt files were moved
};

/// Wraps `payload` in the checksummed envelope.
std::string envelope_wrap(const std::string& payload);

/// True when `text` starts with the envelope magic.
bool is_enveloped(const std::string& text);

/// Strips and verifies the envelope; throws std::runtime_error on a bad
/// header, size mismatch (truncation) or CRC mismatch (corruption).
std::string envelope_unwrap(const std::string& text);

/// Commits `payload` to `path` durably: write `<path>.tmp` + fsync, rotate
/// the current file to `<path>.1`, rename the temp into place, fsync the
/// parent directory. Throws DurableError (a std::runtime_error carrying a
/// CommitErrorKind) on I/O failure; the previous generation survives every
/// failure mode (see CommitErrorKind). Every stage evaluates a failpoint
/// (`durable.open/write/fsync/close/rotate/rename` — see util/failpoint.hpp),
/// which is how tests and the resource-exhaustion drills inject ENOSPC at
/// each stage without filling a real disk.
void commit_durable(const std::string& path, const std::string& payload);

/// Loads the newest intact generation of `path` (current, then `<path>.1`).
/// Corrupt generations are renamed to `<file>.corrupt` and reported in
/// `quarantined`; they never abort the load. Throws std::runtime_error only
/// on a hard read error (permissions, I/O). Reads are EINTR-safe (retried),
/// and evaluate the `checkpoint.load` failpoint per read iteration.
DurableLoad load_durable(const std::string& path);

/// Moves `path` aside to `<path>.corrupt` (best effort; returns false when
/// the rename fails). Used by callers whose *schema-level* parse rejects a
/// payload that passed the CRC (e.g. a legacy un-checksummed file).
bool quarantine_file(const std::string& path);

} // namespace nvff::runtime
