#include "runtime/durable_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "runtime/crc32.hpp"
#include "util/failpoint.hpp"

namespace nvff::runtime {

namespace {

constexpr const char kMagic[] = "NVFFCKPT ";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

// std::generic_category().message() instead of strerror(): same text,
// but thread-safe (strerror's static buffer trips concurrency-mt-unsafe).
std::string errno_text() { return std::generic_category().message(errno); }

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return; // not fatal: some filesystems refuse O_RDONLY on dirs
  while (::fsync(fd) != 0 && errno == EINTR) {
  }
  ::close(fd);
}

/// Evaluates a durable-commit failpoint. Returns true when the stage should
/// fail (errno already holds the injected value); a delay action sleeps in
/// evaluate() and proceeds cleanly. ShortWrite at a non-write stage
/// degrades to a plain errno failure.
bool stage_fails(const char* site) {
  const auto hit = util::failpoint(site);
  if (!hit) return false;
  if (hit->action == util::FailAction::DelayMs) return false;
  errno = hit->err != 0 ? hit->err : EIO;
  return true;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Reads the whole file. Returns false when it does not exist; throws on a
/// hard read error. Raw POSIX read loop rather than stdio: fread gives no
/// way to distinguish EINTR from a real error once ferror() is set, and an
/// EINTR storm during resume must not look like a corrupt checkpoint. Each
/// iteration evaluates the `checkpoint.load` failpoint, so drills can
/// inject both a retried EINTR and a hard EIO here.
bool read_file(const std::string& path, std::string& out) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) return false;
    throw std::runtime_error("cannot open '" + path + "': " + errno_text());
  }
  out.clear();
  char buf[4096];
  for (;;) {
    if (const auto hit = util::failpoint("checkpoint.load")) {
      if (hit->action == util::FailAction::Eintr) continue; // retried, like real EINTR
      if (hit->action != util::FailAction::DelayMs) {
        ::close(fd);
        errno = hit->err != 0 ? hit->err : EIO;
        throw std::runtime_error("cannot read '" + path + "': " + errno_text());
      }
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail = errno_text();
      ::close(fd);
      throw std::runtime_error("cannot read '" + path + "': " + detail);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

} // namespace

std::string envelope_wrap(const std::string& payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "%s1 %08x %zu\n", kMagic,
                crc32(payload), payload.size());
  std::string out;
  out.reserve(std::strlen(header) + payload.size());
  out += header;
  out += payload;
  return out;
}

bool is_enveloped(const std::string& text) {
  return text.compare(0, kMagicLen, kMagic) == 0;
}

std::string envelope_unwrap(const std::string& text) {
  if (!is_enveloped(text))
    throw std::runtime_error("checkpoint envelope: missing magic");
  const std::size_t eol = text.find('\n', kMagicLen);
  if (eol == std::string::npos)
    throw std::runtime_error("checkpoint envelope: truncated header");
  unsigned version = 0;
  unsigned long crc = 0;
  unsigned long long bytes = 0;
  const std::string header = text.substr(kMagicLen, eol - kMagicLen);
  if (std::sscanf(header.c_str(), "%u %lx %llu", &version, &crc, &bytes) != 3)
    throw std::runtime_error("checkpoint envelope: malformed header");
  if (version != 1)
    throw std::runtime_error("checkpoint envelope: unsupported version");
  const std::string payload = text.substr(eol + 1);
  if (payload.size() != bytes)
    throw std::runtime_error("checkpoint envelope: size mismatch (truncated?)");
  if (crc32(payload) != static_cast<std::uint32_t>(crc))
    throw std::runtime_error("checkpoint envelope: CRC mismatch (corrupt)");
  return payload;
}

const char* commit_error_name(CommitErrorKind kind) {
  switch (kind) {
    case CommitErrorKind::None: return "none";
    case CommitErrorKind::OpenFailed: return "open-failed";
    case CommitErrorKind::WriteFailed: return "write-failed";
    case CommitErrorKind::SyncFailed: return "sync-failed";
    case CommitErrorKind::CloseFailed: return "close-failed";
    case CommitErrorKind::RotateFailed: return "rotate-failed";
    case CommitErrorKind::ReplaceFailed: return "replace-failed";
  }
  return "?";
}

void commit_durable(const std::string& path, const std::string& payload) {
  const std::string body = envelope_wrap(payload);
  const std::string tmp = path + ".tmp";

  // Failure discipline: classify, clean up the temp file, and throw BEFORE
  // any rename has touched the existing generations — a failed commit must
  // degrade to "the previous checkpoint still loads", never to "the rotate
  // ate the only good copy".
  auto fail = [&](CommitErrorKind kind, const std::string& message) {
    std::remove(tmp.c_str());
    throw DurableError(kind, "[" + std::string(commit_error_name(kind)) +
                                 "] " + message);
  };

  std::FILE* f = nullptr;
  if (!stage_fails("durable.open")) {
    do {
      f = std::fopen(tmp.c_str(), "wb");
    } while (!f && errno == EINTR);
  }
  if (!f)
    fail(CommitErrorKind::OpenFailed,
         "cannot create '" + tmp + "': " + errno_text());

  std::size_t written;
  if (const auto hit = util::failpoint("durable.write");
      hit && hit->action != util::FailAction::DelayMs) {
    // Injected short write: the kernel accepted part of the buffer and then
    // ran out of space — exactly what a real ENOSPC mid-payload looks like.
    written = std::fwrite(body.data(), 1, body.size() / 2, f);
    errno = hit->err != 0 ? hit->err : ENOSPC;
  } else {
    written = std::fwrite(body.data(), 1, body.size(), f);
  }
  if (written != body.size()) {
    const std::string detail = errno_text();
    std::fclose(f);
    fail(CommitErrorKind::WriteFailed,
         "short write to '" + tmp + "' (" + std::to_string(written) + "/" +
             std::to_string(body.size()) + " bytes): " + detail);
  }
  // fsync BEFORE the rename: rename orders metadata, not data, so without
  // this a crash can leave a correctly-named file full of nothing.
  bool syncOk = false;
  if (!stage_fails("durable.fsync")) {
    if (std::fflush(f) == 0) {
      int rc;
      while ((rc = ::fsync(fileno(f))) != 0 && errno == EINTR) {
      }
      syncOk = rc == 0;
    }
  }
  if (!syncOk) {
    const std::string detail = errno_text();
    std::fclose(f);
    fail(CommitErrorKind::SyncFailed,
         "cannot flush '" + tmp + "': " + detail);
  }
  int closeRc;
  if (stage_fails("durable.close")) {
    std::fclose(f); // the real descriptor still has to go away
    closeRc = EOF;
  } else {
    closeRc = std::fclose(f);
  }
  if (closeRc != 0)
    fail(CommitErrorKind::CloseFailed,
         "close of '" + tmp + "' reported a deferred write error: " +
             errno_text());

  // Rotate the current generation to `.1`. If we crash after this rename
  // the current file is momentarily missing — load_durable falls back to
  // the rotated copy, so the window is safe.
  if (file_exists(path)) {
    const std::string prev = path + ".1";
    if (stage_fails("durable.rotate") ||
        std::rename(path.c_str(), prev.c_str()) != 0)
      fail(CommitErrorKind::RotateFailed,
           "cannot rotate '" + path + "': " + errno_text());
  }
  if (stage_fails("durable.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0)
    fail(CommitErrorKind::ReplaceFailed,
         "cannot replace '" + path + "' (previous generation rotated to '" +
             path + ".1' and still intact): " + errno_text());
  // And fsync the directory so the rename itself survives a power cut.
  fsync_dir(parent_dir(path));
}

bool quarantine_file(const std::string& path) {
  const std::string dest = path + ".corrupt";
  std::remove(dest.c_str());
  return std::rename(path.c_str(), dest.c_str()) == 0;
}

DurableLoad load_durable(const std::string& path) {
  DurableLoad out;
  const std::string candidates[2] = {path, path + ".1"};
  for (int gen = 0; gen < 2; ++gen) {
    std::string text;
    if (!read_file(candidates[gen], text)) continue;
    if (!is_enveloped(text)) {
      // Legacy bare payload: accepted, but with no integrity claim — the
      // caller's schema parse is the only guard.
      out.found = true;
      out.payload = std::move(text);
      out.source = candidates[gen];
      out.generation = gen;
      out.checksummed = false;
      return out;
    }
    try {
      out.payload = envelope_unwrap(text);
    } catch (const std::exception&) {
      // Report where the evidence ended up (falling back to the original
      // path if the move itself failed) so post-mortems can find it.
      out.quarantined.push_back(quarantine_file(candidates[gen])
                                    ? candidates[gen] + ".corrupt"
                                    : candidates[gen]);
      continue;
    }
    out.found = true;
    out.source = candidates[gen];
    out.generation = gen;
    out.checksummed = true;
    return out;
  }
  return out;
}

} // namespace nvff::runtime
