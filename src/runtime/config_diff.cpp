#include "runtime/config_diff.hpp"

#include <string>
#include <vector>

#include "util/json.hpp"

namespace nvff::runtime {

namespace {

/// Renders a leaf (or any value, for the absent/mismatched-kind cases) back
/// to compact JSON text for display. Objects/arrays only appear here when a
/// whole subtree exists on one side only, so recursion depth is bounded by
/// the parser's own 64-level cap.
std::string render_value(const json::Value& v) {
  using Kind = json::Value::Kind;
  switch (v.kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return v.boolean ? "true" : "false";
    case Kind::Num: return json::num(v.number);
    case Kind::Str: {
      std::string out;
      json::append_escaped(out, v.text);
      return out;
    }
    case Kind::Arr: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i) out += ",";
        out += render_value(v.items[i]);
      }
      out += "]";
      return out;
    }
    case Kind::Obj: {
      std::string out = "{";
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i) out += ",";
        json::append_escaped(out, v.fields[i].first);
        out += ":";
        out += render_value(v.fields[i].second);
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

void emit(std::string& out, const std::string& path, const std::string& stored,
          const std::string& requested) {
  out += "  " + (path.empty() ? std::string("(root)") : path) + ": stored " +
         stored + ", requested " + requested + "\n";
}

/// Recursive structural diff. Walks stored-side field order first so the
/// report reads in the order the checkpoint file does, then reports
/// requested-only fields after.
void diff_values(const json::Value& stored, const json::Value& requested,
                 const std::string& path, std::string& out) {
  using Kind = json::Value::Kind;
  if (stored.kind != requested.kind) {
    emit(out, path, render_value(stored), render_value(requested));
    return;
  }
  switch (stored.kind) {
    case Kind::Obj: {
      for (const auto& [key, sval] : stored.fields) {
        const std::string childPath = path.empty() ? key : path + "." + key;
        const json::Value* rval = requested.find(key);
        if (!rval) {
          emit(out, childPath, render_value(sval), "(absent)");
        } else {
          diff_values(sval, *rval, childPath, out);
        }
      }
      for (const auto& [key, rval] : requested.fields) {
        if (stored.find(key)) continue;
        const std::string childPath = path.empty() ? key : path + "." + key;
        emit(out, childPath, "(absent)", render_value(rval));
      }
      return;
    }
    case Kind::Arr: {
      const std::size_t common =
          stored.items.size() < requested.items.size() ? stored.items.size()
                                                       : requested.items.size();
      for (std::size_t i = 0; i < common; ++i) {
        diff_values(stored.items[i], requested.items[i],
                    path + "[" + std::to_string(i) + "]", out);
      }
      for (std::size_t i = common; i < stored.items.size(); ++i) {
        emit(out, path + "[" + std::to_string(i) + "]",
             render_value(stored.items[i]), "(absent)");
      }
      for (std::size_t i = common; i < requested.items.size(); ++i) {
        emit(out, path + "[" + std::to_string(i) + "]", "(absent)",
             render_value(requested.items[i]));
      }
      return;
    }
    case Kind::Num:
      // %.17g text equality IS the fingerprint equality contract.
      if (json::num(stored.number) != json::num(requested.number))
        emit(out, path, json::num(stored.number), json::num(requested.number));
      return;
    case Kind::Str:
      if (stored.text != requested.text)
        emit(out, path, render_value(stored), render_value(requested));
      return;
    case Kind::Bool:
      if (stored.boolean != requested.boolean)
        emit(out, path, render_value(stored), render_value(requested));
      return;
    case Kind::Null:
      return;
  }
}

} // namespace

std::string render_config_diff(const std::string& storedJson,
                               const std::string& requestedJson) {
  json::Value stored;
  json::Value requested;
  try {
    stored = json::parse(storedJson, "stored config");
    requested = json::parse(requestedJson, "requested config");
  } catch (const std::exception&) {
    // Diagnostic path: a fingerprint we cannot parse still deserves to be
    // shown, just without structure.
    if (storedJson == requestedJson) return "";
    return "  stored:    " + storedJson + "\n  requested: " + requestedJson +
           "\n";
  }
  std::string out;
  diff_values(stored, requested, "", out);
  return out;
}

} // namespace nvff::runtime
