// SPICE-engine adapter for the MTJ compact model.
//
// Electrically the MTJ is a state- and bias-dependent nonlinear resistor.
// Magnetically it integrates "switching progress" whenever the through
// current favours a flip, and commits the flip once the accumulated
// progress reaches one mean switching time. The progress integral makes the
// device respond correctly to a write pulse that is briefly interrupted, and
// to sub-critical read currents (progress accumulates astronomically slowly).
#pragma once

#include "mtj/model.hpp"
#include "spice/device.hpp"

namespace nvff::mtj {

/// Manufacturing-defect modes of an MTJ pillar (for the fault-injection
/// study; ref [16] of the paper treats these for NV flip-flops).
enum class MtjDefect {
  None,
  PinnedParallel,     ///< free layer cannot leave P (write fails toward AP)
  PinnedAntiParallel, ///< free layer cannot leave AP
  ShortedBarrier,     ///< pinhole: resistance collapses to a few hundred ohm
  OpenBarrier,        ///< broken contact: mega-ohm open
};

class MtjDevice : public spice::Device {
public:
  /// `free` is the free-layer terminal, `ref` the reference-layer terminal.
  /// Positive current free->ref favours the Parallel state (see MtjModel).
  MtjDevice(std::string name, spice::NodeId free, spice::NodeId ref, MtjModel model,
            MtjOrientation initial);

  void stamp(spice::Stamper& stamper, const spice::SimState& state) override;
  bool is_nonlinear() const override { return true; }
  bool has_step_state() const override { return true; }
  void end_step(const spice::SimState& state) override;

  MtjOrientation orientation() const { return orientation_; }
  void set_orientation(MtjOrientation orientation);

  /// Through current (free -> ref) at the given solver state.
  double current(const spice::SimState& state) const;

  /// Resistance at the given solver state's bias.
  double resistance(const spice::SimState& state) const;

  const MtjModel& model() const { return model_; }

  /// Replaces the compact-model parameter set. Reliability campaigns use
  /// this to give every pillar of a freshly built deck its own sampled
  /// process point (the builders construct all MTJs from one corner set).
  /// Call before simulating; switching progress is reset.
  void set_model(MtjModel model);
  spice::NodeId free_node() const { return free_; }
  spice::NodeId ref_node() const { return ref_; }

  /// Fraction [0, 1) of the switching process accumulated so far.
  double switching_progress() const { return progress_; }

  /// Number of orientation flips committed during simulation.
  int flip_count() const { return flipCount_; }

  /// Injects a manufacturing defect (see MtjDefect). Pinned defects force
  /// the orientation immediately and block all future switching; barrier
  /// defects override the electrical resistance.
  void inject_defect(MtjDefect defect);
  MtjDefect defect() const { return defect_; }

  /// Returns the pillar to its just-built state: orientation set to
  /// `initial`, switching progress and flip count cleared, any injected
  /// defect removed. The deck patch() API calls this between trials so a
  /// recycled compiled deck starts exactly like a freshly built one.
  void reset_dynamics(MtjOrientation initial);

private:
  /// Effective resistance honouring barrier defects.
  double effective_resistance(double bias) const;
  spice::NodeId free_;
  spice::NodeId ref_;
  MtjModel model_;
  MtjOrientation orientation_;
  double progress_ = 0.0;
  int flipCount_ = 0;
  MtjDefect defect_ = MtjDefect::None;
};

} // namespace nvff::mtj
