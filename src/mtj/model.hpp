// Compact model of a Spin-Transfer-Torque Magnetic Tunnel Junction.
//
// Reproduces the observable behaviour of the perpendicular-anisotropy MTJ
// model the paper uses ([29], Mejdoubi et al.) at the level the evaluation
// needs:
//  * resistance in the P / AP states, with the experimentally observed
//    bias-dependent TMR roll-off (AP resistance falls with |V|),
//  * spin-transfer switching with the Sun precessional model above the
//    critical current and an Arrhenius thermal-activation term below it,
//  * +-3 sigma process variation on the RA product, TMR and critical
//    current (the paper's corner variables, Section IV-A).
//
// Parameter defaults are Table I of the paper.
#pragma once

#include "util/rng.hpp"

namespace nvff::mtj {

/// Magnetization configuration of the free layer relative to the reference
/// layer. Parallel = low resistance, AntiParallel = high resistance.
enum class MtjOrientation { Parallel, AntiParallel };

/// Physical + electrical parameters (Table I defaults).
struct MtjParams {
  // Geometry (informational; the electrical values below are authoritative,
  // see note on the paper's RA/R_P inconsistency in EXPERIMENTS.md).
  double radius = 20e-9;         ///< [m]
  double freeThickness = 1.84e-9; ///< [m]
  double oxideThickness = 1.48e-9; ///< [m]

  double ra = 1.26e-12;   ///< resistance-area product [Ohm m^2]
  double tmr0 = 1.23;     ///< TMR at zero bias (123 %)
  double rParallel = 5e3; ///< 'P' resistance [Ohm]
  double rAntiParallel = 11e3; ///< 'AP' resistance at 0 V [Ohm]

  double vHalf = 0.5;  ///< bias at which TMR halves [V]
  double iCritical = 37e-6;  ///< critical switching current [A]
  double iSwitching = 70e-6; ///< nominal write current [A]
  /// Switching time exactly at the critical current — the crossover point
  /// between the thermally-activated and precessional regimes. The combined
  /// rate model is continuous and monotone through I = Ic.
  double tauCrossover = 50e-9;
  double thermalStability = 60.0; ///< Delta = E_b / kT
  double tempK = 300.15;

  /// Defaults straight from Table I.
  static MtjParams table1();

  /// Returns parameters shifted by the given number of standard deviations
  /// on each corner variable (the paper's +-3 sigma analysis). Positive
  /// nSigma* increases the variable.
  MtjParams at_sigma(double nSigmaRa, double nSigmaTmr, double nSigmaIc) const;

  /// Monte-Carlo sample with independent gaussian variation, clamped at
  /// +-3 sigma (matching the paper's corner envelope). `sigmaScale`
  /// multiplies the one-sigma spreads — reliability campaigns sweep it to
  /// trace yield versus process quality (the clamp stays at 3 of the
  /// SCALED sigmas, so the envelope widens with the spread).
  MtjParams sample(Rng& rng, double sigmaScale = 1.0) const;

  /// One-sigma relative variations used by at_sigma()/sample().
  static constexpr double kSigmaRaRel = 0.05;
  static constexpr double kSigmaTmrRel = 0.05;
  static constexpr double kSigmaIcRel = 0.05;
};

/// Stateless electrical/dynamic model evaluated against MtjParams.
class MtjModel {
public:
  explicit MtjModel(MtjParams params);

  const MtjParams& params() const { return params_; }

  /// Bias-dependent TMR: TMR(V) = TMR0 / (1 + (V/Vh)^2).
  double tmr(double bias) const;

  /// Resistance in the given orientation at the given bias [Ohm].
  /// P-state resistance is bias-independent; AP follows the TMR roll-off.
  double resistance(MtjOrientation state, double bias) const;

  /// d(resistance)/d(bias) — needed for the Newton stamp.
  double resistance_derivative(MtjOrientation state, double bias) const;

  /// Mean switching time for a sustained current of magnitude `current` in
  /// the favourable polarity [s]. Combined-rate model, continuous and
  /// monotone in |I|:
  ///   1/tau = 1/tau_th + 1/tau_prec
  ///   tau_th   = tauCrossover * exp(Delta * max(0, 1 - I/Ic))   (Arrhenius)
  ///   tau_prec = c / (I - Ic) for I > Ic, infinite otherwise    (Sun)
  /// with c calibrated so tau(iSwitching) is exactly the paper's 2 ns.
  double switching_time(double current) const;

  /// Zero-current data-retention time: the Arrhenius lifetime of the stored
  /// state, tauCrossover * exp(Delta). With Table I's Delta = 60 this is
  /// astronomically long (decades) — the "non-volatile" in the paper title.
  double retention_time() const;

  /// True if a current of this polarity drives the device toward `target`.
  /// Positive current is defined as flowing from the free-layer terminal to
  /// the reference-layer terminal, which favours the AP->P transition.
  static bool polarity_favours(double current, MtjOrientation target);

private:
  MtjParams params_;
  double sunCoefficient_; // c in tau = c / (I - Ic)
};

} // namespace nvff::mtj
