#include "mtj/device.hpp"

#include <cmath>

namespace nvff::mtj {

MtjDevice::MtjDevice(std::string name, spice::NodeId free, spice::NodeId ref,
                     MtjModel model, MtjOrientation initial)
    : Device(std::move(name)),
      free_(free),
      ref_(ref),
      model_(std::move(model)),
      orientation_(initial) {}

double MtjDevice::effective_resistance(double bias) const {
  switch (defect_) {
    case MtjDefect::ShortedBarrier:
      return 300.0; // pinhole short
    case MtjDefect::OpenBarrier:
      return 50e6; // broken contact
    default:
      return model_.resistance(orientation_, bias);
  }
}

void MtjDevice::stamp(spice::Stamper& stamper, const spice::SimState& state) {
  const double v = state.v(free_) - state.v(ref_);
  const double r = effective_resistance(v);
  const double drdv = (defect_ == MtjDefect::ShortedBarrier ||
                       defect_ == MtjDefect::OpenBarrier)
                          ? 0.0
                          : model_.resistance_derivative(orientation_, v);
  // I(V) = V / R(V); dI/dV = 1/R - V * R' / R^2.
  const double i0 = v / r;
  const double didv = 1.0 / r - v * drdv / (r * r);
  stamper.nonlinear_current(free_, ref_, i0,
                            {{free_, didv}, {ref_, -didv}}, state);
}

void MtjDevice::end_step(const spice::SimState& state) {
  if (defect_ != MtjDefect::None) return; // a defective pillar never switches
  if (!state.transient || state.dt <= 0.0) return;
  const double i = current(state);
  const MtjOrientation target = (i > 0.0) ? MtjOrientation::Parallel
                                          : MtjOrientation::AntiParallel;
  if (target == orientation_ || i == 0.0) {
    // No torque toward a flip; relax accumulated progress (the free layer
    // falls back into its well). Full reset is the standard compact-model
    // simplification for pulses separated by more than the precession time.
    progress_ = 0.0;
    return;
  }
  const double tau = model_.switching_time(i);
  if (!std::isfinite(tau)) return;
  progress_ += state.dt / tau;
  if (progress_ >= 1.0) {
    orientation_ = target;
    progress_ = 0.0;
    ++flipCount_;
  }
}

void MtjDevice::set_orientation(MtjOrientation orientation) {
  orientation_ = orientation;
  progress_ = 0.0;
}

void MtjDevice::set_model(MtjModel model) {
  model_ = std::move(model);
  progress_ = 0.0;
}

double MtjDevice::current(const spice::SimState& state) const {
  const double v = state.v(free_) - state.v(ref_);
  return v / effective_resistance(v);
}

double MtjDevice::resistance(const spice::SimState& state) const {
  const double v = state.v(free_) - state.v(ref_);
  return effective_resistance(v);
}

void MtjDevice::reset_dynamics(MtjOrientation initial) {
  orientation_ = initial;
  progress_ = 0.0;
  flipCount_ = 0;
  defect_ = MtjDefect::None;
}

void MtjDevice::inject_defect(MtjDefect defect) {
  defect_ = defect;
  progress_ = 0.0;
  if (defect == MtjDefect::PinnedParallel) orientation_ = MtjOrientation::Parallel;
  if (defect == MtjDefect::PinnedAntiParallel) {
    orientation_ = MtjOrientation::AntiParallel;
  }
}

} // namespace nvff::mtj
