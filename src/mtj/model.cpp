#include "mtj/model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace nvff::mtj {

MtjParams MtjParams::table1() { return MtjParams{}; }

MtjParams MtjParams::at_sigma(double nSigmaRa, double nSigmaTmr, double nSigmaIc) const {
  MtjParams p = *this;
  const double raScale = 1.0 + nSigmaRa * kSigmaRaRel;
  const double tmrScale = 1.0 + nSigmaTmr * kSigmaTmrRel;
  const double icScale = 1.0 + nSigmaIc * kSigmaIcRel;
  p.ra *= raScale;
  // R_P tracks the RA product; R_AP = R_P * (1 + TMR).
  p.rParallel *= raScale;
  p.tmr0 *= tmrScale;
  p.rAntiParallel = p.rParallel * (1.0 + p.tmr0);
  p.iCritical *= icScale;
  p.iSwitching *= icScale;
  return p;
}

MtjParams MtjParams::sample(Rng& rng, double sigmaScale) const {
  return at_sigma(rng.normal_clamped(0.0, sigmaScale, 3.0),
                  rng.normal_clamped(0.0, sigmaScale, 3.0),
                  rng.normal_clamped(0.0, sigmaScale, 3.0));
}

MtjModel::MtjModel(MtjParams params) : params_(params) {
  if (params_.iSwitching <= params_.iCritical) {
    throw std::invalid_argument("MtjModel: iSwitching must exceed iCritical");
  }
  // Calibrate the Sun coefficient so the nominal write current switches in
  // the paper's 2 ns write window, accounting for the (small) thermal rate
  // floor: 1/2ns = 1/tauCrossover + (Isw - Ic)/c.
  constexpr double kNominalSwitchTime = 2e-9;
  const double targetRate = 1.0 / kNominalSwitchTime - 1.0 / params_.tauCrossover;
  if (targetRate <= 0.0) {
    throw std::invalid_argument("MtjModel: tauCrossover must exceed 2 ns");
  }
  sunCoefficient_ = (params_.iSwitching - params_.iCritical) / targetRate;
}

double MtjModel::tmr(double bias) const {
  const double x = bias / params_.vHalf;
  return params_.tmr0 / (1.0 + x * x);
}

double MtjModel::resistance(MtjOrientation state, double bias) const {
  if (state == MtjOrientation::Parallel) return params_.rParallel;
  return params_.rParallel * (1.0 + tmr(bias));
}

double MtjModel::resistance_derivative(MtjOrientation state, double bias) const {
  if (state == MtjOrientation::Parallel) return 0.0;
  const double vh2 = params_.vHalf * params_.vHalf;
  const double denom = 1.0 + bias * bias / vh2;
  return params_.rParallel * params_.tmr0 * (-2.0 * bias / vh2) / (denom * denom);
}

double MtjModel::switching_time(double current) const {
  const double i = std::fabs(current);
  if (i <= 0.0) return std::numeric_limits<double>::infinity();

  // Thermal (Arrhenius) rate; the barrier term vanishes at and above Ic.
  const double barrier =
      params_.thermalStability * std::max(0.0, 1.0 - i / params_.iCritical);
  double rate = 0.0;
  if (barrier < 700.0) {
    rate += std::exp(-barrier) / params_.tauCrossover;
  }
  // Precessional (Sun) rate above the critical current.
  if (i > params_.iCritical) {
    rate += (i - params_.iCritical) / sunCoefficient_;
  }
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / rate;
}

double MtjModel::retention_time() const {
  if (params_.thermalStability > 700.0) {
    return std::numeric_limits<double>::infinity();
  }
  return params_.tauCrossover * std::exp(params_.thermalStability);
}

bool MtjModel::polarity_favours(double current, MtjOrientation target) {
  // Positive current = conventional current from free layer to reference
  // layer = electrons traverse the reference layer first and torque the free
  // layer parallel.
  if (target == MtjOrientation::Parallel) return current > 0.0;
  return current < 0.0;
}

} // namespace nvff::mtj
