// The paper's system-level flow (Sec. IV-C):
//
//   RTL netlist -> synthesis/mapping -> floorplan + placement -> DEF
//       -> pairing script (<= 3.35 um) -> replace paired FFs with the 2-bit
//          NV cell, the rest with the standard 1-bit NV cell
//       -> roll up NV-component area and restore energy (Table III).
//
// run_flow() executes the whole pipeline on one benchmark and returns the
// Table III row plus all intermediate artifacts (placement, DEF text,
// pairing) so the figure benches can render them.
#pragma once

#include <string>

#include "bench_circuits/generator.hpp"
#include "core/nv_cells.hpp"
#include "pairing/pairing.hpp"
#include "physdes/placement.hpp"

namespace nvff::core {

struct FlowOptions {
  physdes::PlacerOptions placer{};
  pairing::PairingOptions pairing{};
  NvCellSet cells = NvCellSet::paper();

  FlowOptions() {
    // The paper's threshold: twice the standard NV component width.
    pairing.maxDistance = cell::pairing_distance_threshold_um();
  }
};

/// One row of Table III plus intermediates.
struct FlowReport {
  std::string benchmark;
  std::size_t totalFlipFlops = 0;
  std::size_t pairs = 0; ///< "number of 2-bit NV flip-flops"
  double pairedFraction = 0.0;

  double areaStd = 0.0;    ///< [um^2] all-1-bit backup
  double energyStd = 0.0;  ///< [J] all-1-bit restore energy
  double areaProp = 0.0;   ///< [um^2] mixed 2-bit/1-bit backup
  double energyProp = 0.0; ///< [J]
  double areaImprovementPct = 0.0;
  double energyImprovementPct = 0.0;

  // Intermediates for figures / inspection.
  bench::GeneratedCircuit circuit;
  physdes::Placement placement;
  pairing::PairingResult pairing;
  std::vector<pairing::FlipFlopSite> ffSites;
};

/// Full pipeline on a generated paper benchmark.
FlowReport run_flow(const bench::BenchmarkSpec& spec, const FlowOptions& options = {});

/// Pipeline on an externally supplied netlist (e.g. parsed from .bench).
FlowReport run_flow_on_netlist(const bench::Netlist& netlist,
                               const FlowOptions& options = {});

/// Extracts flip-flop sites (cell centers) from a placement — the "script
/// over the DEF" step. The overload taking DEF text parses the actual DEF
/// artifact, exactly as the paper's script does.
std::vector<pairing::FlipFlopSite> ff_sites_from_placement(
    const physdes::Placement& placement, const bench::Netlist& netlist);
std::vector<pairing::FlipFlopSite> ff_sites_from_def(const std::string& defText);

/// Roll-up of the NV-component area/energy given pairing counts.
struct RollUp {
  double areaStd, energyStd, areaProp, energyProp;
};
RollUp roll_up(std::size_t totalFfs, std::size_t pairs, const NvCellSet& cells);

} // namespace nvff::core
