#include "core/clock_network.hpp"

#include <algorithm>
#include <cmath>

namespace nvff::core {

namespace {

/// Recursive H-tree wire length over a set of sink positions: splits the
/// bounding box along its longer side, adds the trunk connecting the two
/// halves' centers, and recurses until <= sinksPerLeafBuffer sinks remain
/// (those are wired as a short local spine).
struct HtreeAccumulator {
  double wireUm = 0.0;
  int buffers = 0;
  int leafLimit = 16;

  void build(std::vector<std::pair<double, double>>& pts, std::size_t lo,
             std::size_t hi) {
    const std::size_t n = hi - lo;
    if (n == 0) return;
    if (n <= static_cast<std::size_t>(leafLimit)) {
      // Local spine: length of the bounding box half-perimeter.
      double minX = pts[lo].first;
      double maxX = minX;
      double minY = pts[lo].second;
      double maxY = minY;
      for (std::size_t i = lo; i < hi; ++i) {
        minX = std::min(minX, pts[i].first);
        maxX = std::max(maxX, pts[i].first);
        minY = std::min(minY, pts[i].second);
        maxY = std::max(maxY, pts[i].second);
      }
      wireUm += (maxX - minX) + (maxY - minY);
      buffers += 1;
      return;
    }
    // Split along the longer dimension at the median.
    double minX = pts[lo].first;
    double maxX = minX;
    double minY = pts[lo].second;
    double maxY = minY;
    for (std::size_t i = lo; i < hi; ++i) {
      minX = std::min(minX, pts[i].first);
      maxX = std::max(maxX, pts[i].first);
      minY = std::min(minY, pts[i].second);
      maxY = std::max(maxY, pts[i].second);
    }
    const bool splitX = (maxX - minX) >= (maxY - minY);
    const std::size_t mid = lo + n / 2;
    std::nth_element(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                     pts.begin() + static_cast<std::ptrdiff_t>(mid),
                     pts.begin() + static_cast<std::ptrdiff_t>(hi),
                     [&](const auto& a, const auto& b) {
                       return splitX ? a.first < b.first : a.second < b.second;
                     });
    // Trunk connecting the halves: half the span of the split dimension.
    wireUm += 0.5 * (splitX ? (maxX - minX) : (maxY - minY));
    buffers += 1;
    build(pts, lo, mid);
    build(pts, mid, hi);
  }
};

ClockNetworkEstimate estimate(const std::vector<std::pair<double, double>>& sinks,
                              const std::vector<double>& pinCaps,
                              const ClockModelParams& params) {
  ClockNetworkEstimate e;
  e.sinks = sinks.size();
  for (double c : pinCaps) e.pinCapF += c;
  std::vector<std::pair<double, double>> pts = sinks;
  HtreeAccumulator tree;
  tree.leafLimit = params.sinksPerLeafBuffer;
  tree.build(pts, 0, pts.size());
  e.wireCapF = tree.wireUm * params.cWirePerUm;
  e.buffers = tree.buffers;
  e.bufferCapF = tree.buffers * params.cBuffer;
  e.dynamicPowerW = params.frequency * params.vdd * params.vdd * e.totalCapF();
  return e;
}

} // namespace

ClockNetworkEstimate estimate_clock_network(
    const std::vector<pairing::FlipFlopSite>& sites, const ClockModelParams& params) {
  std::vector<std::pair<double, double>> sinks;
  std::vector<double> caps;
  sinks.reserve(sites.size());
  for (const auto& s : sites) {
    sinks.emplace_back(s.x, s.y);
    caps.push_back(params.cPinClkFf);
  }
  return estimate(sinks, caps, params);
}

ClockNetworkEstimate estimate_clock_network_mbff(
    const std::vector<pairing::FlipFlopSite>& sites,
    const pairing::PairingResult& pairs, const ClockModelParams& params) {
  std::vector<std::pair<double, double>> sinks;
  std::vector<double> caps;
  for (const auto& p : pairs.pairs) {
    const auto& a = sites[static_cast<std::size_t>(p.a)];
    const auto& b = sites[static_cast<std::size_t>(p.b)];
    sinks.emplace_back(0.5 * (a.x + b.x), 0.5 * (a.y + b.y));
    caps.push_back(params.cPinClkFf + params.cPinSlave);
  }
  for (int u : pairs.unmatched) {
    const auto& s = sites[static_cast<std::size_t>(u)];
    sinks.emplace_back(s.x, s.y);
    caps.push_back(params.cPinClkFf);
  }
  return estimate(sinks, caps, params);
}

} // namespace nvff::core
