#include "core/clock_network.hpp"

#include <algorithm>
#include <cmath>

namespace nvff::core {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
  int idx = 0; ///< original sink index (leaf-group reporting)
};

/// Recursive H-tree wire length over a set of sink positions: splits the
/// bounding box along its longer side, adds the trunk connecting the two
/// halves' centers, and recurses until <= sinksPerLeafBuffer sinks remain
/// (those are wired as a short local spine). When `groups` is non-null the
/// member indices of every leaf spine are recorded in traversal order.
struct HtreeAccumulator {
  double wireUm = 0.0;
  int buffers = 0;
  int leafLimit = 16;
  std::vector<std::vector<int>>* groups = nullptr;

  void build(std::vector<Point>& pts, std::size_t lo, std::size_t hi) {
    const std::size_t n = hi - lo;
    if (n == 0) return;
    if (n <= static_cast<std::size_t>(leafLimit)) {
      // Local spine: length of the bounding box half-perimeter.
      double minX = pts[lo].x;
      double maxX = minX;
      double minY = pts[lo].y;
      double maxY = minY;
      for (std::size_t i = lo; i < hi; ++i) {
        minX = std::min(minX, pts[i].x);
        maxX = std::max(maxX, pts[i].x);
        minY = std::min(minY, pts[i].y);
        maxY = std::max(maxY, pts[i].y);
      }
      wireUm += (maxX - minX) + (maxY - minY);
      buffers += 1;
      if (groups) {
        std::vector<int> members;
        members.reserve(n);
        for (std::size_t i = lo; i < hi; ++i) members.push_back(pts[i].idx);
        // Members in original sink order: the recursion's nth_element
        // permutations are an implementation detail, not a schedule.
        std::sort(members.begin(), members.end());
        groups->push_back(std::move(members));
      }
      return;
    }
    // Split along the longer dimension at the median.
    double minX = pts[lo].x;
    double maxX = minX;
    double minY = pts[lo].y;
    double maxY = minY;
    for (std::size_t i = lo; i < hi; ++i) {
      minX = std::min(minX, pts[i].x);
      maxX = std::max(maxX, pts[i].x);
      minY = std::min(minY, pts[i].y);
      maxY = std::max(maxY, pts[i].y);
    }
    const bool splitX = (maxX - minX) >= (maxY - minY);
    const std::size_t mid = lo + n / 2;
    std::nth_element(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                     pts.begin() + static_cast<std::ptrdiff_t>(mid),
                     pts.begin() + static_cast<std::ptrdiff_t>(hi),
                     [&](const Point& a, const Point& b) {
                       // Tie-break on the index so the partition (and with
                       // it the leaf grouping) is deterministic even when
                       // sites share a coordinate.
                       const double ka = splitX ? a.x : a.y;
                       const double kb = splitX ? b.x : b.y;
                       if (ka != kb) return ka < kb;
                       return a.idx < b.idx;
                     });
    // Trunk connecting the halves: half the span of the split dimension.
    wireUm += 0.5 * (splitX ? (maxX - minX) : (maxY - minY));
    buffers += 1;
    build(pts, lo, mid);
    build(pts, mid, hi);
  }
};

std::vector<Point> to_points(const std::vector<std::pair<double, double>>& sinks) {
  std::vector<Point> pts;
  pts.reserve(sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i)
    pts.push_back({sinks[i].first, sinks[i].second, static_cast<int>(i)});
  return pts;
}

ClockNetworkEstimate estimate(const std::vector<std::pair<double, double>>& sinks,
                              const std::vector<double>& pinCaps,
                              const ClockModelParams& params) {
  ClockNetworkEstimate e;
  e.sinks = sinks.size();
  for (double c : pinCaps) e.pinCapF += c;
  std::vector<Point> pts = to_points(sinks);
  HtreeAccumulator tree;
  tree.leafLimit = params.sinksPerLeafBuffer;
  tree.build(pts, 0, pts.size());
  e.wireCapF = tree.wireUm * params.cWirePerUm;
  e.buffers = tree.buffers;
  e.bufferCapF = tree.buffers * params.cBuffer;
  e.dynamicPowerW = params.frequency * params.vdd * params.vdd * e.totalCapF();
  return e;
}

} // namespace

ClockNetworkEstimate estimate_clock_network(
    const std::vector<pairing::FlipFlopSite>& sites, const ClockModelParams& params) {
  std::vector<std::pair<double, double>> sinks;
  std::vector<double> caps;
  sinks.reserve(sites.size());
  for (const auto& s : sites) {
    sinks.emplace_back(s.x, s.y);
    caps.push_back(params.cPinClkFf);
  }
  return estimate(sinks, caps, params);
}

ClockNetworkEstimate estimate_clock_network_mbff(
    const std::vector<pairing::FlipFlopSite>& sites,
    const pairing::PairingResult& pairs, const ClockModelParams& params) {
  std::vector<std::pair<double, double>> sinks;
  std::vector<double> caps;
  for (const auto& p : pairs.pairs) {
    const auto& a = sites[static_cast<std::size_t>(p.a)];
    const auto& b = sites[static_cast<std::size_t>(p.b)];
    sinks.emplace_back(0.5 * (a.x + b.x), 0.5 * (a.y + b.y));
    caps.push_back(params.cPinClkFf + params.cPinSlave);
  }
  for (int u : pairs.unmatched) {
    const auto& s = sites[static_cast<std::size_t>(u)];
    sinks.emplace_back(s.x, s.y);
    caps.push_back(params.cPinClkFf);
  }
  return estimate(sinks, caps, params);
}

std::vector<std::vector<int>> clock_leaf_groups(
    const std::vector<pairing::FlipFlopSite>& sites, const ClockModelParams& params) {
  std::vector<Point> pts;
  pts.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    pts.push_back({sites[i].x, sites[i].y, static_cast<int>(i)});
  std::vector<std::vector<int>> groups;
  HtreeAccumulator tree;
  tree.leafLimit = params.sinksPerLeafBuffer;
  tree.groups = &groups;
  tree.build(pts, 0, pts.size());
  return groups;
}

} // namespace nvff::core
