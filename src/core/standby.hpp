// Normally-off standby energy model (the paper's motivation, Sec. I):
// compares the three ways an SoC can survive a standby interval —
//
//  * retention    — keep a retention rail on every flip-flop (the
//                   conventional approach the paper argues against):
//                   E = N_ff * P_ret * T
//  * save+restore — copy all FF state to a far-away memory over a bus
//                   (ref [4]): E = 2 * N_ff * E_transfer + latency cost
//  * NV shadow    — local store + restore with shadow cells:
//                   E = N_ff * E_write + restore energy (1-bit or multi-bit)
//
// and answers the questions the paper's introduction raises: when does
// normally-off win, and how much does the multi-bit cell move the
// break-even point.
#pragma once

#include <cstddef>
#include <vector>

#include "cell/characterize.hpp"

namespace nvff::core {

struct StandbyParams {
  std::size_t totalFfs = 0;
  std::size_t pairs = 0; ///< FF pairs merged into 2-bit NV cells

  double ffRetentionPowerW = 0.0; ///< per FF on the retention rail
  double logicLeakageW = 0.0;     ///< rest of the power domain, if kept on

  double nvWriteEnergyPerBitJ = 0.0;
  /// Expected verified-write retries per stored bit (the powerfail
  /// campaign's store retry rate): each retry repeats the write pulse, so
  /// the store energy scales by (1 + pRetry).
  double pRetry = 0.0;
  double nv1RestorePerBitJ = 0.0;
  double nv2RestorePerCellJ = 0.0; ///< whole 2-bit cell

  // save+restore over a memory bus (ref [4]).
  double busTransferPerBitJ = 15e-15; ///< move one bit to/from the array
  double memoryArrayLeakageW = 0.0;   ///< the array must stay powered

  /// Builds the parameter set from measured latch metrics plus a pairing
  /// outcome. Retention power per FF defaults to 10x a shadow cell's
  /// leakage (master+slave+local clocking of a 40 nm LP FF).
  static StandbyParams from_measured(const cell::Characterizer& chr,
                                     cell::Corner corner, std::size_t totalFfs,
                                     std::size_t pairs);
};

struct StandbyEnergies {
  double retentionJ = 0.0;
  double saveRestoreJ = 0.0;
  double nvShadow1bitJ = 0.0;
  double nvShadowMultibitJ = 0.0;
};

/// Energy of one standby episode of duration `seconds` under each scheme.
StandbyEnergies standby_energy(const StandbyParams& params, double seconds);

/// Standby duration beyond which the 1-bit (or multi-bit) NV scheme beats
/// keeping the retention rail. Returns +inf when NV never wins.
double nv_break_even_seconds(const StandbyParams& params, bool multibit);

/// Power-gating policy applied to each idle episode of a workload.
enum class GatingPolicy {
  NeverGate,          ///< retention rail for every idle period
  AlwaysGate,         ///< NV store + restore for every idle period
  BreakEvenThreshold, ///< gate only when the episode exceeds break-even
};

/// Total standby energy over a trace of idle-episode durations [s].
double total_standby_energy(const StandbyParams& params,
                            const std::vector<double>& idleSeconds,
                            GatingPolicy policy, bool multibit);

} // namespace nvff::core
