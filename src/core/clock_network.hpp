// Clock-network model for the multi-bit flip-flop (MBFF) integration study
// (paper Sec. III-E: "our proposed multi-bit non-volatile component can
// easily be integrated in such [CMOS multi-bit flip-flop] designs, that can
// further enhance the overall efficiency ... in terms of both static and
// dynamic energy consumption as well as area").
//
// CMOS MBFFs share the local clock inverter pair between the merged bits,
// which removes clock pins from the clock tree and shrinks the tree itself.
// This model quantifies that on top of the NV sharing:
//
//   clock pin capacitance : each FF presents cPinClk to the tree; a k-bit
//                           MBFF presents cPinClk + (k-1) * cPinSlave (the
//                           internal slave loads remain, the input inverter
//                           pair is shared).
//   tree capacitance      : estimated from a recursive H-tree over the FF
//                           sites (wire cap per um + one buffer per branch).
//   dynamic clock power   : P = f * Vdd^2 * (C_pins + C_tree).
#pragma once

#include <cstddef>
#include <vector>

#include "pairing/pairing.hpp"

namespace nvff::core {

struct ClockModelParams {
  double frequency = 500e6;    ///< [Hz]
  double vdd = 1.1;            ///< [V]
  double cPinClkFf = 1.2e-15;  ///< clock-pin cap of a single-bit FF [F]
  double cPinSlave = 0.35e-15; ///< extra internal load per added MBFF bit [F]
  double cWirePerUm = 0.20e-15; ///< clock wire capacitance [F/um]
  double cBuffer = 2.0e-15;    ///< one clock buffer input+output cap [F]
  int sinksPerLeafBuffer = 16; ///< leaf buffer fanout
};

struct ClockNetworkEstimate {
  std::size_t sinks = 0;       ///< clock tree leaf pins (FFs or MBFFs)
  double pinCapF = 0.0;        ///< sum of sink pin caps
  double wireCapF = 0.0;       ///< H-tree wiring estimate
  double bufferCapF = 0.0;     ///< buffers along the tree
  int buffers = 0;
  double totalCapF() const { return pinCapF + wireCapF + bufferCapF; }
  double dynamicPowerW = 0.0;  ///< f * V^2 * totalCap
};

/// Estimates the clock network for single-bit flip-flops at the given sites.
ClockNetworkEstimate estimate_clock_network(
    const std::vector<pairing::FlipFlopSite>& sites, const ClockModelParams& params);

/// Estimates the clock network when the given pairing merges FFs into 2-bit
/// MBFFs (each pair becomes ONE clock sink at the pair midpoint).
ClockNetworkEstimate estimate_clock_network_mbff(
    const std::vector<pairing::FlipFlopSite>& sites,
    const pairing::PairingResult& pairs, const ClockModelParams& params);

/// Leaf-buffer membership of the H-tree the estimator builds: each inner
/// vector holds the site indices wired to one leaf buffer, in deterministic
/// tree-traversal order (the same recursion estimate_clock_network walks).
/// Groups partition [0, sites.size()), each with at most
/// params.sinksPerLeafBuffer members.
///
/// This is the physical granularity of local control: a leaf buffer's sinks
/// share the clock driver and, in the NV flow, the store/restore control
/// signals — so the fault-injection engine sequences backup domains in
/// exactly this grouping.
std::vector<std::vector<int>> clock_leaf_groups(
    const std::vector<pairing::FlipFlopSite>& sites, const ClockModelParams& params);

} // namespace nvff::core
