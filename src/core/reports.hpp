// Report renderers that regenerate the paper's tables and figures as text.
#pragma once

#include <string>
#include <vector>

#include "cell/characterize.hpp"
#include "core/flow.hpp"

namespace nvff::core {

/// Paper reference values for Table II (typical/worst/best per metric).
struct Table2Reference {
  // indices: 0 = worst, 1 = typical, 2 = best
  double stdReadEnergyFj[3] = {6.348, 5.650, 4.916};
  double stdReadDelayPs[3] = {310, 187, 127};
  double stdLeakagePw[3] = {4998, 1565, 424};
  double propReadEnergyFj[3] = {4.799, 4.587, 4.327};
  double propReadDelayPs[3] = {600, 360, 228};
  double propLeakagePw[3] = {4960, 1528, 394};
  int stdTransistors = 22;
  int propTransistors = 16;
  double stdAreaUm2 = 5.635;
  double propAreaUm2 = 3.696;
};

/// Measured Table II rows for both designs at all corners.
struct Table2Result {
  cell::LatchMetrics standard[3]; ///< worst, typical, best
  cell::LatchMetrics proposed[3];
};

/// Runs the full circuit-level characterization (Table II).
Table2Result measure_table2(const cell::Characterizer& characterizer);

/// Renders Table II side by side with the paper's published values.
std::string render_table2(const Table2Result& result);

/// Renders Table III from flow reports, with the paper's reference columns.
std::string render_table3(const std::vector<FlowReport>& reports);

/// Machine-readable CSV twin of Table III.
std::string table3_csv(const std::vector<FlowReport>& reports);

/// ASCII floorplan (Fig. 9): '.' logic cell, 'f' unpaired FF, letter pairs
/// for merged FFs (both members of a pair get the same letter).
std::string render_floorplan(const FlowReport& report, std::size_t columns = 100,
                             std::size_t rows = 40);

} // namespace nvff::core
