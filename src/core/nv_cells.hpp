// Per-cell area/energy values that the system-level roll-up consumes.
//
// Two sources are supported:
//  * Paper     — Table II's published per-cell values. Using these, our
//                Table III roll-up reproduces the paper's arithmetic exactly
//                for any given pair count (we verified the published rows
//                are linear combinations of Table II values: e.g. s344 area
//                42.255 = 15 x 5.635/2).
//  * Measured  — characterize the latches with the analog engine and the
//                layout model (the full end-to-end reproduction).
#pragma once

#include "cell/characterize.hpp"

namespace nvff::core {

/// Values of one shadow-cell flavour.
struct NvCellValues {
  double areaUm2 = 0.0;     ///< layout footprint
  double readEnergyJ = 0.0; ///< restore energy for the WHOLE cell
  int bits = 1;
};

struct NvCellSet {
  NvCellValues standard1bit; ///< per single-bit shadow cell
  NvCellValues proposed2bit; ///< per merged 2-bit shadow cell

  /// Published typical-corner values (Table II).
  static NvCellSet paper();

  /// Values measured by the characterization harness at the given corner.
  static NvCellSet measured(const cell::Characterizer& characterizer,
                            cell::Corner corner = cell::Corner::Typical);
};

enum class CellValueSource { Paper, Measured };

} // namespace nvff::core
