#include "core/standby.hpp"

#include <limits>
#include <vector>

namespace nvff::core {

StandbyParams StandbyParams::from_measured(const cell::Characterizer& chr,
                                           cell::Corner corner, std::size_t totalFfs,
                                           std::size_t pairs) {
  StandbyParams p;
  p.totalFfs = totalFfs;
  p.pairs = pairs;
  const cell::LatchMetrics stdPair = chr.standard_pair(corner);
  const cell::LatchMetrics prop = chr.proposed_2bit(corner);
  p.ffRetentionPowerW = 10.0 * (stdPair.leakage / 2.0);
  p.nvWriteEnergyPerBitJ = stdPair.writeEnergy / 2.0;
  p.nv1RestorePerBitJ = stdPair.readEnergy / 2.0;
  p.nv2RestorePerCellJ = prop.readEnergy;
  return p;
}

StandbyEnergies standby_energy(const StandbyParams& p, double seconds) {
  StandbyEnergies e;
  const auto n = static_cast<double>(p.totalFfs);
  const auto paired = static_cast<double>(p.pairs);
  const double singles = n - 2.0 * paired;

  e.retentionJ = (n * p.ffRetentionPowerW + p.logicLeakageW) * seconds;

  e.saveRestoreJ =
      2.0 * n * p.busTransferPerBitJ + p.memoryArrayLeakageW * seconds;

  // Identical for both designs; the verify-after-write protocol's retries
  // repeat a fraction pRetry of the write pulses.
  const double storeJ = n * p.nvWriteEnergyPerBitJ * (1.0 + p.pRetry);
  e.nvShadow1bitJ = storeJ + n * p.nv1RestorePerBitJ;
  e.nvShadowMultibitJ =
      storeJ + paired * p.nv2RestorePerCellJ + singles * p.nv1RestorePerBitJ;
  return e;
}

double nv_break_even_seconds(const StandbyParams& p, bool multibit) {
  const double retentionPower =
      static_cast<double>(p.totalFfs) * p.ffRetentionPowerW + p.logicLeakageW;
  const StandbyEnergies fixed = standby_energy(p, 0.0);
  const double nvCost = multibit ? fixed.nvShadowMultibitJ : fixed.nvShadow1bitJ;
  // Degenerate corners: a free store/restore (no flip-flops, or zero
  // per-bit energies) wins from the first instant the rail burns anything;
  // when neither side costs anything there is no trade-off and NV never
  // "wins". Keeps the 0/0 case from turning into NaN downstream.
  if (nvCost <= 0.0)
    return retentionPower > 0.0 ? 0.0
                                : std::numeric_limits<double>::infinity();
  if (retentionPower <= 0.0) return std::numeric_limits<double>::infinity();
  return nvCost / retentionPower;
}

double total_standby_energy(const StandbyParams& params,
                            const std::vector<double>& idleSeconds,
                            GatingPolicy policy, bool multibit) {
  const double breakEven = nv_break_even_seconds(params, multibit);
  double total = 0.0;
  for (double t : idleSeconds) {
    const StandbyEnergies e = standby_energy(params, t);
    const double nvCost = multibit ? e.nvShadowMultibitJ : e.nvShadow1bitJ;
    switch (policy) {
      case GatingPolicy::NeverGate:
        total += e.retentionJ;
        break;
      case GatingPolicy::AlwaysGate:
        total += nvCost;
        break;
      case GatingPolicy::BreakEvenThreshold:
        total += (t >= breakEven) ? nvCost : e.retentionJ;
        break;
    }
  }
  return total;
}

} // namespace nvff::core
