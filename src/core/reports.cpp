#include "core/reports.hpp"

#include <cmath>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace nvff::core {

Table2Result measure_table2(const cell::Characterizer& characterizer) {
  Table2Result result;
  const cell::Corner order[3] = {cell::Corner::Worst, cell::Corner::Typical,
                                 cell::Corner::Best};
  for (int i = 0; i < 3; ++i) {
    result.standard[i] = characterizer.standard_pair(order[i]);
    result.proposed[i] = characterizer.proposed_2bit(order[i]);
  }
  return result;
}

std::string render_table2(const Table2Result& r) {
  const Table2Reference ref;
  TextTable t({"metric", "corner", "2x std 1-bit (ours)", "2x std (paper)",
               "proposed 2-bit (ours)", "proposed (paper)"});
  static const char* kCorners[3] = {"worst", "typical", "best"};

  for (int i = 0; i < 3; ++i) {
    t.add_row({"Read energy [fJ]", kCorners[i],
               format("%.3f", r.standard[i].readEnergy * 1e15),
               format("%.3f", ref.stdReadEnergyFj[i]),
               format("%.3f", r.proposed[i].readEnergy * 1e15),
               format("%.3f", ref.propReadEnergyFj[i])});
  }
  t.add_separator();
  for (int i = 0; i < 3; ++i) {
    t.add_row({"Read delay [ps]", kCorners[i],
               format("%.0f", r.standard[i].readDelay * 1e12),
               format("%.0f", ref.stdReadDelayPs[i]),
               format("%.0f", r.proposed[i].readDelay * 1e12),
               format("%.0f", ref.propReadDelayPs[i])});
  }
  t.add_separator();
  for (int i = 0; i < 3; ++i) {
    t.add_row({"Leakage [pW]", kCorners[i],
               format("%.0f", r.standard[i].leakage * 1e12),
               format("%.0f", ref.stdLeakagePw[i]),
               format("%.0f", r.proposed[i].leakage * 1e12),
               format("%.0f", ref.propLeakagePw[i])});
  }
  t.add_separator();
  t.add_row({"# of transistors", "-", format("%d", r.standard[1].readTransistors),
             format("%d", ref.stdTransistors),
             format("%d", r.proposed[1].readTransistors),
             format("%d", ref.propTransistors)});
  t.add_row({"Area [um^2]", "-", format("%.3f", r.standard[1].areaUm2),
             format("%.3f", ref.stdAreaUm2), format("%.3f", r.proposed[1].areaUm2),
             format("%.3f", ref.propAreaUm2)});
  t.add_separator();
  for (int i = 0; i < 3; ++i) {
    t.add_row({"Write energy [fJ]", kCorners[i],
               format("%.1f", r.standard[i].writeEnergy * 1e15), "~208 (2x104)",
               format("%.1f", r.proposed[i].writeEnergy * 1e15), "~208 (2x104)"});
  }
  for (int i = 0; i < 3; ++i) {
    t.add_row({"Write latency [ns]", kCorners[i],
               format("%.2f", r.standard[i].writeLatency * 1e9), "~2 (worst)",
               format("%.2f", r.proposed[i].writeLatency * 1e9), "~2 (worst)"});
  }

  std::ostringstream out;
  out << "TABLE II — two standard 1-bit latches vs proposed 2-bit latch\n";
  out << t.render();
  // Summary deltas (the paper's headline circuit-level claims).
  const double energyImpr = improvement_percent(r.standard[1].readEnergy,
                                                r.proposed[1].readEnergy);
  const double areaImpr =
      improvement_percent(r.standard[1].areaUm2, r.proposed[1].areaUm2);
  const double delayRatio = r.proposed[1].readDelay / r.standard[1].readDelay;
  out << format(
      "\nheadline: read energy improvement %.1f%% (paper ~19%%), cell area "
      "improvement %.1f%% (paper ~34%%), sequential read delay ratio %.2fx "
      "(paper ~1.9x)\n",
      energyImpr, areaImpr, delayRatio);
  return out.str();
}

std::string render_table3(const std::vector<FlowReport>& reports) {
  TextTable t({"benchmark", "total FFs", "2-bit FFs", "2-bit (paper)", "area std",
               "area prop", "area impr", "area (paper)", "energy std [fJ]",
               "energy prop [fJ]", "energy impr", "energy (paper)"});
  double areaSum = 0.0;
  double energySum = 0.0;
  double paperAreaSum = 0.0;
  double paperEnergySum = 0.0;
  for (const auto& r : reports) {
    const bench::BenchmarkSpec* spec = nullptr;
    for (const auto& s : bench::paper_benchmarks()) {
      if (s.name == r.benchmark) spec = &s;
    }
    t.add_row({r.benchmark, format("%zu", r.totalFlipFlops), format("%zu", r.pairs),
               spec ? format("%d", spec->paperPairs) : "-",
               format("%.2f", r.areaStd), format("%.2f", r.areaProp),
               format("%.2f%%", r.areaImprovementPct),
               spec ? format("%.2f%%", spec->paperAreaImpr) : "-",
               format("%.2f", r.energyStd * 1e15), format("%.2f", r.energyProp * 1e15),
               format("%.2f%%", r.energyImprovementPct),
               spec ? format("%.2f%%", spec->paperEnergyImpr) : "-"});
    areaSum += r.areaImprovementPct;
    energySum += r.energyImprovementPct;
    if (spec != nullptr) {
      paperAreaSum += spec->paperAreaImpr;
      paperEnergySum += spec->paperEnergyImpr;
    }
  }
  std::ostringstream out;
  out << "TABLE III — system-level NV-component area and restore energy\n";
  out << t.render();
  const auto n = static_cast<double>(reports.size());
  if (n > 0) {
    out << format(
        "\naverage improvement: area %.1f%% (paper avg %.1f%%), energy %.1f%% "
        "(paper avg %.1f%%)\n",
        areaSum / n, paperAreaSum / n, energySum / n, paperEnergySum / n);
  }
  return out.str();
}

std::string table3_csv(const std::vector<FlowReport>& reports) {
  TextTable t({"benchmark", "total_ffs", "pairs", "area_std_um2", "area_prop_um2",
               "area_impr_pct", "energy_std_fj", "energy_prop_fj",
               "energy_impr_pct", "paired_fraction"});
  for (const auto& r : reports) {
    t.add_row({r.benchmark, format("%zu", r.totalFlipFlops), format("%zu", r.pairs),
               format("%.4f", r.areaStd), format("%.4f", r.areaProp),
               format("%.3f", r.areaImprovementPct), format("%.4f", r.energyStd * 1e15),
               format("%.4f", r.energyProp * 1e15),
               format("%.3f", r.energyImprovementPct),
               format("%.4f", r.pairedFraction)});
  }
  return t.to_csv();
}

std::string render_floorplan(const FlowReport& report, std::size_t columns,
                             std::size_t rows) {
  const auto& placement = report.placement;
  if (placement.dieWidth <= 0 || placement.dieHeight <= 0 || columns == 0 || rows == 0) {
    return "(empty placement)\n";
  }
  std::vector<std::string> grid(rows, std::string(columns, ' '));
  auto plot = [&](double x, double y, char glyph, bool force) {
    auto cx = static_cast<long>(x / placement.dieWidth * static_cast<double>(columns));
    auto cy = static_cast<long>(y / placement.dieHeight * static_cast<double>(rows));
    cx = std::min<long>(std::max<long>(cx, 0), static_cast<long>(columns) - 1);
    cy = std::min<long>(std::max<long>(cy, 0), static_cast<long>(rows) - 1);
    char& cell = grid[static_cast<std::size_t>(rows - 1 - static_cast<std::size_t>(cy))]
                     [static_cast<std::size_t>(cx)];
    if (force || cell == ' ' || cell == '.') cell = glyph;
  };

  // Logic cells as background dots.
  const bench::Netlist& nl = report.circuit.netlist;
  const bool haveNetlist = nl.size() == placement.cells.size();
  for (const auto& c : placement.cells) {
    if (c.fixedPad) continue;
    const bool isFf =
        haveNetlist && nl.gate(c.gate).type == bench::GateType::Dff;
    if (!isFf) plot(c.x, c.y, '.', false);
  }
  // Unpaired FFs.
  for (int idx : report.pairing.unmatched) {
    const auto& s = report.ffSites[static_cast<std::size_t>(idx)];
    plot(s.x, s.y, 'f', true);
  }
  // Pairs get matching letters (cycled).
  const char* letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  for (std::size_t p = 0; p < report.pairing.pairs.size(); ++p) {
    const auto& pr = report.pairing.pairs[p];
    const char glyph = letters[p % 26];
    plot(report.ffSites[static_cast<std::size_t>(pr.a)].x,
         report.ffSites[static_cast<std::size_t>(pr.a)].y, glyph, true);
    plot(report.ffSites[static_cast<std::size_t>(pr.b)].x,
         report.ffSites[static_cast<std::size_t>(pr.b)].y, glyph, true);
  }

  std::ostringstream out;
  out << "Floorplan of " << report.benchmark << " ("
      << format("%.1f x %.1f um", placement.dieWidth, placement.dieHeight)
      << "): '.' logic, 'f' unpaired FF, same letter = merged pair\n";
  out << '+' << std::string(columns, '-') << "+\n";
  for (const auto& row : grid) out << '|' << row << "|\n";
  out << '+' << std::string(columns, '-') << "+\n";
  return out.str();
}

} // namespace nvff::core
