#include "core/nv_cells.hpp"

#include "cell/layout.hpp"

namespace nvff::core {

NvCellSet NvCellSet::paper() {
  NvCellSet set;
  // Table II, typical corner. The standard column reports TWO 1-bit latches
  // (5.635 um^2 / 5.650 fJ); per-cell is half of that. Note the paper's
  // Table III arithmetic uses the truncated per-bit area 2.817 um^2
  // (42.255 / 15 FFs for s344), not 5.635/2 = 2.8175 — we follow the
  // published rows exactly.
  set.standard1bit.areaUm2 = 2.817;
  set.standard1bit.readEnergyJ = 5.650e-15 / 2.0;
  set.standard1bit.bits = 1;
  set.proposed2bit.areaUm2 = 3.696;
  set.proposed2bit.readEnergyJ = 4.587e-15;
  set.proposed2bit.bits = 2;
  return set;
}

NvCellSet NvCellSet::measured(const cell::Characterizer& characterizer,
                              cell::Corner corner) {
  NvCellSet set;
  const cell::LatchMetrics stdPair = characterizer.standard_pair(corner);
  const cell::LatchMetrics prop = characterizer.proposed_2bit(corner);
  set.standard1bit.areaUm2 = stdPair.areaUm2 / 2.0;
  set.standard1bit.readEnergyJ = stdPair.readEnergy / 2.0;
  set.standard1bit.bits = 1;
  set.proposed2bit.areaUm2 = prop.areaUm2;
  set.proposed2bit.readEnergyJ = prop.readEnergy;
  set.proposed2bit.bits = 2;
  return set;
}

} // namespace nvff::core
