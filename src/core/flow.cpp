#include "core/flow.hpp"

#include "physdes/def_io.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace nvff::core {

using bench::GateId;

std::vector<pairing::FlipFlopSite> ff_sites_from_placement(
    const physdes::Placement& placement, const bench::Netlist& netlist) {
  std::vector<pairing::FlipFlopSite> sites;
  sites.reserve(netlist.num_flip_flops());
  for (GateId ff : netlist.flip_flops()) {
    pairing::FlipFlopSite site;
    site.name = netlist.gate(ff).name;
    site.x = placement.cx(ff);
    site.y = placement.cy(ff);
    sites.push_back(std::move(site));
  }
  return sites;
}

std::vector<pairing::FlipFlopSite> ff_sites_from_def(const std::string& defText) {
  const physdes::DefDesign design = physdes::parse_def_string(defText);
  const auto lib = cell::CmosCellLibrary::tsmc40_like();
  std::vector<pairing::FlipFlopSite> sites;
  for (const auto& comp : design.components) {
    if (comp.cellType != "DFF") continue;
    // DEF stores the cell origin; pairing distances use cell centers, so
    // shift by the library FF half-footprint.
    pairing::FlipFlopSite site;
    site.name = comp.name;
    site.x = comp.x + 0.5 * lib.ffWidth;
    site.y = comp.y + 0.5 * lib.rowHeight;
    sites.push_back(std::move(site));
  }
  return sites;
}

RollUp roll_up(std::size_t totalFfs, std::size_t pairs, const NvCellSet& cells) {
  RollUp r;
  const auto total = static_cast<double>(totalFfs);
  const auto paired = static_cast<double>(pairs);
  const double singles = total - 2.0 * paired;
  r.areaStd = total * cells.standard1bit.areaUm2;
  r.energyStd = total * cells.standard1bit.readEnergyJ;
  r.areaProp = paired * cells.proposed2bit.areaUm2 + singles * cells.standard1bit.areaUm2;
  r.energyProp =
      paired * cells.proposed2bit.readEnergyJ + singles * cells.standard1bit.readEnergyJ;
  return r;
}

namespace {

/// Shared pipeline tail: placement -> pairing -> roll-up, filling `report`.
void run_pipeline(const bench::Netlist& netlist, const FlowOptions& options,
                  FlowReport& report) {
  report.totalFlipFlops = netlist.num_flip_flops();
  report.placement =
      physdes::place(netlist, cell::CmosCellLibrary::tsmc40_like(), options.placer);
  report.ffSites = ff_sites_from_placement(report.placement, netlist);
  report.pairing = pairing::pair_flip_flops(report.ffSites, options.pairing);
  report.pairs = report.pairing.num_pairs();
  report.pairedFraction = report.pairing.paired_fraction(report.totalFlipFlops);

  const RollUp r = roll_up(report.totalFlipFlops, report.pairs, options.cells);
  report.areaStd = r.areaStd;
  report.energyStd = r.energyStd;
  report.areaProp = r.areaProp;
  report.energyProp = r.energyProp;
  report.areaImprovementPct = improvement_percent(r.areaStd, r.areaProp);
  report.energyImprovementPct = improvement_percent(r.energyStd, r.energyProp);

  log_info(format("flow(%s): %zu FFs, %zu pairs (%.0f%%), area %.1f -> %.1f um^2",
                  report.benchmark.c_str(), report.totalFlipFlops, report.pairs,
                  100.0 * report.pairedFraction, report.areaStd, report.areaProp));
}

} // namespace

FlowReport run_flow(const bench::BenchmarkSpec& spec, const FlowOptions& options) {
  FlowReport report;
  report.benchmark = spec.name;
  report.circuit = bench::generate_benchmark_detailed(spec);
  FlowOptions effective = options;
  effective.placer.utilization = spec.utilization;
  run_pipeline(report.circuit.netlist, effective, report);
  return report;
}

FlowReport run_flow_on_netlist(const bench::Netlist& netlist,
                               const FlowOptions& options) {
  FlowReport report;
  report.benchmark = netlist.name();
  run_pipeline(netlist, options, report);
  return report;
}

} // namespace nvff::core
