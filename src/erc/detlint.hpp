// Determinism linter over the codebase's own sources (`nvfftool lint-src`).
//
// The repo's load-bearing guarantee is reproducibility by construction:
// bit-identical campaign output at any thread count, resume == uninterrupted.
// That guarantee dies quietly when a trial path picks up a wall-clock read,
// an ambient RNG, or an iteration order that depends on hashing or object
// addresses. The goldens and chaos tests catch such regressions only after
// the fact; this pass catches them at lint time, before the first run.
//
// It is a token-level scanner, not a compiler plugin: comments, string and
// character literals are stripped (so prose cannot trip a rule), identifiers
// are matched on word boundaries, and findings land in the PR 1 diagnostics
// engine (severities, hints, text/JSON rendering).
//
// Rules (all Error severity — a finding gates the build):
//   DET001  wall-clock read: `<clock>::now()`, `time(...)`, gettimeofday,
//           clock(), localtime/gmtime, __DATE__/__TIME__.
//   DET002  ambient RNG: rand/srand/drand48/random(), std::random_device.
//   DET003  std <random> engine (mt19937, default_random_engine, ...):
//           use the counter-based util/rng.hpp streams instead.
//   DET004  iteration over an unordered container declared in the same
//           file (range-for or .begin()/.cbegin()): hash order must not
//           feed results or accumulation.
//   DET005  parallel execution policy (std::execution::*, <execution>,
//           #pragma omp): scheduling order must never reach numerics.
//   DET006  address-keyed ordering: std::map/std::set keyed by a pointer
//           type iterates in allocation-address order (ASLR-dependent).
//   DET007  malformed DETLINT-ALLOW comment (unknown rule id or missing
//           reason) — a suppression must say what it suppresses and why.
//
// Suppressions: genuinely time-based code (watchdogs, backoff, deadlines)
// carries an inline annotation on the offending line or the line above:
//
//   // DETLINT-ALLOW(DET001): watchdog heartbeat, never feeds results
//
// The reason is mandatory; the allow covers exactly one rule on exactly one
// line, so a suppression cannot silently widen.
#pragma once

#include <string>
#include <vector>

#include "erc/diagnostics.hpp"

namespace nvff::erc {

struct DetLintRule {
  const char* id;      ///< stable rule id, e.g. "DET001"
  const char* summary; ///< one-line description for --help and docs
};

/// The rule table (id order). Exposed for docs, tests and `--help`.
const std::vector<DetLintRule>& detlint_rules();

struct DetLintOptions {
  /// Rule ids suppressed globally (the `--suppress` flag). Prefer inline
  /// DETLINT-ALLOW annotations — they are reviewable next to the code.
  std::vector<std::string> suppress;
};

/// Lints one in-memory source. `path` labels the diagnostics ("path:line").
Report detlint_source(const std::string& path, const std::string& text,
                      const DetLintOptions& options = {});

/// Lints one file on disk. Throws std::runtime_error when unreadable.
Report detlint_file(const std::string& path,
                    const DetLintOptions& options = {});

/// Recursively lints every C++ source/header under `root` in sorted path
/// order (deterministic output, of course). Throws when `root` is not a
/// directory.
Report detlint_tree(const std::string& root,
                    const DetLintOptions& options = {});

} // namespace nvff::erc
