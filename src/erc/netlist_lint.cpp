#include "erc/netlist_lint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bench_circuits/bench_io.hpp"
#include "util/strings.hpp"

namespace nvff::erc {
namespace {

using bench::Gate;
using bench::GateId;
using bench::GateType;
using bench::Netlist;

void lint_arity(const Netlist& nl, Report& report) {
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    const std::size_t arity = g.fanin.size();
    switch (g.type) {
      case GateType::Input:
        if (arity != 0) {
          report.add("LNT003", Severity::Error, g.name,
                     format("primary input has %zu fanin(s)", arity),
                     "inputs are sources and take no fanin");
        }
        break;
      case GateType::Dff:
        if (arity != 1) {
          report.add("LNT005", Severity::Error, g.name,
                     arity == 0 ? std::string("DFF has no D fanin")
                                : format("DFF has %zu data fanins", arity),
                     "a D flip-flop samples exactly one signal");
        }
        break;
      case GateType::Buf:
      case GateType::Not:
        if (arity != 1) {
          report.add("LNT003", Severity::Error, g.name,
                     format("%s gate has %zu fanin(s), needs exactly 1",
                            gate_type_name(g.type), arity));
        }
        break;
      default:
        if (arity < 2) {
          report.add("LNT003", Severity::Error, g.name,
                     format("%s gate has %zu fanin(s), needs at least 2",
                            gate_type_name(g.type), arity));
        } else if (arity > bench::kMaxFanin) {
          report.add("LNT003", Severity::Error, g.name,
                     format("%s gate has %zu fanins, kMaxFanin is %zu",
                            gate_type_name(g.type), arity, bench::kMaxFanin),
                     "split the gate into a tree");
        }
    }
  }
}

void lint_references(const Netlist& nl, Report& report) {
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    for (GateId f : g.fanin) {
      if (!nl.valid_gate(f)) {
        report.add("LNT007", Severity::Error, g.name,
                   format("fanin references gate id %d, outside the netlist", f));
      }
    }
  }
}

void lint_cycles(const Netlist& nl, Report& report) {
  const auto cycle = bench::find_combinational_cycle(nl);
  if (cycle.empty()) return;
  report.add("LNT001", Severity::Error, nl.gate(cycle.front()).name,
             "combinational cycle: " + bench::cycle_path_string(nl, cycle),
             "break the loop or register it through a DFF");
}

void lint_connectivity(const Netlist& nl, Report& report) {
  std::vector<bool> isOutput(nl.size(), false);
  for (GateId id : nl.outputs()) {
    if (nl.valid_gate(id)) isOutput[static_cast<std::size_t>(id)] = true;
  }

  std::vector<int> fanoutCount(nl.size(), 0);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    for (GateId f : nl.gate(static_cast<GateId>(i)).fanin) {
      if (nl.valid_gate(f)) ++fanoutCount[static_cast<std::size_t>(f)];
    }
  }

  // LNT006: a primary output whose driver cannot produce a value.
  for (std::size_t i = 0; i < nl.size(); ++i) {
    if (!isOutput[i]) continue;
    const Gate& g = nl.gate(static_cast<GateId>(i));
    if (g.type != GateType::Input && g.fanin.empty()) {
      report.add("LNT006", Severity::Error, g.name,
                 "primary output is undriven: its gate has no fanin");
    }
  }

  // LNT004: dead logic — drives nothing, observed by nothing. The synthetic
  // benchmark generators leave such sinks by construction, so this is an
  // advisory note, not a gating diagnostic. Large generated netlists contain
  // thousands of dead sinks; report the first few and summarize the rest.
  constexpr std::size_t kDeadGateReportCap = 8;
  std::size_t dead = 0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    if (fanoutCount[i] != 0 || isOutput[i]) continue;
    const Gate& g = nl.gate(static_cast<GateId>(i));
    if (++dead > kDeadGateReportCap) continue;
    report.add("LNT004", Severity::Info, g.name,
               g.type == GateType::Input
                   ? std::string("unused primary input")
                   : format("dead %s gate: drives no gate and no output",
                            gate_type_name(g.type)));
  }
  if (dead > kDeadGateReportCap) {
    report.add("LNT004", Severity::Info, nl.name(),
               format("%zu more dead gates not listed", dead - kDeadGateReportCap),
               "suppress LNT004 to silence dead-logic notes");
  }
}

} // namespace

Report lint_netlist(const Netlist& netlist, const NetlistLintOptions& options) {
  Report report;
  report.set_suppressed(options.suppress);
  lint_references(netlist, report);
  lint_arity(netlist, report);
  lint_cycles(netlist, report);
  lint_connectivity(netlist, report);
  return report;
}

Report lint_bench_text(const std::string& text, const std::string& circuitName,
                       const NetlistLintOptions& options) {
  Report report;
  report.set_suppressed(options.suppress);

  std::istringstream in(text);
  std::vector<bench::BenchIssue> issues;
  const Netlist nl = bench::parse_bench_lenient(in, circuitName, issues);
  for (const auto& issue : issues) {
    const std::string where = format("line %d", issue.line);
    switch (issue.kind) {
      case bench::BenchIssue::Kind::DuplicateDriver:
        report.add("LNT002", Severity::Error, issue.signal,
                   issue.message + " (" + where + ")",
                   "merge the drivers or rename one signal");
        break;
      case bench::BenchIssue::Kind::UndefinedSignal:
        report.add("LNT007", Severity::Error,
                   issue.signal.empty() ? where : issue.signal,
                   issue.message + " (" + where + ")");
        break;
      case bench::BenchIssue::Kind::Syntax:
        report.add("LNT008", Severity::Error, where, issue.message);
        break;
    }
  }
  report.merge(lint_netlist(nl, options));
  return report;
}

Report lint_bench_file(const std::string& path, const NetlistLintOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bench file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  auto slash = path.find_last_of('/');
  std::string stem = (slash == std::string::npos) ? path : path.substr(slash + 1);
  const auto dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return lint_bench_text(text.str(), stem, options);
}

} // namespace nvff::erc
