#include "erc/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace nvff::erc {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Report::add(Diagnostic d) {
  if (std::find(suppressed_.begin(), suppressed_.end(), d.rule) !=
      suppressed_.end()) {
    return;
  }
  diagnostics_.push_back(std::move(d));
}

void Report::add(std::string rule, Severity severity, std::string object,
                 std::string message, std::string hint) {
  add(Diagnostic{std::move(rule), severity, std::move(object), std::move(message),
                 std::move(hint)});
}

void Report::merge(const Report& other) {
  for (const auto& d : other.diagnostics_) add(d);
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::size_t Report::count_rule(std::string_view rule) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.rule == rule) ++n;
  }
  return n;
}

std::string Report::to_text() const {
  std::ostringstream out;
  for (const auto& d : diagnostics_) {
    out << severity_name(d.severity) << "[" << d.rule << "] " << d.object << ": "
        << d.message;
    if (!d.hint.empty()) out << " (" << d.hint << ")";
    out << "\n";
  }
  out << count(Severity::Error) << " error(s), " << count(Severity::Warning)
      << " warning(s), " << count(Severity::Info) << " note(s)\n";
  return out.str();
}

namespace {

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

} // namespace

std::string Report::to_json() const {
  std::ostringstream out;
  out << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const auto& d = diagnostics_[i];
    if (i != 0) out << ",";
    out << "{\"rule\":";
    json_escape(out, d.rule);
    out << ",\"severity\":";
    json_escape(out, severity_name(d.severity));
    out << ",\"object\":";
    json_escape(out, d.object);
    out << ",\"message\":";
    json_escape(out, d.message);
    out << ",\"hint\":";
    json_escape(out, d.hint);
    out << "}";
  }
  out << "],\"errors\":" << count(Severity::Error)
      << ",\"warnings\":" << count(Severity::Warning)
      << ",\"infos\":" << count(Severity::Info) << "}";
  return out.str();
}

} // namespace nvff::erc
