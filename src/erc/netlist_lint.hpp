// Netlist linter over bench::Netlist and raw .bench text.
//
// Unlike Netlist::finalize() — which throws on the first structural problem
// — the linter reports every problem at once, with stable rule ids and the
// offending gate names, and it accepts unfinalized netlists (broken ones
// cannot finalize). Rule catalog:
//
//   LNT001  combinational cycle, reported WITH the cycle path
//   LNT002  multi-driven signal (a signal defined more than once; .bench
//           text lint only — the in-memory Netlist cannot represent it)
//   LNT003  fanin arity violation (INPUT with fanin, 1-input gate with a
//           different count, n-ary gate with < 2 or > kMaxFanin fanins)
//   LNT004  dead gate: drives nothing and is not a primary output (Info —
//           the synthetic benchmark stand-ins contain dead sinks by
//           construction, see bench_circuits/generator.hpp)
//   LNT005  DFF with missing or multiple D fanins
//   LNT006  undriven primary output (its driver has no fanin and is not a
//           primary input)
//   LNT007  dangling signal reference (fanin GateId out of range, or an
//           undefined name in .bench text)
//   LNT008  .bench syntax error (text lint only)
#pragma once

#include <string>
#include <vector>

#include "bench_circuits/netlist.hpp"
#include "erc/diagnostics.hpp"

namespace nvff::erc {

struct NetlistLintOptions {
  /// Rule ids to drop from the report (see README "Static checks").
  std::vector<std::string> suppress;
};

/// Structural rules over an (optionally unfinalized) netlist.
Report lint_netlist(const bench::Netlist& netlist,
                    const NetlistLintOptions& options = {});

/// Full .bench lint: lenient parse (LNT002/LNT007/LNT008 from the text)
/// followed by the structural rules on the recovered netlist.
Report lint_bench_text(const std::string& text, const std::string& circuitName,
                       const NetlistLintOptions& options = {});
Report lint_bench_file(const std::string& path,
                       const NetlistLintOptions& options = {});

} // namespace nvff::erc
