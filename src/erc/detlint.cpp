#include "erc/detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nvff::erc {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// --- rule table --------------------------------------------------------------

const std::vector<DetLintRule> kRules = {
    {"DET001", "wall-clock read (now()/time()/clock()) in a trial path"},
    {"DET002", "ambient RNG (rand, srand, std::random_device)"},
    {"DET003", "std <random> engine; use counter-based util/rng.hpp streams"},
    {"DET004", "iteration over an unordered container (hash-order dependent)"},
    {"DET005", "parallel execution policy (std::execution / OpenMP)"},
    {"DET006", "std::map/std::set keyed by pointer (address-order dependent)"},
    {"DET007", "malformed DETLINT-ALLOW (unknown rule or missing reason)"},
};

bool is_known_rule(const std::string& id) {
  for (const auto& r : kRules)
    if (id == r.id) return true;
  return false;
}

// --- comment/string stripping + DETLINT-ALLOW collection ---------------------

struct Allow {
  int line = 0;          ///< 1-based line of the DETLINT-ALLOW token
  std::string rule;      ///< rule id inside the parentheses
  bool wellFormed = false; ///< known rule id AND nonempty reason after ':'
  std::string problem;   ///< what is wrong when !wellFormed
};

/// Parses DETLINT-ALLOW(<rule>): <reason> annotations out of comment text.
/// `line` is where the comment text begins; embedded newlines advance it.
void collect_allows(const std::string& comment, int line,
                    std::vector<Allow>& allows) {
  static const std::string kTag = "DETLINT-ALLOW";
  std::size_t pos = 0;
  int currentLine = line;
  std::size_t lastNewlineScan = 0;
  for (;;) {
    const std::size_t hit = comment.find(kTag, pos);
    if (hit == std::string::npos) return;
    currentLine += static_cast<int>(
        std::count(comment.begin() + static_cast<std::ptrdiff_t>(lastNewlineScan),
                   comment.begin() + static_cast<std::ptrdiff_t>(hit), '\n'));
    lastNewlineScan = hit;
    pos = hit + kTag.size();

    // Only a tag that STARTS its comment line (allowing block-comment `*`
    // gutters) is an annotation; mid-sentence mentions are prose about the
    // mechanism, not uses of it.
    bool startsLine = true;
    for (std::size_t b = hit; b-- > 0 && comment[b] != '\n';) {
      if (comment[b] != ' ' && comment[b] != '\t' && comment[b] != '*') {
        startsLine = false;
        break;
      }
    }
    if (!startsLine) continue;

    Allow a;
    a.line = currentLine;
    std::size_t p = pos;
    if (p >= comment.size() || comment[p] != '(') {
      a.problem = "expected '(' after DETLINT-ALLOW";
      allows.push_back(a);
      continue;
    }
    const std::size_t close = comment.find(')', ++p);
    if (close == std::string::npos) {
      a.problem = "unterminated DETLINT-ALLOW rule list";
      allows.push_back(a);
      continue;
    }
    a.rule = std::string(trim(comment.substr(p, close - p)));
    p = close + 1;
    // Mandatory ": reason" — a suppression without a why is itself a finding.
    while (p < comment.size() && (comment[p] == ' ' || comment[p] == '\t')) ++p;
    std::string reason;
    if (p < comment.size() && comment[p] == ':') {
      const std::size_t eol = comment.find('\n', p);
      reason = std::string(trim(comment.substr(
          p + 1, (eol == std::string::npos ? comment.size() : eol) - p - 1)));
    }
    if (!is_known_rule(a.rule)) {
      a.problem = "unknown rule id '" + a.rule + "'";
    } else if (reason.empty()) {
      a.problem = "missing ': reason' after DETLINT-ALLOW(" + a.rule + ")";
    } else {
      a.wellFormed = true;
    }
    allows.push_back(a);
    pos = close;
  }
}

struct StrippedSource {
  std::vector<std::string> lines; ///< code only; comments/literals blanked
  std::vector<Allow> allows;
};

/// Blanks comments, string literals and char literals (preserving line
/// structure) so rule matching never fires on prose, and harvests the
/// DETLINT-ALLOW annotations from the comment text it removes.
StrippedSource strip_source(const std::string& text) {
  StrippedSource out;
  std::string current;
  int line = 1;
  enum class State { Code, LineComment, BlockComment, String, Char };
  State state = State::Code;
  std::string comment; // accumulates the current comment's text
  int commentLine = 0;

  auto flush_comment = [&] {
    collect_allows(comment, commentLine, out.allows);
    comment.clear();
  };
  auto end_line = [&] {
    out.lines.push_back(current);
    current.clear();
    ++line;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          commentLine = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          commentLine = line;
          ++i;
        } else if (c == '"') {
          // Raw strings R"(...)" are rare in this tree; treat the opening
          // quote conservatively (plain-string rules still apply safely).
          state = State::String;
          current += ' ';
        } else if (c == '\'') {
          state = State::Char;
          current += ' ';
        } else if (c == '\n') {
          end_line();
        } else {
          current += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          flush_comment();
          state = State::Code;
          end_line();
        } else {
          comment += c;
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::Code;
          ++i;
        } else {
          comment += c;
          if (c == '\n') end_line();
        }
        break;
      case State::String:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::Code;
        } else if (c == '\n') {
          end_line(); // unterminated; keep line numbering intact
          state = State::Code;
        }
        break;
      case State::Char:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::Code;
        } else if (c == '\n') {
          end_line();
          state = State::Code;
        }
        break;
    }
  }
  if (state == State::LineComment || state == State::BlockComment)
    flush_comment();
  out.lines.push_back(current);
  return out;
}

// --- token helpers -----------------------------------------------------------

struct Token {
  std::size_t begin = 0;
  std::size_t end = 0; ///< one past the last character
  std::string text;
};

std::vector<Token> identifiers(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (is_ident_char(line[i]) &&
        std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
      Token t;
      t.begin = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      t.end = i;
      t.text = line.substr(t.begin, t.end - t.begin);
      out.push_back(std::move(t));
    } else {
      ++i;
    }
  }
  return out;
}

char next_nonspace(const std::string& line, std::size_t from) {
  while (from < line.size() &&
         std::isspace(static_cast<unsigned char>(line[from])) != 0)
    ++from;
  return from < line.size() ? line[from] : '\0';
}

bool preceded_by(const std::string& line, std::size_t begin,
                 const std::string& prefix) {
  return begin >= prefix.size() &&
         line.compare(begin - prefix.size(), prefix.size(), prefix) == 0;
}

bool word_in(const std::string& word, std::initializer_list<const char*> set) {
  for (const char* w : set)
    if (word == w) return true;
  return false;
}

/// Skips a balanced <...> starting at `pos` (which must point at '<').
/// Returns the index one past the closing '>', or npos when unbalanced
/// within the line.
std::size_t skip_angle_brackets(const std::string& line, std::size_t pos) {
  int depth = 0;
  for (; pos < line.size(); ++pos) {
    if (line[pos] == '<') ++depth;
    else if (line[pos] == '>') {
      if (--depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

// --- per-file scan -----------------------------------------------------------

struct Finding {
  std::string rule;
  int line = 0;
  std::string message;
  std::string hint;
};

void scan_line_rules(const std::string& line, int lineNo,
                     std::vector<Finding>& findings) {
  // DET005: preprocessor-level checks first (need the raw code line).
  const std::string_view trimmed = trim(line);
  if (starts_with(trimmed, "#")) {
    if (trimmed.find("pragma") != std::string_view::npos &&
        trimmed.find("omp") != std::string_view::npos) {
      findings.push_back({"DET005", lineNo, "OpenMP pragma in a trial path",
                          "parallelism belongs in ThreadPool with per-index "
                          "Rng streams"});
    }
    if (trimmed.find("include") != std::string_view::npos &&
        trimmed.find("<execution>") != std::string_view::npos) {
      findings.push_back({"DET005", lineNo, "#include <execution>",
                          "parallel algorithms reduce in nondeterministic "
                          "order; use ThreadPool + slot-indexed output"});
    }
  }

  for (const Token& t : identifiers(line)) {
    const char after = t.end < line.size() ? next_nonspace(line, t.end) : '\0';

    // DET001 — wall-clock reads.
    if (t.text == "now" && after == '(' && preceded_by(line, t.begin, "::")) {
      findings.push_back({"DET001", lineNo, "clock read '::now()'",
                          "trial code must not read clocks; derive everything "
                          "from (seed, trialId)"});
    } else if (after == '(' &&
               word_in(t.text, {"time", "gettimeofday", "clock", "localtime",
                                "gmtime", "mktime", "ftime"})) {
      findings.push_back({"DET001", lineNo,
                          "wall-clock call '" + t.text + "()'",
                          "trial code must not read clocks; derive everything "
                          "from (seed, trialId)"});
    } else if (word_in(t.text, {"__DATE__", "__TIME__", "__TIMESTAMP__"})) {
      findings.push_back({"DET001", lineNo,
                          "build-time timestamp macro " + t.text,
                          "timestamps bake nondeterminism into the binary"});
    }

    // DET002 — ambient RNG.
    if (after == '(' && word_in(t.text, {"rand", "srand", "drand48", "lrand48",
                                         "mrand48", "random"})) {
      findings.push_back({"DET002", lineNo,
                          "ambient RNG call '" + t.text + "()'",
                          "use Rng::stream(seed, trialId) from util/rng.hpp"});
    } else if (t.text == "random_device") {
      findings.push_back({"DET002", lineNo, "std::random_device",
                          "hardware entropy is unreproducible by definition; "
                          "use Rng::stream(seed, trialId)"});
    }

    // DET003 — std <random> engines.
    if (word_in(t.text,
                {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
                 "default_random_engine", "ranlux24", "ranlux24_base",
                 "ranlux48", "ranlux48_base", "knuth_b",
                 "mersenne_twister_engine", "linear_congruential_engine",
                 "subtract_with_carry_engine"})) {
      findings.push_back(
          {"DET003", lineNo, "std <random> engine '" + t.text + "'",
           "std engines are not portable across stdlibs and invite seeding "
           "from time; use the xoshiro Rng in util/rng.hpp"});
    }

    // DET005 — parallel execution policies.
    if (t.text == "execution" && preceded_by(line, t.begin, "std::") &&
        t.end + 1 < line.size() && line.compare(t.end, 2, "::") == 0) {
      findings.push_back({"DET005", lineNo, "std::execution policy",
                          "parallel algorithms reduce in nondeterministic "
                          "order; use ThreadPool + slot-indexed output"});
    }

    // DET006 — ordered containers keyed by pointer.
    if (word_in(t.text, {"map", "set", "multimap", "multiset"}) &&
        t.end < line.size() && line[t.end] == '<') {
      std::size_t p = t.end + 1;
      int depth = 1;
      std::size_t argEnd = std::string::npos;
      for (; p < line.size(); ++p) {
        if (line[p] == '<') ++depth;
        else if (line[p] == '>') {
          if (--depth == 0) { argEnd = p; break; }
        } else if (line[p] == ',' && depth == 1) {
          argEnd = p;
          break;
        }
      }
      if (argEnd != std::string::npos) {
        const std::string_view firstArg =
            trim(std::string_view(line).substr(t.end + 1, argEnd - t.end - 1));
        if (!firstArg.empty() && firstArg.back() == '*') {
          findings.push_back(
              {"DET006", lineNo,
               "std::" + t.text + " keyed by pointer ('" +
                   std::string(firstArg) + "')",
               "address order depends on the allocator and ASLR; key by a "
               "stable id instead"});
        }
      }
    }
  }
}

/// DET004: names declared as unordered containers in this file, then any
/// range-for or .begin()/.cbegin() iteration over one of those names.
void scan_unordered_iteration(const std::vector<std::string>& lines,
                              std::vector<Finding>& findings) {
  std::vector<std::string> names;
  for (const std::string& line : lines) {
    for (const Token& t : identifiers(line)) {
      if (!word_in(t.text, {"unordered_map", "unordered_set",
                            "unordered_multimap", "unordered_multiset"}))
        continue;
      if (t.end >= line.size() || line[t.end] != '<') continue;
      std::size_t p = skip_angle_brackets(line, t.end);
      if (p == std::string::npos) continue;
      while (p < line.size() &&
             (std::isspace(static_cast<unsigned char>(line[p])) != 0 ||
              line[p] == '&' || line[p] == '*'))
        ++p;
      std::size_t q = p;
      while (q < line.size() && is_ident_char(line[q])) ++q;
      if (q > p) names.push_back(line.substr(p, q - p));
    }
  }
  if (names.empty()) return;

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const auto tokens = identifiers(line);
    // Range-for over a tracked name: `for (... : <expr containing name>)`.
    const std::size_t forPos = [&]() -> std::size_t {
      for (const Token& t : tokens)
        if (t.text == "for") return t.begin;
      return std::string::npos;
    }();
    const std::size_t colon = line.find(" : ");
    for (const std::string& name : names) {
      bool flagged = false;
      for (const Token& t : tokens) {
        if (t.text != name) continue;
        const bool inRangeFor = forPos != std::string::npos &&
                                colon != std::string::npos &&
                                t.begin > colon && forPos < colon;
        const bool viaBegin =
            line.compare(t.end, 7, ".begin(") == 0 ||
            line.compare(t.end, 8, ".cbegin(") == 0;
        if (inRangeFor || viaBegin) {
          findings.push_back(
              {"DET004", static_cast<int>(li + 1),
               "iteration over unordered container '" + name + "'",
               "hash order is libstdc++-version- and size-dependent; iterate "
               "a sorted copy or key the results by index"});
          flagged = true;
          break;
        }
      }
      if (flagged) break; // one finding per line is enough to gate
    }
  }
}

} // namespace

const std::vector<DetLintRule>& detlint_rules() { return kRules; }

Report detlint_source(const std::string& path, const std::string& text,
                      const DetLintOptions& options) {
  const StrippedSource src = strip_source(text);

  // An allow covers its own line and the next line carrying any code (so it
  // can sit atop the statement it excuses, across a comment block).
  auto covered_lines = [&](const Allow& a) {
    std::vector<int> covered{a.line};
    for (std::size_t l = static_cast<std::size_t>(a.line);
         l < src.lines.size() && l < static_cast<std::size_t>(a.line) + 8;
         ++l) {
      if (!trim(src.lines[l]).empty()) { // lines[l] is 1-based line l+1
        covered.push_back(static_cast<int>(l + 1));
        break;
      }
    }
    return covered;
  };
  std::map<int, std::vector<std::string>> allowed; // line -> rule ids
  for (const Allow& a : src.allows) {
    if (!a.wellFormed) continue;
    for (int l : covered_lines(a)) allowed[l].push_back(a.rule);
  }

  std::vector<Finding> findings;
  for (std::size_t i = 0; i < src.lines.size(); ++i)
    scan_line_rules(src.lines[i], static_cast<int>(i + 1), findings);
  scan_unordered_iteration(src.lines, findings);

  Report report;
  report.set_suppressed(options.suppress);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    const auto it = allowed.find(f.line);
    if (it != allowed.end() &&
        std::find(it->second.begin(), it->second.end(), f.rule) !=
            it->second.end())
      continue;
    report.add(f.rule, Severity::Error, path + ":" + std::to_string(f.line),
               f.message, f.hint);
  }
  for (const Allow& a : src.allows) {
    if (a.wellFormed) continue;
    report.add("DET007", Severity::Error,
               path + ":" + std::to_string(a.line), a.problem,
               "write '// DETLINT-ALLOW(DETnnn): reason'");
  }
  return report;
}

Report detlint_file(const std::string& path, const DetLintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("lint-src: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return detlint_source(path, buf.str(), options);
}

Report detlint_tree(const std::string& root, const DetLintOptions& options) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(root))
    throw std::runtime_error("lint-src: '" + root + "' is not a directory");
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
        ext == ".cxx" || ext == ".hxx" || ext == ".ipp")
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end()); // deterministic, of course
  Report report;
  for (const std::string& p : paths) report.merge(detlint_file(p, options));
  return report;
}

} // namespace nvff::erc
