// Umbrella header for the static-analysis subsystem: the diagnostics
// engine, the electrical-rule checker over spice::Circuit and the netlist
// linter over bench::Netlist. See README "Static checks" for the rule
// catalog and the suppression mechanism.
#pragma once

#include "erc/circuit_erc.hpp"
#include "erc/diagnostics.hpp"
#include "erc/netlist_lint.hpp"
