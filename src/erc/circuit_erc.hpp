// Electrical-rule checker over spice::Circuit.
//
// Static (no simulation) structural checks catching the construction
// mistakes that otherwise surface only as Newton convergence failures or
// silently wrong Table II numbers. Rule catalog:
//
//   ERC001  floating MOSFET gate — a gate node with nothing attached that
//           can set its DC voltage (sources, channels, resistors, MTJs)
//   ERC002  undriven / dangling / unused node
//   ERC003  node (island) with no DC path to the ground rail
//   ERC004  rail-to-rail short through a stack of always-on transistors
//           (gate hard-tied to a DC level that keeps the channel on)
//   ERC005  conflicting voltage sources (a loop of ideal sources, e.g. two
//           sources fighting over one node)
//   ERC006  zero / negative device geometry (MOSFET W or L, resistance,
//           capacitance)
//   ERC007  MTJ terminal left unconnected (or both terminals on one node)
//   ERC008  invalid node id on a device terminal (e.g. a kInvalidNode from
//           Circuit::find_node used without checking)
//
// All rules run in one linear pass over the device list plus a handful of
// union-find traversals — milliseconds even for large decks.
#pragma once

#include <string>
#include <vector>

#include "erc/diagnostics.hpp"
#include "spice/circuit.hpp"

namespace nvff::erc {

struct CircuitErcOptions {
  /// Rule ids to drop from the report (see README "Static checks").
  std::vector<std::string> suppress;
  /// Minimum DC level difference [V] across an always-on stack that counts
  /// as a rail-to-rail short (ERC004).
  double shortDeltaV = 1e-6;
};

/// Runs every electrical rule over the circuit.
Report check_circuit(const spice::Circuit& circuit,
                     const CircuitErcOptions& options = {});

/// Throws std::logic_error with the full report text if check_circuit finds
/// errors. Used by the latch builders' self-check.
void require_clean(const spice::Circuit& circuit, const char* context);

} // namespace nvff::erc
