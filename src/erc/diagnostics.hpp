// Shared diagnostics engine for the static checkers (circuit ERC and
// netlist lint).
//
// Every finding is a Diagnostic carrying a stable rule id ("ERC003",
// "LNT001"), a severity, the offending object (device, node or gate name),
// a one-line message and an optional fix hint. A Report collects them and
// renders either human-readable text or machine-readable JSON.
//
// Severity semantics: Error and Warning diagnostics make a report unclean
// (nonzero `nvfftool lint` exit, self-check throw); Info diagnostics are
// advisory notes that never gate anything (e.g. dead logic in the synthetic
// benchmark stand-ins, which is statistical by construction).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nvff::erc {

enum class Severity { Info, Warning, Error };

const char* severity_name(Severity severity);

struct Diagnostic {
  std::string rule;    ///< stable id, e.g. "ERC001"
  Severity severity = Severity::Error;
  std::string object;  ///< offending device / node / gate name
  std::string message; ///< what is wrong
  std::string hint;    ///< how to fix it (optional)
};

/// Collects diagnostics from one or more checker passes.
class Report {
public:
  /// Rules in `suppressed` are dropped on add() (the documented
  /// suppression mechanism; see README "Static checks").
  void set_suppressed(std::vector<std::string> rules) {
    suppressed_ = std::move(rules);
  }

  void add(Diagnostic d);
  void add(std::string rule, Severity severity, std::string object,
           std::string message, std::string hint = "");

  /// Appends every diagnostic of `other` (suppression applies again).
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::size_t size() const { return diagnostics_.size(); }
  bool empty() const { return diagnostics_.empty(); }

  std::size_t count(Severity severity) const;
  /// Number of diagnostics with this rule id.
  std::size_t count_rule(std::string_view rule) const;

  bool has_errors() const { return count(Severity::Error) > 0; }
  /// No errors and no warnings (Info notes do not count).
  bool clean() const {
    return count(Severity::Error) == 0 && count(Severity::Warning) == 0;
  }

  /// One line per diagnostic ("error[ERC001] Mx: floating gate ... (hint)")
  /// followed by a summary line.
  std::string to_text() const;

  /// JSON object {"diagnostics": [...], "errors": N, "warnings": N,
  /// "infos": N} for machine consumption (CI annotations, editors).
  std::string to_json() const;

private:
  std::vector<Diagnostic> diagnostics_;
  std::vector<std::string> suppressed_;
};

} // namespace nvff::erc
