#include "erc/circuit_erc.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "mtj/device.hpp"
#include "util/strings.hpp"

namespace nvff::erc {
namespace {

using spice::Capacitor;
using spice::CurrentSource;
using spice::Device;
using spice::kGround;
using spice::kInvalidNode;
using spice::Mosfet;
using spice::NodeId;
using spice::Resistor;
using spice::VoltageSource;

/// Union-find over node ids (0 = ground included).
class Dsu {
public:
  explicit Dsu(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) a = parent_[a] = parent_[parent_[a]];
    return a;
  }
  /// Returns false if a and b were already connected.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

private:
  std::vector<std::size_t> parent_;
};

/// Everything the rules need to know about one node, gathered in a single
/// pass over the device list.
struct NodeFacts {
  int degree = 0;        ///< total terminal attachments
  bool hasGate = false;  ///< some MOSFET gate is tied here
  bool hasDriver = false; ///< a terminal that can set the DC voltage
  std::string gateOf;    ///< first MOSFET whose gate is here (for messages)
};

struct Analysis {
  const spice::Circuit& circuit;
  const CircuitErcOptions& options;
  Report report;

  std::size_t numNodes; ///< non-ground nodes; valid ids are 0..numNodes
  std::vector<NodeFacts> facts; ///< index = NodeId (0 = ground, unused)
  Dsu dcPath;   ///< connectivity through DC-capable elements (ERC003)
  Dsu alwaysOn; ///< connectivity through always-on channels (ERC004)
  Dsu sources;  ///< connectivity through ideal voltage sources (ERC005)
  std::map<NodeId, double> dcLevel; ///< nodes hard-tied to a DC voltage
  bool anyInvalid = false;

  Analysis(const spice::Circuit& c, const CircuitErcOptions& o)
      : circuit(c),
        options(o),
        numNodes(c.num_nodes()),
        facts(numNodes + 1),
        dcPath(numNodes + 1),
        alwaysOn(numNodes + 1),
        sources(numNodes + 1) {
    report.set_suppressed(o.suppress);
  }

  bool valid(NodeId n) const {
    return n >= kGround && n <= static_cast<NodeId>(numNodes);
  }

  std::string name_of(NodeId n) const {
    if (!valid(n)) return format("node#%d", n);
    return circuit.node_name(n);
  }

  /// ERC008 + fact accumulation for one terminal. Returns false (and
  /// reports) for an invalid node id so callers can skip the terminal.
  bool terminal(const Device& dev, const char* pin, NodeId n, bool driver,
                bool gate = false) {
    if (!valid(n)) {
      anyInvalid = true;
      report.add("ERC008", Severity::Error, dev.name(),
                 format("%s terminal uses invalid node id %d", pin, n),
                 n == kInvalidNode
                     ? "kInvalidNode (a failed Circuit::find_node?) reached a device"
                     : "node id is outside this circuit's node table");
      return false;
    }
    if (n == kGround) return true; // ground is always driven; no facts kept
    NodeFacts& f = facts[static_cast<std::size_t>(n)];
    ++f.degree;
    if (driver) f.hasDriver = true;
    if (gate) {
      f.hasGate = true;
      if (f.gateOf.empty()) f.gateOf = dev.name();
    }
    return true;
  }
};

void scan_devices(Analysis& a) {
  for (const auto& up : a.circuit.devices()) {
    const Device& dev = *up;
    if (const auto* r = dynamic_cast<const Resistor*>(&dev)) {
      const bool okA = a.terminal(dev, "A", r->node_a(), true);
      const bool okB = a.terminal(dev, "B", r->node_b(), true);
      if (okA && okB) a.dcPath.unite(r->node_a(), r->node_b());
      if (r->resistance() <= 0.0) {
        a.report.add("ERC006", Severity::Error, dev.name(),
                     format("non-positive resistance %g ohm", r->resistance()));
      }
    } else if (const auto* c = dynamic_cast<const Capacitor*>(&dev)) {
      a.terminal(dev, "A", c->node_a(), false);
      a.terminal(dev, "B", c->node_b(), false);
      if (c->capacitance() < 0.0) {
        a.report.add("ERC006", Severity::Error, dev.name(),
                     format("negative capacitance %g F", c->capacitance()));
      }
    } else if (const auto* v = dynamic_cast<const VoltageSource*>(&dev)) {
      const bool okP = a.terminal(dev, "plus", v->plus(), true);
      const bool okM = a.terminal(dev, "minus", v->minus(), true);
      if (okP && okM) {
        a.dcPath.unite(v->plus(), v->minus());
        if (!a.sources.unite(v->plus(), v->minus())) {
          a.report.add(
              "ERC005", Severity::Error, dev.name(),
              v->plus() == v->minus()
                  ? "voltage source shorts its own terminals"
                  : format("forms a loop of ideal voltage sources through "
                           "nodes %s and %s",
                           a.name_of(v->plus()).c_str(),
                           a.name_of(v->minus()).c_str()),
              "two ideal sources fighting over one node pair have no "
              "consistent solution");
        }
      }
    } else if (const auto* i = dynamic_cast<const CurrentSource*>(&dev)) {
      a.terminal(dev, "from", i->from(), true);
      a.terminal(dev, "to", i->to(), true);
    } else if (const auto* m = dynamic_cast<const Mosfet*>(&dev)) {
      const bool okD = a.terminal(dev, "drain", m->drain(), true);
      const bool okS = a.terminal(dev, "source", m->source(), true);
      a.terminal(dev, "gate", m->gate(), false, /*gate=*/true);
      a.terminal(dev, "bulk", m->bulk(), false);
      if (okD && okS) a.dcPath.unite(m->drain(), m->source());
      if (m->geometry().w <= 0.0 || m->geometry().l <= 0.0) {
        a.report.add("ERC006", Severity::Error, dev.name(),
                     format("non-positive geometry W=%g m, L=%g m",
                            m->geometry().w, m->geometry().l));
      }
    } else if (const auto* t = dynamic_cast<const mtj::MtjDevice*>(&dev)) {
      const bool okF = a.terminal(dev, "free", t->free_node(), true);
      const bool okR = a.terminal(dev, "ref", t->ref_node(), true);
      if (okF && okR) {
        a.dcPath.unite(t->free_node(), t->ref_node());
        if (t->free_node() == t->ref_node()) {
          a.report.add("ERC007", Severity::Error, dev.name(),
                       "free and reference terminals tied to the same node",
                       "the MTJ is permanently shorted out of the circuit");
        }
      }
    }
    // Unknown device types contribute no terminals; their rules live with
    // whoever adds them.
  }
}

/// Propagates DC levels from ground through DC voltage sources (ERC004's
/// notion of "hard-tied to a rail").
void solve_dc_levels(Analysis& a) {
  a.dcLevel[kGround] = 0.0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& up : a.circuit.devices()) {
      const auto* v = dynamic_cast<const VoltageSource*>(up.get());
      if (v == nullptr || !v->waveform().is_dc()) continue;
      if (!a.valid(v->plus()) || !a.valid(v->minus())) continue;
      const bool pKnown = a.dcLevel.count(v->plus()) != 0;
      const bool mKnown = a.dcLevel.count(v->minus()) != 0;
      if (pKnown && !mKnown) {
        a.dcLevel[v->minus()] = a.dcLevel[v->plus()] - v->value(0.0);
        changed = true;
      } else if (mKnown && !pKnown) {
        a.dcLevel[v->plus()] = a.dcLevel[v->minus()] + v->value(0.0);
        changed = true;
      }
    }
  }
}

void check_always_on_shorts(Analysis& a) {
  double vMax = 0.0;
  for (const auto& [node, level] : a.dcLevel) {
    (void)node;
    vMax = std::max(vMax, level);
  }

  // Channel edges of transistors whose gate is hard-tied to a level that
  // keeps them conducting.
  std::vector<const Mosfet*> onFets;
  for (const auto& up : a.circuit.devices()) {
    const auto* m = dynamic_cast<const Mosfet*>(up.get());
    if (m == nullptr) continue;
    if (!a.valid(m->gate()) || !a.valid(m->drain()) || !a.valid(m->source())) {
      continue;
    }
    const auto it = a.dcLevel.find(m->gate());
    if (it == a.dcLevel.end()) continue;
    const double vg = it->second;
    const double vth = m->params().vth;
    const bool on = m->type() == spice::MosType::Nmos ? vg > vth
                                                      : vg < vMax - vth;
    if (!on) continue;
    onFets.push_back(m);
    a.alwaysOn.unite(m->drain(), m->source());
  }
  if (onFets.empty()) return;

  // A component of always-on channels touching two different DC levels is a
  // static rail-to-rail short.
  struct Span {
    double lo = 0.0, hi = 0.0;
    bool seen = false;
    std::vector<const Mosfet*> fets;
  };
  std::map<std::size_t, Span> spans;
  for (const Mosfet* m : onFets) {
    spans[a.alwaysOn.find(static_cast<std::size_t>(m->drain()))].fets.push_back(m);
  }
  for (const auto& [node, level] : a.dcLevel) {
    if (!a.valid(node)) continue;
    const std::size_t root = a.alwaysOn.find(static_cast<std::size_t>(node));
    auto it = spans.find(root);
    if (it == spans.end()) continue;
    Span& s = it->second;
    if (!s.seen) {
      s.lo = s.hi = level;
      s.seen = true;
    } else {
      s.lo = std::min(s.lo, level);
      s.hi = std::max(s.hi, level);
    }
  }
  for (const auto& [root, s] : spans) {
    (void)root;
    if (!s.seen || s.hi - s.lo <= a.options.shortDeltaV) continue;
    std::string names;
    for (const Mosfet* m : s.fets) {
      if (!names.empty()) names += ", ";
      names += m->name();
    }
    a.report.add("ERC004", Severity::Error, names,
                 format("always-on stack shorts a %.3g V rail to a %.3g V rail",
                        s.hi, s.lo),
                 "a gate is hard-tied to a DC level that never turns the "
                 "stack off");
  }
}

void check_nodes(Analysis& a) {
  // ERC001 / ERC002 from the accumulated facts.
  for (NodeId n = 1; n <= static_cast<NodeId>(a.numNodes); ++n) {
    const NodeFacts& f = a.facts[static_cast<std::size_t>(n)];
    const std::string& name = a.circuit.node_name(n);
    if (f.hasGate && !f.hasDriver) {
      a.report.add("ERC001", Severity::Error, name,
                   format("floating gate of %s: nothing attached can set the "
                          "node's voltage",
                          f.gateOf.c_str()),
                   "drive the node or tie it to a rail");
      continue; // the gate diagnostic subsumes the generic undriven one
    }
    if (f.degree == 0) {
      a.report.add("ERC002", Severity::Warning, name,
                   "node was created but no device connects to it");
    } else if (!f.hasDriver) {
      a.report.add("ERC002", Severity::Error, name,
                   "undriven node: only capacitors/gates/bulks attach, so its "
                   "DC voltage is undefined");
    } else if (f.degree == 1) {
      a.report.add("ERC002", Severity::Warning, name,
                   "dangling node: a single device terminal attaches");
    }
  }

  // ERC003: one diagnostic per floating island (connected component of
  // DC-capable edges that never reaches ground).
  if (!a.anyInvalid) {
    std::map<std::size_t, std::vector<NodeId>> islands;
    const std::size_t groundRoot = a.dcPath.find(kGround);
    for (NodeId n = 1; n <= static_cast<NodeId>(a.numNodes); ++n) {
      if (a.facts[static_cast<std::size_t>(n)].degree == 0) continue;
      const std::size_t root = a.dcPath.find(static_cast<std::size_t>(n));
      if (root != groundRoot) islands[root].push_back(n);
    }
    for (const auto& [root, nodes] : islands) {
      (void)root;
      std::string names;
      for (std::size_t i = 0; i < nodes.size() && i < 4; ++i) {
        if (i != 0) names += ", ";
        names += a.circuit.node_name(nodes[i]);
      }
      if (nodes.size() > 4) names += ", ...";
      a.report.add("ERC003", Severity::Error, a.circuit.node_name(nodes.front()),
                   format("%zu node(s) with no DC path to ground: %s",
                          nodes.size(), names.c_str()),
                   "every island needs a resistive or source path to a rail");
    }
  }
}

void check_mtj_terminals(Analysis& a) {
  for (const auto& up : a.circuit.devices()) {
    const auto* t = dynamic_cast<const mtj::MtjDevice*>(up.get());
    if (t == nullptr) continue;
    if (t->free_node() == t->ref_node()) continue; // reported in scan_devices
    const auto lonely = [&](NodeId n) {
      return a.valid(n) && n != kGround &&
             a.facts[static_cast<std::size_t>(n)].degree <= 1;
    };
    if (lonely(t->free_node())) {
      a.report.add("ERC007", Severity::Error, t->name(),
                   format("free terminal '%s' connects to nothing else",
                          a.name_of(t->free_node()).c_str()),
                   "wire the write path / sense path to the MTJ");
    }
    if (lonely(t->ref_node())) {
      a.report.add("ERC007", Severity::Error, t->name(),
                   format("reference terminal '%s' connects to nothing else",
                          a.name_of(t->ref_node()).c_str()),
                   "wire the write path / sense path to the MTJ");
    }
  }
}

} // namespace

Report check_circuit(const spice::Circuit& circuit,
                     const CircuitErcOptions& options) {
  Analysis a(circuit, options);
  scan_devices(a);
  solve_dc_levels(a);
  check_always_on_shorts(a);
  check_nodes(a);
  check_mtj_terminals(a);
  return std::move(a.report);
}

void require_clean(const spice::Circuit& circuit, const char* context) {
  const Report report = check_circuit(circuit);
  if (report.has_errors()) {
    throw std::logic_error(std::string("ERC failed for ") + context + ":\n" +
                           report.to_text());
  }
}

} // namespace nvff::erc
