// Three-valued (0/1/X) logic simulation for wake-up verification.
//
// After power collapse every volatile node is unknown; verification flows
// model that as X and check that restored state drives every X out of the
// machine. This simulator implements pessimistic X-propagation semantics:
//
//   AND: any 0 -> 0; else any X -> X        OR: any 1 -> 1; else any X -> X
//   XOR/XNOR/NOT/BUF: any X input -> X
//
// which is exactly gate-level Verilog X semantics. The paper's normally-off
// claim in this language: with the NV restore, zero X remain after wake-up;
// without it, X floods the design.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_circuits/netlist.hpp"

namespace nvff::sim {

enum class Trit : std::uint8_t { Zero = 0, One = 1, X = 2 };

Trit trit_from_bool(bool b);
char trit_char(Trit t); ///< '0', '1', 'x'

class XLogicSimulator {
public:
  explicit XLogicSimulator(const bench::Netlist& netlist);

  void set_inputs(const std::vector<Trit>& values);
  void set_inputs_bool(const std::vector<bool>& values);
  void evaluate();
  void tick();
  void cycle(const std::vector<Trit>& inputs);

  Trit value(bench::GateId gate) const {
    return values_[static_cast<std::size_t>(gate)];
  }
  std::vector<Trit> flip_flop_state() const;
  void load_flip_flop_state(const std::vector<Trit>& state);
  /// Bool overload: a restore from the NV bank is always fully known.
  void load_flip_flop_state_bool(const std::vector<bool>& state);

  /// Power collapse: every flip-flop becomes X.
  void x_out_state();

  /// Number of X flip-flops / X primary outputs right now.
  std::size_t x_flip_flops() const;
  std::size_t x_outputs() const;

  const bench::Netlist& netlist() const { return netlist_; }

private:
  const bench::Netlist& netlist_;
  std::vector<Trit> values_;
  std::vector<Trit> nextFfState_;
};

} // namespace nvff::sim
