#include "sim/xlogic_sim.hpp"

#include <stdexcept>

namespace nvff::sim {

using bench::GateId;
using bench::GateType;
using bench::Netlist;

Trit trit_from_bool(bool b) { return b ? Trit::One : Trit::Zero; }

char trit_char(Trit t) {
  switch (t) {
    case Trit::Zero: return '0';
    case Trit::One: return '1';
    case Trit::X: return 'x';
  }
  return '?';
}

namespace {

Trit trit_not(Trit a) {
  if (a == Trit::X) return Trit::X;
  return a == Trit::Zero ? Trit::One : Trit::Zero;
}

Trit trit_and(Trit a, Trit b) {
  if (a == Trit::Zero || b == Trit::Zero) return Trit::Zero;
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return Trit::One;
}

Trit trit_or(Trit a, Trit b) {
  if (a == Trit::One || b == Trit::One) return Trit::One;
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return Trit::Zero;
}

Trit trit_xor(Trit a, Trit b) {
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return (a == b) ? Trit::Zero : Trit::One;
}

} // namespace

XLogicSimulator::XLogicSimulator(const Netlist& netlist) : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw std::invalid_argument("XLogicSimulator: netlist must be finalized");
  }
  values_.assign(netlist.size(), Trit::X);
  nextFfState_.assign(netlist.num_flip_flops(), Trit::X);
  // Primary inputs default to 0 (driven from outside the gated domain).
  for (GateId id : netlist.inputs()) {
    values_[static_cast<std::size_t>(id)] = Trit::Zero;
  }
}

void XLogicSimulator::set_inputs(const std::vector<Trit>& values) {
  if (values.size() != netlist_.num_inputs()) {
    throw std::invalid_argument("XLogicSimulator: input arity mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[static_cast<std::size_t>(netlist_.inputs()[i])] = values[i];
  }
}

void XLogicSimulator::set_inputs_bool(const std::vector<bool>& values) {
  std::vector<Trit> trits(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) trits[i] = trit_from_bool(values[i]);
  set_inputs(trits);
}

void XLogicSimulator::evaluate() {
  for (GateId id : netlist_.topo_order()) {
    const auto& g = netlist_.gate(id);
    if (g.type == GateType::Input || g.type == GateType::Dff) continue;
    auto in = [&](std::size_t k) {
      return values_[static_cast<std::size_t>(g.fanin[k])];
    };
    Trit v = Trit::X;
    switch (g.type) {
      case GateType::Buf:
        v = in(0);
        break;
      case GateType::Not:
        v = trit_not(in(0));
        break;
      case GateType::And:
      case GateType::Nand: {
        v = Trit::One;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) v = trit_and(v, in(k));
        if (g.type == GateType::Nand) v = trit_not(v);
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        v = Trit::Zero;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) v = trit_or(v, in(k));
        if (g.type == GateType::Nor) v = trit_not(v);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        v = Trit::Zero;
        for (std::size_t k = 0; k < g.fanin.size(); ++k) v = trit_xor(v, in(k));
        if (g.type == GateType::Xnor) v = trit_not(v);
        break;
      }
      default:
        break;
    }
    values_[static_cast<std::size_t>(id)] = v;
  }
  const auto& ffs = netlist_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    nextFfState_[i] = values_[static_cast<std::size_t>(netlist_.gate(ffs[i]).fanin[0])];
  }
}

void XLogicSimulator::tick() {
  const auto& ffs = netlist_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    values_[static_cast<std::size_t>(ffs[i])] = nextFfState_[i];
  }
}

void XLogicSimulator::cycle(const std::vector<Trit>& inputs) {
  set_inputs(inputs);
  evaluate();
  tick();
}

std::vector<Trit> XLogicSimulator::flip_flop_state() const {
  std::vector<Trit> state;
  state.reserve(netlist_.num_flip_flops());
  for (GateId id : netlist_.flip_flops()) {
    state.push_back(values_[static_cast<std::size_t>(id)]);
  }
  return state;
}

void XLogicSimulator::load_flip_flop_state(const std::vector<Trit>& state) {
  if (state.size() != netlist_.num_flip_flops()) {
    throw std::invalid_argument("XLogicSimulator: state size mismatch");
  }
  const auto& ffs = netlist_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    values_[static_cast<std::size_t>(ffs[i])] = state[i];
  }
}

void XLogicSimulator::load_flip_flop_state_bool(const std::vector<bool>& state) {
  std::vector<Trit> trits(state.size());
  for (std::size_t i = 0; i < state.size(); ++i) trits[i] = trit_from_bool(state[i]);
  load_flip_flop_state(trits);
}

void XLogicSimulator::x_out_state() {
  for (GateId id : netlist_.flip_flops()) {
    values_[static_cast<std::size_t>(id)] = Trit::X;
  }
  for (auto& t : nextFfState_) t = Trit::X;
}

std::size_t XLogicSimulator::x_flip_flops() const {
  std::size_t n = 0;
  for (GateId id : netlist_.flip_flops()) {
    if (values_[static_cast<std::size_t>(id)] == Trit::X) ++n;
  }
  return n;
}

std::size_t XLogicSimulator::x_outputs() const {
  std::size_t n = 0;
  for (GateId id : netlist_.outputs()) {
    if (values_[static_cast<std::size_t>(id)] == Trit::X) ++n;
  }
  return n;
}

} // namespace nvff::sim
