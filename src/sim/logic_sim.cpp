#include "sim/logic_sim.hpp"

#include <stdexcept>

namespace nvff::sim {

using bench::GateId;
using bench::GateType;
using bench::Netlist;

LogicSimulator::LogicSimulator(const Netlist& netlist) : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw std::invalid_argument("LogicSimulator: netlist must be finalized");
  }
  values_.assign(netlist.size(), false);
  nextFfState_.assign(netlist.num_flip_flops(), false);
}

void LogicSimulator::set_inputs(const std::vector<bool>& values) {
  if (values.size() != netlist_.num_inputs()) {
    throw std::invalid_argument("LogicSimulator: input arity mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    values_[static_cast<std::size_t>(netlist_.inputs()[i])] = values[i];
  }
}

void LogicSimulator::set_input(std::size_t index, bool value) {
  values_[static_cast<std::size_t>(netlist_.inputs().at(index))] = value;
}

void LogicSimulator::evaluate() {
  for (GateId id : netlist_.topo_order()) {
    const auto& g = netlist_.gate(id);
    if (g.type == GateType::Input || g.type == GateType::Dff) continue;
    bool v = false;
    switch (g.type) {
      case GateType::Buf:
        v = values_[static_cast<std::size_t>(g.fanin[0])];
        break;
      case GateType::Not:
        v = !values_[static_cast<std::size_t>(g.fanin[0])];
        break;
      case GateType::And:
      case GateType::Nand: {
        v = true;
        for (GateId f : g.fanin) v = v && values_[static_cast<std::size_t>(f)];
        if (g.type == GateType::Nand) v = !v;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        v = false;
        for (GateId f : g.fanin) v = v || values_[static_cast<std::size_t>(f)];
        if (g.type == GateType::Nor) v = !v;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        v = false;
        for (GateId f : g.fanin) v = v != values_[static_cast<std::size_t>(f)];
        if (g.type == GateType::Xnor) v = !v;
        break;
      }
      default:
        break;
    }
    values_[static_cast<std::size_t>(id)] = v;
  }
  // Capture D pins for the next tick.
  const auto& ffs = netlist_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    const auto& g = netlist_.gate(ffs[i]);
    nextFfState_[i] = values_[static_cast<std::size_t>(g.fanin[0])];
  }
}

void LogicSimulator::tick() {
  const auto& ffs = netlist_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    const auto idx = static_cast<std::size_t>(ffs[i]);
    if (values_[idx] != nextFfState_[i]) ++ffToggles_;
    values_[idx] = nextFfState_[i];
  }
}

void LogicSimulator::cycle(const std::vector<bool>& inputs) {
  set_inputs(inputs);
  evaluate();
  tick();
}

std::vector<bool> LogicSimulator::output_values() const {
  std::vector<bool> out;
  out.reserve(netlist_.outputs().size());
  for (GateId id : netlist_.outputs()) {
    out.push_back(values_[static_cast<std::size_t>(id)]);
  }
  return out;
}

std::vector<bool> LogicSimulator::flip_flop_state() const {
  std::vector<bool> state;
  state.reserve(netlist_.num_flip_flops());
  for (GateId id : netlist_.flip_flops()) {
    state.push_back(values_[static_cast<std::size_t>(id)]);
  }
  return state;
}

void LogicSimulator::load_flip_flop_state(const std::vector<bool>& state) {
  if (state.size() != netlist_.num_flip_flops()) {
    throw std::invalid_argument("load_flip_flop_state: size mismatch");
  }
  const auto& ffs = netlist_.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    values_[static_cast<std::size_t>(ffs[i])] = state[i];
  }
}

void LogicSimulator::scramble_state(Rng& rng) {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (netlist_.gate(static_cast<GateId>(i)).type == GateType::Input) continue;
    values_[i] = rng.chance(0.5);
  }
  for (std::size_t i = 0; i < nextFfState_.size(); ++i) {
    nextFfState_[i] = rng.chance(0.5);
  }
}

NvShadowBank::NvShadowBank(std::size_t numBits) : bits_(numBits, false) {}

void NvShadowBank::store(const LogicSimulator& sim) {
  const auto state = sim.flip_flop_state();
  if (state.size() != bits_.size()) {
    throw std::invalid_argument("NvShadowBank: bit-count mismatch");
  }
  bits_ = state;
  hasBackup_ = true;
  ++storeCount_;
}

void NvShadowBank::restore(LogicSimulator& sim) {
  if (!hasBackup_) throw std::logic_error("NvShadowBank: restore before store");
  sim.load_flip_flop_state(bits_);
  ++restoreCount_;
}

bool verify_power_cycle_transparency(const Netlist& netlist, int activeCycles,
                                     int checkCycles, std::uint64_t seed) {
  LogicSimulator gated(netlist);
  LogicSimulator golden(netlist);
  NvShadowBank bank(netlist.num_flip_flops());
  Rng stimulus(seed);
  Rng scramble(seed ^ 0xdeadbeefULL);

  auto randomInputs = [&](Rng& rng) {
    std::vector<bool> in(netlist.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.chance(0.5);
    return in;
  };

  // Identical stimulus streams.
  Rng stimulusGolden(seed);
  for (int c = 0; c < activeCycles; ++c) {
    const auto in = randomInputs(stimulus);
    gated.cycle(in);
    golden.cycle(randomInputs(stimulusGolden));
  }

  // Standby: store, power collapse, wake, restore.
  bank.store(gated);
  gated.scramble_state(scramble);
  bank.restore(gated);

  for (int c = 0; c < checkCycles; ++c) {
    const auto in = randomInputs(stimulus);
    gated.cycle(in);
    golden.cycle(randomInputs(stimulusGolden));
    if (gated.output_values() != golden.output_values()) return false;
    if (gated.flip_flop_state() != golden.flip_flop_state()) return false;
  }
  return true;
}

} // namespace nvff::sim
