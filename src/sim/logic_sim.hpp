// Cycle-based gate-level logic simulator with a behavioural model of the NV
// shadow back-up (store / power-gate / restore).
//
// Used to verify at system level that replacing flip-flops with shadow NV
// cells is functionally transparent: run a workload, store, collapse power
// (all volatile state destroyed), restore, and continue — the architectural
// state must be identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_circuits/netlist.hpp"
#include "util/rng.hpp"

namespace nvff::sim {

/// Simulates one finalized netlist. Two-valued logic (0/1); X modelling is
/// handled by the power-gating harness (destroyed state is randomized, which
/// is strictly stronger than X-propagation for catching retention bugs).
class LogicSimulator {
public:
  explicit LogicSimulator(const bench::Netlist& netlist);

  /// Sets all primary inputs.
  void set_inputs(const std::vector<bool>& values);
  /// Sets one primary input by position.
  void set_input(std::size_t index, bool value);

  /// Recomputes combinational values in topological order.
  void evaluate();

  /// Clock edge: every DFF captures its D value (evaluate() first!).
  void tick();

  /// Convenience: set inputs, evaluate, tick.
  void cycle(const std::vector<bool>& inputs);

  bool value(bench::GateId gate) const {
    return values_[static_cast<std::size_t>(gate)];
  }
  std::vector<bool> output_values() const;
  std::vector<bool> flip_flop_state() const;
  void load_flip_flop_state(const std::vector<bool>& state);

  /// Destroys all volatile state (power collapse): flip-flops and wires take
  /// attacker-chosen garbage from the rng.
  void scramble_state(Rng& rng);

  /// Number of flip-flop bit-toggles since construction (activity metric).
  std::uint64_t ff_toggle_count() const { return ffToggles_; }

  const bench::Netlist& netlist() const { return netlist_; }

private:
  const bench::Netlist& netlist_;
  std::vector<bool> values_;      ///< current signal values, index = GateId
  std::vector<bool> nextFfState_; ///< D values captured at evaluate()
  std::uint64_t ffToggles_ = 0;
};

/// Behavioural NV shadow bank: stores/restores the flip-flop state of a
/// simulator, tracking how many store/restore operations and bits moved
/// (feeds the system-level energy accounting).
class NvShadowBank {
public:
  explicit NvShadowBank(std::size_t numBits);

  void store(const LogicSimulator& sim);
  void restore(LogicSimulator& sim);
  bool has_backup() const { return hasBackup_; }
  std::size_t num_bits() const { return bits_.size(); }
  std::uint64_t store_count() const { return storeCount_; }
  std::uint64_t restore_count() const { return restoreCount_; }

private:
  std::vector<bool> bits_;
  bool hasBackup_ = false;
  std::uint64_t storeCount_ = 0;
  std::uint64_t restoreCount_ = 0;
};

/// End-to-end normally-off check: runs `activeCycles` of random stimulus,
/// stores, scrambles (power-off), restores, runs `checkCycles` more, and
/// compares against an uninterrupted golden run. Returns true if the two
/// executions are indistinguishable.
bool verify_power_cycle_transparency(const bench::Netlist& netlist,
                                     int activeCycles, int checkCycles,
                                     std::uint64_t seed);

} // namespace nvff::sim
