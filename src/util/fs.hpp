// Small filesystem helpers with correct EINTR / partial-write handling.
//
// The endpoint-rendezvous files (`--endpoint-file` on `nvfftool serve` and
// `netchaos`) used to be written with unchecked fopen/fprintf/rename — a
// short write or a full disk produced a silently truncated file that a
// worker would then parse into a garbage endpoint. This helper is the
// audited replacement: raw POSIX write loop (EINTR retried, partial writes
// resumed), result checked at every stage, temp file + rename so readers
// never observe a half-written file.
#pragma once

#include <string>

namespace nvff::util {

/// Writes `contents` to `path` atomically: `<path>.tmp` is written with an
/// EINTR-safe full-write loop, fsynced, closed, and renamed over `path`.
/// Returns false with a diagnostic in `error` on any failure; the temp file
/// is cleaned up and an existing `path` is left untouched.
bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string& error);

} // namespace nvff::util
