// Clang thread-safety-analysis annotation macros.
//
// These expand to Clang's capability attributes when the compiler supports
// them (-Wthread-safety; promoted to an error in the clang CI leg) and to
// nothing everywhere else, so gcc builds are unaffected. Annotate:
//
//   * a lockable type with CAPABILITY("mutex") and its lock/unlock methods
//     with ACQUIRE()/RELEASE() — see util/sync.hpp for the one wrapper the
//     codebase uses;
//   * every piece of state a mutex protects with GUARDED_BY(mu), so any
//     unlocked access is a compile error on clang;
//   * functions that must be called with a lock held with REQUIRES(mu), and
//     functions that must NOT hold it (e.g. because they take it themselves)
//     with EXCLUDES(mu).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NVFF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NVFF_THREAD_ANNOTATION
#define NVFF_THREAD_ANNOTATION(x) // no-op off clang
#endif

#define CAPABILITY(x) NVFF_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY NVFF_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) NVFF_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) NVFF_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) NVFF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) NVFF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) NVFF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NVFF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) NVFF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NVFF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) NVFF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NVFF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) NVFF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) NVFF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) NVFF_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) NVFF_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  NVFF_THREAD_ANNOTATION(no_thread_safety_analysis)
