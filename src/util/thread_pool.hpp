// Work-stealing thread pool for embarrassingly parallel campaigns.
//
// Each worker owns a deque: it pushes and pops at the front (LIFO, cache
// friendly for recursive submission) and steals from the BACK of a victim's
// deque when its own runs dry, so long-running tasks migrate to idle
// workers instead of serializing behind a slow one. Monte-Carlo trials have
// wildly uneven cost (a trial that walks the solver recovery ladder costs
// many times a clean one), which is exactly the load shape stealing evens
// out.
//
// Determinism contract: the pool schedules WHEN tasks run, never WHAT they
// compute. Tasks that derive all randomness from their own index (see
// Rng::stream) produce identical results at any worker count.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nvff {

class ThreadPool {
public:
  /// Spawns `threads` workers (at least 1; 0 is clamped to 1).
  explicit ThreadPool(unsigned threads);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Thread-safe; may be called from within a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Convenience: runs fn(i) for i in [0, count) across `threads` workers
  /// and waits for completion. Exceptions escaping fn terminate (tasks are
  /// expected to classify their own failures — that is the whole point of
  /// the reliability engine).
  static void parallel_for(unsigned threads, std::size_t count,
                           const std::function<void(std::size_t)>& fn);

private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex stateMutex_;
  std::condition_variable workAvailable_;
  std::condition_variable allDone_;
  std::size_t pending_ = 0;     ///< submitted but not yet finished
  std::size_t nextQueue_ = 0;   ///< round-robin submission target
  bool shutdown_ = false;
};

} // namespace nvff
