// Work-stealing thread pool for embarrassingly parallel campaigns.
//
// Each worker owns a deque: it pushes and pops at the front (LIFO, cache
// friendly for recursive submission) and steals from the BACK of a victim's
// deque when its own runs dry, so long-running tasks migrate to idle
// workers instead of serializing behind a slow one. Monte-Carlo trials have
// wildly uneven cost (a trial that walks the solver recovery ladder costs
// many times a clean one), which is exactly the load shape stealing evens
// out.
//
// Determinism contract: the pool schedules WHEN tasks run, never WHAT they
// compute. Tasks that derive all randomness from their own index (see
// Rng::stream) produce identical results at any worker count.
//
// Error contract: an exception escaping a task is caught and logged, never
// propagated — a stray throw must not std::terminate a campaign or wedge
// wait_idle(). Trial engines are expected to classify their own failures
// (that is the whole point of the reliability taxonomy); the catch here is
// the backstop for contract breaches.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace nvff {

class ThreadPool {
public:
  /// Spawns `threads` workers (at least 1; 0 is clamped to 1).
  explicit ThreadPool(unsigned threads);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Thread-safe; may be called from within a task
  /// (re-entrant submission is counted before the parent task finishes, so
  /// wait_idle() cannot wake early).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Convenience: runs fn(i) for i in [0, count) across `threads` workers
  /// and waits for completion. An exception escaping fn is logged and that
  /// index is counted as finished (see the error contract above).
  static void parallel_for(unsigned threads, std::size_t count,
                           const std::function<void(std::size_t)>& fn);

private:
  struct Queue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task)
      EXCLUDES(stateMutex_);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  Mutex stateMutex_;
  CondVar workAvailable_;
  CondVar allDone_;
  std::size_t pending_ GUARDED_BY(stateMutex_) = 0;  ///< submitted, unfinished
  std::size_t nextQueue_ GUARDED_BY(stateMutex_) = 0; ///< round-robin target
  bool shutdown_ GUARDED_BY(stateMutex_) = false;
};

} // namespace nvff
