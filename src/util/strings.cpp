#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace nvff {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list argsCopy;
  va_copy(argsCopy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, argsCopy);
  }
  va_end(argsCopy);
  return out;
}

std::string eng(double value, const char* unit, int precision) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},    {1e-3, "m"},
      {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  };
  if (value == 0.0) return format("0 %s", unit);
  const double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9999999) {
      return format("%.*f %s%s", precision, value / p.scale, p.symbol, unit);
    }
  }
  const auto& last = kPrefixes[sizeof(kPrefixes) / sizeof(kPrefixes[0]) - 1];
  return format("%.*g %s%s", precision, value / last.scale, last.symbol, unit);
}

} // namespace nvff
