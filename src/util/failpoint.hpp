// Deterministic failpoint registry: process-wide, named fault-injection
// sites with replayable trigger policies.
//
// Every place the process touches a resource that can degrade — the durable
// checkpoint commit/load path, the socket syscall wrappers in dist/channel,
// coordinator accept, the supervisor's trial allocation — evaluates a named
// failpoint before (or instead of) the real operation:
//
//   if (auto hit = util::failpoint("durable.write")) { /* inject */ }
//
// Sites are a fixed compile-time inventory (Failpoints::sites()); arming one
// happens at process start from `--failpoints "site=policy:action,..."` or
// the NVFF_FAILPOINTS environment override, never from code. The grammar:
//
//   spec    := entry (',' entry)*
//   entry   := 'seed=' N | site '=' policy [':' action]
//   policy  := 'off' | 'every(N)' | 'after(N)' | 'times(N)' | 'prob(P)'
//   action  := 'errno(NAME|N)' | 'short-write' | 'delay(MS)' | 'eintr'
//            | 'abort'                  (default: errno(EIO))
//
// DETERMINISM CONTRACT. Each site carries its own evaluation counter; the
// k-th evaluation of a site makes the same fire/no-fire decision for a
// given (seed, spec) no matter how many threads race through the site or
// in what order — counting policies depend only on k, and `prob(p)` draws
// from the counter-based Rng::stream keyed by (seed, site#, k), never from
// ambient RNG state. This is the same replay discipline the campaign
// engines use, so an injected-fault run is as reproducible as a clean one.
//
// Actions describe HOW the site fails, in the vocabulary of the syscall it
// guards: `errno(E)` makes the operation fail with E set, `short-write`
// makes a write consume only part of the buffer before failing,
// `delay(MS)` sleeps then proceeds cleanly (for races and watchdogs),
// `eintr` simulates an interrupted syscall the site is expected to retry,
// and `abort` kills the process at the exact stage (crash drills).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace nvff::util {

/// What an armed failpoint injects when it fires.
enum class FailAction {
  Errno,      ///< fail the operation with `err` in errno
  ShortWrite, ///< consume part of the buffer, then fail with `err`
  DelayMs,    ///< sleep `delayMs`, then let the operation proceed
  Eintr,      ///< simulate one interrupted-syscall iteration (err = EINTR)
  Abort,      ///< std::abort() at the site — crash-drill hook
};

/// One fired evaluation, as seen by the instrumented site.
struct FailHit {
  FailAction action = FailAction::Errno;
  int err = 0;     ///< errno to inject (Errno / ShortWrite / Eintr)
  int delayMs = 0; ///< sleep length for DelayMs
};

/// A registered site: name + one-line description (for `failpoints --list`).
struct FailpointSite {
  const char* name;
  const char* what;
};

/// Process-wide singleton registry. Configuration (configure/reset/seed) is
/// expected at process start, before campaign threads exist; evaluation is
/// thread-safe and wait-free in the common everything-off case.
class Failpoints {
public:
  static Failpoints& instance();

  /// Parses and merges a spec string (see grammar above). Later entries for
  /// the same site override earlier ones, so an env override and a CLI flag
  /// compose. On a malformed entry or unknown site, leaves the registry
  /// untouched, fills `error` with a diagnostic naming the offending entry
  /// (and the registered-site inventory for unknown sites), and returns
  /// false — callers surface it as a usage error (exit 2).
  bool configure(const std::string& spec, std::string& error);

  /// Disarms every site and zeroes all evaluation counters.
  void reset();

  /// Evaluates `site`: bumps its counter and returns the injection to
  /// perform, or nullopt. Unknown names never fire (sites are compile-time
  /// strings; a typo shows up in tests, not as UB).
  std::optional<FailHit> evaluate(const char* site);

  /// Pure decision function: would evaluation number `k` (0-based) of
  /// `site` fire under the current arms? Does not touch counters — the
  /// determinism tests enumerate expected sequences with this.
  bool would_fire(const char* site, long k) const;

  /// Evaluations recorded at `site` so far.
  long evaluations(const char* site) const;

  /// True if any site is armed (cheap pre-check, also used by tests).
  bool armed() const { return anyArmed_.load(std::memory_order_acquire); }

  /// Registered-site inventory, for --list and unknown-site diagnostics.
  static const std::array<FailpointSite, 12>& sites();

  /// Human-readable inventory + current arms, one line per site.
  std::string describe() const;

private:
  Failpoints() = default;

  enum class Policy { Off, Every, After, Times, Prob };

  struct Arm {
    Policy policy = Policy::Off;
    long n = 0;       ///< Every/After/Times parameter
    double p = 0.0;   ///< Prob parameter
    FailHit hit;      ///< what to inject when the policy fires
  };

  static int site_index(const char* site);
  bool decide(const Arm& arm, int siteIndex, long k) const REQUIRES(mu_);

  mutable Mutex mu_;
  std::atomic<bool> anyArmed_{false};
  std::uint64_t seed_ GUARDED_BY(mu_) = 1;
  std::array<Arm, 12> arms_ GUARDED_BY(mu_){};
  // Counters live outside the lock: fetch_add gives each evaluation a
  // unique index even when sites race, which is all determinism needs.
  std::array<std::atomic<long>, 12> counters_{};
};

/// Convenience wrapper: `if (auto hit = util::failpoint("dist.send")) ...`.
inline std::optional<FailHit> failpoint(const char* site) {
  return Failpoints::instance().evaluate(site);
}

} // namespace nvff::util
