// String helpers shared by parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nvff {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on any character in `delims`, dropping empty tokens.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t");

/// Splits on a single delimiter, keeping empty tokens (CSV-style).
std::vector<std::string> split_keep_empty(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII in place and returns the result.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Engineering notation with unit suffix, e.g. 4.587e-15 J -> "4.587 fJ".
/// `unit` is the SI base unit symbol ("J", "s", "W", "m").
std::string eng(double value, const char* unit, int precision = 3);

} // namespace nvff
