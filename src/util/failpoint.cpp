#include "util/failpoint.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nvff::util {
namespace {

// The registered inventory. Order is load-bearing: prob(p) streams are keyed
// by the site INDEX, so appending keeps existing specs replayable while
// reordering would not — append only.
constexpr std::array<FailpointSite, 12> kSites = {{
    {"durable.open", "fopen of the checkpoint temp file"},
    {"durable.write", "payload fwrite into the temp file"},
    {"durable.fsync", "fflush + fsync of the temp file"},
    {"durable.close", "fclose of the temp file"},
    {"durable.rotate", "rename of the current generation to .1"},
    {"durable.rename", "rename of the temp file over the live path"},
    {"checkpoint.load", "read of a checkpoint generation at resume"},
    {"dist.send", "socket send in Socket::send_all/send_some"},
    {"dist.recv", "socket recv in Socket::recv_some"},
    {"dist.accept", "coordinator accept of a worker connection"},
    {"dist.connect", "worker connect to the coordinator endpoint"},
    {"engine.alloc", "per-trial engine resource acquisition"},
}};

struct ErrnoName {
  const char* name;
  int value;
};

constexpr ErrnoName kErrnoNames[] = {
    {"ENOSPC", ENOSPC}, {"EMFILE", EMFILE}, {"ENFILE", ENFILE},
    {"EIO", EIO},       {"EINTR", EINTR},   {"ENOMEM", ENOMEM},
    {"EDQUOT", EDQUOT}, {"EAGAIN", EAGAIN}, {"EPIPE", EPIPE},
    {"ECONNRESET", ECONNRESET}, {"EACCES", EACCES}, {"ETIMEDOUT", ETIMEDOUT},
};

bool parse_long(const std::string& text, long& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

/// Splits "name(arg)" into name and arg; arg empty when no parens.
bool split_call(const std::string& text, std::string& name, std::string& arg) {
  const std::size_t open = text.find('(');
  if (open == std::string::npos) {
    name = text;
    arg.clear();
    return true;
  }
  if (text.back() != ')') return false;
  name = text.substr(0, open);
  arg = text.substr(open + 1, text.size() - open - 2);
  return !name.empty();
}

bool parse_errno_name(const std::string& text, int& out) {
  for (const auto& entry : kErrnoNames) {
    if (text == entry.name) {
      out = entry.value;
      return true;
    }
  }
  long numeric = 0;
  if (parse_long(text, numeric) && numeric > 0) {
    out = static_cast<int>(numeric);
    return true;
  }
  return false;
}

std::string site_inventory() {
  std::string out;
  for (const auto& site : kSites) {
    if (!out.empty()) out += ", ";
    out += site.name;
  }
  return out;
}

} // namespace

Failpoints& Failpoints::instance() {
  static Failpoints registry;
  return registry;
}

const std::array<FailpointSite, 12>& Failpoints::sites() { return kSites; }

int Failpoints::site_index(const char* site) {
  for (std::size_t i = 0; i < kSites.size(); ++i) {
    const char* a = kSites[i].name;
    const char* b = site;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a == '\0' && *b == '\0') return static_cast<int>(i);
  }
  return -1;
}

bool Failpoints::configure(const std::string& spec, std::string& error) {
  // Parse into a staging copy first so a malformed entry rejects the whole
  // spec atomically instead of leaving half of it armed.
  std::array<Arm, 12> staged;
  std::uint64_t stagedSeed;
  {
    MutexLock lock(mu_);
    staged = arms_;
    stagedSeed = seed_;
  }
  bool anyOn = false;

  for (const std::string& rawEntry : split(spec, ",")) {
    const std::string entry(trim(rawEntry));
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      error = "malformed failpoint entry '" + entry +
              "' (want site=policy[:action] or seed=N)";
      return false;
    }
    const std::string key(trim(entry.substr(0, eq)));
    const std::string value(trim(entry.substr(eq + 1)));

    if (key == "seed") {
      long seedValue = 0;
      if (!parse_long(value, seedValue) || seedValue < 0) {
        error = "bad failpoint seed '" + value + "' (want a non-negative integer)";
        return false;
      }
      stagedSeed = static_cast<std::uint64_t>(seedValue);
      continue;
    }

    const int index = site_index(key.c_str());
    if (index < 0) {
      error = "unknown failpoint site '" + key +
              "'; registered sites: " + site_inventory();
      return false;
    }

    const std::size_t colon = value.find(':');
    const std::string policyText =
        colon == std::string::npos ? value : value.substr(0, colon);
    const std::string actionText =
        colon == std::string::npos ? std::string() : value.substr(colon + 1);

    Arm arm;
    std::string name;
    std::string arg;
    if (!split_call(std::string(trim(policyText)), name, arg)) {
      error = "malformed failpoint policy '" + policyText + "' for site '" +
              key + "'";
      return false;
    }
    if (name == "off") {
      arm.policy = Policy::Off;
    } else if (name == "every" || name == "after" || name == "times") {
      long n = 0;
      if (!parse_long(arg, n) || n < 0 || (name == "every" && n < 1)) {
        error = "bad count in failpoint policy '" + policyText +
                "' for site '" + key + "'";
        return false;
      }
      arm.policy = name == "every"   ? Policy::Every
                   : name == "after" ? Policy::After
                                     : Policy::Times;
      arm.n = n;
    } else if (name == "prob") {
      double p = 0.0;
      if (!parse_double(arg, p) || p < 0.0 || p > 1.0) {
        error = "bad probability in failpoint policy '" + policyText +
                "' for site '" + key + "' (want prob(P) with 0 <= P <= 1)";
        return false;
      }
      arm.policy = Policy::Prob;
      arm.p = p;
    } else {
      error = "unknown failpoint policy '" + name + "' for site '" + key +
              "' (want off, every(N), after(N), times(N), or prob(P))";
      return false;
    }

    // Action (defaults to errno(EIO)).
    FailHit hit;
    hit.action = FailAction::Errno;
    hit.err = EIO;
    const std::string action(trim(actionText));
    if (!action.empty()) {
      if (!split_call(action, name, arg)) {
        error = "malformed failpoint action '" + action + "' for site '" +
                key + "'";
        return false;
      }
      if (name == "errno") {
        if (!parse_errno_name(arg, hit.err)) {
          error = "unknown errno '" + arg + "' in failpoint action for site '" +
                  key + "'";
          return false;
        }
      } else if (name == "short-write") {
        hit.action = FailAction::ShortWrite;
        hit.err = ENOSPC;
      } else if (name == "delay") {
        long ms = 0;
        if (!parse_long(arg, ms) || ms < 0) {
          error = "bad delay '" + arg + "' in failpoint action for site '" +
                  key + "' (want delay(MS))";
          return false;
        }
        hit.action = FailAction::DelayMs;
        hit.delayMs = static_cast<int>(ms);
      } else if (name == "eintr") {
        hit.action = FailAction::Eintr;
        hit.err = EINTR;
      } else if (name == "abort") {
        hit.action = FailAction::Abort;
      } else {
        error = "unknown failpoint action '" + name + "' for site '" + key +
                "' (want errno(E), short-write, delay(MS), eintr, or abort)";
        return false;
      }
    }
    arm.hit = hit;
    staged[static_cast<std::size_t>(index)] = arm;
  }

  for (const Arm& arm : staged)
    if (arm.policy != Policy::Off) anyOn = true;

  MutexLock lock(mu_);
  arms_ = staged;
  seed_ = stagedSeed;
  anyArmed_.store(anyOn, std::memory_order_release);
  return true;
}

void Failpoints::reset() {
  MutexLock lock(mu_);
  arms_ = {};
  seed_ = 1;
  anyArmed_.store(false, std::memory_order_release);
  for (auto& counter : counters_) counter.store(0, std::memory_order_relaxed);
}

bool Failpoints::decide(const Arm& arm, int siteIndex, long k) const {
  switch (arm.policy) {
  case Policy::Off:
    return false;
  case Policy::Every:
    return arm.n > 0 && (k + 1) % arm.n == 0;
  case Policy::After:
    return k >= arm.n;
  case Policy::Times:
    return k < arm.n;
  case Policy::Prob: {
    // Counter-based draw: evaluation k of site i decides from the stream
    // keyed by (seed, i, k) alone, so the decision sequence is identical at
    // any thread count and any interleaving.
    Rng rng = Rng::stream(seed_, (static_cast<std::uint64_t>(siteIndex) << 32) |
                                     static_cast<std::uint64_t>(k));
    return rng.uniform() < arm.p;
  }
  }
  return false;
}

std::optional<FailHit> Failpoints::evaluate(const char* site) {
  if (!anyArmed_.load(std::memory_order_acquire)) return std::nullopt;
  const int index = site_index(site);
  if (index < 0) return std::nullopt;
  const long k = counters_[static_cast<std::size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  FailHit hit;
  {
    MutexLock lock(mu_);
    const Arm& arm = arms_[static_cast<std::size_t>(index)];
    if (!decide(arm, index, k)) return std::nullopt;
    hit = arm.hit;
  }
  if (hit.action == FailAction::Abort) std::abort();
  if (hit.action == FailAction::DelayMs && hit.delayMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.delayMs));
  return hit;
}

bool Failpoints::would_fire(const char* site, long k) const {
  const int index = site_index(site);
  if (index < 0) return false;
  MutexLock lock(mu_);
  return decide(arms_[static_cast<std::size_t>(index)], index, k);
}

long Failpoints::evaluations(const char* site) const {
  const int index = site_index(site);
  if (index < 0) return 0;
  return counters_[static_cast<std::size_t>(index)].load(
      std::memory_order_relaxed);
}

std::string Failpoints::describe() const {
  MutexLock lock(mu_);
  std::string out;
  for (std::size_t i = 0; i < kSites.size(); ++i) {
    const Arm& arm = arms_[i];
    out += kSites[i].name;
    out += "  [";
    switch (arm.policy) {
    case Policy::Off:
      out += "off";
      break;
    case Policy::Every:
      out += "every(" + std::to_string(arm.n) + ")";
      break;
    case Policy::After:
      out += "after(" + std::to_string(arm.n) + ")";
      break;
    case Policy::Times:
      out += "times(" + std::to_string(arm.n) + ")";
      break;
    case Policy::Prob:
      out += "prob(" + std::to_string(arm.p) + ")";
      break;
    }
    out += "]  ";
    out += kSites[i].what;
    out += '\n';
  }
  return out;
}

} // namespace nvff::util
