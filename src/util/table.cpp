#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nvff {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(Row{std::move(row), pendingSeparator_});
  pendingSeparator_ = false;
}

void TextTable::add_separator() { pendingSeparator_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto renderLine = [&](const std::vector<std::string>& cells) {
    std::ostringstream out;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << " | ";
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    return out.str();
  };
  auto renderSeparator = [&] {
    std::ostringstream out;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c != 0) out << "-+-";
      out << std::string(widths[c], '-');
    }
    return out.str();
  };

  std::ostringstream out;
  out << renderLine(header_) << "\n" << renderSeparator() << "\n";
  for (const auto& row : rows_) {
    if (row.separatorBefore) out << renderSeparator() << "\n";
    out << renderLine(row.cells) << "\n";
  }
  return out.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out << ',';
    out << quote(header_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c != 0) out << ',';
      out << quote(row.cells[c]);
    }
    out << '\n';
  }
  return out.str();
}

} // namespace nvff
