#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace nvff {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double x : samples_) total += x;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mu = mean();
  double m2 = 0.0;
  for (double x : samples_) m2 += (x - mu) * (x - mu);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::string SampleSet::ascii_histogram(std::size_t bins, std::size_t width) const {
  std::ostringstream out;
  if (samples_.empty() || bins == 0) return "(no samples)\n";
  const double lo = min();
  const double hi = max();
  const double span = (hi > lo) ? (hi - lo) : 1.0;
  std::vector<std::size_t> counts(bins, 0);
  for (double x : samples_) {
    auto bin = static_cast<std::size_t>((x - lo) / span * static_cast<double>(bins));
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  for (std::size_t b = 0; b < bins; ++b) {
    const double binLo = lo + span * static_cast<double>(b) / static_cast<double>(bins);
    const double binHi = lo + span * static_cast<double>(b + 1) / static_cast<double>(bins);
    const std::size_t bar =
        peak == 0 ? 0 : counts[b] * width / peak;
    out << "[" << binLo << ", " << binHi << ") ";
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << " " << counts[b] << "\n";
  }
  return out.str();
}

double improvement_percent(double baseline, double proposed) {
  if (baseline == 0.0) return 0.0;
  return (baseline - proposed) / baseline * 100.0;
}

} // namespace nvff
