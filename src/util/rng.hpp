// Deterministic random number generation for reproducible experiments.
//
// All stochastic parts of the library (placement jitter, synthetic netlist
// generation, Monte-Carlo process variation) draw from `Rng`, a xoshiro256++
// generator seeded explicitly. The same seed always yields the same
// experiment, independent of platform and standard-library version (the C++
// standard does not pin down std::normal_distribution, so we implement our
// own transforms).
#pragma once

#include <cstdint>

namespace nvff {

/// Deterministic xoshiro256++ PRNG with explicit seeding and portable
/// uniform/normal transforms.
class Rng {
public:
  /// Seeds the state from a single 64-bit seed via splitmix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Counter-based stream derivation: an independent generator for stream
  /// `streamId` of a campaign keyed by `seed`. Both inputs pass through
  /// splitmix64 before the XOR, so adjacent stream ids (Monte-Carlo trial
  /// numbers) are fully decorrelated, and the stream depends only on
  /// (seed, streamId) — never on which thread draws it or in what order.
  static Rng stream(std::uint64_t seed, std::uint64_t streamId);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Box-Muller with caching).
  double normal();

  /// Normal variate with given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Normal variate truncated to [mean - clampSigmas*sigma,
  /// mean + clampSigmas*sigma]. Used for +-3sigma corner sampling where the
  /// physical parameter cannot take unbounded values.
  double normal_clamped(double mean, double sigma, double clampSigmas);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Re-seed in place.
  void seed(std::uint64_t seed);

private:
  std::uint64_t state_[4];
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

} // namespace nvff
