// Physical units and constants used throughout the nvff library.
//
// All internal computation is done in SI base units (volts, amperes, ohms,
// farads, seconds, meters, joules, watts). The constants below make netlist
// and model code read like the paper: `20 * nm`, `70 * uA`, `1.48 * nm`.
#pragma once

namespace nvff::units {

// --- scale prefixes -------------------------------------------------------
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;
inline constexpr double pico = 1e-12;
inline constexpr double femto = 1e-15;
inline constexpr double atto = 1e-18;

// --- convenience unit literals (value * unit) ------------------------------
inline constexpr double V = 1.0;    ///< volt
inline constexpr double mV = milli; ///< millivolt
inline constexpr double A = 1.0;    ///< ampere
inline constexpr double mA = milli; ///< milliampere
inline constexpr double uA = micro; ///< microampere
inline constexpr double nA = nano;  ///< nanoampere
inline constexpr double pA = pico;  ///< picoampere
inline constexpr double Ohm = 1.0;  ///< ohm
inline constexpr double kOhm = kilo;
inline constexpr double F = 1.0; ///< farad
inline constexpr double pF = pico;
inline constexpr double fF = femto;
inline constexpr double aF = atto;
inline constexpr double s = 1.0; ///< second
inline constexpr double ms = milli;
inline constexpr double us = micro;
inline constexpr double ns = nano;
inline constexpr double ps = pico;
inline constexpr double m = 1.0; ///< meter
inline constexpr double um = micro;
inline constexpr double nm = nano;
inline constexpr double J = 1.0; ///< joule
inline constexpr double pJ = pico;
inline constexpr double fJ = femto;
inline constexpr double aJ = atto;
inline constexpr double W = 1.0; ///< watt
inline constexpr double uW = micro;
inline constexpr double nW = nano;
inline constexpr double pW = pico;
inline constexpr double um2 = 1e-12; ///< square micrometer in m^2

// --- physical constants ----------------------------------------------------
inline constexpr double kBoltzmann = 1.380649e-23;     ///< J/K
inline constexpr double qElectron = 1.602176634e-19;   ///< C
inline constexpr double muBohr = 9.2740100783e-24;     ///< J/T
inline constexpr double hbar = 1.054571817e-34;        ///< J.s
inline constexpr double kZeroCelsiusK = 273.15;        ///< K

/// Thermal voltage kT/q at absolute temperature `tempK` (volts).
constexpr double thermal_voltage(double tempK) {
  return kBoltzmann * tempK / qElectron;
}

} // namespace nvff::units
