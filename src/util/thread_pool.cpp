#include "util/thread_pool.hpp"

namespace nvff {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    shutdown_ = true;
  }
  workAvailable_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    ++pending_;
    target = nextQueue_;
    nextQueue_ = (nextQueue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_front(std::move(task));
  }
  workAvailable_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own queue first (front = most recently pushed, warm in cache) ...
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  // ... then steal the oldest task from the first busy victim.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();
      std::lock_guard<std::mutex> lock(stateMutex_);
      if (--pending_ == 0) allDone_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(stateMutex_);
    if (shutdown_) return;
    // Re-check under the lock: a task may have landed between the failed
    // pop and acquiring the state mutex.
    workAvailable_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(stateMutex_);
  allDone_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(unsigned threads, std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

} // namespace nvff
