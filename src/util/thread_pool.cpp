#include "util/thread_pool.hpp"

#include <chrono>
#include <exception>
#include <string>

#include "util/log.hpp"

namespace nvff {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    MutexLock lock(stateMutex_);
    shutdown_ = true;
  }
  workAvailable_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target = 0;
  {
    MutexLock lock(stateMutex_);
    ++pending_;
    target = nextQueue_;
    nextQueue_ = (nextQueue_ + 1) % queues_.size();
  }
  {
    MutexLock lock(queues_[target]->mutex);
    queues_[target]->tasks.push_front(std::move(task));
  }
  workAvailable_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own queue first (front = most recently pushed, warm in cache) ...
  {
    Queue& q = *queues_[self];
    MutexLock lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  // ... then steal the oldest task from the first busy victim.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    MutexLock lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      // Backstop for tasks that breach the never-throw contract: swallow
      // and log so the pool keeps draining and pending_ still reaches 0.
      try {
        task();
      } catch (const std::exception& e) {
        log_error("thread pool task threw: " + std::string(e.what()));
      } catch (...) {
        log_error("thread pool task threw a non-std::exception value");
      }
      MutexLock lock(stateMutex_);
      if (--pending_ == 0) allDone_.notify_all();
      continue;
    }
    MutexLock lock(stateMutex_);
    if (shutdown_) return;
    // Re-check under the lock: a task may have landed between the failed
    // pop and acquiring the state mutex.
    workAvailable_.wait_for(stateMutex_, std::chrono::milliseconds(10));
  }
}

void ThreadPool::wait_idle() {
  // Explicit wait loop (not the predicate overload): the predicate would be
  // a lambda the thread-safety analysis cannot annotate portably.
  MutexLock lock(stateMutex_);
  while (pending_ != 0) allDone_.wait(stateMutex_);
}

void ThreadPool::parallel_for(unsigned threads, std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

} // namespace nvff
