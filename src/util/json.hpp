// Minimal JSON layer shared by the campaign checkpoint formats
// (reliability Monte-Carlo, faults power-interruption).
//
// The toolchain deliberately carries no JSON dependency; checkpoints only
// need objects/arrays/strings/numbers/bools/null, so a small recursive
// parser plus a couple of writer helpers cover it. The writer side pins the
// properties the checkpoints rely on:
//
//   * num() renders doubles as %.17g, which round-trips every finite double
//     through strtod exactly — config fingerprints compare re-rendered text
//     instead of doing epsilon arithmetic;
//   * non-finite values (no JSON spelling) render as null, and as_num()
//     reads null back as NaN, so NaN margins survive a round trip.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace nvff::json {

/// Parsed JSON value. Plain aggregate: checkpoints walk it once and throw
/// it away, so no accessors beyond typed extraction with error reporting.
struct Value {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> items;                            ///< Kind::Arr
  std::vector<std::pair<std::string, Value>> fields;   ///< Kind::Obj

  /// Object lookup; nullptr when the key is absent (or not an object).
  const Value* find(const std::string& key) const;
  /// Object lookup; throws std::runtime_error when the key is absent.
  const Value& at(const std::string& key) const;

  /// Typed extraction; each throws std::runtime_error on a kind mismatch.
  /// as_num() maps Null to NaN (the writer's encoding of non-finite).
  double as_num() const;
  bool as_bool() const;
  const std::string& as_str() const;
};

/// Parses one complete JSON document; trailing garbage is an error, numbers
/// follow the strict JSON grammar (no "+1", ".5", "1.", hex, inf/nan), and
/// nesting deeper than 64 levels is rejected so hostile input cannot
/// overflow the stack. `what` prefixes every error message ("checkpoint:
/// expected number at ...") so callers keep their domain-specific
/// diagnostics.
Value parse(const std::string& text, const std::string& what = "json");

/// Appends `s` as a quoted JSON string with control characters escaped.
void append_escaped(std::string& out, const std::string& s);

/// Renders a double as %.17g (exact strtod round-trip); non-finite -> null.
std::string num(double v);

} // namespace nvff::json
