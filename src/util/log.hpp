// Minimal leveled logger writing to stderr.
//
// The library itself is silent at default level (warn); benches and examples
// raise the level for progress reporting.
//
// Thread safety: campaign workers log concurrently with the main thread.
// The level is an atomic read with relaxed ordering (it gates output only,
// no data is published through it) and the sink write is serialized by an
// annotated mutex so concurrent messages never interleave mid-line.
#pragma once

#include <string>

namespace nvff {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core sink. Prefer the convenience wrappers below. Thread-safe; whole
/// lines are emitted atomically with respect to other log calls.
void log_message(LogLevel level, const std::string& msg);

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

} // namespace nvff
