// Minimal leveled logger writing to stderr.
//
// The library itself is silent at default level (warn); benches and examples
// raise the level for progress reporting. Not thread-safe by design — all
// nvff flows are single-threaded.
#pragma once

#include <string>

namespace nvff {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core sink. Prefer the convenience wrappers below.
void log_message(LogLevel level, const std::string& msg);

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

} // namespace nvff
