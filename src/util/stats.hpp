// Small statistics toolkit: running moments, percentiles, histograms.
//
// Used by the physical-design and system-level analysis code to summarize
// pair distances, improvement percentages and Monte-Carlo corner sweeps.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nvff {

/// Accumulates count/mean/variance/min/max in a single pass (Welford).
class RunningStats {
public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects all samples; supports exact percentiles and histogram rendering.
class SampleSet {
public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Exact percentile with linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }

  /// Fixed-width ASCII histogram for terminal reports.
  std::string ascii_histogram(std::size_t bins, std::size_t width) const;

private:
  std::vector<double> samples_;
};

/// Relative improvement of `b` over `a` in percent: (a - b) / a * 100.
/// Matches the improvement columns in Table III of the paper.
double improvement_percent(double baseline, double proposed);

} // namespace nvff
