// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable_any carrying the
// Clang thread-safety attributes from util/thread_annotations.hpp. All
// mutex-guarded state in the codebase (ThreadPool, the runtime supervisor,
// util/log) uses these instead of the raw std types, so a forgotten lock is
// a compile error on clang (-Werror=thread-safety in CI) rather than a
// latent race for TSan or the goldens to catch later.
//
// Usage pattern:
//
//   Mutex mu_;
//   int completed_ GUARDED_BY(mu_) = 0;
//   ...
//   { MutexLock lock(mu_); ++completed_; }
//
// CondVar waits take the Mutex itself (not the scoped lock) so the REQUIRES
// annotation can name the capability being held across the wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace nvff {

/// std::mutex with capability annotations. Satisfies BasicLockable, so it
/// also works directly with std::condition_variable_any (see CondVar).
class CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
  std::mutex m_;
};

/// RAII lock for Mutex (the std::lock_guard equivalent, but visible to the
/// thread-safety analysis as a scoped capability).
class SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

private:
  Mutex& mutex_;
};

/// Condition variable for Mutex. Waits name the Mutex directly: the caller
/// must hold it (enforced by REQUIRES on clang), and it is atomically
/// released for the duration of the wait and re-held on return — the
/// standard condition-variable contract, just visible to the analysis.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mutex) REQUIRES(mutex) { cv_.wait(mutex); }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) REQUIRES(mutex) {
    cv_.wait(mutex, std::move(predicate));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mutex) {
    return cv_.wait_for(mutex, timeout);
  }

private:
  // condition_variable_any: waits on any BasicLockable, which lets it take
  // the annotated Mutex directly instead of a std::unique_lock<std::mutex>
  // the analysis cannot see through.
  std::condition_variable_any cv_;
};

} // namespace nvff
