#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace nvff {
namespace {
// Campaign worker threads read the level concurrently with the main thread
// potentially raising it for progress reporting. Relaxed ordering suffices:
// the level is a standalone gate — no other memory is published through it,
// so there is nothing for acquire/release to order. A worker observing a
// stale level for a few messages is harmless by design.
std::atomic<LogLevel> g_level = LogLevel::Warn;

// Serializes sink writes so concurrent workers cannot interleave partial
// lines. stderr is the guarded resource; the annotation keeps any future
// multi-write formatting honest under clang's -Wthread-safety.
Mutex g_sinkMutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

void write_line(LogLevel level, const std::string& msg) REQUIRES(g_sinkMutex) {
  std::fprintf(stderr, "[nvff %s] %s\n", level_tag(level), msg.c_str());
}

} // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_sinkMutex);
  write_line(level, msg);
}

void log_debug(const std::string& msg) { log_message(LogLevel::Debug, msg); }
void log_info(const std::string& msg) { log_message(LogLevel::Info, msg); }
void log_warn(const std::string& msg) { log_message(LogLevel::Warn, msg); }
void log_error(const std::string& msg) { log_message(LogLevel::Error, msg); }

} // namespace nvff
