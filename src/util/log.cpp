#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace nvff {
namespace {
// Atomic: campaign worker threads read the level concurrently with the
// main thread potentially raising it for progress reporting.
std::atomic<LogLevel> g_level = LogLevel::Warn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
} // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[nvff %s] %s\n", level_tag(level), msg.c_str());
}

void log_debug(const std::string& msg) { log_message(LogLevel::Debug, msg); }
void log_info(const std::string& msg) { log_message(LogLevel::Info, msg); }
void log_warn(const std::string& msg) { log_message(LogLevel::Warn, msg); }
void log_error(const std::string& msg) { log_message(LogLevel::Error, msg); }

} // namespace nvff
