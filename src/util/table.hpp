// Aligned plain-text table rendering + CSV export.
//
// Every bench binary regenerates one of the paper's tables; this class gives
// them a uniform look (column alignment, separators, optional title) and a
// machine-readable CSV twin for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace nvff {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's job (use nvff::format / nvff::eng).
class TextTable {
public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator line before the next added row.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with padded columns, e.g.
  ///   name   | area  | energy
  ///   -------+-------+-------
  ///   s344   | 42.26 | 42.38
  std::string render() const;

  /// Renders as CSV (comma-separated, quotes only when needed).
  std::string to_csv() const;

private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separatorBefore = false;
  };
  std::vector<Row> rows_;
  bool pendingSeparator_ = false;
};

} // namespace nvff
