#include "util/rng.hpp"

#include <cmath>

namespace nvff {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

} // namespace

Rng::Rng(std::uint64_t seedValue) { seed(seedValue); }

Rng Rng::stream(std::uint64_t seedValue, std::uint64_t streamId) {
  // seed ⊕ trialId, but with both sides whitened first: raw XOR of small
  // integers would give correlated splitmix starting points for adjacent
  // trials of adjacent seeds.
  std::uint64_t a = seedValue;
  std::uint64_t b = ~streamId;
  return Rng(splitmix64(a) ^ splitmix64(b));
}

void Rng::seed(std::uint64_t seedValue) {
  std::uint64_t sm = seedValue;
  for (auto& lane : state_) lane = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero lanes, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  hasCachedNormal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 bits of mantissa -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire-style rejection-free-ish bounded draw; bias is < 2^-64 * n which is
  // negligible for our n (netlist sizes), but do a rejection loop for rigor.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double twoPi = 6.283185307179586;
  cachedNormal_ = mag * std::sin(twoPi * u2);
  hasCachedNormal_ = true;
  return mag * std::cos(twoPi * u2);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

double Rng::normal_clamped(double mean, double sigma, double clampSigmas) {
  const double v = normal(mean, sigma);
  const double lo = mean - clampSigmas * sigma;
  const double hi = mean + clampSigmas * sigma;
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

bool Rng::chance(double p) { return uniform() < p; }

} // namespace nvff
