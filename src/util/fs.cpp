#include "util/fs.hpp"

#include <cerrno>
#include <cstdio>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace nvff::util {

namespace {

std::string errno_text() { return std::generic_category().message(errno); }

} // namespace

bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string& error) {
  const std::string tmp = path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    error = "cannot create '" + tmp + "': " + errno_text();
    return false;
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = "cannot write '" + tmp + "': " + errno_text();
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  int rc;
  while ((rc = ::fsync(fd)) != 0 && errno == EINTR) {
  }
  if (rc != 0 || ::close(fd) != 0) {
    error = "cannot flush '" + tmp + "': " + errno_text();
    if (rc != 0) ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "cannot rename '" + tmp + "' to '" + path + "': " + errno_text();
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

} // namespace nvff::util
