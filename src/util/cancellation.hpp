// Cooperative cancellation for long-running solves and campaign trials.
//
// A CancelToken is a tiny shared flag a watchdog (or signal handler, or
// campaign deadline) raises and a worker polls at safe points: the SPICE
// Newton loop checks it once per iteration, campaign trials check it between
// phases. Cancellation is always cooperative — nothing is killed mid-stamp,
// so circuit and device state stay consistent and the observer never sees a
// half-committed step.
//
// Tokens form a two-level hierarchy: a trial-scoped token can point at a
// campaign-scoped parent, and `cancelled()` fires when either level is
// raised. The reason distinguishes the structured error taxonomy the
// runtime supervisor records:
//
//   Timeout   — a per-trial watchdog deadline expired; the trial is recorded
//               as a distinct `timeout` outcome and the campaign continues.
//   Cancelled — campaign-wide stop (global deadline or drain); the trial is
//               NOT recorded, so a resumed campaign re-runs it.
//
// Thread safety: cancel() may race with cancelled()/reason() freely; the
// flag is monotonic (never un-raised) and the first reason wins.
//
// Memory-ordering contract (audited; regression-tested by
// tests/util/test_cancellation.cpp CrossThreadVisibility):
//
//   * cancel() publishes in two steps: a RELAXED compare-exchange on
//     reason_ (first writer wins), then a RELEASE store of raised_. The
//     release store is the one ordering that matters: it makes the reason_
//     write (sequenced before it in the cancelling thread) visible to any
//     thread that subsequently observes raised_ == true.
//   * cancelled() loads raised_ with ACQUIRE to complete that pairing. No
//     ordering weaker than acquire is correct here — a relaxed load could
//     observe the flag without the reason.
//   * reason() loads with RELAXED, which is only safe because of the usage
//     contract: reason() is meaningful ONLY after cancelled() returned true
//     on the same token (or a descendant). Every caller in the tree polls
//     cancelled() first; the acquire there already ordered the reason_
//     write before the load.
//
// Nothing in this class needs seq_cst: there is no multi-variable invariant
// across *different* tokens to order globally, only the raised_/reason_
// pair within one token, which release/acquire covers exactly.
#pragma once

#include <atomic>

namespace nvff {

class CancelToken {
public:
  enum class Reason { None, Timeout, Cancelled };

  CancelToken() = default;
  /// Trial-scoped token observing a campaign-scoped parent.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Raises the token. Idempotent; the first reason is kept.
  void cancel(Reason reason = Reason::Cancelled) {
    // Relaxed CAS: the release store of raised_ below is what publishes
    // this write to acquire-readers of raised_ (see the header contract).
    Reason expected = Reason::None;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed);
    // Release: pairs with the acquire load in cancelled().
    raised_.store(true, std::memory_order_release);
  }

  /// True when this token or its parent has been raised.
  bool cancelled() const {
    // Acquire: pairs with the release store in cancel(), making the
    // first-writer reason_ value visible before reason() is consulted.
    if (raised_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Why the token fired: own reason first, then the parent's. Only
  /// meaningful after cancelled() returned true (see ordering contract).
  Reason reason() const {
    const Reason own = reason_.load(std::memory_order_relaxed);
    if (own != Reason::None) return own;
    return parent_ != nullptr ? parent_->reason() : Reason::None;
  }

private:
  std::atomic<bool> raised_{false};
  std::atomic<Reason> reason_{Reason::None};
  const CancelToken* parent_ = nullptr;
};

} // namespace nvff
