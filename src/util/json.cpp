#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace nvff::json {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

double Value::as_num() const {
  if (kind == Kind::Null) return std::numeric_limits<double>::quiet_NaN();
  if (kind != Kind::Num) throw std::runtime_error("json: expected number");
  return number;
}

bool Value::as_bool() const {
  if (kind != Kind::Bool) throw std::runtime_error("json: expected bool");
  return boolean;
}

const std::string& Value::as_str() const {
  if (kind != Kind::Str) throw std::runtime_error("json: expected string");
  return text;
}

namespace {

/// Recursion cap. Checkpoints nest 4-5 levels; 64 leaves headroom for any
/// legitimate schema while keeping adversarial "[[[[..." input from
/// overflowing the stack.
constexpr int kMaxDepth = 64;

class Parser {
public:
  Parser(const std::string& s, const std::string& what) : s_(s), what_(what) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size())
      throw std::runtime_error(what_ + ": trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(what_ + ": " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  /// Bumps the nesting depth for one object/array scope.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.depth_ > kMaxDepth) p.fail("nesting too deep");
    }
    ~DepthGuard() { --p.depth_; }
    Parser& p;
  };

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_word(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::Str;
        v.text = parse_string();
        return v;
      }
      case 't': {
        if (!consume_word("true")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_word("false")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    const DepthGuard depth(*this);
    expect('{');
    Value v;
    v.kind = Value::Kind::Obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    const DepthGuard depth(*this);
    expect('[');
    Value v;
    v.kind = Value::Kind::Arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Only the control-character range is ever written by our writer.
          if (code < 0x80) out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  bool digit_here() {
    return pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]));
  }

  // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
  // strtod alone is far too permissive — it takes "+1", ".5", "1.", "0x10",
  // "inf", "nan" — and a checkpoint loader has no business guessing what a
  // torn file meant.
  Value parse_number() {
    const std::size_t start = pos_;
    if (s_[pos_] == '-') ++pos_;
    if (!digit_here()) {
      if (pos_ == start) fail("expected a value");
      fail("malformed number");
    }
    const std::size_t intStart = pos_;
    while (digit_here()) ++pos_;
    if (s_[intStart] == '0' && pos_ - intStart > 1)
      fail("malformed number (leading zero)");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digit_here()) fail("malformed number");
      while (digit_here()) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digit_here()) fail("malformed number");
      while (digit_here()) ++pos_;
    }
    const std::string token = s_.substr(start, pos_ - start);
    errno = 0;
    const double v = std::strtod(token.c_str(), nullptr);
    // ERANGE underflow (subnormals) still round-trips exactly; an overflow
    // to infinity would break the writer's finite-or-null invariant.
    if (errno == ERANGE && std::isinf(v)) fail("number overflows a double");
    Value j;
    j.kind = Value::Kind::Num;
    j.number = v;
    return j;
  }

  const std::string& s_;
  const std::string& what_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

} // namespace

Value parse(const std::string& text, const std::string& what) {
  return Parser(text, what).parse_document();
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

} // namespace nvff::json
