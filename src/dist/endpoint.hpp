// Transport endpoints for the distributed campaign service.
//
// PR 7's coordinator/worker protocol is transport-agnostic above the byte
// stream — framing, handshake, heartbeats and shard merge never look at the
// socket family. This type names WHICH byte stream to use:
//
//   unix:/path/to/coord.sock   unix-domain stream socket (single host; the
//                              PR 7 default, no ports, no firewalls)
//   tcp:host:port              TCP stream socket (multi-host fleets).
//                              port 0 binds an ephemeral port; the bound
//                              port is reported back so tests and scripts
//                              can discover it (Socket::listen_endpoint).
//
// Parsing is strict: a string without a scheme is rejected, because a typo
// like `tcp127.0.0.1:9000` silently treated as a unix path would produce a
// confusing bind error far from the actual mistake. The CLI keeps the old
// `--socket PATH` spelling as a deprecated alias that maps to `unix:PATH`.
#pragma once

#include <string>

namespace nvff::dist {

struct Endpoint {
  enum class Scheme { Unix, Tcp };
  Scheme scheme = Scheme::Unix;
  std::string path;    ///< unix: socket file path
  std::string host;    ///< tcp: hostname or numeric address
  int port = 0;        ///< tcp: 0 = ephemeral (bound port reported)

  /// Canonical rendering, parseable by parse_endpoint.
  std::string to_string() const;
};

/// Parses `unix:PATH` or `tcp:HOST:PORT`. Returns false with a diagnostic in
/// `error` on an unknown scheme, empty path/host, or a port outside
/// [0, 65535]. Never throws.
bool parse_endpoint(const std::string& text, Endpoint& out, std::string& error);

} // namespace nvff::dist
