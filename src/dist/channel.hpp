// Local stream-socket plumbing for the distributed campaign service.
//
// The coordinator and its workers are separate PROCESSES on one host (the
// unit the chaos drill can kill -9 independently), talking over unix-domain
// stream sockets: no port allocation races in CI, no firewall interaction,
// and the kernel guarantees byte-stream ordering — every remaining failure
// mode (peer death, torn frame, corruption introduced above the kernel) is
// handled by the framing layer and the reconnect/redispatch policies.
//
// Everything here is deliberately boring and classified: operations return
// status instead of throwing (a dead peer is an expected event in a system
// whose test suite shoots processes), and SIGPIPE is never raised — a send
// into a closed socket reports failure like any other.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace nvff::dist {

/// RAII wrapper around one stream-socket file descriptor.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Sends the whole buffer (retrying short writes, EINTR). False on any
  /// hard error — the caller drops the connection.
  bool send_all(std::string_view bytes);

  /// Waits up to `timeoutMs` for readability, then reads what is available.
  /// Returns bytes read (> 0), 0 on timeout (no data yet), -1 on EOF or a
  /// hard error (connection over).
  long recv_some(char* buffer, std::size_t capacity, int timeoutMs);

  /// Binds and listens on a unix-domain socket path, unlinking any stale
  /// socket file first (the previous coordinator may have been kill -9'd —
  /// that is the normal case here, not the exceptional one). Invalid socket
  /// + `error` message on failure.
  static Socket listen_unix(const std::string& path, std::string& error);

  /// Accepts one pending connection (call after poll/select reported the
  /// listener readable). Invalid socket when nothing was pending.
  Socket accept_pending();

  /// Connects to a unix-domain socket path. Invalid socket on failure (the
  /// coordinator may not be up yet; the caller backs off and retries).
  static Socket connect_unix(const std::string& path);

private:
  int fd_ = -1;
};

/// Capped exponential backoff for reconnect loops: first wait `initialMs`,
/// doubling per failure up to `capMs`. Deterministic (no jitter) — two
/// workers hammering a local socket path cannot meaningfully collide, and
/// determinism keeps the chaos drill's timing reproducible.
class Backoff {
public:
  Backoff(int initialMs, int capMs) : initialMs_(initialMs), capMs_(capMs) {}

  /// Current delay, then doubles for next time.
  int next_ms() {
    const int out = currentMs_ > 0 ? currentMs_ : initialMs_;
    currentMs_ = out * 2 > capMs_ ? capMs_ : out * 2;
    return out;
  }

  void reset() { currentMs_ = 0; }

private:
  int initialMs_;
  int capMs_;
  int currentMs_ = 0;
};

} // namespace nvff::dist
