// Stream-socket plumbing for the distributed campaign service.
//
// The coordinator and its workers are separate PROCESSES (the unit the chaos
// drill can kill -9 independently) talking over stream sockets — unix-domain
// on one host (no port races in CI, no firewall interaction) or TCP across a
// fleet (dist/endpoint.hpp names which). The kernel guarantees byte-stream
// ordering either way; every remaining failure mode (peer death, torn frame,
// corruption above the kernel, stalled or half-open TCP peers) is handled by
// the framing layer and the reconnect / re-dispatch / quarantine policies.
//
// Everything here is deliberately boring and classified: operations return
// status instead of throwing (a dead peer is an expected event in a system
// whose test suite shoots processes), and SIGPIPE is never raised — a send
// into a closed socket reports failure like any other.
//
// Two TCP-driven hardening rules apply to EVERY data socket, unix included:
//
//   * Data fds are non-blocking. A blocking fd plus a black-holed peer (the
//     kernel send buffer fills, the peer never ACKs) would wedge send()
//     forever — and with it the coordinator's whole event loop.
//   * send_all takes a per-message deadline and polls for writability. On
//     expiry it reports Timeout; the caller drops the connection (a partial
//     frame poisons the stream anyway) and the shard re-dispatch machinery
//     does the rest.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "dist/endpoint.hpp"

namespace nvff::dist {

/// Outcome of a deadline-bounded send. Timeout and Closed both end the
/// connection, but callers account for them differently: repeated timeouts
/// mark a peer SLOW (quarantine), a close marks it GONE (plain drop).
enum class SendStatus { Ok, Timeout, Closed };
const char* send_status_name(SendStatus status);

/// Default per-message send deadline. Generous — it only has to distinguish
/// "kernel buffer momentarily full" from "peer stopped draining us".
constexpr int kDefaultSendTimeoutMs = 5000;

/// RAII wrapper around one stream-socket file descriptor.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Sends the whole buffer, polling for writability between chunks, within
  /// `timeoutMs` overall. Timeout means the peer stopped draining the stream
  /// (black hole, frozen process, dead network) — the caller must drop the
  /// connection, because a partially sent frame cannot be resumed.
  SendStatus send_all(std::string_view bytes,
                      int timeoutMs = kDefaultSendTimeoutMs);

  /// Non-blocking single write attempt (proxy/event-loop building block).
  /// Returns bytes written (>= 0; 0 means the kernel buffer is full, try
  /// again after POLLOUT) or -1 on a hard error / closed peer.
  long send_some(std::string_view bytes);

  /// Waits up to `timeoutMs` for readability, then reads what is available.
  /// Returns bytes read (> 0), 0 on timeout (no data yet), -1 on EOF or a
  /// hard error (connection over).
  long recv_some(char* buffer, std::size_t capacity, int timeoutMs);

  /// Shrinks the kernel send buffer (test hook). A tiny SO_SNDBUF makes a
  /// non-draining peer fill the buffer within a handful of frames, so the
  /// send-deadline path can be exercised in milliseconds instead of minutes.
  bool set_send_buffer(int bytes);

  /// Shrinks the kernel receive buffer (test hook, the other half of the
  /// same trick): a non-draining TCP peer with a default auto-tuned receive
  /// window absorbs megabytes before the sender ever blocks.
  bool set_recv_buffer(int bytes);

  /// Binds and listens on a unix-domain socket path, unlinking any stale
  /// socket file first (the previous coordinator may have been kill -9'd —
  /// that is the normal case here, not the exceptional one). Invalid socket
  /// + `error` message on failure.
  static Socket listen_unix(const std::string& path, std::string& error);

  /// Binds and listens on host:port with SO_REUSEADDR (a restarted
  /// coordinator must not trade EADDRINUSE for TIME_WAIT). Port 0 binds an
  /// ephemeral port; `boundPort` reports the actual one either way.
  static Socket listen_tcp(const std::string& host, int port,
                           std::string& error, int& boundPort);

  /// listen_unix / listen_tcp behind one Endpoint. `bound` is the concrete
  /// endpoint (ephemeral tcp port resolved) suitable for workers to dial.
  static Socket listen_endpoint(const Endpoint& endpoint, std::string& error,
                                Endpoint& bound);

  /// Accepts one pending connection (call after poll/select reported the
  /// listener readable). The accepted fd is made non-blocking. Invalid
  /// socket when nothing was pending.
  Socket accept_pending();

  /// Connects to a unix-domain socket path. Invalid socket on failure (the
  /// coordinator may not be up yet; the caller backs off and retries).
  static Socket connect_unix(const std::string& path);

  /// Connects to host:port with a non-blocking connect bounded by
  /// `timeoutMs` (an unreachable host must cost one deadline, not a kernel
  /// SYN-retry eternity), then sets TCP_NODELAY (heartbeats and shard
  /// assignments are latency-sensitive small frames) and TCP keepalive (a
  /// half-open connection to a vanished host eventually reports an error
  /// instead of lingering forever). Invalid socket on failure.
  static Socket connect_tcp(const std::string& host, int port, int timeoutMs);

  /// connect_unix / connect_tcp behind one Endpoint.
  static Socket connect_endpoint(const Endpoint& endpoint, int timeoutMs);

private:
  int fd_ = -1;
};

/// Capped exponential backoff for reconnect loops: first wait
/// min(initialMs, capMs), doubling per failure up to capMs. Deterministic
/// (no jitter) — two workers hammering a local socket path cannot
/// meaningfully collide, and determinism keeps the chaos drill's timing
/// reproducible.
class Backoff {
public:
  Backoff(int initialMs, int capMs) : initialMs_(initialMs), capMs_(capMs) {}

  /// Current delay, then doubles for next time. Every returned delay —
  /// including the first — honors the cap (regression: the initial delay
  /// was once returned uncapped, so Backoff(1000, 500) waited 1000 ms).
  int next_ms() {
    const int base = currentMs_ > 0 ? currentMs_ : initialMs_;
    const int out = base > capMs_ ? capMs_ : base;
    currentMs_ = out * 2 > capMs_ ? capMs_ : out * 2;
    return out;
  }

  void reset() { currentMs_ = 0; }

private:
  int initialMs_;
  int capMs_;
  int currentMs_ = 0;
};

} // namespace nvff::dist
