#include "dist/endpoint.hpp"

#include <cstdlib>

namespace nvff::dist {

std::string Endpoint::to_string() const {
  if (scheme == Scheme::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

bool parse_endpoint(const std::string& text, Endpoint& out, std::string& error) {
  const auto fail = [&](const std::string& why) {
    error = "bad endpoint '" + text + "': " + why;
    return false;
  };
  if (text.rfind("unix:", 0) == 0) {
    out.scheme = Endpoint::Scheme::Unix;
    out.path = text.substr(5);
    out.host.clear();
    out.port = 0;
    if (out.path.empty()) return fail("unix endpoint needs a path");
    return true;
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    // Split at the LAST colon so numeric-looking hosts and future bracketed
    // IPv6 literals keep their internal colons on the host side.
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos)
      return fail("tcp endpoint needs host:port");
    out.scheme = Endpoint::Scheme::Tcp;
    out.host = rest.substr(0, colon);
    out.path.clear();
    if (out.host.empty()) return fail("tcp endpoint needs a host");
    const std::string portText = rest.substr(colon + 1);
    if (portText.empty()) return fail("tcp endpoint needs a port");
    char* end = nullptr;
    const long port = std::strtol(portText.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
      return fail("port '" + portText + "' is not a number");
    if (port < 0 || port > 65535)
      return fail("port " + std::to_string(port) + " outside [0, 65535]");
    out.port = static_cast<int>(port);
    return true;
  }
  return fail("unknown scheme (expected unix:PATH or tcp:HOST:PORT)");
}

} // namespace nvff::dist
