// Typed payloads of the coordinator/worker protocol frames.
//
// Control messages are small JSON objects (parsed with util/json, the same
// hardened reader the checkpoints use); the two bulk messages — Welcome's
// config blob and ShardResult's checkpoint document — ride as raw bytes
// after a one-line JSON header, so a multi-megabyte shard result is never
// string-escaped.
//
// Every parse_* returns false on malformed input instead of throwing: a
// payload that passed the frame CRC can still be garbage (version skew, a
// buggy peer), and the response is the same as for wire corruption — drop
// the connection, classified and logged, never a crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nvff::dist {

struct HelloMsg {
  int protocolVersion = 0;
};
std::string encode_hello(const HelloMsg& msg);
bool parse_hello(const std::string& payload, HelloMsg& out);

struct WelcomeMsg {
  std::string engine; ///< "mc" | "powerfail" | a registered test engine
  std::string blob;   ///< canonical config document (= fingerprint)
};
std::string encode_welcome(const WelcomeMsg& msg);
bool parse_welcome(const std::string& payload, WelcomeMsg& out);

struct ReadyMsg {
  std::uint32_t fingerprintCrc = 0; ///< crc32 of the worker's re-serialized blob
  int trials = 0;                   ///< worker's view of the campaign size
};
std::string encode_ready(const ReadyMsg& msg);
bool parse_ready(const std::string& payload, ReadyMsg& out);

struct ShardAssignMsg {
  int shard = 0;
  std::vector<int> ids; ///< trial ids to run (ascending)
};
std::string encode_shard_assign(const ShardAssignMsg& msg);
bool parse_shard_assign(const std::string& payload, ShardAssignMsg& out);

struct ShardResultMsg {
  int shard = 0;
  std::string blob; ///< engine checkpoint document for the shard's trials
};
std::string encode_shard_result(const ShardResultMsg& msg);
bool parse_shard_result(const std::string& payload, ShardResultMsg& out);

struct HeartbeatMsg {
  int shard = 0;
  int trialsDone = 0; ///< monotonic progress inside the shard
};
std::string encode_heartbeat(const HeartbeatMsg& msg);
bool parse_heartbeat(const std::string& payload, HeartbeatMsg& out);

struct ErrorMsg {
  std::string message;
};
std::string encode_error(const ErrorMsg& msg);
bool parse_error(const std::string& payload, ErrorMsg& out);

} // namespace nvff::dist
