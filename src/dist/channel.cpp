#include "dist/channel.hpp"

#include <cerrno>
#include <cstring>
#include <system_error>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nvff::dist {

namespace {

std::string errno_text() { return std::generic_category().message(errno); }

bool fill_addr(const std::string& path, sockaddr_un& addr, std::string& error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

} // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process
    // with SIGPIPE — peer death is routine in a chaos-tested service.
    const long n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::recv_some(char* buffer, std::size_t capacity, int timeoutMs) {
  if (fd_ < 0) return -1;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeoutMs);
  if (ready < 0) return errno == EINTR ? 0 : -1;
  if (ready == 0) return 0;
  // POLLHUP/POLLERR fall through to recv(), which reports EOF/error exactly.
  const long n = ::recv(fd_, buffer, capacity, 0);
  if (n < 0) return errno == EINTR ? 0 : -1;
  if (n == 0) return -1; // orderly EOF: the connection is over either way
  return n;
}

Socket Socket::listen_unix(const std::string& path, std::string& error) {
  sockaddr_un addr;
  if (!fill_addr(path, addr, error)) return Socket();
  // A stale socket file from a kill -9'd predecessor would fail bind() with
  // EADDRINUSE forever; removing it is the unix-domain idiom (there is no
  // SO_REUSEADDR for pathname sockets).
  ::unlink(path.c_str());
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) {
    error = "socket(): " + errno_text();
    return Socket();
  }
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = "bind('" + path + "'): " + errno_text();
    return Socket();
  }
  if (::listen(s.fd(), 64) != 0) {
    error = "listen('" + path + "'): " + errno_text();
    return Socket();
  }
  // Non-blocking listener: poll() can report a pending connection that is
  // gone by the time accept() runs (the client died or aborted the connect).
  // On a blocking fd that accept() hangs the whole event loop — and with
  // SA_RESTART'd signal handlers not even SIGTERM gets it unstuck.
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(s.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    error = "fcntl(O_NONBLOCK, '" + path + "'): " + errno_text();
    return Socket();
  }
  return s;
}

Socket Socket::accept_pending() {
  if (fd_ < 0) return Socket();
  // Linux clears file-status flags on the accepted fd, so connections come
  // back blocking regardless of the listener's O_NONBLOCK; recv_some()
  // polls before every read, so that is safe.
  const int fd = ::accept(fd_, nullptr, nullptr);
  return Socket(fd);
}

Socket Socket::connect_unix(const std::string& path) {
  sockaddr_un addr;
  std::string error;
  if (!fill_addr(path, addr, error)) return Socket();
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) return Socket();
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return Socket();
  return s;
}

} // namespace nvff::dist
