#include "dist/channel.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/failpoint.hpp"

namespace nvff::dist {

namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text() { return std::generic_category().message(errno); }

bool fill_addr(const std::string& path, sockaddr_un& addr, std::string& error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Resolves host:port to socket addresses (numeric fast path included).
/// Returns nullptr + error text on failure; caller owns the result.
addrinfo* resolve_tcp(const std::string& host, int port, bool forBind,
                      std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (forBind) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  if (rc != 0) {
    error = "resolve '" + host + "': " + ::gai_strerror(rc);
    return nullptr;
  }
  return result;
}

/// Keepalive turns a half-open TCP connection (peer host vanished without a
/// FIN or RST — power loss, network partition) into a detectable error in
/// roughly idle + intvl*cnt seconds instead of the kernel default hours.
void apply_tcp_options(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
#ifdef TCP_KEEPIDLE
  int idle = 30, intvl = 5, cnt = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &intvl, sizeof(intvl));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cnt, sizeof(cnt));
#endif
}

} // namespace

const char* send_status_name(SendStatus status) {
  switch (status) {
    case SendStatus::Ok: return "ok";
    case SendStatus::Timeout: return "timeout";
    case SendStatus::Closed: return "closed";
  }
  return "?";
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SendStatus Socket::send_all(std::string_view bytes, int timeoutMs) {
  if (fd_ < 0) return SendStatus::Closed;
  // One failpoint evaluation per message, not per syscall: a hit either
  // kills the send outright (errno action) or forces the first chunk down
  // to a single byte (eintr/short-write), exercising the partial-send
  // resume loop below deterministically.
  std::size_t firstChunkCap = bytes.size();
  if (const auto hit = util::failpoint("dist.send")) {
    if (hit->action == util::FailAction::Errno) return SendStatus::Closed;
    if (hit->action != util::FailAction::DelayMs)
      firstChunkCap = bytes.empty() ? 0 : 1;
  }
  // DETLINT-ALLOW(DET001): per-message send deadline — connection scheduling
  // only, never campaign results.
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeoutMs > 0 ? timeoutMs : 0);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process
    // with SIGPIPE — peer death is routine in a chaos-tested service.
    const std::size_t chunk =
        sent == 0 ? std::min(bytes.size(), firstChunkCap) : bytes.size() - sent;
    const long n = ::send(fd_, bytes.data() + sent, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
      return SendStatus::Closed;
    // Kernel buffer full: the peer is not draining us (yet). Poll for
    // writability within what remains of the deadline; a peer that stays
    // plugged past it is reported as a timeout, NEVER waited out — this is
    // the line that keeps a black-holed worker from stalling the
    // coordinator's event loop.
    // DETLINT-ALLOW(DET001): same send deadline as above.
    const auto now = Clock::now();
    if (now >= deadline) return SendStatus::Timeout;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (ready < 0 && errno != EINTR) return SendStatus::Closed;
    if (ready > 0 && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (pfd.revents & POLLOUT) == 0)
      return SendStatus::Closed;
  }
  return SendStatus::Ok;
}

long Socket::send_some(std::string_view bytes) {
  if (fd_ < 0) return -1;
  std::size_t chunkCap = bytes.size();
  if (const auto hit = util::failpoint("dist.send")) {
    if (hit->action == util::FailAction::Errno) return -1;
    if (hit->action != util::FailAction::DelayMs)
      chunkCap = bytes.empty() ? 0 : 1; // partial write: caller re-queues the rest
  }
  for (;;) {
    const long n = ::send(fd_, bytes.data(), chunkCap, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long Socket::recv_some(char* buffer, std::size_t capacity, int timeoutMs) {
  if (fd_ < 0) return -1;
  if (const auto hit = util::failpoint("dist.recv")) {
    // Eintr mirrors a real interrupted recv (no data this round); an errno
    // action is a hard receive error — the caller drops the connection.
    if (hit->action == util::FailAction::Eintr) return 0;
    if (hit->action != util::FailAction::DelayMs) return -1;
  }
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeoutMs);
  if (ready < 0) return errno == EINTR ? 0 : -1;
  if (ready == 0) return 0;
  // POLLHUP/POLLERR fall through to recv(), which reports EOF/error exactly.
  const long n = ::recv(fd_, buffer, capacity, 0);
  if (n < 0) {
    // EAGAIN: poll's readiness was consumed by a race (or spurious wakeup)
    // on the non-blocking fd; simply no data yet.
    return (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : -1;
  }
  if (n == 0) return -1; // orderly EOF: the connection is over either way
  return n;
}

bool Socket::set_send_buffer(int bytes) {
  if (fd_ < 0) return false;
  return ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) == 0;
}

bool Socket::set_recv_buffer(int bytes) {
  if (fd_ < 0) return false;
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) == 0;
}

Socket Socket::listen_unix(const std::string& path, std::string& error) {
  sockaddr_un addr;
  if (!fill_addr(path, addr, error)) return Socket();
  // A stale socket file from a kill -9'd predecessor would fail bind() with
  // EADDRINUSE forever; removing it is the unix-domain idiom (there is no
  // SO_REUSEADDR for pathname sockets).
  ::unlink(path.c_str());
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) {
    error = "socket(): " + errno_text();
    return Socket();
  }
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    error = "bind('" + path + "'): " + errno_text();
    return Socket();
  }
  if (::listen(s.fd(), 64) != 0) {
    error = "listen('" + path + "'): " + errno_text();
    return Socket();
  }
  // Non-blocking listener: poll() can report a pending connection that is
  // gone by the time accept() runs (the client died or aborted the connect).
  // On a blocking fd that accept() hangs the whole event loop — and with
  // SA_RESTART'd signal handlers not even SIGTERM gets it unstuck.
  if (!set_nonblocking(s.fd())) {
    error = "fcntl(O_NONBLOCK, '" + path + "'): " + errno_text();
    return Socket();
  }
  return s;
}

Socket Socket::listen_tcp(const std::string& host, int port,
                          std::string& error, int& boundPort) {
  boundPort = 0;
  addrinfo* addrs = resolve_tcp(host, port, /*forBind=*/true, error);
  if (addrs == nullptr) return Socket();
  Socket s;
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    Socket candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      error = "socket(): " + errno_text();
      continue;
    }
    // SO_REUSEADDR: a restarted coordinator must be able to rebind its port
    // while the predecessor's connections sit in TIME_WAIT — the restart
    // path IS the chaos drill's normal case.
    int one = 1;
    ::setsockopt(candidate.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(candidate.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      error = "bind('" + host + ":" + std::to_string(port) +
              "'): " + errno_text();
      continue;
    }
    if (::listen(candidate.fd(), 64) != 0) {
      error = "listen('" + host + ":" + std::to_string(port) +
              "'): " + errno_text();
      continue;
    }
    s = std::move(candidate);
    break;
  }
  ::freeaddrinfo(addrs);
  if (!s.valid()) return Socket();
  if (!set_nonblocking(s.fd())) {
    error = "fcntl(O_NONBLOCK): " + errno_text();
    return Socket();
  }
  // Report the concrete port: with port 0 the kernel picked an ephemeral one
  // and tests/scripts need it to point workers at the listener.
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    error = "getsockname(): " + errno_text();
    return Socket();
  }
  if (bound.ss_family == AF_INET) {
    boundPort = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
  } else if (bound.ss_family == AF_INET6) {
    boundPort = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
  }
  error.clear();
  return s;
}

Socket Socket::listen_endpoint(const Endpoint& endpoint, std::string& error,
                               Endpoint& bound) {
  bound = endpoint;
  if (endpoint.scheme == Endpoint::Scheme::Unix)
    return listen_unix(endpoint.path, error);
  int boundPort = 0;
  Socket s = listen_tcp(endpoint.host, endpoint.port, error, boundPort);
  if (s.valid()) bound.port = boundPort;
  return s;
}

Socket Socket::accept_pending() {
  if (fd_ < 0) return Socket();
  if (const auto hit = util::failpoint("dist.accept");
      hit && hit->action != util::FailAction::DelayMs) {
    // Injected EMFILE/ENFILE: accept fails, the pending connection stays in
    // the backlog, and the caller sheds it — exactly the real fd-exhaustion
    // shape the resource drill pins.
    errno = hit->err != 0 ? hit->err : EMFILE;
    return Socket();
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket();
  Socket s(fd);
  // Linux clears file-status flags on the accepted fd, so connections come
  // back blocking regardless of the listener's O_NONBLOCK. Data sockets must
  // be non-blocking for the send deadline to work (see channel.hpp).
  if (!set_nonblocking(fd)) return Socket();
  // Inherit the TCP tuning regardless of which listener produced the fd;
  // the setsockopts are harmless no-ops on unix-domain sockets.
  apply_tcp_options(fd);
  return s;
}

Socket Socket::connect_unix(const std::string& path) {
  sockaddr_un addr;
  std::string error;
  if (!fill_addr(path, addr, error)) return Socket();
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) return Socket();
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return Socket();
  // Unix-domain connect() either succeeds immediately or fails; only the
  // established data socket needs to be non-blocking.
  if (!set_nonblocking(s.fd())) return Socket();
  return s;
}

Socket Socket::connect_tcp(const std::string& host, int port, int timeoutMs) {
  std::string error;
  addrinfo* addrs = resolve_tcp(host, port, /*forBind=*/false, error);
  if (addrs == nullptr) return Socket();
  Socket s;
  for (addrinfo* ai = addrs; ai != nullptr && !s.valid(); ai = ai->ai_next) {
    Socket candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) continue;
    if (!set_nonblocking(candidate.fd())) continue;
    // Non-blocking connect: a SYN into a black hole must cost one deadline,
    // not the kernel's minutes-long retry ladder. EINPROGRESS is the normal
    // path; poll for writability, then read the final verdict via SO_ERROR.
    const int rc = ::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen);
    if (rc != 0) {
      if (errno != EINPROGRESS) continue;
      pollfd pfd{};
      pfd.fd = candidate.fd();
      pfd.events = POLLOUT;
      const int ready = ::poll(&pfd, 1, timeoutMs > 0 ? timeoutMs : 0);
      if (ready <= 0) continue; // timeout or poll error: try the next address
      int soError = 0;
      socklen_t len = sizeof(soError);
      if (::getsockopt(candidate.fd(), SOL_SOCKET, SO_ERROR, &soError, &len) !=
              0 ||
          soError != 0)
        continue;
    }
    apply_tcp_options(candidate.fd());
    s = std::move(candidate);
  }
  ::freeaddrinfo(addrs);
  return s;
}

Socket Socket::connect_endpoint(const Endpoint& endpoint, int timeoutMs) {
  if (const auto hit = util::failpoint("dist.connect");
      hit && hit->action != util::FailAction::DelayMs) {
    errno = hit->err != 0 ? hit->err : ECONNREFUSED;
    return Socket();
  }
  if (endpoint.scheme == Endpoint::Scheme::Unix)
    return connect_unix(endpoint.path);
  return connect_tcp(endpoint.host, endpoint.port, timeoutMs);
}

} // namespace nvff::dist
